#include "eca/transaction.h"

#include "eca/active_database.h"

namespace park {

Transaction::Transaction(ActiveDatabase* db)
    : db_(db), symbols_(db->symbols()) {}

Transaction::Transaction(CommitSink* sink,
                         std::shared_ptr<SymbolTable> symbols)
    : sink_(sink), symbols_(std::move(symbols)) {}

GroundAtom Transaction::MakeAtom(std::string_view predicate,
                                 const std::vector<std::string>& args) {
  SymbolTable& symbols = *symbols_;
  PredicateId pred =
      symbols.InternPredicate(predicate, static_cast<int>(args.size()));
  Tuple tuple;
  for (const std::string& arg : args) {
    tuple.Append(ConstantFromText(arg, symbols));
  }
  return GroundAtom(pred, std::move(tuple));
}

Transaction& Transaction::Insert(const GroundAtom& atom) {
  updates_.AddInsert(atom);
  return *this;
}

Transaction& Transaction::Delete(const GroundAtom& atom) {
  updates_.AddDelete(atom);
  return *this;
}

Transaction& Transaction::Insert(std::string_view predicate,
                                 const std::vector<std::string>& args) {
  return Insert(MakeAtom(predicate, args));
}

Transaction& Transaction::Delete(std::string_view predicate,
                                 const std::vector<std::string>& args) {
  return Delete(MakeAtom(predicate, args));
}

Status Transaction::Stage(std::string_view update_text) {
  return updates_.AddParsed(update_text, symbols_);
}

CommitResult Transaction::Commit() && {
  if (sink_ != nullptr) return sink_->CommitThrough(std::move(updates_));
  return db_->CommitUpdates(updates_);
}

}  // namespace park
