#include "eca/transaction.h"

#include "eca/active_database.h"

namespace park {

GroundAtom Transaction::MakeAtom(std::string_view predicate,
                                 const std::vector<std::string>& args) {
  SymbolTable& symbols = *db_->symbols();
  PredicateId pred =
      symbols.InternPredicate(predicate, static_cast<int>(args.size()));
  Tuple tuple;
  for (const std::string& arg : args) {
    tuple.Append(ConstantFromText(arg, symbols));
  }
  return GroundAtom(pred, std::move(tuple));
}

Transaction& Transaction::Insert(const GroundAtom& atom) {
  updates_.AddInsert(atom);
  return *this;
}

Transaction& Transaction::Delete(const GroundAtom& atom) {
  updates_.AddDelete(atom);
  return *this;
}

Transaction& Transaction::Insert(std::string_view predicate,
                                 const std::vector<std::string>& args) {
  return Insert(MakeAtom(predicate, args));
}

Transaction& Transaction::Delete(std::string_view predicate,
                                 const std::vector<std::string>& args) {
  return Delete(MakeAtom(predicate, args));
}

Status Transaction::Stage(std::string_view update_text) {
  return updates_.AddParsed(update_text, db_->symbols());
}

Result<CommitReport> Transaction::Commit() && {
  return db_->CommitUpdates(updates_);
}

}  // namespace park
