#include "eca/journal.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <thread>

#include "util/crc32.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace park {

namespace {

// --- structural scanner -------------------------------------------------
//
// The scanner validates record framing, sequence continuity, and CRCs
// without parsing atoms, so it can run where no symbol table exists
// (Open) and report exact byte offsets for torn-tail truncation.

struct ScannedRecord {
  uint64_t seq = 0;
  std::vector<std::string_view> update_lines;
};

struct JournalScan {
  std::vector<ScannedRecord> records;
  /// Byte offset one past the last valid record: everything after it is
  /// a torn tail (if any).
  uint64_t valid_bytes = 0;
  bool torn_tail = false;
  std::string tail_reason;
};

/// Extracts the line starting at `*pos` (newline not included) and
/// advances past it. Returns false at end of input. `*terminated` tells
/// whether the line ended with '\n' — a line that just stops is the
/// classic torn-append shape.
bool NextLine(std::string_view contents, size_t* pos, std::string_view* line,
              bool* terminated) {
  if (*pos >= contents.size()) return false;
  size_t nl = contents.find('\n', *pos);
  if (nl == std::string_view::npos) {
    *line = contents.substr(*pos);
    *pos = contents.size();
    *terminated = false;
  } else {
    *line = contents.substr(*pos, nl - *pos);
    *pos = nl + 1;
    *terminated = true;
  }
  return true;
}

bool ParseSeq(std::string_view text, uint64_t* seq) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

bool ParseBeginLine(std::string_view line, uint64_t* seq) {
  if (!StartsWith(line, "begin ")) return false;
  return ParseSeq(line.substr(6), seq);
}

bool ParseCommitLine(std::string_view line, uint64_t* seq, uint32_t* crc) {
  if (!StartsWith(line, "commit ")) return false;
  line.remove_prefix(7);
  size_t space = line.find(' ');
  if (space == std::string_view::npos) return false;
  if (!ParseSeq(line.substr(0, space), seq)) return false;
  std::string_view crc_field = line.substr(space + 1);
  if (!StartsWith(crc_field, "crc=") || crc_field.size() != 4 + 8) {
    return false;
  }
  uint32_t value = 0;
  for (char c : crc_field.substr(4)) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    value = (value << 4) | static_cast<uint32_t>(digit);
  }
  *crc = value;
  return true;
}

enum class RecordParse { kOk, kEndOfInput, kBad };

/// Attempts to parse one complete record at `*pos`. On kOk, `*pos` is
/// just past the record's commit line. On kBad, `*reason` says why and
/// `*pos` is unspecified.
RecordParse ParseOneRecord(std::string_view contents, size_t* pos,
                           ScannedRecord* out, std::string* reason) {
  std::string_view line;
  bool terminated = false;
  if (!NextLine(contents, pos, &line, &terminated)) {
    return RecordParse::kEndOfInput;
  }
  if (!terminated) {
    *reason = "torn line where a record should begin";
    return RecordParse::kBad;
  }
  if (!ParseBeginLine(line, &out->seq)) {
    *reason = StrFormat("expected 'begin <seq>', got \"%.*s\"",
                        static_cast<int>(line.size()), line.data());
    return RecordParse::kBad;
  }
  uint32_t crc = kCrc32Init;
  crc = Crc32Update(crc, StrFormat("%llu\n",
                                   static_cast<unsigned long long>(out->seq)));
  out->update_lines.clear();
  while (true) {
    if (!NextLine(contents, pos, &line, &terminated)) {
      *reason = StrFormat("record %llu has no commit line",
                          static_cast<unsigned long long>(out->seq));
      return RecordParse::kBad;
    }
    if (!terminated) {
      *reason = StrFormat("record %llu ends in a torn line",
                          static_cast<unsigned long long>(out->seq));
      return RecordParse::kBad;
    }
    if (StartsWith(line, "commit")) {
      uint64_t commit_seq = 0;
      uint32_t stored_crc = 0;
      if (!ParseCommitLine(line, &commit_seq, &stored_crc)) {
        *reason = StrFormat("malformed commit line \"%.*s\"",
                            static_cast<int>(line.size()), line.data());
        return RecordParse::kBad;
      }
      if (commit_seq != out->seq) {
        *reason = StrFormat(
            "commit seq %llu does not match begin seq %llu",
            static_cast<unsigned long long>(commit_seq),
            static_cast<unsigned long long>(out->seq));
        return RecordParse::kBad;
      }
      if (Crc32Finish(crc) != stored_crc) {
        *reason = StrFormat("record %llu failed its CRC check",
                            static_cast<unsigned long long>(out->seq));
        return RecordParse::kBad;
      }
      return RecordParse::kOk;
    }
    crc = Crc32Update(crc, line);
    crc = Crc32Update(crc, "\n");
    out->update_lines.push_back(line);
  }
}

/// True if a complete, CRC-valid record starts at any line AFTER the line
/// beginning at `from` — the discriminator between a torn tail (nothing
/// valid follows) and mid-journal corruption (valid data follows).
bool AnyValidRecordAfter(std::string_view contents, size_t from) {
  size_t pos = from;
  while (pos < contents.size()) {
    size_t nl = contents.find('\n', pos);
    if (nl == std::string_view::npos) return false;
    pos = nl + 1;
    if (!StartsWith(contents.substr(pos), "begin ")) continue;
    size_t probe = pos;
    ScannedRecord record;
    std::string reason;
    if (ParseOneRecord(contents, &probe, &record, &reason) ==
        RecordParse::kOk) {
      return true;
    }
  }
  return false;
}

Result<JournalScan> ScanJournal(std::string_view contents,
                                const std::string& path) {
  JournalScan scan;
  size_t pos = 0;
  std::optional<uint64_t> prev_seq;
  while (true) {
    const size_t record_start = pos;
    ScannedRecord record;
    std::string reason;
    RecordParse outcome = ParseOneRecord(contents, &pos, &record, &reason);
    if (outcome == RecordParse::kEndOfInput) break;
    if (outcome == RecordParse::kOk && prev_seq.has_value() &&
        record.seq != *prev_seq + 1) {
      // A gap or repeat in the middle of an append-only file means bytes
      // were lost or rewritten — never a torn tail.
      return DataLossError(StrFormat(
          "%s: sequence %llu follows %llu (records lost?)", path.c_str(),
          static_cast<unsigned long long>(record.seq),
          static_cast<unsigned long long>(*prev_seq)));
    }
    if (outcome == RecordParse::kBad) {
      if (AnyValidRecordAfter(contents, record_start)) {
        return DataLossError(StrFormat(
            "%s: corruption at byte %zu (%s) with valid records after it",
            path.c_str(), record_start, reason.c_str()));
      }
      // A genuine torn append is a prefix of one record, so the tail must
      // open with "begin " (or a prefix of it, if the tear was that
      // early). Anything else was never written by this journal — treat
      // it as corruption, not as a droppable tail.
      std::string_view tail = contents.substr(record_start);
      std::string_view magic = "begin ";
      bool record_shaped = StartsWith(tail, magic) ||
                           (tail.size() < magic.size() &&
                            StartsWith(magic, tail));
      if (!record_shaped) {
        return DataLossError(StrFormat(
            "%s: unrecognized data at byte %zu (%s)", path.c_str(),
            record_start, reason.c_str()));
      }
      scan.torn_tail = true;
      scan.tail_reason = std::move(reason);
      break;
    }
    prev_seq = record.seq;
    scan.records.push_back(std::move(record));
    scan.valid_bytes = pos;
  }
  if (!scan.torn_tail) scan.valid_bytes = contents.size();
  return scan;
}

/// Reads `path` through `env`, mapping "file does not exist" to an empty
/// journal and every other failure to a real error (a journal that exists
/// but cannot be read must never be mistaken for a fresh one).
Result<std::optional<std::string>> ReadJournalFile(const std::string& path,
                                                  Env* env) {
  auto contents = env->ReadFileToString(path);
  if (contents.ok()) return std::optional<std::string>(std::move(*contents));
  if (contents.status().code() == StatusCode::kNotFound) {
    return std::optional<std::string>();  // fresh journal
  }
  return contents.status().WithContext("reading journal");
}

}  // namespace

// --- TransactionJournal -------------------------------------------------

Result<TransactionJournal> TransactionJournal::Open(const std::string& path,
                                                    JournalOptions options) {
  if (options.env == nullptr) options.env = Env::Default();
  Env* env = options.env;

  uint64_t next_seq = options.first_seq;
  uint64_t durable_bytes = 0;
  PARK_ASSIGN_OR_RETURN(std::optional<std::string> contents,
                        ReadJournalFile(path, env));
  if (contents.has_value()) {
    PARK_ASSIGN_OR_RETURN(JournalScan scan, ScanJournal(*contents, path));
    if (scan.torn_tail) {
      PARK_LOG(kWarning) << "journal " << path << ": dropping torn tail ("
                         << scan.tail_reason << "), truncating to "
                         << scan.valid_bytes << " bytes";
      PARK_RETURN_IF_ERROR(
          env->TruncateFile(path, scan.valid_bytes)
              .WithContext("truncating torn journal tail"));
    }
    durable_bytes = scan.valid_bytes;
    if (!scan.records.empty()) {
      next_seq = scan.records.back().seq + 1;
    }
  }

  PARK_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> file,
      env->NewWritableFile(path, Env::WriteMode::kAppend));
  return TransactionJournal(path, options, std::move(file), next_seq,
                            durable_bytes);
}

TransactionJournal::TransactionJournal(TransactionJournal&& other) noexcept
    : path_(std::move(other.path_)), options_(other.options_),
      file_(std::move(other.file_)), next_seq_(other.next_seq_),
      durable_bytes_(other.durable_bytes_), broken_(other.broken_),
      io_attempts_(other.io_attempts_), io_retries_(other.io_retries_),
      backoff_ms_total_(other.backoff_ms_total_),
      retries_exhausted_(other.retries_exhausted_),
      last_append_attempts_(other.last_append_attempts_) {}

TransactionJournal& TransactionJournal::operator=(
    TransactionJournal&& other) noexcept {
  if (this != &other) {
    CloseLogged();
    path_ = std::move(other.path_);
    options_ = other.options_;
    file_ = std::move(other.file_);
    next_seq_ = other.next_seq_;
    durable_bytes_ = other.durable_bytes_;
    broken_ = other.broken_;
    io_attempts_ = other.io_attempts_;
    io_retries_ = other.io_retries_;
    backoff_ms_total_ = other.backoff_ms_total_;
    retries_exhausted_ = other.retries_exhausted_;
    last_append_attempts_ = other.last_append_attempts_;
  }
  return *this;
}

TransactionJournal::~TransactionJournal() { CloseLogged(); }

void TransactionJournal::CloseLogged() {
  if (file_ == nullptr) return;
  Status status = file_->Close();
  if (!status.ok()) {
    // Destructors and move-assignment cannot return the Status; a failed
    // final flush must still be visible somewhere.
    PARK_LOG(kWarning) << "journal " << path_
                       << ": close failed: " << status.ToString();
  }
  file_.reset();
}

Status TransactionJournal::Append(const UpdateSet& updates,
                                  const SymbolTable& symbols,
                                  uint64_t txns) {
  if (file_ == nullptr) {
    return FailedPreconditionError("journal has been moved from");
  }
  if (broken_) {
    return FailedPreconditionError(StrFormat(
        "journal %s is disabled after an unhealed append failure; reopen "
        "to recover", path_.c_str()));
  }
  if (txns == 0) {
    return InvalidArgumentError("journal record must hold >= 1 txn");
  }
  const uint64_t seq = next_seq_;
  std::string body;
  if (txns > 1) {
    body += StrFormat("batch %llu\n", static_cast<unsigned long long>(txns));
  }
  for (const Update& update : updates.updates()) {
    body += ActionKindSign(update.action);
    body += update.atom.ToString(symbols);
    body += "\n";
  }
  const std::string seq_line =
      StrFormat("%llu\n", static_cast<unsigned long long>(seq));
  const uint32_t crc =
      Crc32Finish(Crc32Update(Crc32Update(kCrc32Init, seq_line), body));
  std::string record =
      StrFormat("begin %llu\n", static_cast<unsigned long long>(seq));
  record += body;
  record += StrFormat("commit %llu crc=%08x\n",
                      static_cast<unsigned long long>(seq), crc);

  last_sync_ns_ = 0;
  last_append_attempts_ = 0;
  Status status;
  for (;;) {
    ++last_append_attempts_;
    ++io_attempts_;
    status = file_->Append(record);
    if (status.ok() && options_.sync_mode != JournalSyncMode::kNone) {
      const int64_t sync_start_ns = MonotonicNanos();
      status = file_->Flush();
      if (status.ok() && options_.sync_mode == JournalSyncMode::kFsync) {
        status = file_->Sync();
      }
      last_sync_ns_ =
          static_cast<uint64_t>(MonotonicNanos() - sync_start_ns);
    }
    if (status.ok()) break;
    // The record may be torn on disk. Heal the file back to its last
    // durable byte BEFORE any retry or return, so neither a retried
    // append nor a later one can bury the damage mid-journal; if healing
    // also fails, poison the handle — reopening (which truncates torn
    // tails) is the only safe way forward.
    Status heal = options_.env->TruncateFile(path_, durable_bytes_);
    if (!heal.ok()) {
      broken_ = true;
      PARK_LOG(kWarning) << "journal " << path_
                         << ": could not heal after failed append ("
                         << heal.ToString() << "); journal disabled";
      break;
    }
    // Only transient failures are worth retrying.
    if (status.code() != StatusCode::kUnavailable) break;
    if (last_append_attempts_ > options_.max_retries) {
      ++retries_exhausted_;
      break;
    }
    ++io_retries_;
    if (options_.backoff_ms > 0) {
      const int shift = std::min(last_append_attempts_ - 1, 10);
      const int64_t delay =
          std::min(options_.backoff_ms << shift, kMaxBackoffMs);
      backoff_ms_total_ += static_cast<uint64_t>(delay);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  if (!status.ok()) {
    return status.WithContext(StrFormat(
        "journal append failed on %s after %d attempt(s)", path_.c_str(),
        last_append_attempts_));
  }
  next_seq_ = seq + 1;
  durable_bytes_ += record.size();
  return Status::OK();
}

Result<std::vector<JournalRecord>> TransactionJournal::ReadRecords(
    const std::string& path,
    const std::shared_ptr<SymbolTable>& symbols, Env* env,
    bool* torn_tail) {
  if (env == nullptr) env = Env::Default();
  if (torn_tail != nullptr) *torn_tail = false;

  PARK_ASSIGN_OR_RETURN(std::optional<std::string> contents,
                        ReadJournalFile(path, env));
  std::vector<JournalRecord> records;
  if (!contents.has_value()) return records;  // fresh journal

  PARK_ASSIGN_OR_RETURN(JournalScan scan, ScanJournal(*contents, path));
  if (scan.torn_tail) {
    PARK_LOG(kWarning) << "journal " << path << ": ignoring torn tail ("
                       << scan.tail_reason << ")";
    if (torn_tail != nullptr) *torn_tail = true;
  }
  records.reserve(scan.records.size());
  for (const ScannedRecord& scanned : scan.records) {
    JournalRecord record;
    record.seq = scanned.seq;
    size_t first_update = 0;
    // A leading "batch <k>" line annotates a group commit; it is body
    // text (CRC-covered), not an update.
    if (!scanned.update_lines.empty() &&
        StartsWith(scanned.update_lines[0], "batch ")) {
      uint64_t txns = 0;
      if (!ParseSeq(scanned.update_lines[0].substr(6), &txns) ||
          txns == 0) {
        return DataLossError(StrFormat(
            "%s: record %llu has a malformed batch line", path.c_str(),
            static_cast<unsigned long long>(scanned.seq)));
      }
      record.txns = txns;
      first_update = 1;
    }
    for (size_t i = first_update; i < scanned.update_lines.size(); ++i) {
      std::string_view line = scanned.update_lines[i];
      Status status = record.updates.AddParsed(line, symbols);
      if (!status.ok()) {
        return status.WithContext(StrFormat(
            "%s: record %llu", path.c_str(),
            static_cast<unsigned long long>(scanned.seq)));
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

Result<std::vector<UpdateSet>> TransactionJournal::ReadAll(
    const std::string& path,
    const std::shared_ptr<SymbolTable>& symbols) {
  PARK_ASSIGN_OR_RETURN(std::vector<JournalRecord> records,
                        ReadRecords(path, symbols));
  std::vector<UpdateSet> updates;
  updates.reserve(records.size());
  for (JournalRecord& record : records) {
    updates.push_back(std::move(record.updates));
  }
  return updates;
}

}  // namespace park
