#include "eca/journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "util/string_util.h"

namespace park {

Result<TransactionJournal> TransactionJournal::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return InternalError(StrFormat("cannot open journal %s: %s",
                                   path.c_str(), std::strerror(errno)));
  }
  return TransactionJournal(path, file);
}

TransactionJournal::TransactionJournal(TransactionJournal&& other) noexcept
    : path_(std::move(other.path_)), file_(other.file_) {
  other.file_ = nullptr;
}

TransactionJournal& TransactionJournal::operator=(
    TransactionJournal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

TransactionJournal::~TransactionJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status TransactionJournal::Append(const UpdateSet& updates,
                                  const SymbolTable& symbols) {
  if (file_ == nullptr) {
    return FailedPreconditionError("journal has been moved from");
  }
  std::string record = "begin\n";
  for (const Update& update : updates.updates()) {
    record += ActionKindSign(update.action);
    record += update.atom.ToString(symbols);
    record += "\n";
  }
  record += "commit\n";
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return InternalError(
        StrFormat("journal write failed on %s", path_.c_str()));
  }
  if (std::fflush(file_) != 0) {
    return InternalError(
        StrFormat("journal flush failed on %s", path_.c_str()));
  }
  return Status::OK();
}

Result<std::vector<UpdateSet>> TransactionJournal::ReadAll(
    const std::string& path,
    const std::shared_ptr<SymbolTable>& symbols) {
  std::ifstream in(path);
  if (!in) return std::vector<UpdateSet>{};  // fresh journal

  std::vector<UpdateSet> records;
  UpdateSet pending;
  bool in_record = false;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "begin") {
      // A bare `begin` inside a record means the previous record was torn;
      // drop it and start over.
      pending.clear();
      in_record = true;
      continue;
    }
    if (trimmed == "commit") {
      if (in_record) records.push_back(pending);
      pending.clear();
      in_record = false;
      continue;
    }
    if (!in_record) {
      return InvalidArgumentError(StrFormat(
          "%s:%d: update line outside begin/commit", path.c_str(),
          line_number));
    }
    Status status = pending.AddParsed(trimmed, symbols);
    if (!status.ok()) {
      return status.WithContext(
          StrFormat("%s:%d", path.c_str(), line_number));
    }
  }
  // A trailing record without `commit` is a torn append: ignored.
  return records;
}

}  // namespace park
