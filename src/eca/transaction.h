// Transaction: a unit of user updates evaluated atomically under the PARK
// semantics at commit time. Produced by ActiveDatabase::Begin().

#ifndef PARK_ECA_TRANSACTION_H_
#define PARK_ECA_TRANSACTION_H_

#include <optional>

#include "eca/update.h"

namespace park {

class ActiveDatabase;

/// Wall-clock decomposition of one commit's pipeline. Always collected —
/// a commit is macro-scale work, so the handful of clock reads is noise
/// (the *intra-evaluation* phase timers stay behind
/// ParkOptions::collect_timings; see CommitReport::stats.timings).
struct CommitTimings {
  uint64_t total_ns = 0;
  uint64_t evaluate_ns = 0;      // the PARK(D, P, U) fixpoint
  uint64_t apply_ns = 0;         // diff + in-place instance update
  uint64_t journal_ns = 0;       // journal append, incl. sync
  uint64_t journal_sync_ns = 0;  // flush/fsync portion of journal_ns
};

/// Structured post-mortem of a failed commit, kept by the ActiveDatabase
/// (last_commit_failure()) because a failed Commit() returns only a
/// Status. `rolled_back` is true whenever the stored instance was
/// restored to its pre-commit state — which is every failure path, so
/// the database stays usable (and consistent with its durable history)
/// without reopening.
struct CommitFailure {
  enum class Stage {
    kValidate,  // options bundle rejected before evaluation
    kEvaluate,  // PARK(D, P, U) failed (deadline, budget, abstention, ...)
    kJournal,   // durability failed after retries; in-memory diff undone
  };

  Stage stage = Stage::kEvaluate;
  Status cause = Status::OK();
  /// Journal write attempts, first try included (0 outside kJournal).
  int journal_attempts = 0;
  bool rolled_back = true;
};

/// What a commit did. The commit is atomic: either the whole report
/// applies or (on error) nothing changed.
struct CommitReport {
  /// Atoms actually added to / removed from the stored database.
  std::vector<GroundAtom> inserted;
  std::vector<GroundAtom> deleted;
  /// Evaluation counters (restarts > 0 means conflicts were resolved).
  ParkStats stats;
  /// Full trace at the ActiveDatabase's configured trace level.
  Trace trace;
  /// Commit-pipeline phase times (evaluate / apply / journal / sync).
  CommitTimings timings;
  /// Journal sequence number of this commit's record; 0 when the
  /// database has no journal attached.
  uint64_t journal_seq = 0;
};

/// A pending set of updates against an ActiveDatabase. Move-only; commit
/// or abandon. Updates are collected eagerly but nothing touches the
/// stored database until Commit.
class Transaction {
 public:
  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Stages an insertion/deletion of a ground atom.
  Transaction& Insert(const GroundAtom& atom);
  Transaction& Delete(const GroundAtom& atom);

  /// Convenience: interns and stages `predicate(args...)`.
  Transaction& Insert(std::string_view predicate,
                      const std::vector<std::string>& args);
  Transaction& Delete(std::string_view predicate,
                      const std::vector<std::string>& args);

  /// Stages a parsed "+p(a)" / "-q(b)" update.
  Status Stage(std::string_view update_text);

  const UpdateSet& pending() const { return updates_; }

  /// Runs PARK(D, P, U) and atomically replaces the stored database with
  /// the result. The transaction must not be reused afterwards.
  Result<CommitReport> Commit() &&;

 private:
  friend class ActiveDatabase;
  explicit Transaction(ActiveDatabase* db) : db_(db) {}

  GroundAtom MakeAtom(std::string_view predicate,
                      const std::vector<std::string>& args);

  ActiveDatabase* db_;
  UpdateSet updates_;
};

}  // namespace park

#endif  // PARK_ECA_TRANSACTION_H_
