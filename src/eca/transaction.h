// Transaction: a unit of user updates evaluated atomically under the PARK
// semantics at commit time. Produced by ActiveDatabase::Begin() (direct,
// single-caller) or Session::Begin() (concurrent serving — the commit is
// routed through the session's group-commit pipeline; docs/SERVING.md).

#ifndef PARK_ECA_TRANSACTION_H_
#define PARK_ECA_TRANSACTION_H_

#include <memory>
#include <optional>

#include "eca/update.h"

namespace park {

class ActiveDatabase;
class Session;

/// Wall-clock decomposition of one commit's pipeline. Always collected —
/// a commit is macro-scale work, so the handful of clock reads is noise
/// (the *intra-evaluation* phase timers stay behind
/// ParkOptions::collect_timings; see CommitReport::stats.timings).
struct CommitTimings {
  uint64_t total_ns = 0;
  uint64_t evaluate_ns = 0;      // the PARK(D, P, U) fixpoint
  uint64_t apply_ns = 0;         // diff + in-place instance update
  uint64_t journal_ns = 0;       // journal append, incl. sync
  uint64_t journal_sync_ns = 0;  // flush/fsync portion of journal_ns
};

/// Structured post-mortem of a failed commit, carried on the error path
/// of CommitResult (failure()). `rolled_back` is true whenever the stored
/// instance was restored to its pre-commit state — which is every failure
/// path, so the database stays usable (and consistent with its durable
/// history) without reopening.
struct CommitFailure {
  enum class Stage {
    kValidate,  // options bundle rejected before evaluation
    kEvaluate,  // PARK(D, P, U) failed (deadline, budget, abstention, ...)
    kJournal,   // durability failed after retries; in-memory diff undone
  };

  Stage stage = Stage::kEvaluate;
  Status cause = Status::OK();
  /// Journal write attempts, first try included (0 outside kJournal).
  int journal_attempts = 0;
  bool rolled_back = true;
};

/// What a commit did. The commit is atomic: either the whole report
/// applies or (on error) nothing changed.
struct CommitReport {
  /// Atoms actually added to / removed from the stored database.
  std::vector<GroundAtom> inserted;
  std::vector<GroundAtom> deleted;
  /// Evaluation counters (restarts > 0 means conflicts were resolved).
  ParkStats stats;
  /// Full trace at the ActiveDatabase's configured trace level.
  Trace trace;
  /// Commit-pipeline phase times (evaluate / apply / journal / sync).
  CommitTimings timings;
  /// Journal sequence number of this commit's record; 0 when the
  /// database has no journal attached. Every member of a group commit
  /// reports the batch's (single) record.
  uint64_t journal_seq = 0;
  /// Group-commit placement (serve::Session, docs/SERVING.md): which
  /// batch this transaction was folded into, how many transactions the
  /// batch held, and this transaction's 0-based arrival position within
  /// it. Direct (non-Session) commits report batch_seq 0 / size 1 /
  /// position 0; a Session batch of one keeps its real batch_seq with
  /// size 1 / position 0. For a batch's atoms, `inserted`/`deleted` list
  /// the whole folded batch's effect — the firing is one PARK run, so
  /// per-member attribution does not exist by construction.
  uint64_t batch_seq = 0;
  uint32_t batch_size = 1;
  uint32_t batch_position = 0;
};

/// The outcome of Commit(): a CommitReport on success, or a Status plus
/// the structured CommitFailure post-mortem on error — no side-channel
/// getter to pair with. Interface-compatible with Result<CommitReport>
/// (ok/status/value/operator*/operator->), so existing `auto report =
/// std::move(tx).Commit()` call sites keep working unchanged.
class CommitResult {
 public:
  /*implicit*/ CommitResult(CommitReport report)
      : report_(std::move(report)) {}
  CommitResult(Status status, CommitFailure failure)
      : status_(std::move(status)), failure_(std::move(failure)) {}

  bool ok() const { return report_.has_value(); }
  /// OK on success; the commit's error otherwise.
  const Status& status() const { return status_; }

  /// Post-mortem of the failed commit: which pipeline stage failed, the
  /// cause, and whether the instance was rolled back. Engaged iff !ok().
  const std::optional<CommitFailure>& failure() const { return failure_; }

  // Report access; the result must be ok().
  CommitReport& operator*() & { return *report_; }
  const CommitReport& operator*() const& { return *report_; }
  CommitReport&& operator*() && { return *std::move(report_); }
  CommitReport* operator->() { return &*report_; }
  const CommitReport* operator->() const { return &*report_; }
  CommitReport& value() & { return *report_; }
  const CommitReport& value() const& { return *report_; }
  CommitReport&& value() && { return *std::move(report_); }

 private:
  Status status_ = Status::OK();
  std::optional<CommitReport> report_;
  std::optional<CommitFailure> failure_;
};

/// Where a Session-bound transaction's staged updates go at Commit().
/// The serving layer implements this with its group-commit pipeline;
/// the indirection exists because eca cannot depend on serve.
class CommitSink {
 public:
  virtual ~CommitSink() = default;
  /// Takes ownership of the staged updates; blocks until the updates are
  /// committed (possibly folded into a batch with concurrent commits)
  /// or rejected.
  virtual CommitResult CommitThrough(UpdateSet updates) = 0;
};

/// A pending set of updates against an ActiveDatabase. Move-only; commit
/// or abandon. Updates are collected eagerly but nothing touches the
/// stored database until Commit.
///
/// A Transaction handle is not itself thread-safe (stage from one thread,
/// or hand it off with a happens-before edge); any number of transactions
/// from the same Session may Commit() concurrently.
class Transaction {
 public:
  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Stages an insertion/deletion of a ground atom.
  Transaction& Insert(const GroundAtom& atom);
  Transaction& Delete(const GroundAtom& atom);

  /// Convenience: interns and stages `predicate(args...)`.
  Transaction& Insert(std::string_view predicate,
                      const std::vector<std::string>& args);
  Transaction& Delete(std::string_view predicate,
                      const std::vector<std::string>& args);

  /// Stages a parsed "+p(a)" / "-q(b)" update.
  Status Stage(std::string_view update_text);

  const UpdateSet& pending() const { return updates_; }

  /// Runs PARK(D, P, U) and atomically replaces the stored database with
  /// the result; Session-bound transactions route through the session's
  /// group-commit pipeline instead of committing directly. The
  /// transaction must not be reused afterwards.
  CommitResult Commit() &&;

 private:
  friend class ActiveDatabase;
  friend class Session;
  explicit Transaction(ActiveDatabase* db);
  Transaction(CommitSink* sink, std::shared_ptr<SymbolTable> symbols);

  GroundAtom MakeAtom(std::string_view predicate,
                      const std::vector<std::string>& args);

  ActiveDatabase* db_ = nullptr;
  CommitSink* sink_ = nullptr;
  std::shared_ptr<SymbolTable> symbols_;
  UpdateSet updates_;
};

}  // namespace park

#endif  // PARK_ECA_TRANSACTION_H_
