#include "eca/update.h"

#include <algorithm>

#include "lang/parser.h"
#include "util/string_util.h"

namespace park {

UpdateSet& UpdateSet::Add(ActionKind action, const GroundAtom& atom) {
  if (!Contains(action, atom)) updates_.push_back(Update{action, atom});
  return *this;
}

Status UpdateSet::AddParsed(std::string_view text,
                            const std::shared_ptr<SymbolTable>& symbols) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return InvalidArgumentError("empty update (expected '+atom' or '-atom')");
  }
  ActionKind action;
  if (trimmed.front() == '+') {
    action = ActionKind::kInsert;
  } else if (trimmed.front() == '-') {
    action = ActionKind::kDelete;
  } else {
    return InvalidArgumentError(StrFormat(
        "update must start with '+' or '-': '%s'",
        std::string(trimmed).c_str()));
  }
  PARK_ASSIGN_OR_RETURN(GroundAtom atom,
                        ParseGroundAtom(trimmed.substr(1), symbols));
  Add(action, atom);
  return Status::OK();
}

bool UpdateSet::Contains(ActionKind action, const GroundAtom& atom) const {
  return std::find(updates_.begin(), updates_.end(),
                   Update{action, atom}) != updates_.end();
}

std::string UpdateSet::ToString(const SymbolTable& symbols) const {
  std::string out = "{";
  for (size_t i = 0; i < updates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ActionKindSign(updates_[i].action);
    out += updates_[i].atom.ToString(symbols);
  }
  out += "}";
  return out;
}

}  // namespace park
