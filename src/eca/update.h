// UpdateSet: the set U of transaction updates of paper §4.3, with
// convenience constructors and rendering.

#ifndef PARK_ECA_UPDATE_H_
#define PARK_ECA_UPDATE_H_

#include <string>
#include <vector>

#include "core/park_evaluator.h"

namespace park {

/// An ordered, duplicate-free collection of ±a updates. Order is kept for
/// reporting only; the semantics is set-based.
class UpdateSet {
 public:
  UpdateSet() = default;

  /// Adds ±atom; duplicates are ignored. Returns *this for chaining.
  UpdateSet& Add(ActionKind action, const GroundAtom& atom);
  UpdateSet& AddInsert(const GroundAtom& atom) {
    return Add(ActionKind::kInsert, atom);
  }
  UpdateSet& AddDelete(const GroundAtom& atom) {
    return Add(ActionKind::kDelete, atom);
  }

  /// Parses "+p(a)" / "-q(b, 1)" using `symbols` and adds it.
  Status AddParsed(std::string_view text,
                   const std::shared_ptr<SymbolTable>& symbols);

  const std::vector<Update>& updates() const { return updates_; }
  size_t size() const { return updates_.size(); }
  bool empty() const { return updates_.empty(); }
  void clear() { updates_.clear(); }

  bool Contains(ActionKind action, const GroundAtom& atom) const;

  /// "{+q(b), -s(a)}" in insertion order.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  std::vector<Update> updates_;
};

}  // namespace park

#endif  // PARK_ECA_UPDATE_H_
