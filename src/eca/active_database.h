// ActiveDatabase: the user-facing facade of the library — a database
// instance plus a set of active rules and a conflict-resolution policy.
// Transactions committed against it are evaluated with the full ECA PARK
// semantics PARK(D, P, U).
//
// Example:
//   auto symbols = park::MakeSymbolTable();
//   park::ActiveDatabase db(symbols);
//   PARK_RETURN_IF_ERROR(db.LoadRules("emp(X), !active(X), payroll(X, S)"
//                                     " -> -payroll(X, S)."));
//   PARK_RETURN_IF_ERROR(db.LoadFacts("emp(john). payroll(john, 5000)."));
//   auto tx = db.Begin();
//   tx.Insert("emp", {"jane"});
//   auto report = std::move(tx).Commit();
//
// Durable example (crash-safe; see docs/DURABILITY.md):
//   park::ActiveDatabase::OpenParams params;
//   params.rules = "...";
//   auto db = park::ActiveDatabase::Open("/var/lib/park/payroll", params);
//   ... std::move(tx).Commit() ...   // journaled
//   db->Checkpoint();                // snapshot + journal truncation

#ifndef PARK_ECA_ACTIVE_DATABASE_H_
#define PARK_ECA_ACTIVE_DATABASE_H_

#include <optional>

#include "core/maintenance.h"
#include "eca/journal.h"
#include "eca/transaction.h"

namespace park {

class ActiveDatabase {
 public:
  /// Creates an empty active database. If `symbols` is null a fresh table
  /// is created.
  explicit ActiveDatabase(std::shared_ptr<SymbolTable> symbols = nullptr);

  ActiveDatabase(const ActiveDatabase&) = delete;
  ActiveDatabase& operator=(const ActiveDatabase&) = delete;
  ActiveDatabase(ActiveDatabase&&) = default;
  ActiveDatabase& operator=(ActiveDatabase&&) = default;

  const std::shared_ptr<SymbolTable>& symbols() const {
    return database_.symbols();
  }

  // --- rule management ---

  /// Parses and installs rules (appended to the existing program).
  Status LoadRules(std::string_view program_text);
  /// Installs one already-built rule.
  Status AddRule(Rule rule);
  const Program& program() const { return program_; }

  // --- policy / options ---

  /// Installs a complete evaluation-options bundle after validating it
  /// (ValidateOptions in core/park_evaluator.h). This is THE way to
  /// configure an ActiveDatabase. On rejection the previous options
  /// are left untouched and a kInvalidArgument status names the bad knob.
  ///
  /// Two kinds of knobs live in ParkOptions (see docs/OBSERVABILITY.md):
  ///   - replay-stable: policy, block_granularity, gamma_mode — these pin
  ///     down WHICH database a commit produces, so they must match across
  ///     journal replays of the same directory;
  ///   - free: num_threads, min_slice_size, trace_level, observer,
  ///     collect_timings — performance/observability only; results are
  ///     bit-identical whatever they are set to.
  Status Configure(ParkOptions options);

  /// DEPRECATED — prefer Configure().
  void SetTraceLevel(TraceLevel level) { options_.trace_level = level; }
  const ParkOptions& options() const { return options_; }
  /// DEPRECATED — prefer Configure(). Mutations made through this
  /// reference bypass validation; CommitUpdates re-validates as a
  /// backstop, so an invalid bundle fails at the next commit instead.
  ParkOptions& mutable_options() { return options_; }

  // --- data ---

  /// Parses fact text ("p(a). q(b).") directly into the stored database,
  /// WITHOUT firing rules (bulk load).
  Status LoadFacts(std::string_view facts_text);

  /// Read access to the current instance.
  const Database& database() const { return database_; }
  bool Contains(const GroundAtom& atom) const {
    return database_.Contains(atom);
  }

  // --- transactions ---

  /// Starts a transaction. Multiple sequential transactions are fine;
  /// concurrent ones against a bare ActiveDatabase are not — for
  /// concurrent commits and snapshot reads, front the database with a
  /// serve::Session (src/serve/session.h, docs/SERVING.md), which owns
  /// the ActiveDatabase and serializes commits through its group-commit
  /// pipeline.
  Transaction Begin() { return Transaction(this); }

  /// One-shot convenience: runs a single-update transaction.
  CommitResult Apply(ActionKind action, const GroundAtom& atom);

  /// Runs the rules with NO user updates — PARK(P, D) — replacing the
  /// stored instance with the result. Useful after LoadFacts to bring the
  /// database to a rule-consistent state.
  CommitResult Stabilize();

  // --- crash-safe durability (directory mode) ---

  /// Configuration for Open. The rules and the replay-stable options
  /// (options.policy, options.block_granularity) must be the same on
  /// every Open of a directory: journal replay re-runs PARK, and the
  /// semantics' determinism (paper §3) only pins down the recovered state
  /// when the program and SELECT policy match the original run. The free
  /// knobs (options.num_threads, options.min_slice_size, observer,
  /// collect_timings) may differ per Open without affecting recovery.
  struct OpenParams {
    /// Program text installed before recovery (may be empty).
    std::string rules;
    /// DEPRECATED — prefer options.policy. When non-null this wins over
    /// options.policy (old callers keep their behavior).
    PolicyPtr policy;
    /// Symbol table to share; null creates a fresh one.
    std::shared_ptr<SymbolTable> symbols;
    /// Filesystem to use; null means Env::Default().
    Env* env = nullptr;
    /// Durability of each commit's journal record.
    JournalSyncMode sync_mode = JournalSyncMode::kFsync;
    /// Full evaluation-options bundle, installed via Configure() (i.e.
    /// validated) before replay, so recovery itself runs with the
    /// configured threads/policy/trace settings.
    ParkOptions options;
  };

  /// Opens (or creates) the durable database living in directory `dir`:
  /// loads the snapshot if one exists, replays every journal record newer
  /// than the snapshot through the normal commit path, then attaches the
  /// journal for new commits. Each failure point returns a typed Status
  /// (kDataLoss for mid-journal corruption, kInternal for I/O damage,
  /// parse errors verbatim); a torn journal tail is truncated and logged,
  /// and artifacts of an interrupted Checkpoint are cleaned up.
  static Result<ActiveDatabase> Open(const std::string& dir,
                                     OpenParams params);
  static Result<ActiveDatabase> Open(const std::string& dir) {
    return Open(dir, OpenParams());
  }

  /// Writes the current instance as a snapshot and truncates the journal,
  /// bounding recovery time. Crash-safe at every step: the snapshot
  /// carries the sequence number of the last committed transaction, so
  /// recovery never double-applies journal records older than the
  /// snapshot, whichever of the two files a crash leaves behind.
  /// Requires a database opened with Open().
  Status Checkpoint();

  /// Directory of a database opened with Open(); empty otherwise.
  const std::string& dir() const { return dir_; }

  /// Sequence number of the newest durable transaction (0 if none or no
  /// journal is attached).
  uint64_t durable_seq() const {
    return journal_.has_value() ? journal_->last_seq() : 0;
  }

  // --- durability (single-file mode, no checkpointing) ---

  /// Attaches a redo journal: every subsequent successful commit is
  /// appended to `path` (created if absent; a torn tail from a previous
  /// crash is truncated away). Recovery order on restart: LoadSnapshot
  /// (optional), RecoverFromJournal, then AttachJournal.
  Status AttachJournal(const std::string& path,
                       const JournalOptions& options = {});
  bool has_journal() const { return journal_.has_value(); }

  /// Replays every committed record of the journal at `path` through the
  /// normal commit path (rules fire, policies decide — PARK's determinism
  /// makes replay reproduce the pre-crash state exactly). Must be called
  /// before AttachJournal; fails if a journal is already attached.
  Status RecoverFromJournal(const std::string& path);

  /// Writes the current instance as a fact-file snapshot (atomic and
  /// fsynced before the rename).
  Status SaveSnapshot(const std::string& path) const;

  /// Bulk-loads a fact-file snapshot into the stored instance (no rules
  /// fire, like LoadFacts).
  Status LoadSnapshot(const std::string& path);

 private:
  friend class Transaction;
  friend class Session;

  /// Shared commit path: PARK(D, P, U) then swap in the result. `txns`
  /// is the number of transactions folded into `updates` by a group
  /// commit (stamped into the journal record; 1 = plain commit).
  CommitResult CommitUpdates(const UpdateSet& updates, uint64_t txns = 1);

  /// Parses snapshot contents: an optional "# park-snapshot last_seq=N"
  /// header line followed by a fact file. Returns the header's sequence
  /// number (0 when absent) after bulk-loading the facts.
  Result<uint64_t> LoadSnapshotContents(const std::string& contents,
                                        const std::string& path_for_errors);

  Database database_;
  Program program_;
  ParkOptions options_;
  std::optional<TransactionJournal> journal_;
  /// Incremental fixpoint maintenance (ParkOptions::maintenance_mode,
  /// docs/INCREMENTAL.md). Consulted by CommitUpdates when the mode is
  /// kIncremental; invalidated whenever rules, facts, or options change
  /// outside the commit path.
  FixpointMaintainer maintainer_;

  // Directory mode (set by Open).
  std::string dir_;
  Env* env_ = nullptr;
  JournalSyncMode sync_mode_ = JournalSyncMode::kFlush;
};

}  // namespace park

#endif  // PARK_ECA_ACTIVE_DATABASE_H_
