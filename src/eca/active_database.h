// ActiveDatabase: the user-facing facade of the library — a database
// instance plus a set of active rules and a conflict-resolution policy.
// Transactions committed against it are evaluated with the full ECA PARK
// semantics PARK(D, P, U).
//
// Example:
//   auto symbols = park::MakeSymbolTable();
//   park::ActiveDatabase db(symbols);
//   PARK_RETURN_IF_ERROR(db.LoadRules("emp(X), !active(X), payroll(X, S)"
//                                     " -> -payroll(X, S)."));
//   PARK_RETURN_IF_ERROR(db.LoadFacts("emp(john). payroll(john, 5000)."));
//   auto tx = db.Begin();
//   tx.Insert("emp", {"jane"});
//   auto report = std::move(tx).Commit();

#ifndef PARK_ECA_ACTIVE_DATABASE_H_
#define PARK_ECA_ACTIVE_DATABASE_H_

#include <optional>

#include "eca/journal.h"
#include "eca/transaction.h"

namespace park {

class ActiveDatabase {
 public:
  /// Creates an empty active database. If `symbols` is null a fresh table
  /// is created.
  explicit ActiveDatabase(std::shared_ptr<SymbolTable> symbols = nullptr);

  ActiveDatabase(const ActiveDatabase&) = delete;
  ActiveDatabase& operator=(const ActiveDatabase&) = delete;
  ActiveDatabase(ActiveDatabase&&) = default;
  ActiveDatabase& operator=(ActiveDatabase&&) = default;

  const std::shared_ptr<SymbolTable>& symbols() const {
    return database_.symbols();
  }

  // --- rule management ---

  /// Parses and installs rules (appended to the existing program).
  Status LoadRules(std::string_view program_text);
  /// Installs one already-built rule.
  Status AddRule(Rule rule);
  const Program& program() const { return program_; }

  // --- policy / options ---

  /// Sets the SELECT policy used at commit (default: inertia).
  void SetPolicy(PolicyPtr policy) { options_.policy = std::move(policy); }
  void SetBlockGranularity(BlockGranularity granularity) {
    options_.block_granularity = granularity;
  }
  void SetTraceLevel(TraceLevel level) { options_.trace_level = level; }
  const ParkOptions& options() const { return options_; }

  // --- data ---

  /// Parses fact text ("p(a). q(b).") directly into the stored database,
  /// WITHOUT firing rules (bulk load).
  Status LoadFacts(std::string_view facts_text);

  /// Read access to the current instance.
  const Database& database() const { return database_; }
  bool Contains(const GroundAtom& atom) const {
    return database_.Contains(atom);
  }

  // --- transactions ---

  /// Starts a transaction. Multiple sequential transactions are fine;
  /// concurrent ones are not supported (PARK is a sequential semantics).
  Transaction Begin() { return Transaction(this); }

  /// One-shot convenience: runs a single-update transaction.
  Result<CommitReport> Apply(ActionKind action, const GroundAtom& atom);

  /// Runs the rules with NO user updates — PARK(P, D) — replacing the
  /// stored instance with the result. Useful after LoadFacts to bring the
  /// database to a rule-consistent state.
  Result<CommitReport> Stabilize();

  // --- durability ---

  /// Attaches a redo journal: every subsequent successful commit is
  /// appended to `path` (created if absent). Recovery order on restart:
  /// LoadSnapshot (optional), RecoverFromJournal, then AttachJournal.
  Status AttachJournal(const std::string& path);
  bool has_journal() const { return journal_.has_value(); }

  /// Replays every committed record of the journal at `path` through the
  /// normal commit path (rules fire, policies decide — PARK's determinism
  /// makes replay reproduce the pre-crash state exactly). Must be called
  /// before AttachJournal; fails if a journal is already attached.
  Status RecoverFromJournal(const std::string& path);

  /// Writes the current instance as a fact-file snapshot (atomic).
  Status SaveSnapshot(const std::string& path) const;

  /// Bulk-loads a fact-file snapshot into the stored instance (no rules
  /// fire, like LoadFacts).
  Status LoadSnapshot(const std::string& path);

 private:
  friend class Transaction;

  /// Shared commit path: PARK(D, P, U) then swap in the result.
  Result<CommitReport> CommitUpdates(const UpdateSet& updates);

  Database database_;
  Program program_;
  ParkOptions options_;
  std::optional<TransactionJournal> journal_;
};

}  // namespace park

#endif  // PARK_ECA_ACTIVE_DATABASE_H_
