// TransactionJournal: an append-only, checksummed, human-readable
// write-ahead log of committed transactions, giving ActiveDatabase
// durability across process restarts: snapshot + journal replay
// reconstructs the exact state, because the PARK semantics is
// deterministic (paper §3, "Unambiguous Semantics") given the same policy.
//
// Record format (text, one update per line):
//
//   begin 7
//   +q(b)
//   -payroll(ada, 9000)
//   commit 7 crc=1f2e3d4c
//
// `7` is the record's sequence number (strictly consecutive within a
// journal; the first record of a journal may start anywhere, which is how
// a checkpoint-truncated journal resumes). The footer's crc is the
// CRC-32 of "<seq>\n" plus every update line including its newline, so a
// record is accepted during recovery only if its commit footer made it to
// disk intact.
//
// A group commit (serve::Session, docs/SERVING.md) folds k transactions
// into ONE record — one firing, one fsync — and annotates it with a
// `batch k` line before the updates:
//
//   begin 8
//   batch 3
//   +a(x)
//   +b(y)
//   commit 8 crc=9a8b7c6d
//
// The batch line is part of the CRC'd body, so framing and recovery are
// unchanged; readers report it via JournalRecord::txns (1 when absent,
// so journals from before the extension replay identically).
//
// Recovery semantics (see docs/DURABILITY.md):
//   - a torn or corrupt TAIL (crash mid-append) is dropped and truncated;
//   - corruption in the MIDDLE of the journal (valid records follow the
//     damage) is kDataLoss — committed transactions would be lost, so
//     recovery refuses to guess;
//   - a missing journal file is a fresh journal; any other read failure
//     (permissions, path is a directory) is a real error, never silently
//     treated as empty.

#ifndef PARK_ECA_JOURNAL_H_
#define PARK_ECA_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eca/update.h"
#include "util/env.h"

namespace park {

/// How hard Append pushes each record toward the platter.
enum class JournalSyncMode {
  kNone,   // leave the record in OS/user buffers (fastest, weakest)
  kFlush,  // flush to the OS: survives process crash, not power loss
  kFsync,  // fsync per commit: survives power loss (group-commit cost)
};

struct JournalOptions {
  /// Filesystem to use; null means Env::Default().
  Env* env = nullptr;
  JournalSyncMode sync_mode = JournalSyncMode::kFlush;
  /// Sequence number of the first record if the journal is empty or
  /// missing (an existing journal resumes after its last record). A
  /// checkpoint at sequence S reopens the journal with first_seq = S + 1.
  uint64_t first_seq = 1;
  /// Retries after the first attempt when an append fails TRANSIENTLY
  /// (kUnavailable — EAGAIN-class conditions). Permanent failures are
  /// never retried. Each retry re-appends the whole record after the
  /// file has been healed back to its last durable byte.
  int max_retries = 3;
  /// Sleep before the first retry, doubling per retry and capped at
  /// kMaxBackoffMs. 0 retries immediately (tests use this).
  int64_t backoff_ms = 0;
};

/// One committed record as read back from disk.
struct JournalRecord {
  uint64_t seq = 0;
  /// Transactions folded into this record by a group commit; 1 for a
  /// plain commit (and for records written before the batch extension).
  uint64_t txns = 1;
  UpdateSet updates;
};

/// Append handle for a journal file. Move-only; closes on destruction.
class TransactionJournal {
 public:
  /// Opens `path` for appending, creating it if absent. An existing file
  /// is scanned first: a torn tail is truncated away (logged), mid-file
  /// corruption is kDataLoss, and appending resumes after the last valid
  /// record's sequence number.
  static Result<TransactionJournal> Open(const std::string& path,
                                         JournalOptions options = {});

  TransactionJournal(TransactionJournal&& other) noexcept;
  TransactionJournal& operator=(TransactionJournal&& other) noexcept;
  TransactionJournal(const TransactionJournal&) = delete;
  TransactionJournal& operator=(const TransactionJournal&) = delete;
  ~TransactionJournal();

  /// Appends one committed transaction record and applies the configured
  /// sync mode. On success last_seq() advances to the record's number.
  /// Transient (kUnavailable) failures are retried up to
  /// JournalOptions::max_retries times with capped exponential backoff;
  /// before every retry — and before any error return — the file is
  /// healed back to its last durable byte, so a failed Append leaves the
  /// journal consistent and appendable (no reopen needed). The one
  /// exception is a failed heal, which disables the handle (kDataLoss
  /// risk otherwise); reopening then truncates the torn tail.
  ///
  /// `txns` is the number of transactions folded into this record by a
  /// group commit; values > 1 emit a `batch <txns>` annotation line
  /// (CRC-covered like any update line). Plain commits pass 1 and the
  /// record format is byte-identical to the pre-batch journal.
  Status Append(const UpdateSet& updates, const SymbolTable& symbols,
                uint64_t txns = 1);

  const std::string& path() const { return path_; }

  /// Sequence number of the newest durable record; first_seq - 1 when
  /// the journal has none (so a checkpointed journal reports the
  /// checkpoint's sequence).
  uint64_t last_seq() const { return next_seq_ - 1; }

  JournalSyncMode sync_mode() const { return options_.sync_mode; }

  /// Wall time the most recent successful Append spent inside the
  /// configured flush/fsync (0 under JournalSyncMode::kNone) — the
  /// observability layer's "how much of the commit was the disk" number
  /// (CommitTimings::journal_sync_ns). Always measured: commits are
  /// milliseconds-scale, two clock reads are noise.
  uint64_t last_sync_ns() const { return last_sync_ns_; }

  /// Upper bound on one retry's backoff sleep, whatever backoff_ms and
  /// the retry count say.
  static constexpr int64_t kMaxBackoffMs = 1000;

  // Retry observability, cumulative over this handle's lifetime (they
  // feed the stats JSON's "io_retry" block).
  /// Write attempts, first tries included.
  uint64_t io_attempts() const { return io_attempts_; }
  /// Attempts beyond the first (i.e. actual retries).
  uint64_t io_retries() const { return io_retries_; }
  /// Total milliseconds slept in backoff.
  uint64_t backoff_ms_total() const { return backoff_ms_total_; }
  /// Appends that failed transiently even after every allowed retry.
  uint64_t retries_exhausted() const { return retries_exhausted_; }
  /// Attempts the most recent Append made (1 = no retry was needed).
  int last_append_attempts() const { return last_append_attempts_; }

  /// Parses every complete record in `path`. A missing file yields an
  /// empty list (a fresh journal); a torn or corrupt trailing record is
  /// skipped (and reported via `torn_tail` when non-null); corruption
  /// followed by further valid records is kDataLoss; an unreadable file
  /// is an error, never an empty journal.
  static Result<std::vector<JournalRecord>> ReadRecords(
      const std::string& path,
      const std::shared_ptr<SymbolTable>& symbols, Env* env = nullptr,
      bool* torn_tail = nullptr);

  /// ReadRecords with the sequence numbers stripped.
  static Result<std::vector<UpdateSet>> ReadAll(
      const std::string& path,
      const std::shared_ptr<SymbolTable>& symbols);

 private:
  TransactionJournal(std::string path, JournalOptions options,
                     std::unique_ptr<WritableFile> file, uint64_t next_seq,
                     uint64_t durable_bytes)
      : path_(std::move(path)), options_(options), file_(std::move(file)),
        next_seq_(next_seq), durable_bytes_(durable_bytes) {}

  /// Closes the current file handle, logging (not swallowing) a failed
  /// final flush/close — used by the destructor and move-assignment,
  /// which have no way to return the Status.
  void CloseLogged();

  std::string path_;
  JournalOptions options_;
  std::unique_ptr<WritableFile> file_;
  uint64_t next_seq_ = 1;
  /// Bytes of complete records on disk — the truncation point that heals
  /// the file after a failed (possibly torn) append.
  uint64_t durable_bytes_ = 0;
  /// Set when a failed append could not be healed by truncation; the
  /// journal then refuses further appends (the file may be torn).
  bool broken_ = false;
  uint64_t last_sync_ns_ = 0;
  uint64_t io_attempts_ = 0;
  uint64_t io_retries_ = 0;
  uint64_t backoff_ms_total_ = 0;
  uint64_t retries_exhausted_ = 0;
  int last_append_attempts_ = 0;
};

}  // namespace park

#endif  // PARK_ECA_JOURNAL_H_
