// TransactionJournal: an append-only, human-readable write-ahead log of
// committed transactions, giving ActiveDatabase durability across process
// restarts: snapshot + journal replay reconstructs the exact state,
// because the PARK semantics is deterministic (paper §3, "Unambiguous
// Semantics") given the same policy.
//
// Record format (text, one update per line):
//
//   begin
//   +q(b)
//   -payroll(ada, 9000)
//   commit
//
// A record is only acted on during recovery if its `commit` line made it
// to disk; a torn trailing record (crash mid-append) is ignored.

#ifndef PARK_ECA_JOURNAL_H_
#define PARK_ECA_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "eca/update.h"

namespace park {

/// Append handle for a journal file. Move-only; closes on destruction.
class TransactionJournal {
 public:
  /// Opens `path` for appending, creating it if absent.
  static Result<TransactionJournal> Open(const std::string& path);

  TransactionJournal(TransactionJournal&& other) noexcept;
  TransactionJournal& operator=(TransactionJournal&& other) noexcept;
  TransactionJournal(const TransactionJournal&) = delete;
  TransactionJournal& operator=(const TransactionJournal&) = delete;
  ~TransactionJournal();

  /// Appends one committed transaction record and flushes it to the OS.
  Status Append(const UpdateSet& updates, const SymbolTable& symbols);

  const std::string& path() const { return path_; }

  /// Parses every complete record in `path`. A missing file yields an
  /// empty list (a fresh journal); a torn trailing record is skipped; a
  /// malformed line inside a committed record is an error.
  static Result<std::vector<UpdateSet>> ReadAll(
      const std::string& path,
      const std::shared_ptr<SymbolTable>& symbols);

 private:
  TransactionJournal(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace park

#endif  // PARK_ECA_JOURNAL_H_
