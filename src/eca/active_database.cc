#include "eca/active_database.h"

#include "lang/io.h"
#include "lang/parser.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace park {

namespace {

// On-disk layout of a directory-mode database (see docs/DURABILITY.md).
std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.facts";
}
std::string JournalPath(const std::string& dir) {
  return dir + "/journal.log";
}
std::string CheckpointMarkerPath(const std::string& dir) {
  return dir + "/checkpoint.pending";
}

constexpr char kSnapshotHeaderPrefix[] = "# park-snapshot last_seq=";

}  // namespace

ActiveDatabase::ActiveDatabase(std::shared_ptr<SymbolTable> symbols)
    : database_(symbols ? symbols : MakeSymbolTable()),
      program_(database_.symbols()) {}

Status ActiveDatabase::LoadRules(std::string_view program_text) {
  PARK_ASSIGN_OR_RETURN(Program parsed,
                        ParseProgram(program_text, database_.symbols()));
  maintainer_.Invalidate();
  for (const Rule& rule : parsed.rules()) {
    // Re-add into the installed program so indexes/labels stay coherent.
    Rule copy = rule;
    PARK_RETURN_IF_ERROR(program_.AddRule(std::move(copy)));
  }
  return Status::OK();
}

Status ActiveDatabase::AddRule(Rule rule) {
  maintainer_.Invalidate();
  return program_.AddRule(std::move(rule));
}

Status ActiveDatabase::Configure(ParkOptions options) {
  PARK_RETURN_IF_ERROR(
      ValidateOptions(options).WithContext("ActiveDatabase::Configure"));
  options_ = std::move(options);
  maintainer_.Invalidate();
  return Status::OK();
}

Status ActiveDatabase::LoadFacts(std::string_view facts_text) {
  // Bulk loads bypass rule evaluation, so the stored instance can no
  // longer be assumed rule-stable.
  maintainer_.Invalidate();
  return ParseFactsInto(facts_text, database_);
}

CommitResult ActiveDatabase::Apply(ActionKind action,
                                   const GroundAtom& atom) {
  Transaction tx = Begin();
  if (action == ActionKind::kInsert) {
    tx.Insert(atom);
  } else {
    tx.Delete(atom);
  }
  return std::move(tx).Commit();
}

CommitResult ActiveDatabase::Stabilize() {
  return CommitUpdates(UpdateSet());
}

CommitResult ActiveDatabase::CommitUpdates(const UpdateSet& updates,
                                           uint64_t txns) {
  // Backstop for options installed around Configure() (direct writes via
  // mutable_options()): an invalid bundle fails here, before any
  // evaluation, instead of misbehaving mid-commit.
  {
    Status valid =
        ValidateOptions(options_).WithContext("ActiveDatabase options");
    if (!valid.ok()) {
      CommitFailure failure;
      failure.stage = CommitFailure::Stage::kValidate;
      failure.cause = valid;
      return CommitResult(valid, std::move(failure));
    }
  }
  ObserverHook observer(options_.observer);
  const int64_t commit_start_ns = MonotonicNanos();
  observer.Notify(
      [&](RunObserver& o) { o.OnCommitStart(updates.updates().size()); });

  const bool maintaining =
      options_.maintenance_mode == MaintenanceMode::kIncremental;
  CommitReport report;
  bool served_incrementally = false;
  bool full_conflict_free = false;
  if (maintaining) {
    std::optional<MaintenanceOutcome> maintained =
        maintainer_.TryCommit(database_, program_, updates.updates(),
                              options_);
    if (maintained.has_value()) {
      served_incrementally = true;
      report.inserted = std::move(maintained->inserted);
      report.deleted = std::move(maintained->deleted);
      report.stats = std::move(maintained->stats);
    }
  }
  if (!served_incrementally) {
    auto evaluated = Park(database_, program_, updates.updates(), options_);
    if (!evaluated.ok()) {
      // Evaluation is copy-on-write, so the stored instance is untouched.
      CommitFailure failure;
      failure.stage = CommitFailure::Stage::kEvaluate;
      failure.cause = evaluated.status();
      return CommitResult(evaluated.status(), std::move(failure));
    }
    ParkResult park = std::move(*evaluated);
    Database::Diff diff = park.database.DiffWith(database_);
    report.inserted = std::move(diff.only_in_this);
    report.deleted = std::move(diff.only_in_other);
    report.stats = std::move(park.stats);
    report.trace = std::move(park.trace);
    full_conflict_free =
        park.blocked.empty() && report.stats.restarts == 0;
    if (maintaining) {
      report.stats.maintenance_mode = MaintenanceMode::kIncremental;
      report.stats.maint_full_recompute_fallbacks = 1;
    }
  }

  const int64_t evaluated_ns = MonotonicNanos();

  // Apply the diff in place rather than swapping in the result database:
  // O(|changes|) instead of discarding the stored instance, and the
  // column indexes of untouched relations stay warm for the next commit.
  for (const GroundAtom& atom : report.inserted) database_.Insert(atom);
  for (const GroundAtom& atom : report.deleted) database_.Erase(atom);
  const int64_t applied_ns = MonotonicNanos();
  if (journal_.has_value()) {
    // Redo-log semantics: the record is written only for transactions
    // that actually committed. If the append fails even after the
    // journal's transient-failure retries, the in-place diff is undone —
    // its exact inverse — so memory never runs ahead of the durable
    // history: the commit either applied (and is durable) or left the
    // database untouched. The rollback restores a rule-stable instance,
    // so the maintainer's INV flag is deliberately left alone.
    Status appended = journal_->Append(updates, *symbols(), txns);
    if (!appended.ok()) {
      for (const GroundAtom& atom : report.inserted) database_.Erase(atom);
      for (const GroundAtom& atom : report.deleted) database_.Insert(atom);
      CommitFailure failure;
      failure.stage = CommitFailure::Stage::kJournal;
      failure.cause = appended;
      failure.journal_attempts = journal_->last_append_attempts();
      return CommitResult(
          appended.WithContext("commit rolled back: durability failed"),
          std::move(failure));
    }
    report.journal_seq = journal_->last_seq();
    report.timings.journal_ns =
        static_cast<uint64_t>(MonotonicNanos() - applied_ns);
    report.timings.journal_sync_ns = journal_->last_sync_ns();
    report.stats.io_attempts = journal_->io_attempts();
    report.stats.io_retries = journal_->io_retries();
    report.stats.io_backoff_ms_total = journal_->backoff_ms_total();
    report.stats.io_retries_exhausted = journal_->retries_exhausted();
    observer.Notify(
        [&](RunObserver& o) { o.OnJournalAppend(report.journal_seq); });
  }
  if (maintaining && !served_incrementally) {
    // A full run's result database is now durably installed: a
    // conflict-free run of a gated program (re-)establishes INV, so the
    // NEXT commit can go incrementally.
    maintainer_.NoteFullCommit(program_, options_, full_conflict_free);
  }
  report.timings.evaluate_ns =
      static_cast<uint64_t>(evaluated_ns - commit_start_ns);
  report.timings.apply_ns = static_cast<uint64_t>(applied_ns - evaluated_ns);
  report.timings.total_ns =
      static_cast<uint64_t>(MonotonicNanos() - commit_start_ns);
  observer.Notify([&](RunObserver& o) {
    o.OnCommitEnd(CommitEndInfo{updates.updates().size(),
                                report.inserted.size(),
                                report.deleted.size(), report.stats.restarts,
                                report.journal_seq});
  });
  return report;
}

// --- crash-safe durability (directory mode) ------------------------------

Result<uint64_t> ActiveDatabase::LoadSnapshotContents(
    const std::string& contents, const std::string& path_for_errors) {
  uint64_t snapshot_seq = 0;
  if (StartsWith(contents, kSnapshotHeaderPrefix)) {
    size_t eol = contents.find('\n');
    std::string_view value(contents);
    value.remove_prefix(sizeof(kSnapshotHeaderPrefix) - 1);
    if (eol != std::string::npos) {
      value = value.substr(0, eol - (sizeof(kSnapshotHeaderPrefix) - 1));
    }
    auto parsed = ParseInt64(Trim(value));
    if (!parsed.has_value() || *parsed < 0) {
      return DataLossError(StrFormat(
          "%s: malformed snapshot header \"%.*s\"", path_for_errors.c_str(),
          static_cast<int>(value.size()), value.data()));
    }
    snapshot_seq = static_cast<uint64_t>(*parsed);
  }
  // The header is a `#` comment, which the fact parser skips, so the
  // whole contents parse as one fact file.
  maintainer_.Invalidate();
  Status status = ParseFactsInto(contents, database_);
  if (!status.ok()) {
    return status.WithContext(
        StrFormat("loading snapshot %s", path_for_errors.c_str()));
  }
  return snapshot_seq;
}

Result<ActiveDatabase> ActiveDatabase::Open(const std::string& dir,
                                            OpenParams params) {
  Env* env = params.env != nullptr ? params.env : Env::Default();

  ActiveDatabase db(params.symbols);
  if (!params.rules.empty()) {
    Status status = db.LoadRules(params.rules);
    if (!status.ok()) return status.WithContext("installing rules");
  }
  // Install the options bundle through the validated path; the legacy
  // top-level policy field wins over options.policy when both are set.
  if (params.policy != nullptr) {
    params.options.policy = std::move(params.policy);
  }
  {
    Status configured = db.Configure(std::move(params.options));
    if (!configured.ok()) {
      return configured.WithContext("validating OpenParams");
    }
  }

  Status status = env->CreateDir(dir);
  if (!status.ok()) {
    return status.WithContext("creating database directory");
  }

  const std::string snapshot_path = SnapshotPath(dir);
  const std::string journal_path = JournalPath(dir);
  const std::string marker_path = CheckpointMarkerPath(dir);

  // 1. Sweep up after an interrupted Checkpoint. The sequence numbers in
  //    the snapshot and journal make any half-finished checkpoint state
  //    consistent; the marker and temp file are just debris.
  if (env->FileExists(marker_path)) {
    PARK_LOG(kWarning) << "database " << dir
                       << ": previous checkpoint was interrupted; "
                          "recovering from snapshot + journal";
    status = env->RemoveFile(marker_path);
    if (!status.ok()) {
      return status.WithContext("removing stale checkpoint marker");
    }
  }
  status = env->RemoveFile(snapshot_path + ".tmp");
  if (!status.ok()) {
    return status.WithContext("removing stale snapshot temp file");
  }

  // 2. Load the snapshot, if any, and its last_seq watermark.
  uint64_t snapshot_seq = 0;
  auto snapshot = env->ReadFileToString(snapshot_path);
  if (snapshot.ok()) {
    PARK_ASSIGN_OR_RETURN(
        snapshot_seq, db.LoadSnapshotContents(*snapshot, snapshot_path));
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status().WithContext("reading snapshot");
  }

  // 3. Replay journal records newer than the snapshot through the normal
  //    commit path. Records at or below the watermark are already folded
  //    into the snapshot (a checkpoint interrupted before truncation
  //    leaves exactly such records behind).
  PARK_ASSIGN_OR_RETURN(
      std::vector<JournalRecord> records,
      TransactionJournal::ReadRecords(journal_path, db.symbols(), env));
  uint64_t last_seq = snapshot_seq;
  for (const JournalRecord& record : records) {
    if (record.seq <= snapshot_seq) continue;
    auto report = db.CommitUpdates(record.updates);
    if (!report.ok()) {
      return report.status().WithContext(StrFormat(
          "replaying journal record %llu",
          static_cast<unsigned long long>(record.seq)));
    }
    last_seq = record.seq;
  }

  // 4. Attach the journal for new commits, numbering from where the
  //    recovered history ends.
  JournalOptions journal_options;
  journal_options.env = env;
  journal_options.sync_mode = params.sync_mode;
  journal_options.first_seq = last_seq + 1;
  journal_options.max_retries = db.options_.io_max_retries;
  journal_options.backoff_ms = db.options_.io_backoff_ms;
  PARK_ASSIGN_OR_RETURN(TransactionJournal journal,
                        TransactionJournal::Open(journal_path,
                                                 journal_options));
  db.journal_.emplace(std::move(journal));
  db.dir_ = dir;
  db.env_ = env;
  db.sync_mode_ = params.sync_mode;
  return db;
}

Status ActiveDatabase::Checkpoint() {
  if (dir_.empty() || !journal_.has_value()) {
    return FailedPreconditionError(
        "Checkpoint requires a database opened with ActiveDatabase::Open");
  }
  Env* env = env_;
  const std::string snapshot_path = SnapshotPath(dir_);
  const std::string journal_path = JournalPath(dir_);
  const std::string marker_path = CheckpointMarkerPath(dir_);
  const uint64_t seq = journal_->last_seq();

  // 1. Drop a marker so an interrupted checkpoint is visible (and its
  //    debris swept) on the next Open. Written directly, not atomically:
  //    a torn marker is still a marker.
  {
    PARK_ASSIGN_OR_RETURN(
        std::unique_ptr<WritableFile> marker,
        env->NewWritableFile(marker_path, Env::WriteMode::kTruncate));
    PARK_RETURN_IF_ERROR(marker->Append(StrFormat(
        "last_seq=%llu\n", static_cast<unsigned long long>(seq))));
    PARK_RETURN_IF_ERROR(marker->Sync());
    PARK_RETURN_IF_ERROR(marker->Close());
  }

  // 2. Write the snapshot with the watermark header, fsynced, then
  //    atomically renamed into place. From the moment the rename lands,
  //    recovery skips journal records <= seq, so the journal can be
  //    truncated (or left behind by a crash) without double-applying.
  std::string contents = StrFormat(
      "%s%llu\n", kSnapshotHeaderPrefix,
      static_cast<unsigned long long>(seq));
  for (const std::string& atom : database_.SortedAtomStrings()) {
    contents += atom;
    contents += ".\n";
  }
  PARK_RETURN_IF_ERROR(
      AtomicWriteFile(env, contents, snapshot_path, /*sync=*/true)
          .WithContext("writing checkpoint snapshot"));

  // 3. Truncate the journal: close the handle, remove the file, reopen
  //    numbering from seq + 1. If the removal fails the old records
  //    simply stay behind — the watermark already makes them inert.
  journal_.reset();
  Status removed = env->RemoveFile(journal_path);
  if (!removed.ok()) {
    PARK_LOG(kWarning) << "checkpoint: could not truncate journal "
                       << journal_path << ": " << removed.ToString();
  }
  JournalOptions journal_options;
  journal_options.env = env;
  journal_options.sync_mode = sync_mode_;
  journal_options.first_seq = seq + 1;
  journal_options.max_retries = options_.io_max_retries;
  journal_options.backoff_ms = options_.io_backoff_ms;
  PARK_ASSIGN_OR_RETURN(
      TransactionJournal journal,
      TransactionJournal::Open(journal_path, journal_options));
  journal_.emplace(std::move(journal));

  // 4. Checkpoint complete; retire the marker.
  PARK_RETURN_IF_ERROR(env->RemoveFile(marker_path)
                           .WithContext("removing checkpoint marker"));
  ObserverHook observer(options_.observer);
  observer.Notify([&](RunObserver& o) { o.OnCheckpoint(seq); });
  return Status::OK();
}

// --- durability (single-file mode) ---------------------------------------

Status ActiveDatabase::AttachJournal(const std::string& path,
                                     const JournalOptions& options) {
  if (journal_.has_value()) {
    return FailedPreconditionError("a journal is already attached");
  }
  // The evaluation options own the retry policy (ParkOptions::
  // io_max_retries / io_backoff_ms), so one Configure() governs the
  // whole commit pipeline.
  JournalOptions journal_options = options;
  journal_options.max_retries = options_.io_max_retries;
  journal_options.backoff_ms = options_.io_backoff_ms;
  PARK_ASSIGN_OR_RETURN(TransactionJournal journal,
                        TransactionJournal::Open(path, journal_options));
  journal_.emplace(std::move(journal));
  return Status::OK();
}

Status ActiveDatabase::RecoverFromJournal(const std::string& path) {
  if (journal_.has_value()) {
    return FailedPreconditionError(
        "recover before attaching the journal, not after");
  }
  PARK_ASSIGN_OR_RETURN(std::vector<UpdateSet> records,
                        TransactionJournal::ReadAll(path, symbols()));
  for (size_t i = 0; i < records.size(); ++i) {
    auto report = CommitUpdates(records[i]);
    if (!report.ok()) {
      return report.status().WithContext(
          "replaying journal record #" + std::to_string(i));
    }
  }
  return Status::OK();
}

Status ActiveDatabase::SaveSnapshot(const std::string& path) const {
  return WriteDatabaseFile(database_, path);
}

Status ActiveDatabase::LoadSnapshot(const std::string& path) {
  PARK_ASSIGN_OR_RETURN(Database loaded,
                        ReadDatabaseFile(path, symbols()));
  maintainer_.Invalidate();
  loaded.ForEach([this](const GroundAtom& atom) { database_.Insert(atom); });
  return Status::OK();
}

}  // namespace park
