#include "eca/active_database.h"

#include "lang/io.h"
#include "lang/parser.h"

namespace park {

ActiveDatabase::ActiveDatabase(std::shared_ptr<SymbolTable> symbols)
    : database_(symbols ? symbols : MakeSymbolTable()),
      program_(database_.symbols()) {}

Status ActiveDatabase::LoadRules(std::string_view program_text) {
  PARK_ASSIGN_OR_RETURN(Program parsed,
                        ParseProgram(program_text, database_.symbols()));
  for (const Rule& rule : parsed.rules()) {
    // Re-add into the installed program so indexes/labels stay coherent.
    Rule copy = rule;
    PARK_RETURN_IF_ERROR(program_.AddRule(std::move(copy)));
  }
  return Status::OK();
}

Status ActiveDatabase::AddRule(Rule rule) {
  return program_.AddRule(std::move(rule));
}

Status ActiveDatabase::LoadFacts(std::string_view facts_text) {
  return ParseFactsInto(facts_text, database_);
}

Result<CommitReport> ActiveDatabase::Apply(ActionKind action,
                                           const GroundAtom& atom) {
  Transaction tx = Begin();
  if (action == ActionKind::kInsert) {
    tx.Insert(atom);
  } else {
    tx.Delete(atom);
  }
  return std::move(tx).Commit();
}

Result<CommitReport> ActiveDatabase::Stabilize() {
  return CommitUpdates(UpdateSet());
}

Result<CommitReport> ActiveDatabase::CommitUpdates(const UpdateSet& updates) {
  PARK_ASSIGN_OR_RETURN(
      ParkResult park,
      Park(database_, program_, updates.updates(), options_));

  CommitReport report;
  Database::Diff diff = park.database.DiffWith(database_);
  report.inserted = std::move(diff.only_in_this);
  report.deleted = std::move(diff.only_in_other);
  report.stats = park.stats;
  report.trace = std::move(park.trace);

  // Apply the diff in place rather than swapping in the result database:
  // O(|changes|) instead of discarding the stored instance, and the
  // column indexes of untouched relations stay warm for the next commit.
  for (const GroundAtom& atom : report.inserted) database_.Insert(atom);
  for (const GroundAtom& atom : report.deleted) database_.Erase(atom);
  if (journal_.has_value()) {
    // Redo-log semantics: the record is written only for transactions
    // that actually committed. An append failure is surfaced (the
    // in-memory commit stands, but callers must know durability was lost).
    PARK_RETURN_IF_ERROR(journal_->Append(updates, *symbols()));
  }
  return report;
}

Status ActiveDatabase::AttachJournal(const std::string& path) {
  if (journal_.has_value()) {
    return FailedPreconditionError("a journal is already attached");
  }
  PARK_ASSIGN_OR_RETURN(TransactionJournal journal,
                        TransactionJournal::Open(path));
  journal_.emplace(std::move(journal));
  return Status::OK();
}

Status ActiveDatabase::RecoverFromJournal(const std::string& path) {
  if (journal_.has_value()) {
    return FailedPreconditionError(
        "recover before attaching the journal, not after");
  }
  PARK_ASSIGN_OR_RETURN(std::vector<UpdateSet> records,
                        TransactionJournal::ReadAll(path, symbols()));
  for (size_t i = 0; i < records.size(); ++i) {
    auto report = CommitUpdates(records[i]);
    if (!report.ok()) {
      return report.status().WithContext(
          "replaying journal record #" + std::to_string(i));
    }
  }
  return Status::OK();
}

Status ActiveDatabase::SaveSnapshot(const std::string& path) const {
  return WriteDatabaseFile(database_, path);
}

Status ActiveDatabase::LoadSnapshot(const std::string& path) {
  PARK_ASSIGN_OR_RETURN(Database loaded,
                        ReadDatabaseFile(path, symbols()));
  loaded.ForEach([this](const GroundAtom& atom) { database_.Insert(atom); });
  return Status::OK();
}

}  // namespace park
