// Umbrella header for the PARK active-rules library.
//
// PARK implements the semantics of Gottlob, Moerkotte & Subrahmanian,
// "The PARK Semantics for Active Rules" (EDBT 1996): a deterministic,
// polynomial-time fixpoint semantics for event-condition-action rules
// parameterized by a pluggable conflict-resolution policy.
//
// Typical usage (see examples/quickstart.cpp):
//
//   #include "park/park.h"
//
//   auto symbols = park::MakeSymbolTable();
//   auto db = park::ParseDatabase("p.", symbols).value();
//   auto program = park::ParseProgram(
//       "r1: p -> +q. r2: p -> -a. r3: q -> +a.", symbols).value();
//   park::ParkOptions options;        // default policy: inertia
//   auto result = park::Park(program, db, options).value();
//   // result.database.ToString() == "{p, q}"
//
// Or through the transactional facade:
//
//   park::ActiveDatabase adb(symbols);
//   adb.LoadRules(...); adb.LoadFacts(...);
//   auto tx = adb.Begin();
//   tx.Insert("q", {"b"});
//   auto report = std::move(tx).Commit();
//
// For concurrent use (many reader/writer threads over one database),
// front the database with a Session — snapshot-isolated reads plus
// group-committed writes (docs/SERVING.md):
//
//   auto session = park::Session::Open(dir, std::move(params)).value();
//   auto snap = session->Snapshot();          // reader threads
//   auto tx = session->Begin();               // writer threads
//   auto report = std::move(tx).Commit();     // may fold into a batch

#ifndef PARK_PARK_PARK_H_
#define PARK_PARK_PARK_H_

#include "core/baseline/inflationary.h"   // IWYU pragma: export
#include "core/baseline/naive_cancel.h"   // IWYU pragma: export
#include "core/park_evaluator.h"          // IWYU pragma: export
#include "core/policy.h"                  // IWYU pragma: export
#include "core/stepper.h"                 // IWYU pragma: export
#include "eca/active_database.h"          // IWYU pragma: export
#include "lang/analyzer.h"                // IWYU pragma: export
#include "lang/io.h"                      // IWYU pragma: export
#include "lang/parser.h"                  // IWYU pragma: export
#include "lang/printer.h"                 // IWYU pragma: export
#include "lang/query.h"                   // IWYU pragma: export
#include "serve/session.h"                // IWYU pragma: export
#include "serve/snapshot.h"               // IWYU pragma: export

#endif  // PARK_PARK_PARK_H_
