#include "storage/column.h"

#include <algorithm>
#include <numeric>

namespace park {

ColumnDictionary ColumnDictionary::FromValues(std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  ColumnDictionary dict;
  dict.sorted_ = std::move(values);
  return dict;
}

std::optional<uint32_t> ColumnDictionary::CodeFor(const Value& v) const {
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), v);
  if (it == sorted_.end() || *it != v) return std::nullopt;
  return static_cast<uint32_t>(it - sorted_.begin());
}

Column::Column(ColumnDictionary dict, std::vector<uint32_t> codes)
    : dict_(std::move(dict)), codes_(std::move(codes)) {
  perm_.resize(codes_.size());
  std::iota(perm_.begin(), perm_.end(), 0u);
  // stable_sort keeps equal-code rows in ascending row order, which is
  // the order every probe and merge enumerates an equal range in.
  std::stable_sort(perm_.begin(), perm_.end(),
                   [this](uint32_t a, uint32_t b) {
                     return codes_[a] < codes_[b];
                   });
}

std::pair<uint32_t, uint32_t> Column::EqualRangeByCode(uint32_t code) const {
  auto less = [this](uint32_t row, uint32_t c) { return codes_[row] < c; };
  auto greater = [this](uint32_t c, uint32_t row) { return c < codes_[row]; };
  auto lo = std::lower_bound(perm_.begin(), perm_.end(), code, less);
  auto hi = std::upper_bound(lo, perm_.end(), code, greater);
  return {static_cast<uint32_t>(lo - perm_.begin()),
          static_cast<uint32_t>(hi - perm_.begin())};
}

std::pair<uint32_t, uint32_t> Column::EqualRange(const Value& v) const {
  std::optional<uint32_t> code = dict_.CodeFor(v);
  if (!code.has_value()) return {0, 0};
  return EqualRangeByCode(*code);
}

}  // namespace park
