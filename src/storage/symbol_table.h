// Interning of constant symbols, string literals, and predicates.
//
// A SymbolTable maps names to dense integer ids so that the rest of the
// engine can compare and hash values in O(1) without touching strings. One
// SymbolTable is shared (via std::shared_ptr) between a Database, the
// Programs that run against it, and the evaluator; mixing ids from
// different tables is a programming error.

#ifndef PARK_STORAGE_SYMBOL_TABLE_H_
#define PARK_STORAGE_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/logging.h"

namespace park {

/// Dense id of an interned constant symbol or string literal.
using SymbolId = uint32_t;

/// Dense id of a (name, arity) predicate.
using PredicateId = uint32_t;

/// Bidirectional name<->id maps for symbols and predicates.
///
/// Thread-safe: interning takes an exclusive lock, lookups a shared lock.
/// Name references returned by SymbolName/PredicateName stay valid for the
/// table's lifetime — entries live in deques and are never moved or erased —
/// so concurrent serving sessions can intern and resolve names freely.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it on first use.
  SymbolId InternSymbol(std::string_view name);

  /// Returns the id for `name` if already interned.
  std::optional<SymbolId> FindSymbol(std::string_view name) const;

  /// Returns the name of an interned symbol. `id` must be valid.
  const std::string& SymbolName(SymbolId id) const;

  size_t NumSymbols() const;

  /// Returns the id for predicate `name/arity`, interning on first use.
  /// The same name with two different arities yields two predicates.
  PredicateId InternPredicate(std::string_view name, int arity);

  /// Returns the id for `name/arity` if already interned.
  std::optional<PredicateId> FindPredicate(std::string_view name,
                                           int arity) const;

  /// Predicate accessors; `id` must be valid.
  const std::string& PredicateName(PredicateId id) const;
  int PredicateArity(PredicateId id) const;

  size_t NumPredicates() const;

 private:
  struct PredicateInfo {
    std::string name;
    int arity;
  };

  mutable std::shared_mutex mutex_;

  std::unordered_map<std::string, SymbolId> symbol_ids_;
  std::deque<std::string> symbol_names_;  // deque: stable addresses

  std::unordered_map<std::string, PredicateId> predicate_ids_;  // "name/arity"
  std::deque<PredicateInfo> predicates_;
};

/// Convenience factory for the shared-ownership idiom used across the API.
inline std::shared_ptr<SymbolTable> MakeSymbolTable() {
  return std::make_shared<SymbolTable>();
}

}  // namespace park

#endif  // PARK_STORAGE_SYMBOL_TABLE_H_
