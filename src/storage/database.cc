#include "storage/database.h"

#include <algorithm>

#include "util/logging.h"

namespace park {

Database::Database(std::shared_ptr<SymbolTable> symbols)
    : symbols_(std::move(symbols)) {
  PARK_CHECK(symbols_ != nullptr) << "Database requires a symbol table";
}

Database Database::Clone() const {
  Database copy(symbols_);
  for (const auto& [pred, rel] : relations_) {
    copy.relations_.emplace(pred, rel.Clone());
  }
  copy.total_atoms_ = total_atoms_;
  return copy;
}

bool Database::Insert(const GroundAtom& atom) {
  Relation& rel = GetOrCreateRelation(atom.predicate(), atom.arity());
  bool added = rel.Insert(atom.args());
  if (added) ++total_atoms_;
  return added;
}

bool Database::InsertAtom(std::string_view predicate,
                          const std::vector<std::string>& args) {
  PredicateId pred = symbols_->InternPredicate(
      predicate, static_cast<int>(args.size()));
  Tuple tuple;
  for (const std::string& arg : args) {
    tuple.Append(ConstantFromText(arg, *symbols_));
  }
  return Insert(GroundAtom(pred, std::move(tuple)));
}

bool Database::Erase(const GroundAtom& atom) {
  auto it = relations_.find(atom.predicate());
  if (it == relations_.end()) return false;
  bool removed = it->second.Erase(atom.args());
  if (removed) --total_atoms_;
  return removed;
}

bool Database::Contains(const GroundAtom& atom) const {
  auto it = relations_.find(atom.predicate());
  if (it == relations_.end()) return false;
  return it->second.Contains(atom.args());
}

bool Database::Contains(PredicateId predicate, const Value* args,
                        size_t n) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return false;
  return it->second.Contains(args, n);
}

const Relation* Database::GetRelation(PredicateId predicate) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

Relation& Database::GetOrCreateRelation(PredicateId predicate, int arity) {
  auto it = relations_.find(predicate);
  if (it != relations_.end()) {
    PARK_CHECK_EQ(it->second.arity(), arity)
        << "predicate " << symbols_->PredicateName(predicate)
        << " used with inconsistent arity";
    return it->second;
  }
  auto [inserted, _] = relations_.emplace(predicate, Relation(arity));
  return inserted->second;
}

void Database::ForEach(
    const std::function<void(const GroundAtom&)>& fn) const {
  for (const auto& [pred, rel] : relations_) {
    rel.ForEach([&](const Tuple& t) { fn(GroundAtom(pred, t)); });
  }
}

void Database::FreezeIndexes() const {
  for (const auto& [pred, rel] : relations_) rel.FreezeIndexes();
}

void Database::ThawIndexes() const {
  for (const auto& [pred, rel] : relations_) rel.ThawIndexes();
}

void Database::CompactColumnar() const {
  for (const auto& [pred, rel] : relations_) rel.CompactColumnar();
}

Database::ColumnarFootprint Database::ColumnarStats() const {
  ColumnarFootprint out;
  for (const auto& [pred, rel] : relations_) {
    if (rel.HasSegment()) {
      ++out.segments;
      out.segment_rows += rel.segment_rows();
      out.dict_entries += rel.dict_entries();
    }
    out.compactions += rel.compactions();
  }
  return out;
}

std::vector<std::string> Database::SortedAtomStrings() const {
  std::vector<std::string> out;
  out.reserve(total_atoms_);
  ForEach([&](const GroundAtom& atom) {
    out.push_back(atom.ToString(*symbols_));
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::string Database::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const std::string& atom : SortedAtomStrings()) {
    if (!first) out += ", ";
    out += atom;
    first = false;
  }
  out += "}";
  return out;
}

bool Database::SameAtoms(const Database& other) const {
  if (total_atoms_ != other.total_atoms_) return false;
  bool same = true;
  ForEach([&](const GroundAtom& atom) {
    if (!other.Contains(atom)) same = false;
  });
  return same;
}

Database::Diff Database::DiffWith(const Database& other) const {
  Diff diff;
  ForEach([&](const GroundAtom& atom) {
    if (!other.Contains(atom)) diff.only_in_this.push_back(atom);
  });
  other.ForEach([&](const GroundAtom& atom) {
    if (!Contains(atom)) diff.only_in_other.push_back(atom);
  });
  std::sort(diff.only_in_this.begin(), diff.only_in_this.end());
  std::sort(diff.only_in_other.begin(), diff.only_in_other.end());
  return diff;
}

}  // namespace park
