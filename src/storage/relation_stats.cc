#include "storage/relation_stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace park {
namespace {

/// Bucket for a value: its content hash folded onto the sketch width. The
/// Value hash is already well-mixed (util/hash.h); the masked low bits are
/// enough. Deterministic across runs — no seeding.
size_t BucketFor(const Value& v) {
  static_assert((RelationStats::kBuckets & (RelationStats::kBuckets - 1)) == 0,
                "bucket count must be a power of two");
  return v.Hash() & (RelationStats::kBuckets - 1);
}

}  // namespace

void RelationStats::OnInsert(const Tuple& t) {
  PARK_CHECK_EQ(t.arity(), arity_) << "stats arity mismatch";
  if (sketches_.empty()) {
    sketches_.assign(static_cast<size_t>(arity_),
                     std::vector<uint32_t>(kBuckets, 0));
  }
  for (int c = 0; c < arity_; ++c) {
    ++sketches_[static_cast<size_t>(c)][BucketFor(t[c])];
  }
  ++rows_;
}

void RelationStats::OnErase(const Tuple& t) {
  PARK_CHECK_EQ(t.arity(), arity_) << "stats arity mismatch";
  PARK_CHECK_GT(rows_, 0u) << "erase from empty stats";
  for (int c = 0; c < arity_; ++c) {
    uint32_t& bucket = sketches_[static_cast<size_t>(c)][BucketFor(t[c])];
    PARK_CHECK_GT(bucket, 0u) << "stats sketch underflow";
    --bucket;
  }
  --rows_;
}

double RelationStats::DistinctEstimate(int column) const {
  PARK_CHECK(column >= 0 && column < arity_) << "stats column out of range";
  if (rows_ == 0) return 0;
  const std::vector<uint32_t>& sketch =
      sketches_[static_cast<size_t>(column)];
  size_t empty = 0;
  for (uint32_t count : sketch) {
    if (count == 0) ++empty;
  }
  double estimate;
  if (empty == 0) {
    // Fully loaded sketch: linear counting is undefined; report the
    // saturation ceiling (the formula's limit as empty -> 1 bucket).
    estimate = static_cast<double>(kBuckets) *
               std::log(static_cast<double>(kBuckets));
  } else {
    estimate = -static_cast<double>(kBuckets) *
               std::log(static_cast<double>(empty) /
                        static_cast<double>(kBuckets));
  }
  // Distinct values can never exceed the row count, nor drop below 1 for
  // a non-empty relation.
  return std::clamp(estimate, 1.0, static_cast<double>(rows_));
}

double RelationStats::SelectivityRows(int column) const {
  if (rows_ == 0) return 0;
  return static_cast<double>(rows_) / DistinctEstimate(column);
}

void RelationStats::Clear() {
  rows_ = 0;
  sketches_.clear();
}

}  // namespace park
