#include "storage/value.h"

#include "util/string_util.h"

namespace park {

Value ConstantFromText(std::string_view text, SymbolTable& symbols) {
  if (!text.empty() &&
      (std::isdigit(static_cast<unsigned char>(text.front())) ||
       (text.front() == '-' && text.size() > 1))) {
    auto value = ParseInt64(text);
    if (value.has_value()) return Value::Int(*value);
  }
  return Value::Symbol(symbols.InternSymbol(text));
}

std::string Value::ToString(const SymbolTable& table) const {
  switch (type_) {
    case ValueType::kSymbol:
      return table.SymbolName(static_cast<SymbolId>(payload_));
    case ValueType::kInt:
      return std::to_string(static_cast<int64_t>(payload_));
    case ValueType::kString: {
      const std::string& raw =
          table.SymbolName(static_cast<SymbolId>(payload_));
      std::string out = "\"";
      for (char c : raw) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "<invalid>";
}

}  // namespace park
