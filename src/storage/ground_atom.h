// GroundAtom: a fully instantiated atom `p(c1, ..., cn)` — a row together
// with the predicate it belongs to. Database instances and i-interpretations
// are sets of GroundAtoms (the latter with +/- markings kept alongside).

#ifndef PARK_STORAGE_GROUND_ATOM_H_
#define PARK_STORAGE_GROUND_ATOM_H_

#include <string>

#include "storage/tuple.h"

namespace park {

/// A ground (variable-free) atom. Value type: copyable, hashable, ordered
/// (by predicate id, then tuple).
class GroundAtom {
 public:
  GroundAtom() : predicate_(0) {}
  GroundAtom(PredicateId predicate, Tuple args)
      : predicate_(predicate), args_(std::move(args)) {}

  PredicateId predicate() const { return predicate_; }
  const Tuple& args() const { return args_; }
  int arity() const { return args_.arity(); }

  /// "p(a, b)" or "p" for propositional (0-ary) atoms.
  std::string ToString(const SymbolTable& table) const;

  size_t Hash() const {
    return HashCombine(static_cast<size_t>(predicate_), args_.Hash());
  }

  friend bool operator==(const GroundAtom& a, const GroundAtom& b) {
    return a.predicate_ == b.predicate_ && a.args_ == b.args_;
  }
  friend bool operator!=(const GroundAtom& a, const GroundAtom& b) {
    return !(a == b);
  }
  friend bool operator<(const GroundAtom& a, const GroundAtom& b) {
    if (a.predicate_ != b.predicate_) return a.predicate_ < b.predicate_;
    return a.args_ < b.args_;
  }

 private:
  PredicateId predicate_;
  Tuple args_;
};

struct GroundAtomHash {
  size_t operator()(const GroundAtom& a) const { return a.Hash(); }
};

}  // namespace park

#endif  // PARK_STORAGE_GROUND_ATOM_H_
