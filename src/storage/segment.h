// Segment: an immutable, dictionary-encoded, columnar snapshot of a
// relation's tuple set.
//
// Rows are lexicographically sorted tuples; each attribute is a Column
// (storage/column.h) whose codes preserve value order. A Segment never
// changes after Build — the Relation that owns it accumulates inserts in
// a small delta store and erases as tombstones, and merges all three
// into a fresh Segment at a compaction point (Δ-step boundaries in batch
// execution). Because the row order is the canonical sorted order of the
// tuple set, a segment built from the same set is byte-for-byte the same
// whatever insertion history produced it — the determinism anchor for
// batch-at-a-time execution (docs/STORAGE.md).

#ifndef PARK_STORAGE_SEGMENT_H_
#define PARK_STORAGE_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"
#include "storage/tuple.h"

namespace park {

class Segment {
 public:
  Segment() = default;

  /// Builds from `rows`, which MUST be lexicographically sorted and
  /// duplicate-free. The segment copies every value out of the tuples —
  /// it holds no pointers into the owning Relation afterwards, which is
  /// what lets serve::Snapshot pin a segment past later mutations,
  /// compactions, and even the Relation's destruction. 0-ary relations
  /// yield a segment with num_rows in {0, 1} and no columns.
  static Segment Build(int arity, const std::vector<const Tuple*>& rows);

  int arity() const { return arity_; }
  uint32_t num_rows() const { return num_rows_; }

  const Column& column(int c) const {
    return columns_[static_cast<size_t>(c)];
  }

  /// Row `r` as a contiguous Value[arity] span. The flat copy exists so
  /// the batch executor's candidate checks read one cache line instead
  /// of chasing the owning set's heap-backed Tuple nodes; because rows
  /// are stored in sorted order, a probe on column 0 (the common case
  /// for compiled join steps) walks this array sequentially.
  const Value* row(uint32_t r) const {
    return row_values_.data() + static_cast<size_t>(r) * arity_;
  }

  /// Whole-row membership probe through the segment's flat
  /// open-addressing index: `hash` must be TupleHash over `args[0..n)`
  /// (n == arity). Unlike the owning set's node-based probe (bucket →
  /// node → heap tuple, three dependent cache misses), this touches one
  /// slot array line and one flat row span — and the slot line can be
  /// prefetched a block ahead via PrefetchRow, which is what makes the
  /// batch executor's filter steps faster than per-candidate probing.
  bool ContainsRow(const Value* args, size_t n, size_t hash) const {
    if (probe_slots_.empty()) return false;
    size_t slot = MixHash(hash) & probe_mask_;
    while (true) {
      uint32_t entry = probe_slots_[slot];
      if (entry == 0) return false;
      const Value* row = this->row(entry - 1);
      size_t j = 0;
      while (j < n && row[j] == args[j]) ++j;
      if (j == n) return true;
      slot = (slot + 1) & probe_mask_;
    }
  }

  /// Hints the cache line of `hash`'s probe slot into cache ahead of the
  /// ContainsRow call (no-op for empty segments).
  void PrefetchRow(size_t hash) const {
    if (!probe_slots_.empty()) {
      __builtin_prefetch(probe_slots_.data() + (MixHash(hash) & probe_mask_));
    }
  }

  /// Finalizer applied before masking. TupleHash is close to affine in
  /// small integer payloads; the node-based sets hide that by bucketing
  /// modulo a prime, but a power-of-two mask keeps only the (correlated)
  /// low bits, which clusters linear probing into long runs. Two rounds
  /// of multiply-xorshift spread the entropy across the word first.
  static size_t MixHash(size_t h) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
  }

  /// Sum of per-column dictionary sizes (the `dict_entries` stats
  /// counter).
  uint64_t DictEntries() const;

 private:
  int arity_ = 0;
  uint32_t num_rows_ = 0;
  std::vector<Column> columns_;
  std::vector<Value> row_values_;  // row-major, num_rows_ * arity_
  // Open-addressing whole-row index: power-of-two sized, linear probing,
  // entries are row+1 (0 = empty). Built in row order, so byte-identical
  // for the same tuple set like everything else in the segment.
  std::vector<uint32_t> probe_slots_;
  size_t probe_mask_ = 0;
};

}  // namespace park

#endif  // PARK_STORAGE_SEGMENT_H_
