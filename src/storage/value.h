// Value: a typed Datalog constant.
//
// Values are 16-byte, trivially copyable tagged unions. Symbols and string
// literals carry interned ids; rendering them back to text requires the
// SymbolTable that interned them.

#ifndef PARK_STORAGE_VALUE_H_
#define PARK_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "storage/symbol_table.h"
#include "util/hash.h"

namespace park {

/// The dynamic type of a Value.
enum class ValueType : uint8_t {
  kSymbol = 0,  // An interned constant symbol, e.g. `alice`.
  kInt = 1,     // A 64-bit signed integer, e.g. `42`.
  kString = 2,  // An interned quoted string literal, e.g. `"J. Doe"`.
};

/// A single Datalog constant. Equality and ordering are across-type total:
/// symbols < ints < strings, then by payload. Two symbol (or string) Values
/// are equal iff their interned ids are equal, so comparisons never touch
/// the symbol table.
class Value {
 public:
  /// Default-constructs the symbol with id 0; meaningful Values come from
  /// the factories below.
  Value() : type_(ValueType::kSymbol), payload_(0) {}

  static Value Symbol(SymbolId id) {
    return Value(ValueType::kSymbol, static_cast<uint64_t>(id));
  }
  static Value Int(int64_t v) {
    return Value(ValueType::kInt, static_cast<uint64_t>(v));
  }
  static Value String(SymbolId id) {
    return Value(ValueType::kString, static_cast<uint64_t>(id));
  }

  ValueType type() const { return type_; }
  bool is_symbol() const { return type_ == ValueType::kSymbol; }
  bool is_int() const { return type_ == ValueType::kInt; }
  bool is_string() const { return type_ == ValueType::kString; }

  /// Accessors; the type must match (checked).
  SymbolId symbol_id() const {
    PARK_CHECK(type_ != ValueType::kInt) << "not an interned value";
    return static_cast<SymbolId>(payload_);
  }
  int64_t int_value() const {
    PARK_CHECK(is_int()) << "not an int value";
    return static_cast<int64_t>(payload_);
  }

  /// Renders the value using `table` for interned names. Strings are quoted
  /// with C-style escaping of `"` and `\`.
  std::string ToString(const SymbolTable& table) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.type_ == b.type_ && a.payload_ == b.payload_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return a.type_ < b.type_;
    if (a.type_ == ValueType::kInt) {
      return static_cast<int64_t>(a.payload_) <
             static_cast<int64_t>(b.payload_);
    }
    return a.payload_ < b.payload_;
  }

  size_t Hash() const {
    return HashCombine(static_cast<size_t>(type_),
                       std::hash<uint64_t>{}(payload_));
  }

 private:
  Value(ValueType type, uint64_t payload) : type_(type), payload_(payload) {}

  ValueType type_;
  uint64_t payload_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Interprets `text` the way the rule/fact parser would interpret a
/// constant term: an optionally negative digit string becomes an integer
/// Value, anything else an interned symbol. Used by every convenience
/// atom builder (Database::InsertAtom, Transaction::Insert, RuleBuilder)
/// so that programmatic atoms and parsed atoms always agree.
Value ConstantFromText(std::string_view text, SymbolTable& symbols);

}  // namespace park

#endif  // PARK_STORAGE_VALUE_H_
