// Database: a database instance in the paper's sense — a finite set of
// positive ground atoms, organized as one Relation per predicate.
//
// A Database owns its tuples but shares a SymbolTable with the programs
// that run against it. Databases are the inputs and outputs of the PARK
// semantics: `PARK(P, D)` maps a Database to a Database.

#ifndef PARK_STORAGE_DATABASE_H_
#define PARK_STORAGE_DATABASE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/ground_atom.h"
#include "storage/relation.h"
#include "util/status.h"

namespace park {

/// A set of ground atoms with per-predicate index-backed storage.
class Database {
 public:
  /// Creates an empty database over `symbols` (must be non-null).
  explicit Database(std::shared_ptr<SymbolTable> symbols);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Deep copy (shares the symbol table, copies all tuples).
  Database Clone() const;

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }
  SymbolTable& mutable_symbols() { return *symbols_; }

  /// Inserts `atom`; returns true if it was not already present.
  bool Insert(const GroundAtom& atom);

  /// Convenience: interns `predicate` (with arity = args.size()) and the
  /// symbol constants in `args`, then inserts. Example:
  ///   db.InsertAtom("edge", {"a", "b"});
  bool InsertAtom(std::string_view predicate,
                  const std::vector<std::string>& args);

  /// Removes `atom`; returns true if it was present.
  bool Erase(const GroundAtom& atom);

  bool Contains(const GroundAtom& atom) const;

  /// Heterogeneous lookup: does `predicate(args[0..n))` hold? Same answer
  /// as Contains(GroundAtom(...)) without materializing the atom — the
  /// executors' per-candidate dedup and filter checks go through here.
  bool Contains(PredicateId predicate, const Value* args, size_t n) const;

  /// Number of atoms across all predicates.
  size_t size() const { return total_atoms_; }
  bool empty() const { return total_atoms_ == 0; }

  /// The relation for `predicate`, or nullptr if no atom of that predicate
  /// was ever inserted.
  const Relation* GetRelation(PredicateId predicate) const;

  /// The relation for `predicate`, created (with `arity`) if absent.
  Relation& GetOrCreateRelation(PredicateId predicate, int arity);

  /// Invokes `fn` for every atom, in unspecified order.
  void ForEach(const std::function<void(const GroundAtom&)>& fn) const;

  /// Invokes `fn` for every (predicate, relation) pair, in unspecified
  /// order. The serving layer pins snapshot segments through this.
  void ForEachRelation(
      const std::function<void(PredicateId, const Relation&)>& fn) const {
    for (const auto& [pred, rel] : relations_) fn(pred, rel);
  }

  /// Freezes (resp. thaws) every relation for a read-only parallel
  /// section — see Relation::FreezeIndexes. Relations created after a
  /// freeze are unfrozen, so freezing must happen after the database has
  /// reached the state the parallel readers will see.
  void FreezeIndexes() const;
  void ThawIndexes() const;

  /// Compacts the columnar view of every relation (Relation::
  /// CompactColumnar) — the batch-mode Γ-section prewarm, run by the
  /// coordinator before any freeze. No-op for already-compact relations.
  void CompactColumnar() const;

  /// Aggregated columnar counters across all relations, for the
  /// park-stats-v1 "storage" block.
  struct ColumnarFootprint {
    uint64_t segments = 0;      // relations with a built segment
    uint64_t segment_rows = 0;  // rows across those segments
    uint64_t compactions = 0;   // segment (re)builds, lifetime total
    uint64_t dict_entries = 0;  // dictionary entries across segments
  };
  ColumnarFootprint ColumnarStats() const;

  /// All atoms as sorted, rendered strings — deterministic; used in tests
  /// and tools.
  std::vector<std::string> SortedAtomStrings() const;

  /// "{p(a), q(a, b)}" with atoms sorted by rendered text.
  std::string ToString() const;

  /// True iff both databases contain exactly the same atoms. The two
  /// databases must share a symbol table.
  bool SameAtoms(const Database& other) const;

  /// Atoms present in `this` but not `other`, and vice versa.
  struct Diff {
    std::vector<GroundAtom> only_in_this;
    std::vector<GroundAtom> only_in_other;
    bool empty() const { return only_in_this.empty() && only_in_other.empty(); }
  };
  Diff DiffWith(const Database& other) const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::unordered_map<PredicateId, Relation> relations_;
  size_t total_atoms_ = 0;
};

}  // namespace park

#endif  // PARK_STORAGE_DATABASE_H_
