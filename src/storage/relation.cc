#include "storage/relation.h"

#include <algorithm>

#include "util/logging.h"

namespace park {

Relation Relation::Clone() const {
  Relation copy(arity_);
  copy.tuples_ = tuples_;
  // The stats are a pure function of the tuple multiset, so the sketch
  // state copies verbatim with it.
  copy.stats_ = stats_;
  return copy;
}

bool Relation::Insert(const Tuple& t) {
  PARK_CHECK_EQ(t.arity(), arity_) << "arity mismatch on insert";
  PARK_CHECK(!frozen_) << "Insert on a frozen relation";
  auto [it, inserted] = tuples_.insert(t);
  if (!inserted) return false;
  stats_.OnInsert(t);
  const Tuple* stored = &*it;
  for (int c = 0; c < static_cast<int>(indexes_.size()); ++c) {
    if (indexes_[static_cast<size_t>(c)].has_value()) {
      indexes_[static_cast<size_t>(c)]->emplace((*stored)[c], stored);
    }
  }
  if (segment_ != nullptr) delta_adds_.push_back(stored);
  return true;
}

bool Relation::Erase(const Tuple& t) {
  PARK_CHECK(!frozen_) << "Erase on a frozen relation";
  auto it = tuples_.find(t);
  if (it == tuples_.end()) return false;
  stats_.OnErase(t);
  const Tuple* stored = &*it;
  for (int c = 0; c < static_cast<int>(indexes_.size()); ++c) {
    auto& index = indexes_[static_cast<size_t>(c)];
    if (!index.has_value()) continue;
    auto range = index->equal_range((*stored)[c]);
    for (auto e = range.first; e != range.second; ++e) {
      if (e->second == stored) {
        index->erase(e);
        break;
      }
    }
  }
  if (segment_ != nullptr) {
    // The tuple is either a delta add (drop it) or a segment row. A
    // segment row is tombstoned by index and its node parked in the
    // graveyard instead of destroyed: `segment_rows_` holds raw pointers
    // into the nodes and later erases binary-search through them, so
    // every entry must stay dereferenceable until the next compaction.
    auto d = std::find(delta_adds_.begin(), delta_adds_.end(), stored);
    if (d != delta_adds_.end()) {
      delta_adds_.erase(d);
      tuples_.erase(it);
    } else {
      auto row = std::lower_bound(
          segment_rows_.begin(), segment_rows_.end(), *stored,
          [](const Tuple* a, const Tuple& b) { return *a < b; });
      PARK_CHECK(row != segment_rows_.end() && **row == *stored)
          << "erased tuple missing from both segment and delta";
      tombstones_.push_back(
          static_cast<uint32_t>(row - segment_rows_.begin()));
      graveyard_.push_back(tuples_.extract(it));
    }
  } else {
    tuples_.erase(it);
  }
  return true;
}

void Relation::ForEach(FunctionRef<void(const Tuple&)> fn) const {
  for (const Tuple& t : tuples_) fn(t);
}

bool Relation::Matches(const Tuple& t, const TuplePattern& pattern) {
  for (int c = 0; c < t.arity(); ++c) {
    const auto& want = pattern[static_cast<size_t>(c)];
    if (want.has_value() && *want != t[c]) return false;
  }
  return true;
}

void Relation::EnsureIndex(int column) const {
  if (static_cast<size_t>(column) < indexes_.size() &&
      indexes_[static_cast<size_t>(column)].has_value()) {
    return;
  }
  // A missing index inside a frozen (parallel, read-only) section means
  // the prewarm pass under-approximated the plans — fail loudly rather
  // than race on the lazy build.
  PARK_CHECK(!frozen_)
      << "lazy index build for column " << column
      << " on a frozen relation (prewarm missed this column)";
  if (static_cast<size_t>(column) >= indexes_.size()) {
    indexes_.resize(static_cast<size_t>(arity_));
  }
  auto& index = indexes_[static_cast<size_t>(column)];
  index.emplace();
  index->reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    index->emplace(t[column], &t);
  }
}

void Relation::BuildIndex(int column) const {
  PARK_CHECK_LT(column, arity_) << "BuildIndex column out of range";
  PARK_CHECK(!frozen_) << "BuildIndex on a frozen relation";
  EnsureIndex(column);
}

void Relation::ForEachMatching(const TuplePattern& pattern,
                               FunctionRef<void(const Tuple&)> fn) const {
  PARK_CHECK_EQ(static_cast<int>(pattern.size()), arity_)
      << "pattern arity mismatch";
  int bound_column = -1;
  for (int c = 0; c < arity_; ++c) {
    if (pattern[static_cast<size_t>(c)].has_value()) {
      bound_column = c;
      break;
    }
  }
  if (bound_column < 0) {
    // Fully unbound: plain scan.
    for (const Tuple& t : tuples_) fn(t);
    return;
  }
  // Exact-match fast path when every column is bound.
  bool all_bound = true;
  for (const auto& slot : pattern) all_bound = all_bound && slot.has_value();
  if (all_bound) {
    Tuple probe;
    for (const auto& slot : pattern) probe.Append(*slot);
    if (tuples_.contains(probe)) fn(probe);
    return;
  }
  EnsureIndex(bound_column);
  const ColumnIndex& index = *indexes_[static_cast<size_t>(bound_column)];
  auto range = index.equal_range(*pattern[static_cast<size_t>(bound_column)]);
  for (auto it = range.first; it != range.second; ++it) {
    const Tuple& t = *it->second;
    if (Matches(t, pattern)) fn(t);
  }
}

void Relation::ForEachMatchingProbe(const TuplePattern& pattern,
                                    int probe_column,
                                    FunctionRef<void(const Tuple&)> fn) const {
  PARK_CHECK_EQ(static_cast<int>(pattern.size()), arity_)
      << "pattern arity mismatch";
  if (probe_column < 0) {
    for (const Tuple& t : tuples_) {
      if (Matches(t, pattern)) fn(t);
    }
    return;
  }
  PARK_CHECK_LT(probe_column, arity_) << "probe column out of range";
  PARK_CHECK(pattern[static_cast<size_t>(probe_column)].has_value())
      << "probe column must be a bound pattern position";
  EnsureIndex(probe_column);
  const ColumnIndex& index = *indexes_[static_cast<size_t>(probe_column)];
  auto range = index.equal_range(*pattern[static_cast<size_t>(probe_column)]);
  for (auto it = range.first; it != range.second; ++it) {
    const Tuple& t = *it->second;
    if (Matches(t, pattern)) fn(t);
  }
}

Relation::ColumnarView Relation::Columnar() const {
  if (ColumnarDirty()) {
    // Mirrors the lazy-index rule: a dirty view inside a frozen
    // (parallel, read-only) section means the coordinator's compaction
    // sweep missed this relation — fail loudly rather than race.
    PARK_CHECK(!frozen_)
        << "lazy columnar compaction on a frozen relation "
           "(compaction sweep missed this relation)";
    CompactColumnarImpl();
  }
  return ColumnarView{segment_.get(), &segment_rows_};
}

void Relation::CompactColumnar() const {
  if (!ColumnarDirty()) return;
  PARK_CHECK(!frozen_) << "CompactColumnar on a frozen relation";
  CompactColumnarImpl();
}

void Relation::CompactColumnarImpl() const {
  if (segment_ == nullptr) {
    // First build: sort the whole set.
    segment_rows_.clear();
    segment_rows_.reserve(tuples_.size());
    for (const Tuple& t : tuples_) segment_rows_.push_back(&t);
    std::sort(segment_rows_.begin(), segment_rows_.end(),
              [](const Tuple* a, const Tuple* b) { return *a < *b; });
  } else {
    // Merge (segment rows − tombstones) with the sorted delta. A delta
    // add can never equal a live segment row (it was absent from the set
    // when inserted), so strict < places every add uniquely.
    std::sort(delta_adds_.begin(), delta_adds_.end(),
              [](const Tuple* a, const Tuple* b) { return *a < *b; });
    std::sort(tombstones_.begin(), tombstones_.end());
    std::vector<const Tuple*> merged;
    merged.reserve(segment_rows_.size() + delta_adds_.size() -
                   tombstones_.size());
    size_t ti = 0;
    size_t di = 0;
    for (size_t r = 0; r < segment_rows_.size(); ++r) {
      if (ti < tombstones_.size() &&
          tombstones_[ti] == static_cast<uint32_t>(r)) {
        ++ti;
        continue;
      }
      const Tuple* row = segment_rows_[r];
      while (di < delta_adds_.size() && *delta_adds_[di] < *row) {
        merged.push_back(delta_adds_[di++]);
      }
      merged.push_back(row);
    }
    while (di < delta_adds_.size()) merged.push_back(delta_adds_[di++]);
    segment_rows_ = std::move(merged);
    delta_adds_.clear();
    tombstones_.clear();
    graveyard_.clear();
  }
  // A fresh shared segment per build: snapshots pinning the previous
  // generation keep it alive; unpinned generations free immediately.
  segment_ =
      std::make_shared<const Segment>(Segment::Build(arity_, segment_rows_));
  ++compactions_;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace park
