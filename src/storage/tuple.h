// Tuple: an ordered list of Values — one row of a relation.

#ifndef PARK_STORAGE_TUPLE_H_
#define PARK_STORAGE_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "storage/value.h"

namespace park {

/// A fixed-arity row. Tuples are value types: copyable, hashable,
/// lexicographically ordered.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  int arity() const { return static_cast<int>(values_.size()); }
  bool empty() const { return values_.empty(); }

  const Value& operator[](int i) const { return values_[static_cast<size_t>(i)]; }
  Value& operator[](int i) { return values_[static_cast<size_t>(i)]; }

  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(v); }

  /// "(v1, v2, ...)" — or "" for the 0-ary tuple.
  std::string ToString(const SymbolTable& table) const;

  size_t Hash() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<Value> values_;
};

/// A borrowed view of a tuple's values — the heterogeneous-lookup key for
/// tuple sets. The batch executor stores rows as flat Value spans; probing
/// a relation through a TupleSpan skips materializing a heap-backed Tuple
/// per lookup.
struct TupleSpan {
  const Value* data = nullptr;
  size_t size = 0;
};

struct TupleHash {
  using is_transparent = void;
  size_t operator()(const Tuple& t) const { return t.Hash(); }
  size_t operator()(const TupleSpan& s) const {
    // Must match Tuple::Hash exactly (same seed, same combine).
    size_t seed = 0x51ed270b;
    for (size_t i = 0; i < s.size; ++i) {
      seed = HashCombine(seed, s.data[i].Hash());
    }
    return seed;
  }
};

struct TupleEq {
  using is_transparent = void;
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
  bool operator()(const TupleSpan& s, const Tuple& t) const {
    if (s.size != static_cast<size_t>(t.arity())) return false;
    for (size_t i = 0; i < s.size; ++i) {
      if (s.data[i] != t[static_cast<int>(i)]) return false;
    }
    return true;
  }
  bool operator()(const Tuple& t, const TupleSpan& s) const {
    return (*this)(s, t);
  }
  bool operator()(const TupleSpan& a, const TupleSpan& b) const {
    if (a.size != b.size) return false;
    for (size_t i = 0; i < a.size; ++i) {
      if (a.data[i] != b.data[i]) return false;
    }
    return true;
  }
};

}  // namespace park

#endif  // PARK_STORAGE_TUPLE_H_
