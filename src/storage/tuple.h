// Tuple: an ordered list of Values — one row of a relation.

#ifndef PARK_STORAGE_TUPLE_H_
#define PARK_STORAGE_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "storage/value.h"

namespace park {

/// A fixed-arity row. Tuples are value types: copyable, hashable,
/// lexicographically ordered.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  int arity() const { return static_cast<int>(values_.size()); }
  bool empty() const { return values_.empty(); }

  const Value& operator[](int i) const { return values_[static_cast<size_t>(i)]; }
  Value& operator[](int i) { return values_[static_cast<size_t>(i)]; }

  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(v); }

  /// "(v1, v2, ...)" — or "" for the 0-ary tuple.
  std::string ToString(const SymbolTable& table) const;

  size_t Hash() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace park

#endif  // PARK_STORAGE_TUPLE_H_
