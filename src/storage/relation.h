// Relation: the tuple store for one predicate.
//
// A Relation is an unordered set of Tuples plus lazily built, incrementally
// maintained per-column hash indexes. The engine's body matcher asks for
// tuples matching a partial binding; when some column of the binding is
// bound, the relation answers via a column index instead of a full scan.

#ifndef PARK_STORAGE_RELATION_H_
#define PARK_STORAGE_RELATION_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/tuple.h"

namespace park {

/// A partial binding over the columns of a relation: `std::nullopt` means
/// "any value". Used as the query form for Relation::ForEachMatching.
using TuplePattern = std::vector<std::optional<Value>>;

/// Tuple set with on-demand column indexes. Not thread-safe.
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {}

  // Relations are heavyweight; copying is explicit via Clone().
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// Deep copy without the indexes (they rebuild on demand).
  Relation Clone() const;

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `t`; returns true if the tuple was not already present.
  /// `t.arity()` must equal the relation arity.
  bool Insert(const Tuple& t);

  /// Removes `t`; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const { return tuples_.contains(t); }

  /// Invokes `fn` for every tuple, in unspecified order. `fn` must not
  /// mutate this relation.
  void ForEach(const std::function<void(const Tuple&)>& fn) const;

  /// Invokes `fn` for every tuple consistent with `pattern` (same arity;
  /// bound positions must match exactly). Uses the most selective column
  /// index among bound positions, building it on first use.
  void ForEachMatching(const TuplePattern& pattern,
                       const std::function<void(const Tuple&)>& fn) const;

  /// All tuples, sorted — for deterministic printing and diffs.
  std::vector<Tuple> SortedTuples() const;

 private:
  // Value -> tuples having that value in the indexed column. Pointers are
  // into `tuples_` (node-based, so stable until erase).
  using ColumnIndex = std::unordered_multimap<Value, const Tuple*, ValueHash>;

  void EnsureIndex(int column) const;
  static bool Matches(const Tuple& t, const TuplePattern& pattern);

  int arity_;
  std::unordered_set<Tuple, TupleHash> tuples_;
  // indexes_[c] is built lazily; nullopt means "not built".
  mutable std::vector<std::optional<ColumnIndex>> indexes_;
};

}  // namespace park

#endif  // PARK_STORAGE_RELATION_H_
