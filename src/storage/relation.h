// Relation: the tuple store for one predicate.
//
// A Relation is an unordered set of Tuples plus lazily built, incrementally
// maintained per-column hash indexes. The engine's body matcher asks for
// tuples matching a partial binding; when some column of the binding is
// bound, the relation answers via a column index instead of a full scan.

#ifndef PARK_STORAGE_RELATION_H_
#define PARK_STORAGE_RELATION_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/relation_stats.h"
#include "storage/segment.h"
#include "storage/tuple.h"
#include "util/function_ref.h"
#include "util/logging.h"

namespace park {

/// A partial binding over the columns of a relation: `std::nullopt` means
/// "any value". Used as the query form for Relation::ForEachMatching.
using TuplePattern = std::vector<std::optional<Value>>;

/// Tuple set with on-demand column indexes.
///
/// Thread safety: mutation is single-threaded, but read-only access from
/// many threads is supported via index freezing. The lazy index build in
/// ForEachMatching mutates under `const`, so a concurrent reader could
/// observe a half-built index; the parallel Γ evaluator therefore calls
/// BuildIndex for every column its plans will probe and then
/// FreezeIndexes() before fanning out. While frozen, any operation that
/// would mutate the relation — a lazy index build included — fails loudly
/// instead of racing.
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity), stats_(arity) {}

  // Relations are heavyweight; copying is explicit via Clone().
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// Deep copy without the indexes (they rebuild on demand) and without
  /// the frozen flag.
  Relation Clone() const;

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `t`; returns true if the tuple was not already present.
  /// `t.arity()` must equal the relation arity. Must not be frozen.
  bool Insert(const Tuple& t);

  /// Removes `t`; returns true if it was present. Must not be frozen.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const { return tuples_.contains(t); }

  /// Heterogeneous lookup from a flat Value[n] span — no Tuple is
  /// materialized. The batch executor's dedup and filter checks run on
  /// segment rows and binding rows stored this way.
  bool Contains(const Value* data, size_t n) const {
    return tuples_.find(TupleSpan{data, n}) != tuples_.end();
  }

  /// Invokes `fn` for every tuple, in unspecified order. `fn` must not
  /// mutate this relation.
  void ForEach(FunctionRef<void(const Tuple&)> fn) const;

  /// Invokes `fn` for every tuple consistent with `pattern` (same arity;
  /// bound positions must match exactly). Uses the most selective column
  /// index among bound positions, building it on first use — unless the
  /// relation is frozen, in which case the index must already exist.
  void ForEachMatching(const TuplePattern& pattern,
                       FunctionRef<void(const Tuple&)> fn) const;

  /// ForEachMatching with the probe column chosen by the caller (the
  /// cost-based planner picks the most selective bound column instead of
  /// the first one). `probe_column` must be a bound pattern position, or
  /// -1 for a full scan. Every tuple passed to `fn` is a stable pointer
  /// into this relation's storage (no temporary fast path), which is what
  /// lets the compiled matcher buffer `const Tuple*` candidates.
  void ForEachMatchingProbe(const TuplePattern& pattern, int probe_column,
                            FunctionRef<void(const Tuple&)> fn) const;

  /// Builds the hash index for `column` now (no-op if already built).
  /// This is the explicit prewarm used before a frozen parallel section;
  /// `const` because indexes are caches, like the lazy build.
  void BuildIndex(int column) const;

  bool HasIndex(int column) const {
    return static_cast<size_t>(column) < indexes_.size() &&
           indexes_[static_cast<size_t>(column)].has_value();
  }

  /// Enters read-only mode: concurrent ForEach/ForEachMatching/Contains
  /// are safe, and any attempted mutation (Insert, Erase, lazy index
  /// build) aborts with a check failure instead of racing.
  void FreezeIndexes() const { frozen_ = true; }
  void ThawIndexes() const { frozen_ = false; }
  bool frozen() const { return frozen_; }

  /// Live storage statistics (row count, per-column distinct estimates),
  /// maintained incrementally by Insert/Erase. The cost-based join
  /// planner reads these; see storage/relation_stats.h.
  const RelationStats& stats() const { return stats_; }

  /// All tuples, sorted — for deterministic printing and diffs.
  std::vector<Tuple> SortedTuples() const;

  // --- Columnar view (batch execution; see docs/STORAGE.md) ---
  //
  // The columnar view is an immutable dictionary-encoded Segment over the
  // lexicographically sorted tuple set plus `rows`, the segment-row ->
  // stable-tuple-pointer map (into `tuples_`, node-based, so pointers
  // survive rehash). Between compactions, Insert appends to a small delta
  // store and Erase records a tombstone; Columnar() merges all three back
  // into a fresh segment. Because the merged row order is the canonical
  // sorted order of the set, the view is independent of mutation history
  // — the determinism anchor of batch-at-a-time execution.

  struct ColumnarView {
    const Segment* segment = nullptr;
    /// rows[r] is the tuple at segment row r.
    const std::vector<const Tuple*>* rows = nullptr;
  };

  /// The compacted view, building or merging on demand. Like the lazy
  /// index build, compaction mutates under `const`; a frozen relation
  /// must already be compact (CompactColumnar runs before the freeze) —
  /// a dirty view inside a frozen section fails loudly instead of racing.
  ColumnarView Columnar() const;

  /// Eager compaction (no-op when the view is already compact). The
  /// batch-mode evaluator calls this for every relation at each Γ-section
  /// boundary, so `compactions()` is a property of the computation, not
  /// of the thread count.
  void CompactColumnar() const;

  bool HasSegment() const { return segment_ != nullptr; }
  bool ColumnarDirty() const {
    return segment_ == nullptr || !delta_adds_.empty() || !tombstones_.empty();
  }
  uint64_t compactions() const { return compactions_; }
  uint64_t segment_rows() const {
    return segment_ != nullptr ? segment_->num_rows() : 0;
  }
  uint64_t dict_entries() const {
    return segment_ != nullptr ? segment_->DictEntries() : 0;
  }

  /// Shared ownership of the current segment, for snapshot pinning: a
  /// serving Snapshot holds the returned pointer, so compaction (which
  /// installs a fresh segment) defers reclamation of this generation
  /// until the last pinning snapshot drops. Segments are self-contained
  /// (they copy row values out of the tuple set), so a pinned segment
  /// stays readable across any later mutation of this relation. The
  /// relation must be compact (CompactColumnar first).
  std::shared_ptr<const Segment> SharedSegment() const {
    PARK_CHECK(!ColumnarDirty()) << "SharedSegment on a dirty relation";
    return segment_;
  }

  /// Monotone generation counter: bumps on every segment (re)build, so
  /// two snapshots pin the same segment object iff they report the same
  /// generation for this relation.
  uint64_t segment_generation() const { return compactions_; }

 private:
  // Value -> tuples having that value in the indexed column. Pointers are
  // into `tuples_` (node-based, so stable until erase).
  using ColumnIndex = std::unordered_multimap<Value, const Tuple*, ValueHash>;

  void EnsureIndex(int column) const;
  void CompactColumnarImpl() const;
  static bool Matches(const Tuple& t, const TuplePattern& pattern);

  int arity_;
  RelationStats stats_;
  std::unordered_set<Tuple, TupleHash, TupleEq> tuples_;
  // indexes_[c] is built lazily; nullopt means "not built".
  mutable std::vector<std::optional<ColumnIndex>> indexes_;
  // Columnar state: nothing is tracked until the first Columnar() /
  // CompactColumnar() call builds a segment, so tuple-mode-only runs pay
  // zero overhead here. Erased segment rows are tombstoned by index and
  // their set nodes parked in `graveyard_` so every `segment_rows_`
  // pointer stays dereferenceable until the merge rebuilds the view.
  mutable std::shared_ptr<const Segment> segment_;
  mutable std::vector<const Tuple*> segment_rows_;
  mutable std::vector<const Tuple*> delta_adds_;  // insertion order
  mutable std::vector<uint32_t> tombstones_;      // erased segment rows
  mutable std::vector<std::unordered_set<Tuple, TupleHash, TupleEq>::node_type>
      graveyard_;
  mutable uint64_t compactions_ = 0;
  mutable bool frozen_ = false;
};

}  // namespace park

#endif  // PARK_STORAGE_RELATION_H_
