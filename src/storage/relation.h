// Relation: the tuple store for one predicate.
//
// A Relation is an unordered set of Tuples plus lazily built, incrementally
// maintained per-column hash indexes. The engine's body matcher asks for
// tuples matching a partial binding; when some column of the binding is
// bound, the relation answers via a column index instead of a full scan.

#ifndef PARK_STORAGE_RELATION_H_
#define PARK_STORAGE_RELATION_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/relation_stats.h"
#include "storage/tuple.h"
#include "util/function_ref.h"

namespace park {

/// A partial binding over the columns of a relation: `std::nullopt` means
/// "any value". Used as the query form for Relation::ForEachMatching.
using TuplePattern = std::vector<std::optional<Value>>;

/// Tuple set with on-demand column indexes.
///
/// Thread safety: mutation is single-threaded, but read-only access from
/// many threads is supported via index freezing. The lazy index build in
/// ForEachMatching mutates under `const`, so a concurrent reader could
/// observe a half-built index; the parallel Γ evaluator therefore calls
/// BuildIndex for every column its plans will probe and then
/// FreezeIndexes() before fanning out. While frozen, any operation that
/// would mutate the relation — a lazy index build included — fails loudly
/// instead of racing.
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity), stats_(arity) {}

  // Relations are heavyweight; copying is explicit via Clone().
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// Deep copy without the indexes (they rebuild on demand) and without
  /// the frozen flag.
  Relation Clone() const;

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `t`; returns true if the tuple was not already present.
  /// `t.arity()` must equal the relation arity. Must not be frozen.
  bool Insert(const Tuple& t);

  /// Removes `t`; returns true if it was present. Must not be frozen.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const { return tuples_.contains(t); }

  /// Invokes `fn` for every tuple, in unspecified order. `fn` must not
  /// mutate this relation.
  void ForEach(FunctionRef<void(const Tuple&)> fn) const;

  /// Invokes `fn` for every tuple consistent with `pattern` (same arity;
  /// bound positions must match exactly). Uses the most selective column
  /// index among bound positions, building it on first use — unless the
  /// relation is frozen, in which case the index must already exist.
  void ForEachMatching(const TuplePattern& pattern,
                       FunctionRef<void(const Tuple&)> fn) const;

  /// ForEachMatching with the probe column chosen by the caller (the
  /// cost-based planner picks the most selective bound column instead of
  /// the first one). `probe_column` must be a bound pattern position, or
  /// -1 for a full scan. Every tuple passed to `fn` is a stable pointer
  /// into this relation's storage (no temporary fast path), which is what
  /// lets the compiled matcher buffer `const Tuple*` candidates.
  void ForEachMatchingProbe(const TuplePattern& pattern, int probe_column,
                            FunctionRef<void(const Tuple&)> fn) const;

  /// Builds the hash index for `column` now (no-op if already built).
  /// This is the explicit prewarm used before a frozen parallel section;
  /// `const` because indexes are caches, like the lazy build.
  void BuildIndex(int column) const;

  bool HasIndex(int column) const {
    return static_cast<size_t>(column) < indexes_.size() &&
           indexes_[static_cast<size_t>(column)].has_value();
  }

  /// Enters read-only mode: concurrent ForEach/ForEachMatching/Contains
  /// are safe, and any attempted mutation (Insert, Erase, lazy index
  /// build) aborts with a check failure instead of racing.
  void FreezeIndexes() const { frozen_ = true; }
  void ThawIndexes() const { frozen_ = false; }
  bool frozen() const { return frozen_; }

  /// Live storage statistics (row count, per-column distinct estimates),
  /// maintained incrementally by Insert/Erase. The cost-based join
  /// planner reads these; see storage/relation_stats.h.
  const RelationStats& stats() const { return stats_; }

  /// All tuples, sorted — for deterministic printing and diffs.
  std::vector<Tuple> SortedTuples() const;

 private:
  // Value -> tuples having that value in the indexed column. Pointers are
  // into `tuples_` (node-based, so stable until erase).
  using ColumnIndex = std::unordered_multimap<Value, const Tuple*, ValueHash>;

  void EnsureIndex(int column) const;
  static bool Matches(const Tuple& t, const TuplePattern& pattern);

  int arity_;
  RelationStats stats_;
  std::unordered_set<Tuple, TupleHash> tuples_;
  // indexes_[c] is built lazily; nullopt means "not built".
  mutable std::vector<std::optional<ColumnIndex>> indexes_;
  mutable bool frozen_ = false;
};

}  // namespace park

#endif  // PARK_STORAGE_RELATION_H_
