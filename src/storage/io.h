// File persistence for databases and programs.
//
// The on-disk formats are exactly the surface syntax the parser accepts
// (fact files and rule files), so snapshots are human-readable, diffable,
// and round-trip losslessly through the parser/printer pair.
//
// All writes route through a park::Env (util/env.h) and are atomic
// (temp file + rename), so durability code can be exercised under fault
// injection. See docs/DURABILITY.md.

#ifndef PARK_STORAGE_IO_H_
#define PARK_STORAGE_IO_H_

#include <memory>
#include <string>

#include "storage/database.h"
#include "util/env.h"

namespace park {

/// Writes `db` as a fact file (one sorted atom per line, trailing '.').
/// The write is atomic (temp file + rename) and, in the two-argument
/// form, durable (the temp file is fsynced before the rename). The
/// reader side (ReadDatabaseFile) lives in lang/io.h, which has the
/// parser available.
Status WriteDatabaseFile(const Database& db, const std::string& path);
Status WriteDatabaseFile(const Database& db, const std::string& path,
                         Env* env, bool sync);

/// Reads an entire file into a string. Shared helper for the lang-level
/// readers; returns kNotFound iff the file does not exist, and kInternal
/// for any other failure (permissions, path is a directory, read error).
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path` atomically (temp file + rename). The
/// four-argument form selects the Env and whether the temp file is
/// fsynced before the rename.
Status WriteStringToFile(const std::string& contents,
                         const std::string& path);
Status WriteStringToFile(const std::string& contents,
                         const std::string& path, Env* env, bool sync);

}  // namespace park

#endif  // PARK_STORAGE_IO_H_
