// File persistence for databases and programs.
//
// The on-disk formats are exactly the surface syntax the parser accepts
// (fact files and rule files), so snapshots are human-readable, diffable,
// and round-trip losslessly through the parser/printer pair.

#ifndef PARK_STORAGE_IO_H_
#define PARK_STORAGE_IO_H_

#include <memory>
#include <string>

#include "storage/database.h"

namespace park {

/// Writes `db` as a fact file (one sorted atom per line, trailing '.').
/// The write is atomic: a temp file is written and renamed over `path`.
/// The reader side (ReadDatabaseFile) lives in lang/io.h, which has the
/// parser available.
Status WriteDatabaseFile(const Database& db, const std::string& path);

/// Reads an entire file into a string. Shared helper for the lang-level
/// readers; returns kNotFound if the file cannot be opened.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path` atomically (temp file + rename).
Status WriteStringToFile(const std::string& contents,
                         const std::string& path);

}  // namespace park

#endif  // PARK_STORAGE_IO_H_
