#include "storage/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace park {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError(StrFormat("cannot open %s: %s", path.c_str(),
                                   std::strerror(errno)));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return InternalError(StrFormat("read error on %s", path.c_str()));
  }
  return buffer.str();
}

Status WriteStringToFile(const std::string& contents,
                         const std::string& path) {
  std::string temp_path = path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return InternalError(StrFormat("cannot open %s for writing: %s",
                                     temp_path.c_str(),
                                     std::strerror(errno)));
    }
    out << contents;
    out.flush();
    if (!out) {
      return InternalError(
          StrFormat("write error on %s", temp_path.c_str()));
    }
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    return InternalError(StrFormat("rename %s -> %s failed: %s",
                                   temp_path.c_str(), path.c_str(),
                                   std::strerror(errno)));
  }
  return Status::OK();
}

Status WriteDatabaseFile(const Database& db, const std::string& path) {
  std::string contents;
  for (const std::string& atom : db.SortedAtomStrings()) {
    contents += atom;
    contents += ".\n";
  }
  return WriteStringToFile(contents, path);
}

}  // namespace park
