#include "storage/io.h"

#include "util/env.h"

namespace park {

Result<std::string> ReadFileToString(const std::string& path) {
  return Env::Default()->ReadFileToString(path);
}

Status WriteStringToFile(const std::string& contents,
                         const std::string& path) {
  return WriteStringToFile(contents, path, Env::Default(), /*sync=*/false);
}

Status WriteStringToFile(const std::string& contents,
                         const std::string& path, Env* env, bool sync) {
  return AtomicWriteFile(env, contents, path, sync);
}

Status WriteDatabaseFile(const Database& db, const std::string& path,
                         Env* env, bool sync) {
  std::string contents;
  for (const std::string& atom : db.SortedAtomStrings()) {
    contents += atom;
    contents += ".\n";
  }
  return WriteStringToFile(contents, path, env, sync);
}

Status WriteDatabaseFile(const Database& db, const std::string& path) {
  // Snapshots default to a durable write: the temp file is fsynced
  // before the rename, so a crash leaves either the old or the new
  // snapshot, never a torn or empty one.
  return WriteDatabaseFile(db, path, Env::Default(), /*sync=*/true);
}

}  // namespace park
