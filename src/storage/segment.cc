#include "storage/segment.h"

#include <algorithm>

#include "util/logging.h"

namespace park {

Segment Segment::Build(int arity, const std::vector<const Tuple*>& rows) {
  Segment seg;
  seg.arity_ = arity;
  PARK_CHECK(rows.size() < UINT32_MAX) << "segment row count overflow";
  seg.num_rows_ = static_cast<uint32_t>(rows.size());
  seg.columns_.reserve(static_cast<size_t>(arity));
  std::vector<Value> values(rows.size());
  for (int c = 0; c < arity; ++c) {
    for (size_t r = 0; r < rows.size(); ++r) values[r] = (*rows[r])[c];
    ColumnDictionary dict = ColumnDictionary::FromValues(values);
    std::vector<uint32_t> codes(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      codes[r] = *dict.CodeFor((*rows[r])[c]);
    }
    seg.columns_.emplace_back(std::move(dict), std::move(codes));
  }
  seg.row_values_.reserve(rows.size() * static_cast<size_t>(arity));
  for (const Tuple* row : rows) {
    for (int c = 0; c < arity; ++c) seg.row_values_.push_back((*row)[c]);
  }
  if (!rows.empty()) {
    size_t slots = 4;
    while (slots < rows.size() * 2) slots <<= 1;
    seg.probe_slots_.assign(slots, 0);
    seg.probe_mask_ = slots - 1;
    for (uint32_t r = 0; r < seg.num_rows_; ++r) {
      size_t slot = MixHash(TupleHash{}(TupleSpan{
                        seg.row(r), static_cast<size_t>(arity)})) &
                    seg.probe_mask_;
      while (seg.probe_slots_[slot] != 0) {
        slot = (slot + 1) & seg.probe_mask_;
      }
      seg.probe_slots_[slot] = r + 1;
    }
  }
  return seg;
}

uint64_t Segment::DictEntries() const {
  uint64_t total = 0;
  for (const Column& col : columns_) total += col.dictionary().size();
  return total;
}

}  // namespace park
