#include "storage/tuple.h"

namespace park {

std::string Tuple::ToString(const SymbolTable& table) const {
  if (values_.empty()) return "";
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString(table);
  }
  out += ")";
  return out;
}

size_t Tuple::Hash() const {
  size_t seed = 0x51ed270b;
  for (const Value& v : values_) seed = HashCombine(seed, v.Hash());
  return seed;
}

}  // namespace park
