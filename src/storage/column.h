// Column: one dictionary-encoded attribute of an immutable Segment.
//
// A column stores, for every segment row, a 32-bit code into a sorted
// per-column dictionary. Codes are assigned in value-sort order, so
// comparing codes compares values: a column's code sequence ordered by
// the segment's lexicographic row order is non-decreasing for column 0,
// and every column additionally carries a (code, row)-sorted permutation
// of the row indexes so equality probes on ANY column resolve to a
// contiguous permutation range by binary search — no hash index, no
// pointer chasing.

#ifndef PARK_STORAGE_COLUMN_H_
#define PARK_STORAGE_COLUMN_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace park {

/// The sorted distinct values of one column. The code of a value is its
/// rank: ValueFor(CodeFor(v)) == v and code order == value order.
class ColumnDictionary {
 public:
  ColumnDictionary() = default;

  /// Builds from an arbitrary value sequence (sorted + deduplicated here).
  static ColumnDictionary FromValues(std::vector<Value> values);

  uint32_t size() const { return static_cast<uint32_t>(sorted_.size()); }
  bool empty() const { return sorted_.empty(); }

  const Value& ValueFor(uint32_t code) const {
    return sorted_[static_cast<size_t>(code)];
  }

  /// Rank of `v`, or nullopt when `v` is not in the dictionary.
  std::optional<uint32_t> CodeFor(const Value& v) const;

 private:
  std::vector<Value> sorted_;
};

/// One segment attribute: the dictionary, one code per row, and the
/// row permutation sorted by (code, row) — stable, so rows with equal
/// values keep segment order inside their equal range.
class Column {
 public:
  Column() = default;
  Column(ColumnDictionary dict, std::vector<uint32_t> codes);

  uint32_t num_rows() const { return static_cast<uint32_t>(codes_.size()); }
  const ColumnDictionary& dictionary() const { return dict_; }

  uint32_t code(uint32_t row) const { return codes_[static_cast<size_t>(row)]; }
  const Value& value(uint32_t row) const { return dict_.ValueFor(code(row)); }

  /// Row index at sorted position `pos` (see EqualRange).
  uint32_t RowAt(uint32_t pos) const { return perm_[static_cast<size_t>(pos)]; }

  /// Half-open [lo, hi) of sorted positions whose rows hold `v`; empty
  /// ({0, 0}) when `v` is absent. Positions map to rows via RowAt, in
  /// ascending row order within the range.
  std::pair<uint32_t, uint32_t> EqualRange(const Value& v) const;
  std::pair<uint32_t, uint32_t> EqualRangeByCode(uint32_t code) const;

 private:
  ColumnDictionary dict_;
  std::vector<uint32_t> codes_;
  std::vector<uint32_t> perm_;  // row indexes sorted by (code, row)
};

}  // namespace park

#endif  // PARK_STORAGE_COLUMN_H_
