// RelationStats: cheap, incrementally maintained per-relation statistics
// for the cost-based join planner (docs/PLANNER.md).
//
// Per relation the planner needs two numbers: how many rows a scan would
// visit (exact — the tuple set knows its size) and, per column, roughly
// how many distinct values a column-index probe would divide those rows
// by. Distinct counts are estimated with a fixed-size counting sketch:
// each column owns kBuckets counters, a value hashing to bucket b
// increments counter[b] on insert and decrements it on delete, and the
// distinct-value estimate is read off the occupied-bucket fraction with
// the linear-counting formula n ≈ -K·ln(empty/K). Because the sketch
// stores exact multiset counts (not bits), deletions are handled exactly:
// the sketch state is a pure function of the stored multiset, so the
// estimate never drifts under churn — the property relation_stats_test
// pins down. Error: within a few percent while the true distinct count is
// below ~K/2, saturating smoothly toward K·ln(K) above; the planner only
// needs relative magnitudes, so saturation is benign.
//
// Everything here is deterministic (a fixed hash, no randomness), which
// the planner's determinism argument relies on: identical databases give
// identical statistics give identical plans.

#ifndef PARK_STORAGE_RELATION_STATS_H_
#define PARK_STORAGE_RELATION_STATS_H_

#include <cstdint>
#include <vector>

#include "storage/tuple.h"

namespace park {

class RelationStats {
 public:
  /// Buckets per column sketch. 512 × 4 bytes = 2 KiB per column — small
  /// enough to keep always-on, large enough that the estimate is sharp
  /// for the distinct counts that change plan choices.
  static constexpr size_t kBuckets = 512;

  RelationStats() = default;
  explicit RelationStats(int arity) : arity_(arity) {}

  int arity() const { return arity_; }
  /// Exact row count (mirrors the owning Relation's size).
  size_t rows() const { return rows_; }

  /// Incremental maintenance; called by Relation::Insert / Erase with
  /// tuples that actually entered / left the set.
  void OnInsert(const Tuple& t);
  void OnErase(const Tuple& t);

  /// Estimated number of distinct values in `column`, in [0, rows()].
  /// Exact (0) for an empty relation; never returns 0 for a non-empty one.
  double DistinctEstimate(int column) const;

  /// Estimated rows matching an equality probe on `column`:
  /// rows / distinct(column), the planner's per-bound-column selectivity.
  double SelectivityRows(int column) const;

  /// Discards everything (companion to a relation-wide clear).
  void Clear();

 private:
  int arity_ = 0;
  size_t rows_ = 0;
  // sketches_[c][b]: number of stored values of column c hashing to b.
  // Built lazily on the first insert (cleared relations stay tiny).
  std::vector<std::vector<uint32_t>> sketches_;
};

}  // namespace park

#endif  // PARK_STORAGE_RELATION_STATS_H_
