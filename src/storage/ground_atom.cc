#include "storage/ground_atom.h"

namespace park {

std::string GroundAtom::ToString(const SymbolTable& table) const {
  std::string out = table.PredicateName(predicate_);
  out += args_.ToString(table);
  return out;
}

}  // namespace park
