#include "storage/symbol_table.h"

#include <mutex>

namespace park {

SymbolId SymbolTable::InternSymbol(std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = symbol_ids_.find(std::string(name));
  if (it != symbol_ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(symbol_names_.size());
  symbol_names_.emplace_back(name);
  symbol_ids_.emplace(symbol_names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::FindSymbol(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = symbol_ids_.find(std::string(name));
  if (it == symbol_ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& SymbolTable::SymbolName(SymbolId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  PARK_CHECK_LT(id, symbol_names_.size()) << "invalid symbol id";
  // Safe to return by reference: the deque never moves settled entries
  // and an interned name is immutable for the table's lifetime.
  return symbol_names_[id];
}

PredicateId SymbolTable::InternPredicate(std::string_view name, int arity) {
  PARK_CHECK_GE(arity, 0);
  std::string key(name);
  key += '/';
  key += std::to_string(arity);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = predicate_ids_.find(key);
  if (it != predicate_ids_.end()) return it->second;
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(PredicateInfo{std::string(name), arity});
  predicate_ids_.emplace(std::move(key), id);
  return id;
}

std::optional<PredicateId> SymbolTable::FindPredicate(std::string_view name,
                                                      int arity) const {
  std::string key(name);
  key += '/';
  key += std::to_string(arity);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = predicate_ids_.find(key);
  if (it == predicate_ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& SymbolTable::PredicateName(PredicateId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  PARK_CHECK_LT(id, predicates_.size()) << "invalid predicate id";
  return predicates_[id].name;
}

int SymbolTable::PredicateArity(PredicateId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  PARK_CHECK_LT(id, predicates_.size()) << "invalid predicate id";
  return predicates_[id].arity;
}

size_t SymbolTable::NumSymbols() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return symbol_names_.size();
}

size_t SymbolTable::NumPredicates() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return predicates_.size();
}

}  // namespace park
