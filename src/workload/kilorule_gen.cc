#include "workload/kilorule_gen.h"

#include <string>

#include "util/logging.h"
#include "util/string_util.h"

namespace park {

Workload MakeKiloruleWorkload(int chains, int levels, int facts) {
  PARK_CHECK_GE(chains, 1);
  PARK_CHECK_GE(levels, 1);
  PARK_CHECK_GE(facts, 1);
  Workload w(MakeSymbolTable());

  std::string text;
  text.reserve(static_cast<size_t>(chains) * levels * 80);
  // Three-literal bodies: anchor/guard are base-only (no rule writes
  // them), so they never wake a rule — but the unscheduled affectedness
  // scan still checks all three predicates of every rule every step,
  // like it would for real rules' wide bodies.
  for (int c = 0; c < chains; ++c) {
    for (int i = 0; i < levels; ++i) {
      text += StrFormat(
          "c%dl%d: p_%d_%d(X), anchor_%d(X), guard_%d(X) -> +p_%d_%d(X).\n",
          c, i, c, i, c, c, c, i + 1);
    }
  }
  // Recursive tail: a two-rule SCC, so stratification sees a non-trivial
  // component even though every chain is acyclic.
  text += "cyc1: cq(X) -> +cs(X).\n";
  text += "cyc2: cs(X) -> +cq(X).\n";

  auto program = ParseProgram(text, w.symbols);
  PARK_CHECK(program.ok()) << program.status().ToString();
  w.program = std::move(program).value();

  for (int c = 0; c < chains; ++c) {
    const std::string seed_pred = StrFormat("p_%d_0", c);
    const std::string anchor_pred = StrFormat("anchor_%d", c);
    const std::string guard_pred = StrFormat("guard_%d", c);
    for (int f = 0; f < facts; ++f) {
      w.database.Insert(IntAtom(w.symbols, seed_pred, f));
      w.database.Insert(IntAtom(w.symbols, anchor_pred, f));
      w.database.Insert(IntAtom(w.symbols, guard_pred, f));
    }
  }
  w.database.Insert(IntAtom(w.symbols, "cq", 0));

  w.description = StrFormat("kilorule chains=%d levels=%d facts=%d (%zu rules)",
                            chains, levels, facts, w.program.size());
  return w;
}

}  // namespace park
