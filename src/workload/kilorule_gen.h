// Kilorule workload: a program with thousands of rules of which only a
// handful are affected at any Γ step — the shape that makes per-step
// rule-selection cost (the all-rules affectedness scan the dependency
// scheduler eliminates, see docs/SCHEDULER.md) dominate the evaluation.
// No other generator produces this: the existing workloads have wide
// databases and narrow programs; this one has a wide program and a
// narrow, deep delta.

#ifndef PARK_WORKLOAD_KILORULE_GEN_H_
#define PARK_WORKLOAD_KILORULE_GEN_H_

#include "workload/workload.h"

namespace park {

/// `chains` independent derivation chains of `levels` rules each
/// (`p_c_i(X) -> +p_c_{i+1}(X)`), seeded with `facts` integer atoms in
/// each chain's level-0 predicate, plus a two-rule recursive block
/// (`cq(X) -> +cs(X)`, `cs(X) -> +cq(X)`) so the dependency graph has a
/// non-trivial SCC. Total rules: chains * levels + 2.
///
/// Under delta-filtered evaluation the run takes ~`levels` Γ steps, each
/// affecting exactly `chains` rules — so an unscheduled step scans
/// chains * levels rules to find `chains`, while the scheduled step pays
/// O(1) watcher lookups. The final step's delta wakes no rule at all
/// (the chain-tip predicates have no watchers), exercising the
/// quick-exit no-op step.
Workload MakeKiloruleWorkload(int chains, int levels, int facts);

}  // namespace park

#endif  // PARK_WORKLOAD_KILORULE_GEN_H_
