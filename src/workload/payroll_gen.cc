#include "workload/payroll_gen.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace park {
namespace {

constexpr char kPayrollRules[] = R"(
  cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
  cascade: -payroll(X, S) -> +audit(X).
  onboard: +emp(X) -> +active(X).
)";

}  // namespace

Workload MakePayrollWorkload(const PayrollParams& params) {
  PARK_CHECK_GE(params.num_employees, 1);
  Workload w(MakeSymbolTable());
  auto program = ParseProgram(kPayrollRules, w.symbols);
  PARK_CHECK(program.ok()) << program.status().ToString();
  w.program = std::move(program).value();

  Rng rng(params.seed);
  std::vector<std::string> active_names;
  for (int i = 0; i < params.num_employees; ++i) {
    std::string name = StrFormat("e%d", i);
    w.database.Insert(SymAtom(w.symbols, "emp", name));
    PredicateId payroll = w.symbols->InternPredicate("payroll", 2);
    w.database.Insert(GroundAtom(
        payroll, Tuple{Value::Symbol(w.symbols->InternSymbol(name)),
                       Value::Int(rng.UniformInt(30'000, 200'000))}));
    if (!rng.Bernoulli(params.inactive_fraction)) {
      w.database.Insert(SymAtom(w.symbols, "active", name));
      active_names.push_back(name);
    }
  }

  rng.Shuffle(active_names);
  int deactivations =
      std::min<int>(params.num_deactivations,
                    static_cast<int>(active_names.size()));
  for (int i = 0; i < deactivations; ++i) {
    w.updates.AddDelete(SymAtom(w.symbols, "active", active_names[i]));
  }

  w.description = StrFormat(
      "payroll n=%d inactive=%.2f deactivate=%d", params.num_employees,
      params.inactive_fraction, deactivations);
  return w;
}

}  // namespace park
