#include "workload/workload.h"

namespace park {

GroundAtom IntAtom(const std::shared_ptr<SymbolTable>& symbols,
                   std::string_view predicate, int64_t n) {
  PredicateId pred = symbols->InternPredicate(predicate, 1);
  return GroundAtom(pred, Tuple{Value::Int(n)});
}

GroundAtom IntAtom2(const std::shared_ptr<SymbolTable>& symbols,
                    std::string_view predicate, int64_t a, int64_t b) {
  PredicateId pred = symbols->InternPredicate(predicate, 2);
  return GroundAtom(pred, Tuple{Value::Int(a), Value::Int(b)});
}

GroundAtom SymAtom(const std::shared_ptr<SymbolTable>& symbols,
                   std::string_view predicate, std::string_view name) {
  PredicateId pred = symbols->InternPredicate(predicate, 1);
  return GroundAtom(pred,
                    Tuple{Value::Symbol(symbols->InternSymbol(name))});
}

}  // namespace park
