// Conflict workloads: programs with a controllable number of rules and a
// controllable fraction of insert/delete conflicts, plus chain workloads
// that make each conflict-triggered restart expensive. Used for the C2
// (|P| scaling), C7 (conflict density) and restart-cost experiments.

#ifndef PARK_WORKLOAD_CONFLICT_GEN_H_
#define PARK_WORKLOAD_CONFLICT_GEN_H_

#include <cstdint>

#include "workload/workload.h"

namespace park {

/// `num_pairs` independent targets t(i), each driven by a ground rule
/// `s(i) -> +t(i).`; a `conflict_fraction` of them additionally get
/// `s(i) -> -t(i).`, creating one conflict each. |P| grows linearly in
/// `num_pairs`; every conflicted target costs one resolution.
Workload MakeConflictPairsWorkload(int num_pairs, double conflict_fraction,
                                   uint64_t seed);

/// A derivation chain of length `chain_len`
///   c0 -> +c1, c1 -> +c2, ..., c_{k-1} -> +c_k   (as ground rules on c(i))
/// whose tail then conflicts: `c(k) -> +boom.` vs `c(k) -> -boom.`
/// Every restart recomputes the whole chain, so the restart cost is
/// proportional to chain_len: the workload isolates the "resume from I°"
/// cost model of the Δ operator.
Workload MakeRestartChainWorkload(int chain_len, int num_conflicts);

}  // namespace park

#endif  // PARK_WORKLOAD_CONFLICT_GEN_H_
