#include "workload/conflict_gen.h"

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace park {

Workload MakeConflictPairsWorkload(int num_pairs, double conflict_fraction,
                                   uint64_t seed) {
  PARK_CHECK_GE(num_pairs, 1);
  Workload w(MakeSymbolTable());
  Rng rng(seed);

  std::string rules;
  for (int i = 0; i < num_pairs; ++i) {
    w.database.Insert(IntAtom(w.symbols, "s", i));
    rules += StrFormat("s(%d) -> +t(%d).\n", i, i);
    if (rng.Bernoulli(conflict_fraction)) {
      rules += StrFormat("s(%d) -> -t(%d).\n", i, i);
    }
  }
  auto program = ParseProgram(rules, w.symbols);
  PARK_CHECK(program.ok()) << program.status().ToString();
  w.program = std::move(program).value();
  w.description = StrFormat("conflict-pairs n=%d f=%.2f", num_pairs,
                            conflict_fraction);
  return w;
}

Workload MakeRestartChainWorkload(int chain_len, int num_conflicts) {
  PARK_CHECK_GE(chain_len, 1);
  PARK_CHECK_GE(num_conflicts, 0);
  Workload w(MakeSymbolTable());
  w.database.Insert(IntAtom(w.symbols, "c", 0));

  std::string rules;
  for (int i = 0; i < chain_len; ++i) {
    rules += StrFormat("c(%d) -> +c(%d).\n", i, i + 1);
  }
  // Conflicts are staggered along the chain so they surface at different
  // Γ steps: each one forces its own restart that replays the prefix.
  for (int j = 0; j < num_conflicts; ++j) {
    int pos = num_conflicts == 1
                  ? chain_len
                  : 1 + static_cast<int>((static_cast<int64_t>(j) *
                                          (chain_len - 1)) /
                                         (num_conflicts - 1));
    rules += StrFormat("c(%d) -> +boom(%d).\n", pos, j);
    rules += StrFormat("c(%d) -> -boom(%d).\n", pos, j);
  }
  auto program = ParseProgram(rules, w.symbols);
  PARK_CHECK(program.ok()) << program.status().ToString();
  w.program = std::move(program).value();
  w.description =
      StrFormat("restart-chain len=%d conflicts=%d", chain_len,
                num_conflicts);
  return w;
}

}  // namespace park
