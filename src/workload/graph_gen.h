// Graph workloads: recursive transitive-closure programs (the "Basic
// Inference Engine must deal with recursive active rules" requirement) and
// the paper's §4.2 irreflexive/transitivity-free graph example scaled to n
// nodes.

#ifndef PARK_WORKLOAD_GRAPH_GEN_H_
#define PARK_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>

#include "workload/workload.h"

namespace park {

enum class GraphShape {
  kPath,    // 0 -> 1 -> ... -> n-1 (closure has maximal depth)
  kCycle,   // path plus the closing edge
  kRandom,  // num_edges uniformly random distinct ordered pairs
};

/// Conflict-free recursive closure: facts edge(a, b); rules
///   tc1: edge(X, Y) -> +path(X, Y).
///   tc2: path(X, Y), edge(Y, Z) -> +path(X, Z).
/// `num_edges` is ignored for kPath/kCycle.
Workload MakeTransitiveClosureWorkload(GraphShape shape, int num_nodes,
                                       int num_edges, uint64_t seed);

/// The §4.2 example over n nodes: D = {p(0), ..., p(n-1)} and
///   r1: p(X), p(Y) -> +q(X, Y).
///   r2: q(X, X) -> -q(X, X).
///   r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
/// Needs a policy that decides per atom; see MakeIrreflexiveGraphPolicy.
Workload MakeIrreflexiveGraphWorkload(int num_nodes);

/// The paper's custom SELECT for the §4.2 example, generalized: conflicts
/// on q(x, x) resolve to delete (no self loops); conflicts on q(x, y) with
/// |x - y| > 1 resolve to delete (drop "long" arcs, the paper's a--c
/// case); all other conflicts resolve to insert (keep adjacent arcs).
PolicyPtr MakeIrreflexiveGraphPolicy();

}  // namespace park

#endif  // PARK_WORKLOAD_GRAPH_GEN_H_
