// The payroll workload: the paper's motivating example from §2 scaled up —
// non-active employees lose their payroll records — extended with an ECA
// cascade (event literals) for the transaction-throughput experiment C9.

#ifndef PARK_WORKLOAD_PAYROLL_GEN_H_
#define PARK_WORKLOAD_PAYROLL_GEN_H_

#include <cstdint>

#include "workload/workload.h"

namespace park {

struct PayrollParams {
  int num_employees = 100;
  /// Fraction of employees NOT in `active` (their payroll rows are doomed).
  double inactive_fraction = 0.1;
  /// Number of `-active(e)` transaction updates to stage (the commit then
  /// cascades payroll deletion and auditing through the rules).
  int num_deactivations = 0;
  uint64_t seed = 42;
};

/// Facts: emp(e_i), payroll(e_i, salary), active(e_i) for the active
/// subset. Rules:
///   cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).  (§2)
///   cascade: -payroll(X, S) -> +audit(X).        (ECA: react to deletion)
///   onboard: +emp(X) -> +active(X).              (ECA: react to insertion)
/// Updates: `-active(e)` for `num_deactivations` random active employees.
Workload MakePayrollWorkload(const PayrollParams& params);

}  // namespace park

#endif  // PARK_WORKLOAD_PAYROLL_GEN_H_
