#include "workload/graph_gen.h"

#include <unordered_set>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace park {
namespace {

constexpr char kClosureRules[] = R"(
  tc1: edge(X, Y) -> +path(X, Y).
  tc2: path(X, Y), edge(Y, Z) -> +path(X, Z).
)";

constexpr char kIrreflexiveRules[] = R"(
  r1: p(X), p(Y) -> +q(X, Y).
  r2: q(X, X) -> -q(X, X).
  r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
)";

void AddEdge(Workload& w, int64_t a, int64_t b) {
  w.database.Insert(IntAtom2(w.symbols, "edge", a, b));
}

}  // namespace

Workload MakeTransitiveClosureWorkload(GraphShape shape, int num_nodes,
                                       int num_edges, uint64_t seed) {
  PARK_CHECK_GE(num_nodes, 2);
  Workload w(MakeSymbolTable());
  auto program = ParseProgram(kClosureRules, w.symbols);
  PARK_CHECK(program.ok()) << program.status().ToString();
  w.program = std::move(program).value();

  switch (shape) {
    case GraphShape::kPath:
      for (int i = 0; i + 1 < num_nodes; ++i) AddEdge(w, i, i + 1);
      w.description = StrFormat("closure/path n=%d", num_nodes);
      break;
    case GraphShape::kCycle:
      for (int i = 0; i + 1 < num_nodes; ++i) AddEdge(w, i, i + 1);
      AddEdge(w, num_nodes - 1, 0);
      w.description = StrFormat("closure/cycle n=%d", num_nodes);
      break;
    case GraphShape::kRandom: {
      Rng rng(seed);
      std::unordered_set<int64_t> used;
      int added = 0;
      while (added < num_edges) {
        int64_t a = rng.UniformInt(0, num_nodes - 1);
        int64_t b = rng.UniformInt(0, num_nodes - 1);
        if (a == b) continue;
        int64_t key = a * num_nodes + b;
        if (!used.insert(key).second) continue;
        AddEdge(w, a, b);
        ++added;
      }
      w.description =
          StrFormat("closure/random n=%d m=%d", num_nodes, num_edges);
      break;
    }
  }
  return w;
}

Workload MakeIrreflexiveGraphWorkload(int num_nodes) {
  PARK_CHECK_GE(num_nodes, 2);
  Workload w(MakeSymbolTable());
  auto program = ParseProgram(kIrreflexiveRules, w.symbols);
  PARK_CHECK(program.ok()) << program.status().ToString();
  w.program = std::move(program).value();
  for (int i = 0; i < num_nodes; ++i) {
    w.database.Insert(IntAtom(w.symbols, "p", i));
  }
  w.description = StrFormat("irreflexive-graph n=%d", num_nodes);
  return w;
}

PolicyPtr MakeIrreflexiveGraphPolicy() {
  return MakeLambdaPolicy(
      "irreflexive-graph",
      [](const PolicyContext&, const Conflict& conflict) -> Result<Vote> {
        const Tuple& args = conflict.atom.args();
        if (args.arity() != 2) return Vote::kAbstain;
        const Value& x = args[0];
        const Value& y = args[1];
        if (x == y) return Vote::kDelete;
        if (x.is_int() && y.is_int()) {
          int64_t dist = x.int_value() - y.int_value();
          if (dist < 0) dist = -dist;
          return dist > 1 ? Vote::kDelete : Vote::kInsert;
        }
        return Vote::kInsert;
      });
}

}  // namespace park
