// Workloads: generated (program, database, updates) triples used by the
// benchmark harness and the randomized property tests. Each generator is
// deterministic in its parameters (and seed, where applicable).

#ifndef PARK_WORKLOAD_WORKLOAD_H_
#define PARK_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>

#include "eca/update.h"
#include "lang/parser.h"

namespace park {

/// One benchmarkable scenario. Move-only (owns a Database and Program that
/// share `symbols`).
struct Workload {
  std::shared_ptr<SymbolTable> symbols;
  Program program;
  Database database;
  UpdateSet updates;
  std::string description;

  explicit Workload(std::shared_ptr<SymbolTable> s)
      : symbols(s), program(s), database(s) {}
  Workload(Workload&&) = default;
  Workload& operator=(Workload&&) = default;
};

/// Builds a ground atom `predicate(n)` over `symbols` with an integer arg.
GroundAtom IntAtom(const std::shared_ptr<SymbolTable>& symbols,
                   std::string_view predicate, int64_t n);

/// Builds a ground atom `predicate(a, b)` with two integer args.
GroundAtom IntAtom2(const std::shared_ptr<SymbolTable>& symbols,
                    std::string_view predicate, int64_t a, int64_t b);

/// Builds a ground atom `predicate(name)` with a symbol arg.
GroundAtom SymAtom(const std::shared_ptr<SymbolTable>& symbols,
                   std::string_view predicate, std::string_view name);

}  // namespace park

#endif  // PARK_WORKLOAD_WORKLOAD_H_
