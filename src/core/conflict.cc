#include "core/conflict.h"

#include <algorithm>

#include "util/logging.h"

namespace park {
namespace {

void SortUnique(std::vector<RuleGrounding>& groundings) {
  std::sort(groundings.begin(), groundings.end());
  groundings.erase(std::unique(groundings.begin(), groundings.end()),
                   groundings.end());
}

}  // namespace

std::string Conflict::ToString(const Program& program,
                               const SymbolTable& symbols) const {
  std::string out = atom.ToString(symbols);
  out += ": ins={";
  for (size_t i = 0; i < inserters.size(); ++i) {
    if (i > 0) out += ", ";
    out += inserters[i].ToString(program, symbols);
  }
  out += "} del={";
  for (size_t i = 0; i < deleters.size(); ++i) {
    if (i > 0) out += ", ";
    out += deleters[i].ToString(program, symbols);
  }
  out += "}";
  return out;
}

std::vector<Conflict> BuildConflicts(const GammaResult& gamma,
                                     const IInterpretation& interp) {
  std::vector<Conflict> conflicts;
  conflicts.reserve(gamma.clashing_atoms.size());
  for (const GroundAtom& atom : gamma.clashing_atoms) {
    Conflict conflict;
    conflict.atom = atom;
    // Currently firable instances — the paper's one-step lookahead.
    for (const Derivation& d : gamma.derivations) {
      if (d.atom != atom) continue;
      if (d.action == ActionKind::kInsert) {
        conflict.inserters.push_back(d.grounding);
      } else {
        conflict.deleters.push_back(d.grounding);
      }
    }
    // Provenance completion: if one side of the clash is a mark already in
    // I whose deriving bodies are no longer valid, the instances that
    // derived it are still the ones to hold responsible (DESIGN.md §2).
    if (const auto* prov = interp.Provenance(ActionKind::kInsert, atom)) {
      conflict.inserters.insert(conflict.inserters.end(), prov->begin(),
                                prov->end());
    }
    if (const auto* prov = interp.Provenance(ActionKind::kDelete, atom)) {
      conflict.deleters.insert(conflict.deleters.end(), prov->begin(),
                               prov->end());
    }
    SortUnique(conflict.inserters);
    SortUnique(conflict.deleters);
    PARK_CHECK(!conflict.inserters.empty() && !conflict.deleters.empty())
        << "conflict with an empty side";
    conflicts.push_back(std::move(conflict));
  }
  return conflicts;
}

}  // namespace park
