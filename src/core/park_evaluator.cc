#include "core/park_evaluator.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>

#include "engine/rule_graph.h"
#include "util/cancellation.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace park {
namespace {

const char* GammaModeName(GammaMode mode) {
  switch (mode) {
    case GammaMode::kNaive: return "naive";
    case GammaMode::kDeltaFiltered: return "delta_filtered";
    case GammaMode::kSemiNaive: return "semi_naive";
  }
  return "unknown";
}

const char* PlannerModeName(PlannerMode mode) {
  switch (mode) {
    case PlannerMode::kHeuristic: return "heuristic";
    case PlannerMode::kCostBased: return "cost_based";
  }
  return "unknown";
}

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kTuple: return "tuple";
    case ExecMode::kBatch: return "batch";
  }
  return "unknown";
}

const char* SchedulerModeName(SchedulerMode mode) {
  switch (mode) {
    case SchedulerMode::kOff: return "off";
    case SchedulerMode::kDependency: return "dependency";
  }
  return "unknown";
}

const char* MaintenanceModeName(MaintenanceMode mode) {
  switch (mode) {
    case MaintenanceMode::kOff: return "off";
    case MaintenanceMode::kIncremental: return "incremental";
  }
  return "unknown";
}

/// Arms the run's CancellationToken from the options (deadline, memory /
/// derivation budgets, chained external cancel). Returns nullptr when no
/// governance is configured — the matcher and Γ workers then skip polling
/// entirely, keeping the ungoverned fast path free of even the stride
/// counters' branches.
CancellationToken* ArmRunToken(CancellationToken& token,
                               const ParkOptions& options,
                               std::chrono::steady_clock::time_point start) {
  if (options.deadline_ms <= 0 && options.cancel == nullptr &&
      options.max_memory_bytes == 0 && options.max_derivations == 0) {
    return nullptr;
  }
  if (options.deadline_ms > 0) {
    token.SetDeadline(start + std::chrono::milliseconds(options.deadline_ms));
  }
  if (options.max_memory_bytes > 0) {
    token.SetMemoryLimit(options.max_memory_bytes);
  }
  if (options.max_derivations > 0) {
    token.SetWorkLimit(options.max_derivations);
  }
  token.ChainParent(options.cancel);
  return &token;
}

/// Renders I ∪ {Γ-derived marks} — the inconsistent interpretation the
/// paper prints as a numbered step before resolving, never applied to I.
std::vector<std::string> RenderWithDerivations(
    const IInterpretation& interp, const std::vector<Derivation>& derived,
    const SymbolTable& symbols) {
  std::set<std::string> unmarked;
  std::set<std::string> plus;
  std::set<std::string> minus;
  interp.base().ForEach([&](const GroundAtom& atom) {
    unmarked.insert(atom.ToString(symbols));
  });
  interp.plus().ForEach([&](const GroundAtom& atom) {
    plus.insert("+" + atom.ToString(symbols));
  });
  interp.minus().ForEach([&](const GroundAtom& atom) {
    minus.insert("-" + atom.ToString(symbols));
  });
  for (const Derivation& d : derived) {
    if (d.action == ActionKind::kInsert) {
      plus.insert("+" + d.atom.ToString(symbols));
    } else {
      minus.insert("-" + d.atom.ToString(symbols));
    }
  }
  std::vector<std::string> out;
  out.reserve(unmarked.size() + plus.size() + minus.size());
  out.insert(out.end(), unmarked.begin(), unmarked.end());
  out.insert(out.end(), plus.begin(), plus.end());
  out.insert(out.end(), minus.begin(), minus.end());
  return out;
}

/// Renders the provenance of every marked atom of the final fixpoint.
std::vector<AtomProvenance> RenderProvenance(const IInterpretation& interp,
                                             const Program& program) {
  const SymbolTable& symbols = *program.symbols();
  std::vector<AtomProvenance> out;
  auto collect = [&](ActionKind action, const Database& marked) {
    marked.ForEach([&](const GroundAtom& atom) {
      AtomProvenance entry;
      entry.atom = ActionKindSign(action) + atom.ToString(symbols);
      if (const auto* derivations = interp.Provenance(action, atom)) {
        for (const RuleGrounding& g : *derivations) {
          entry.derived_by.push_back(g.ToString(program, symbols));
        }
        std::sort(entry.derived_by.begin(), entry.derived_by.end());
      }
      out.push_back(std::move(entry));
    });
  };
  collect(ActionKind::kInsert, interp.plus());
  collect(ActionKind::kDelete, interp.minus());
  std::sort(out.begin(), out.end(),
            [](const AtomProvenance& a, const AtomProvenance& b) {
              return a.atom < b.atom;
            });
  return out;
}

/// Renders the final blocked set, sorted, for ParkResult.
std::vector<std::string> RenderBlocked(const BlockedSet& blocked,
                                       const Program& program) {
  std::vector<std::string> out;
  out.reserve(blocked.size());
  for (const RuleGrounding& g : blocked) {
    out.push_back(g.ToString(program, *program.symbols()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Status ValidateOptions(const ParkOptions& options) {
  if (options.num_threads < 0) {
    return InvalidArgumentError(StrFormat(
        "num_threads must be >= 0 (0 = one per hardware thread), got %d",
        options.num_threads));
  }
  if (options.min_slice_size == 0) {
    return InvalidArgumentError(
        "min_slice_size must be >= 1 (1 = finest intra-rule slicing)");
  }
  if (options.max_steps == 0) {
    return InvalidArgumentError("max_steps must be >= 1");
  }
  if (options.deadline_ms < 0) {
    return InvalidArgumentError(StrFormat(
        "deadline_ms must be >= 0 (0 = unlimited), got %lld",
        static_cast<long long>(options.deadline_ms)));
  }
  if (options.io_max_retries < 0) {
    return InvalidArgumentError(StrFormat(
        "io_max_retries must be >= 0 (0 = no retries), got %d",
        options.io_max_retries));
  }
  if (options.io_backoff_ms < 0) {
    return InvalidArgumentError(StrFormat(
        "io_backoff_ms must be >= 0 (0 = retry without sleeping), got %lld",
        static_cast<long long>(options.io_backoff_ms)));
  }
  return Status::OK();
}

std::string ParkStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("park-stats-v1");
  w.Key("counters").BeginObject();
  w.Key("gamma_steps").UInt(gamma_steps);
  w.Key("restarts").UInt(restarts);
  w.Key("conflicts_resolved").UInt(conflicts_resolved);
  w.Key("blocked_instances").UInt(blocked_instances);
  w.Key("derived_marks").UInt(derived_marks);
  w.Key("policy_invocations").UInt(policy_invocations);
  w.Key("rule_evaluations").UInt(rule_evaluations);
  w.EndObject();
  w.Key("parallel").BeginObject();
  w.Key("num_threads").UInt(num_threads);
  w.Key("sections").UInt(parallel_sections);
  w.Key("tasks").UInt(parallel_tasks);
  w.Key("sliced_units").UInt(parallel_sliced_units);
  w.Key("slices").UInt(parallel_slices);
  w.Key("max_queue_depth").UInt(parallel_max_queue_depth);
  w.Key("mean_task_latency_ns")
      .UInt(parallel_tasks == 0 ? 0
                                : timings.pool_busy_ns / parallel_tasks);
  w.EndObject();
  w.Key("planner").BeginObject();
  w.Key("mode").String(PlannerModeName(planner_mode));
  w.Key("plans_compiled").UInt(plans_compiled);
  w.Key("cache_hits").UInt(plan_cache_hits);
  w.Key("replans").UInt(plan_replans);
  w.Key("estimated_rows").UInt(planner_estimated_rows);
  w.Key("actual_rows").UInt(planner_actual_rows);
  w.EndObject();
  w.Key("scheduler").BeginObject();
  w.Key("mode").String(SchedulerModeName(scheduler_mode));
  w.Key("rules_considered").UInt(sched_rules_considered);
  w.Key("rules_skipped").UInt(sched_rules_skipped);
  w.Key("strata").UInt(sched_strata);
  w.Key("pipeline_stages").UInt(sched_pipeline_stages);
  w.EndObject();
  w.Key("resource").BeginObject();
  w.Key("memory_limit_bytes").UInt(memory_limit_bytes);
  w.Key("peak_memory_bytes").UInt(peak_memory_bytes);
  w.Key("derivation_limit").UInt(derivation_limit);
  w.Key("derivations_charged").UInt(derivations_charged);
  w.EndObject();
  w.Key("io_retry").BeginObject();
  w.Key("attempts").UInt(io_attempts);
  w.Key("retries").UInt(io_retries);
  w.Key("backoff_ms_total").UInt(io_backoff_ms_total);
  w.Key("retries_exhausted").UInt(io_retries_exhausted);
  w.EndObject();
  w.Key("storage").BeginObject();
  w.Key("segments").UInt(storage_segments);
  w.Key("segment_rows").UInt(storage_segment_rows);
  w.Key("compactions").UInt(storage_compactions);
  w.Key("dict_entries").UInt(storage_dict_entries);
  w.EndObject();
  w.Key("exec").BeginObject();
  w.Key("mode").String(ExecModeName(exec_mode));
  w.Key("batch_rows").UInt(exec_batch_rows);
  w.Key("probe_rows").UInt(exec_probe_rows);
  w.Key("merge_rows").UInt(exec_merge_rows);
  w.EndObject();
  w.Key("serving").BeginObject();
  w.Key("batches").UInt(serving.batches);
  w.Key("batched_txns").UInt(serving.batched_txns);
  w.Key("max_batch_size").UInt(serving.max_batch_size);
  w.Key("batch_size_hist").BeginArray();
  for (uint64_t bucket : serving.batch_size_hist) w.UInt(bucket);
  w.EndArray();
  w.Key("poisoned_batches").UInt(serving.poisoned_batches);
  w.Key("individual_retries").UInt(serving.individual_retries);
  w.Key("snapshots_opened").UInt(serving.snapshots_opened);
  w.Key("snapshots_pinned").UInt(serving.snapshots_pinned);
  w.Key("segment_generations_retained")
      .UInt(serving.segment_generations_retained);
  w.EndObject();
  w.Key("maintenance").BeginObject();
  w.Key("mode").String(MaintenanceModeName(maintenance_mode));
  w.Key("maintained_commits").UInt(maint_commits);
  w.Key("atoms_overdeleted").UInt(maint_atoms_overdeleted);
  w.Key("atoms_rederived").UInt(maint_atoms_rederived);
  w.Key("cone_rules").UInt(maint_cone_rules);
  w.Key("full_recompute_fallbacks").UInt(maint_full_recompute_fallbacks);
  w.EndObject();
  w.Key("timings").BeginObject();
  w.Key("collected").Bool(timings.collected);
  w.Key("total_ns").UInt(timings.total_ns);
  w.Key("gamma_ns").UInt(timings.gamma_ns);
  w.Key("apply_ns").UInt(timings.apply_ns);
  w.Key("conflict_ns").UInt(timings.conflict_ns);
  w.Key("policy_ns").UInt(timings.policy_ns);
  w.Key("parallel_match_ns").UInt(timings.parallel_match_ns);
  w.Key("parallel_merge_ns").UInt(timings.parallel_merge_ns);
  w.Key("pool_busy_ns").UInt(timings.pool_busy_ns);
  w.EndObject();
  w.EndObject();
  return std::move(w).str();
}

Result<Program> ProgramWithUpdates(const Program& program,
                                   const std::vector<Update>& updates) {
  Program extended = program.Clone();
  const SymbolTable& symbols = *program.symbols();
  for (const Update& update : updates) {
    RuleParts parts;
    parts.head.action = update.action;
    parts.head.atom.predicate = update.atom.predicate();
    for (const Value& v : update.atom.args().values()) {
      parts.head.atom.terms.push_back(Term::Constant(v));
    }
    Status status = extended.AddRule(Rule(std::move(parts)));
    if (!status.ok()) {
      return status.WithContext(
          StrFormat("seeding update %s%s", ActionKindSign(update.action),
                    update.atom.ToString(symbols).c_str()));
    }
  }
  return extended;
}

Result<ParkResult> Park(const Program& program, const Database& db,
                        const ParkOptions& options) {
  PARK_CHECK(program.symbols() == db.symbols())
      << "program and database must share a symbol table";
  PolicyPtr policy = options.policy ? options.policy : MakeInertiaPolicy();

  IInterpretation interp(&db);
  BlockedSet blocked;
  ParkStats stats;
  Trace trace(options.trace_level);
  DeltaState delta;
  DeltaAtoms delta_atoms;
  const GammaMode mode = options.gamma_mode;
  const int num_threads = ResolveNumThreads(options.num_threads);
  std::optional<ParallelGamma> parallel_state;
  if (num_threads > 1) {
    parallel_state.emplace(program, num_threads, options.min_slice_size);
  }
  ParallelGamma* parallel =
      parallel_state.has_value() ? &*parallel_state : nullptr;
  stats.num_threads = static_cast<size_t>(num_threads);
  stats.planner_mode = options.planner_mode;
  stats.scheduler_mode = options.scheduler_mode;
  // Echoed so one-shot stats reports show the configured mode; the
  // maintenance counters themselves are owned by FixpointMaintainer and
  // ActiveDatabase (a bare Park() call is by definition from-scratch).
  stats.maintenance_mode = options.maintenance_mode;
  // The dependency graph behind delta-driven scheduling, built once per
  // evaluation. Naive Γ matches every rule every step by definition, so
  // the graph would never be consulted — skip building it.
  std::optional<RuleDependencyGraph> graph_state;
  if (options.scheduler_mode == SchedulerMode::kDependency &&
      mode != GammaMode::kNaive) {
    graph_state.emplace(program);
    stats.sched_strata = graph_state->num_strata();
  }
  const RuleDependencyGraph* graph =
      graph_state.has_value() ? &*graph_state : nullptr;
  const ExecMode exec = options.exec_mode;
  stats.exec_mode = exec;
  ExecStats exec_stats;
  ObserverHook observer(options.observer);
  PlanCache plans(program, options.planner_mode);
  if (options.observer != nullptr) {
    plans.set_compile_listener([&](const PlanExplanation& explanation) {
      observer.Notify(
          [&](RunObserver& o) { o.OnPlanCompiled(explanation); });
    });
  }
  const bool timed = options.collect_timings;
  stats.timings.collected = timed;
  if (timed && parallel != nullptr) parallel->EnableTiming();
  const int64_t run_start_ns = timed ? MonotonicNanos() : 0;
  const auto start_time = std::chrono::steady_clock::now();
  // Run governance: one token shared by every thread of this evaluation.
  // Null when no deadline / cancel / budget is configured.
  CancellationToken token;
  CancellationToken* cancel = ArmRunToken(token, options, start_time);
  // Coordinator-side memory scope: the merged Γ derivation list (workers
  // charge their own scratch + buffers while matching).
  CancellationToken::MemoryScope gamma_scope;
  int step = 0;

  trace.RecordInitial(interp, step);
  observer.Notify([&](RunObserver& o) {
    o.OnRunStart(RunStartInfo{program.size(), num_threads,
                              GammaModeName(mode)});
  });

  while (true) {
    if (static_cast<size_t>(step) >= options.max_steps) {
      return ResourceExhaustedError(StrFormat(
          "PARK evaluation exceeded max_steps=%zu", options.max_steps));
    }
    if (cancel != nullptr && cancel->Check()) return cancel->ToStatus();
    observer.Notify([&](RunObserver& o) { o.OnStepStart(step); });
    int64_t gamma_start_ns = timed ? MonotonicNanos() : 0;
    GammaResult gamma;
    switch (mode) {
      case GammaMode::kNaive:
        gamma = ComputeGamma(program, blocked, interp, parallel, &plans,
                             cancel, exec, &exec_stats);
        break;
      case GammaMode::kDeltaFiltered:
        gamma = ComputeGammaFiltered(program, blocked, interp, delta,
                                     parallel, &plans, cancel, exec,
                                     &exec_stats, graph);
        break;
      case GammaMode::kSemiNaive:
        gamma = ComputeGammaSemiNaive(program, blocked, interp, delta_atoms,
                                      parallel, &plans, cancel, exec,
                                      &exec_stats, graph);
        break;
    }
    if (timed) {
      stats.timings.gamma_ns +=
          static_cast<uint64_t>(MonotonicNanos() - gamma_start_ns);
    }
    // A fired token makes the Γ result partial: discard it and surface
    // the cause. The input database is untouched (evaluation mutates only
    // the copy-on-write interpretation, incorporated on success below).
    if (cancel != nullptr) {
      cancel->UpdateScope(gamma_scope, gamma.derivations.capacity() *
                                           sizeof(Derivation));
      if (cancel->Check()) return cancel->ToStatus();
    }
    stats.rule_evaluations += gamma.rules_evaluated;
    stats.sched_rules_considered += gamma.rules_considered;
    stats.sched_rules_skipped += gamma.rules_skipped;
    stats.sched_pipeline_stages += gamma.pipeline_stages;
    observer.Notify([&](RunObserver& o) {
      o.OnGammaSection(GammaSectionInfo{
          step, gamma.rules_evaluated, gamma.derivations.size(),
          gamma.newly_marked, gamma.consistent});
    });

    if (gamma.consistent) {
      if (gamma.newly_marked == 0) {
        // Γ(P,B)(I) = I: the bi-structure is a fixpoint of Δ.
        trace.RecordFixpoint(interp, step);
        observer.Notify([&](RunObserver& o) { o.OnFixpoint(step); });
        break;
      }
      int64_t apply_start_ns = timed ? MonotonicNanos() : 0;
      switch (mode) {
        case GammaMode::kNaive:
          stats.derived_marks += ApplyDerivations(gamma.derivations, interp);
          break;
        case GammaMode::kDeltaFiltered:
          stats.derived_marks +=
              ApplyDerivationsTracked(gamma.derivations, interp, delta);
          break;
        case GammaMode::kSemiNaive:
          stats.derived_marks += ApplyDerivationsTrackedAtoms(
              gamma.derivations, interp, delta_atoms);
          break;
      }
      if (timed) {
        stats.timings.apply_ns +=
            static_cast<uint64_t>(MonotonicNanos() - apply_start_ns);
      }
      ++stats.gamma_steps;
      ++step;
      trace.RecordGammaStep(interp, step);
      continue;
    }

    // Inconsistent: this Γ application is counted and shown as a step (the
    // paper's traces include it) but never applied; instead conflicts are
    // resolved, B is extended, and the computation restarts from I°.
    //
    // Conflict triples must be MAXIMAL (§4.2) — they need every currently
    // firable instance on each side, which a delta-driven evaluation may
    // have skipped — so recompute the full Γ before building them.
    if (mode != GammaMode::kNaive) {
      gamma_start_ns = timed ? MonotonicNanos() : 0;
      gamma = ComputeGamma(program, blocked, interp, parallel, &plans,
                           cancel, exec, &exec_stats);
      if (timed) {
        stats.timings.gamma_ns +=
            static_cast<uint64_t>(MonotonicNanos() - gamma_start_ns);
      }
      if (cancel != nullptr && cancel->Check()) return cancel->ToStatus();
      stats.rule_evaluations += gamma.rules_evaluated;
      stats.sched_rules_considered += gamma.rules_considered;
      stats.sched_rules_skipped += gamma.rules_skipped;
      stats.sched_pipeline_stages += gamma.pipeline_stages;
      observer.Notify([&](RunObserver& o) {
        o.OnGammaSection(GammaSectionInfo{
            step, gamma.rules_evaluated, gamma.derivations.size(),
            gamma.newly_marked, gamma.consistent});
      });
    }
    ++step;
    if (trace.level() == TraceLevel::kFull) {
      trace.RecordInconsistentStep(
          RenderWithDerivations(interp, gamma.derivations,
                                *program.symbols()),
          step);
    }
    const int64_t conflict_start_ns = timed ? MonotonicNanos() : 0;
    std::vector<Conflict> conflicts = BuildConflicts(gamma, interp);
    if (options.block_granularity == BlockGranularity::kFirstConflictOnly &&
        conflicts.size() > 1) {
      conflicts.resize(1);
    }
    if (trace.level() != TraceLevel::kNone) {
      std::vector<std::string> descriptions;
      descriptions.reserve(conflicts.size());
      for (const Conflict& c : conflicts) {
        descriptions.push_back(c.ToString(program, *program.symbols()));
      }
      trace.RecordConflict(std::move(descriptions), step);
    }

    PolicyContext context{db, program, interp,
                          static_cast<int>(stats.restarts)};
    size_t newly_blocked = 0;
    std::vector<std::string> resolution_notes;
    for (const Conflict& conflict : conflicts) {
      ++stats.policy_invocations;
      const int64_t policy_start_ns = timed ? MonotonicNanos() : 0;
      PARK_ASSIGN_OR_RETURN(Vote vote, policy->Select(context, conflict));
      if (timed) {
        stats.timings.policy_ns +=
            static_cast<uint64_t>(MonotonicNanos() - policy_start_ns);
      }
      if (vote == Vote::kAbstain) {
        return AbortedError(StrFormat(
            "policy '%s' abstained on conflict over %s; wrap it in a "
            "composite with a complete fallback (e.g. inertia)",
            std::string(policy->name()).c_str(),
            conflict.atom.ToString(*program.symbols()).c_str()));
      }
      ++stats.conflicts_resolved;
      observer.Notify(
          [&](RunObserver& o) { o.OnPolicyDecision(conflict, vote); });
      const std::vector<RuleGrounding>& losing =
          vote == Vote::kInsert ? conflict.deleters : conflict.inserters;
      for (const RuleGrounding& g : losing) {
        if (blocked.insert(g).second) ++newly_blocked;
      }
      if (trace.level() != TraceLevel::kNone) {
        resolution_notes.push_back(StrFormat(
            "%s on %s: block %zu instance(s)", VoteToString(vote),
            conflict.atom.ToString(*program.symbols()).c_str(),
            losing.size()));
      }
    }
    observer.Notify([&](RunObserver& o) {
      o.OnConflictRound(ConflictRoundInfo{stats.restarts, conflicts.size(),
                                          newly_blocked});
    });
    if (timed) {
      stats.timings.conflict_ns +=
          static_cast<uint64_t>(MonotonicNanos() - conflict_start_ns);
    }
    if (newly_blocked == 0) {
      return AbortedError(
          "conflict resolution made no progress (no new blocked "
          "instances); the policy decisions are cyclic");
    }
    trace.RecordResolution(std::move(resolution_notes), step);
    interp.ClearMarks();
    delta.Reset();
    delta_atoms.Reset();
    ++stats.restarts;
    observer.Notify(
        [&](RunObserver& o) { o.OnRestart(stats.restarts); });
    trace.RecordRestart(step);
    trace.RecordInitial(interp, step);
  }

  stats.blocked_instances = blocked.size();
  stats.memory_limit_bytes = options.max_memory_bytes;
  stats.derivation_limit = options.max_derivations;
  if (cancel != nullptr) {
    stats.peak_memory_bytes = cancel->peak_bytes();
    stats.derivations_charged = cancel->work_charged();
  }
  {
    // Sum the columnar footprint over the run's three stores. All three
    // are compacted by the coordinator at every batch-mode Γ step, so
    // these counters are deterministic and thread-count invariant (zero
    // on tuple-mode runs: nothing triggers a compaction).
    Database::ColumnarFootprint fp = interp.base().ColumnarStats();
    const Database::ColumnarFootprint plus_fp = interp.plus().ColumnarStats();
    const Database::ColumnarFootprint minus_fp =
        interp.minus().ColumnarStats();
    fp.segments += plus_fp.segments + minus_fp.segments;
    fp.segment_rows += plus_fp.segment_rows + minus_fp.segment_rows;
    fp.compactions += plus_fp.compactions + minus_fp.compactions;
    fp.dict_entries += plus_fp.dict_entries + minus_fp.dict_entries;
    stats.storage_segments = static_cast<size_t>(fp.segments);
    stats.storage_segment_rows = static_cast<size_t>(fp.segment_rows);
    stats.storage_compactions = static_cast<size_t>(fp.compactions);
    stats.storage_dict_entries = static_cast<size_t>(fp.dict_entries);
  }
  stats.exec_batch_rows =
      exec_stats.batch_rows.load(std::memory_order_relaxed);
  stats.exec_probe_rows =
      exec_stats.probe_rows.load(std::memory_order_relaxed);
  stats.exec_merge_rows =
      exec_stats.merge_rows.load(std::memory_order_relaxed);
  stats.plans_compiled = plans.plans_compiled();
  stats.plan_cache_hits = plans.cache_hits();
  stats.plan_replans = plans.replans();
  stats.planner_estimated_rows = plans.estimated_rows();
  stats.planner_actual_rows = plans.actual_rows();
  if (parallel != nullptr) {
    stats.parallel_sections = parallel->pool().sections_run();
    stats.parallel_tasks = parallel->pool().tasks_executed();
    stats.parallel_sliced_units = parallel->sliced_units();
    stats.parallel_slices = parallel->slice_tasks();
    stats.parallel_max_queue_depth = parallel->pool().max_section_tasks();
    stats.timings.parallel_match_ns = parallel->match_ns();
    stats.timings.parallel_merge_ns = parallel->merge_ns();
    stats.timings.pool_busy_ns = parallel->pool().busy_ns();
  }
  if (timed) {
    stats.timings.total_ns =
        static_cast<uint64_t>(MonotonicNanos() - run_start_ns);
  }
  observer.Notify([&](RunObserver& o) { o.OnRunEnd(stats); });
  ParkResult result{interp.Incorporate(), stats, std::move(trace),
                    RenderBlocked(blocked, program), {}};
  if (options.record_provenance) {
    result.provenance = RenderProvenance(interp, program);
  }
  return result;
}

Result<ParkResult> Park(const Database& db, const Program& program,
                        const std::vector<Update>& updates,
                        const ParkOptions& options) {
  PARK_ASSIGN_OR_RETURN(Program extended,
                        ProgramWithUpdates(program, updates));
  return Park(extended, db, options);
}

}  // namespace park
