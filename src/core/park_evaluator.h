// The PARK semantics (paper §4.2/§4.3): the Δ transition operator on
// bi-structures, its fixpoint ω, and the top-level entry points
//
//   PARK(P, D)     = incorp(int(ω_P(⟨∅, D⟩)))            (condition-action)
//   PARK(D, P, U)  = incorp(int(ω_{P_U}(⟨∅, D⟩)))        (full ECA)
//
// where P_U = P ∪ { → ±a | ±a ∈ U } seeds the transaction's updates as
// body-less rules, so update/rule conflicts are handled uniformly and the
// updates survive restarts.

#ifndef PARK_CORE_PARK_EVALUATOR_H_
#define PARK_CORE_PARK_EVALUATOR_H_

#include "core/observer.h"
#include "core/policy.h"
#include "core/trace.h"

namespace park {

class CancellationToken;

/// One transaction update ±a (paper §4.3).
struct Update {
  ActionKind action = ActionKind::kInsert;
  GroundAtom atom;

  friend bool operator==(const Update& a, const Update& b) {
    return a.action == b.action && a.atom == b.atom;
  }
};

/// How much of `conflicts(P, I)` is blocked per resolution round.
enum class BlockGranularity {
  /// Block the losing side of every conflict found in the round — the
  /// paper's main definition of `blocked(D, P, I, SELECT)`.
  kAllConflicts,
  /// Block the losing side of only the first conflict (atom-sorted), then
  /// restart — the paper's §4.2 refinement ("include only a non-empty part
  /// of conflicts into blocked"), which avoids blocking instances that
  /// later rounds would never find in conflict. More restarts, fewer
  /// unnecessarily blocked instances.
  kFirstConflictOnly,
};

/// How the Γ operator is evaluated at each step. All three modes are
/// semantically identical (proven in gamma_mode_test); they differ only
/// in how much repeated work each fixpoint step performs. The ablation
/// bench_gamma_mode quantifies the differences.
enum class GammaMode {
  /// Match every rule body at every step — the paper's literal algorithm.
  kNaive,
  /// Skip rules none of whose body literals could have gained a match
  /// since the previous step (rule-granularity delta filtering; see
  /// engine/consequence.h). Fast on wide schemas with narrow activity.
  kDeltaFiltered,
  /// Full semi-naive evaluation: each new mark seeds the body literals it
  /// satisfies and only completions of seeds are enumerated. Fast on deep
  /// recursive derivations (transitive closure) where even the live rules
  /// would otherwise re-derive everything every step.
  kSemiNaive,
};

/// Whether Γ steps are driven through the program's rule/predicate
/// dependency graph (docs/SCHEDULER.md). Like the planner and exec modes
/// this is a pure performance knob: the scheduled evaluation produces
/// bit-identical results for any fixed configuration (asserted in
/// scheduler_oracle_test), so kDependency is the default.
enum class SchedulerMode {
  /// Legacy per-step behavior: delta-filtered Γ scans every rule for
  /// affectedness, semi-naive crosses every rule's body with the delta.
  kOff,
  /// Build a RuleDependencyGraph once per evaluation and use its watcher
  /// index to reach the affected rules in O(|changed predicates|), quick-
  /// exit steps whose delta wakes no rule, and (delta-filtered, parallel)
  /// dispatch the affected rules stratum by stratum with per-stage plan
  /// prewarm. Naive Γ mode matches everything by definition and ignores
  /// the scheduler.
  kDependency,
};

/// Whether ActiveDatabase commits maintain the materialized PARK
/// fixpoint incrementally across commits (docs/INCREMENTAL.md). With
/// kIncremental, a commit whose program and update set pass the
/// eligibility gates re-derives only the cone seeded from U over the
/// already-stable database instead of recomputing PARK(D, P, U) from
/// scratch — bit-identical results (incremental_oracle_test), commit
/// cost proportional to |U| and its cone. Ineligible commits (conflicts,
/// event/negation feedback, derived-predicate deletes, governance or
/// tracing armed) fall back to the full evaluator transparently and are
/// counted in ParkStats::maint_full_recompute_fallbacks. Consulted only
/// by ActiveDatabase/Session; a bare Park() call ignores it.
enum class MaintenanceMode {
  kOff,
  kIncremental,
};

/// Evaluation parameters. Default-constructed options use the principle
/// of inertia and no tracing.
struct ParkOptions {
  /// The SELECT policy. If null, MakeInertiaPolicy() is used.
  PolicyPtr policy;
  BlockGranularity block_granularity = BlockGranularity::kAllConflicts;
  GammaMode gamma_mode = GammaMode::kDeltaFiltered;
  /// Upper bound on Γ applications across all restarts; exceeding it
  /// returns kResourceExhausted. PARK terminates on every input, so this
  /// only guards against misconfigured gigantic workloads.
  size_t max_steps = 1'000'000;
  /// Wall-clock budget for one evaluation in milliseconds; 0 means
  /// unlimited. Exceeding it returns kDeadlineExceeded with the stored
  /// database untouched. Enforced cooperatively INSIDE Γ steps (every
  /// CancellationToken::kCheckStride tuples, on every worker thread), so
  /// even one giant candidate stream is interrupted promptly.
  int64_t deadline_ms = 0;
  /// External cancel source. When non-null and fired (its
  /// RequestCancel(), or any of its own budgets), the evaluation stops at
  /// the next poll and returns kCancelled. Not owned; must outlive the
  /// call. The run still gets its own internal token — this one is
  /// chained, so a caller-held token can cancel many runs.
  CancellationToken* cancel = nullptr;
  /// Evaluation memory budget in bytes across all worker scratch arenas
  /// and derivation buffers; 0 means unlimited. Exceeding it returns
  /// kResourceExhausted (cooperatively — polled at the same stride as the
  /// deadline, so overshoot is bounded) instead of OOM-ing the process.
  size_t max_memory_bytes = 0;
  /// Upper bound on derivations produced across all Γ steps and restarts;
  /// 0 means unlimited. A deterministic, clock-free budget (useful where
  /// deadline tests would be flaky): exceeding it returns
  /// kResourceExhausted.
  uint64_t max_derivations = 0;
  /// Commit-pipeline I/O fault tolerance (used by ActiveDatabase, not by
  /// Park itself): a journal append/flush/sync that fails with a
  /// TRANSIENT error (kUnavailable) is retried up to `io_max_retries`
  /// times with capped exponential backoff starting at `io_backoff_ms`
  /// (0 = retry immediately, no sleep). Permanent errors never retry.
  int io_max_retries = 3;
  int64_t io_backoff_ms = 0;
  TraceLevel trace_level = TraceLevel::kNone;
  /// When set, ParkResult::provenance explains every surviving marked
  /// atom: which rule groundings derived it in the final round.
  bool record_provenance = false;
  /// Threads used to evaluate Γ. 1 (default) is the sequential path; 0
  /// means one per hardware thread; N > 1 runs body matching on a pool of
  /// N threads (clamped to 4x hardware concurrency). Results are
  /// bit-identical across all settings — parallel Γ preserves PARK's
  /// determinism (see docs/PARALLELISM.md).
  int num_threads = 1;
  /// Intra-rule parallelism granularity: the smallest first-literal
  /// candidate count one slice of a rule's (or Δ-seed's) work may carry.
  /// Rules below 2x this stay one task; ValidateOptions requires >= 1
  /// (1 = finest slicing). Only consulted when num_threads resolves to
  /// > 1, and never affects results — only how the identical work is
  /// partitioned.
  size_t min_slice_size = kDefaultMinSliceSize;
  /// How compiled plans are executed (see docs/STORAGE.md). kTuple
  /// (default) streams one candidate tuple at a time through the plan;
  /// kBatch runs batch-at-a-time over the relations' columnar segments
  /// (selection vectors, sorted-merge joins where the planner chose
  /// them), compacting each relation's columnar view at Γ-step
  /// boundaries. Results are bit-identical to tuple mode for a fixed
  /// configuration and across thread counts — the batch executor emits
  /// candidates in the same binding-major order the tuple path would
  /// (asserted in planner_oracle_test). Only consulted on the compiled-
  /// plan path; the legacy per-call matcher always runs tuple-at-a-time.
  ExecMode exec_mode = ExecMode::kTuple;
  /// How rule bodies are ordered for matching (see docs/PLANNER.md).
  /// kCostBased (default) compiles each rule — and each Δ-seeded variant —
  /// once into a plan ordered by live storage statistics, recompiling only
  /// when the consulted stores drift; kHeuristic uses the legacy static
  /// greedy order. REPLAY-STABLE, not free: the match SET is identical in
  /// both modes (planner_oracle_test), but the enumeration ORDER differs,
  /// and order feeds policies, traces, and provenance. For a fixed mode
  /// (and fixed other options) results are bit-identical across runs and
  /// thread counts.
  PlannerMode planner_mode = PlannerMode::kCostBased;
  /// Delta-driven Γ scheduling over the rule dependency graph (see
  /// SchedulerMode above and docs/SCHEDULER.md). Never affects results,
  /// only how fast sparse deltas find their rules; `parkcli --scheduler
  /// on|off` exposes it and bench_scheduler quantifies it.
  SchedulerMode scheduler_mode = SchedulerMode::kDependency;
  /// Incremental fixpoint maintenance across commits (see MaintenanceMode
  /// above and docs/INCREMENTAL.md). Default off until a deployment has
  /// been oracle-swept; `parkcli --maintenance on|off` exposes it and
  /// bench_incremental quantifies it. Never affects results — ineligible
  /// commits fall back to the full evaluator.
  MaintenanceMode maintenance_mode = MaintenanceMode::kOff;
  /// Observation hooks at the loop's structural points (see
  /// core/observer.h). Not owned; must outlive the evaluation. Null means
  /// no observation (each hook site is then a single branch). A free
  /// knob: observers receive read-only views and cannot change results —
  /// a throwing observer is detached and logged, never propagated.
  RunObserver* observer = nullptr;
  /// Collect wall-clock phase timings into ParkStats::timings. Off by
  /// default: when on, the evaluator reads the clock a few times per Γ
  /// step (and the thread pool once per section); when off, the cost is
  /// one branch per step and every timing field stays 0.
  bool collect_timings = false;
};

/// Validates an options bundle before use. Rejects (kInvalidArgument):
/// negative num_threads, min_slice_size == 0, max_steps == 0, negative
/// deadline_ms, negative io_max_retries, negative io_backoff_ms.
/// ActiveDatabase::Configure and parkcli call this at the boundary; the
/// commit path re-checks as a backstop against direct mutation through
/// deprecated accessors.
Status ValidateOptions(const ParkOptions& options);

/// Wall-clock decomposition of one evaluation, collected only when
/// ParkOptions::collect_timings is set (every field stays 0 otherwise;
/// `collected` says which case this is). All values are nanoseconds of
/// coordinator wall time; phases overlap-free except as noted.
struct PhaseTimings {
  bool collected = false;
  uint64_t total_ns = 0;           // whole evaluation, entry to result
  uint64_t gamma_ns = 0;           // Γ sections (incl. conflict recompute)
  uint64_t apply_ns = 0;           // ApplyDerivations* after consistent Γ
  uint64_t conflict_ns = 0;        // conflict build + policy loop
  uint64_t policy_ns = 0;          // SELECT calls (subset of conflict_ns)
  // Parallel split of gamma_ns (0 on sequential runs): time inside the
  // pool fan-out vs. concatenating the per-task buffers afterwards.
  uint64_t parallel_match_ns = 0;  // inside ThreadPool::ParallelFor
  uint64_t parallel_merge_ns = 0;  // slice-ordered buffer merge
  /// The pool's own section clock (ThreadPool::busy_ns); divided by
  /// parallel_tasks it bounds mean task latency from above.
  uint64_t pool_busy_ns = 0;
};

/// Counters describing one evaluation.
struct ParkStats {
  size_t gamma_steps = 0;         // consistent Γ applications
  size_t restarts = 0;            // conflict-resolution rounds
  size_t conflicts_resolved = 0;  // individual conflicts decided
  size_t blocked_instances = 0;   // rule groundings in the final B
  size_t derived_marks = 0;       // marked-atom insertions (all rounds)
  size_t policy_invocations = 0;  // SELECT calls
  size_t rule_evaluations = 0;    // rule-body matchings across all steps
  // Parallel-Γ counters (see ParkOptions::num_threads). `parallel_tasks`
  // counts pool tasks, which with intra-rule slicing can exceed the
  // number of rules/seeds evaluated: a skewed unit contributes one task
  // per slice.
  size_t num_threads = 1;         // resolved thread count for the run
  size_t parallel_sections = 0;   // non-empty Γ fan-outs on the pool
  size_t parallel_tasks = 0;      // matching tasks queued across sections
  // Intra-rule slicing counters (see ParkOptions::min_slice_size).
  size_t parallel_sliced_units = 0;  // rules/Δ-seeds split into slices
  size_t parallel_slices = 0;        // slice tasks those splits produced
  /// Largest single ParallelFor section of the run — the peak "queue
  /// depth" the pool saw (0 on sequential runs).
  size_t parallel_max_queue_depth = 0;
  // Join-planner counters (see ParkOptions::planner_mode and
  // docs/PLANNER.md). Deterministic for a fixed configuration and
  // invariant across thread counts: the coordinator fetches plans and
  // accumulates rows in unit order on both the sequential and parallel
  // paths (asserted in planner_oracle_test).
  PlannerMode planner_mode = PlannerMode::kCostBased;
  size_t plans_compiled = 0;   // plan compilations, replans included
  size_t plan_cache_hits = 0;  // Get() calls served from the cache
  size_t plan_replans = 0;     // recompiles triggered by stats drift
  /// Σ estimated first-step stream rows across evaluation units vs. the Σ
  /// of actually enumerated stream rows — the cost model's calibration.
  size_t planner_estimated_rows = 0;
  size_t planner_actual_rows = 0;
  // Scheduler counters (see ParkOptions::scheduler_mode and
  // docs/SCHEDULER.md), summed over every Γ call of the run. Thread- and
  // schedule-partition-invariant: the affected set and its stage
  // structure are properties of the delta, never of the pool.
  // `sched_rules_considered` counts rules examined for affectedness
  // (program size per scan-mode step, watcher hits per scheduled step,
  // 0 on quick-exited steps); `sched_rules_skipped` counts rules not
  // matched; `sched_strata` is the static stratum count of the program's
  // dependency graph (0 with the scheduler off); `sched_pipeline_stages`
  // sums the per-step stratum groups among scheduled rules.
  SchedulerMode scheduler_mode = SchedulerMode::kDependency;
  size_t sched_rules_considered = 0;
  size_t sched_rules_skipped = 0;
  size_t sched_strata = 0;
  size_t sched_pipeline_stages = 0;
  // Resource-governance counters (see ParkOptions::{deadline_ms,
  // max_memory_bytes, max_derivations, cancel} and docs/ROBUSTNESS.md).
  // The limits echo the options; peak_memory_bytes is the high-water mark
  // of the run token's cooperative byte accounting (0 when no memory
  // budget was armed — accounting is then skipped entirely);
  // derivations_charged counts derivations reported to the work budget.
  size_t memory_limit_bytes = 0;
  size_t peak_memory_bytes = 0;
  uint64_t derivation_limit = 0;
  uint64_t derivations_charged = 0;
  // Commit-pipeline I/O retry counters (docs/ROBUSTNESS.md). Zero for a
  // pure evaluation; ActiveDatabase::CommitUpdates folds the journal's
  // per-commit numbers into the report's stats. `io_attempts` counts
  // journal append attempts (>= 1 per journaled commit), `io_retries` the
  // re-attempts after a transient failure, `io_backoff_ms_total` the
  // backoff slept between them, and `io_retries_exhausted` is 1 when the
  // commit still failed after the last allowed retry.
  uint64_t io_attempts = 0;
  uint64_t io_retries = 0;
  uint64_t io_backoff_ms_total = 0;
  uint64_t io_retries_exhausted = 0;
  // Columnar-storage counters (see ParkOptions::exec_mode and
  // docs/STORAGE.md), summed over the base/plus/minus stores at run end.
  // Zero on tuple-mode runs (no compactions are triggered). Deterministic
  // for a fixed configuration and invariant across thread counts:
  // compaction happens on the coordinator at Γ-step boundaries in both
  // the sequential and parallel paths.
  ExecMode exec_mode = ExecMode::kTuple;
  size_t storage_segments = 0;      // immutable segments alive at run end
  size_t storage_segment_rows = 0;  // rows held in those segments
  size_t storage_compactions = 0;   // delta-store compactions performed
  size_t storage_dict_entries = 0;  // dictionary entries across columns
  // Batch-executor row counters (ExecStats): rows that entered the plan's
  // first-step stream, and rows emitted by probe vs. sorted-merge join
  // steps. Partition sums, hence thread-count invariant.
  uint64_t exec_batch_rows = 0;
  uint64_t exec_probe_rows = 0;
  uint64_t exec_merge_rows = 0;
  // Serving-layer counters (docs/SERVING.md). Zero for a bare evaluation;
  // serve::Session fills them in the stats it exposes and in the reports
  // handed back from group commits. `batch_size_hist` buckets completed
  // batch sizes as 1 / 2 / 3-4 / 5-8 / 9-16 / 17+.
  struct ServingCounters {
    uint64_t batches = 0;           // group commits (journal records)
    uint64_t batched_txns = 0;      // transactions folded into them
    uint64_t max_batch_size = 0;    // largest batch committed
    uint64_t batch_size_hist[6] = {0, 0, 0, 0, 0, 0};
    uint64_t poisoned_batches = 0;  // batches that fell back to retry
    uint64_t individual_retries = 0;  // member txns retried solo
    uint64_t snapshots_opened = 0;    // Snapshot() calls, lifetime
    uint64_t snapshots_pinned = 0;    // snapshots currently alive
    uint64_t segment_generations_retained = 0;  // distinct pinned gens

    void RecordBatch(uint64_t size) {
      ++batches;
      batched_txns += size;
      if (size > max_batch_size) max_batch_size = size;
      int b = size <= 1 ? 0
              : size == 2 ? 1
              : size <= 4 ? 2
              : size <= 8 ? 3
              : size <= 16 ? 4
                           : 5;
      ++batch_size_hist[b];
    }
  };
  ServingCounters serving;
  // Maintenance counters (see ParkOptions::maintenance_mode and
  // docs/INCREMENTAL.md). Zero for a bare evaluation and under
  // maintenance off; ActiveDatabase fills them per commit. Deterministic
  // for a fixed configuration and invariant across thread counts: the
  // seed set, the cone, and the fallback decision are properties of
  // (D, P, U), never of the pool. `maint_commits` is 1 when the commit
  // was served incrementally; `maint_atoms_overdeleted` counts stored
  // atoms removed by the commit's over-delete phase;
  // `maint_atoms_rederived` counts marks produced by the seeded
  // re-derivation closure; `maint_cone_rules` is the number of rules in
  // the dependency cone reachable from U's predicates; and
  // `maint_full_recompute_fallbacks` is 1 when maintenance was on but
  // the commit fell back to the from-scratch evaluator.
  MaintenanceMode maintenance_mode = MaintenanceMode::kOff;
  uint64_t maint_commits = 0;
  uint64_t maint_atoms_overdeleted = 0;
  uint64_t maint_atoms_rederived = 0;
  uint64_t maint_cone_rules = 0;
  uint64_t maint_full_recompute_fallbacks = 0;
  /// Phase timers (see ParkOptions::collect_timings).
  PhaseTimings timings;

  /// Renders the documented stats schema (docs/OBSERVABILITY.md):
  ///   {"schema": "park-stats-v1",
  ///    "counters": {...},   // deterministic: identical across threads
  ///    "parallel": {...},   // partitioning-dependent pool counters
  ///    "planner": {...},    // join-planner counters (deterministic)
  ///    "scheduler": {...},  // Γ-scheduler counters (docs/SCHEDULER.md)
  ///    "resource": {...},   // budgets armed + peaks (docs/ROBUSTNESS.md)
  ///    "io_retry": {...},   // commit-pipeline retry counters
  ///    "storage": {...},    // columnar segment counters (docs/STORAGE.md)
  ///    "exec": {...},       // executor mode + batch row counters
  ///    "serving": {...},    // group-commit + snapshot counters
  ///    "maintenance": {...},// incremental-fixpoint counters
  ///    "timings": {"collected": bool, <phase>_ns...}}
  /// The "counters" object is invariant across num_threads /
  /// min_slice_size settings (asserted in stats_invariance_test);
  /// "parallel" and "timings" are explicitly not. "planner" is invariant
  /// across thread counts but does depend on planner_mode / gamma_mode.
  std::string ToJson() const;
};

/// Why one update survived into the result: the marked atom (with its
/// sign) and every rule grounding that derived it in the final round.
struct AtomProvenance {
  std::string atom;                     // e.g. "+q(a)" or "-payroll(jo, 5)"
  std::vector<std::string> derived_by;  // rendered RuleGroundings, sorted
};

/// Everything PARK(P, D) produces.
struct ParkResult {
  /// The result database instance.
  Database database;
  ParkStats stats;
  Trace trace;
  /// The final blocked set B, rendered and sorted (e.g. {"(r2)", "(r5)"}).
  std::vector<std::string> blocked;
  /// Populated iff options.record_provenance: one entry per marked atom
  /// of the final fixpoint, sorted by rendered atom. Unmarked atoms come
  /// from D and have no provenance.
  std::vector<AtomProvenance> provenance;
};

/// Computes PARK(P, D). `program` and `db` must share a symbol table.
/// Errors: kAborted if the policy abstains or makes no progress,
/// kResourceExhausted past options.max_steps / max_memory_bytes /
/// max_derivations, kDeadlineExceeded past options.deadline_ms,
/// kCancelled via options.cancel, plus any policy failure. On every
/// error the input database is untouched (evaluation is copy-on-write).
Result<ParkResult> Park(const Program& program, const Database& db,
                        const ParkOptions& options = {});

/// Computes PARK(D, P, U) — full ECA form with transaction updates.
Result<ParkResult> Park(const Database& db, const Program& program,
                        const std::vector<Update>& updates,
                        const ParkOptions& options = {});

/// Builds P_U: a clone of `program` extended with a body-less seed rule
/// `-> ±a` per update. Exposed for tests and tools.
Result<Program> ProgramWithUpdates(const Program& program,
                                   const std::vector<Update>& updates);

}  // namespace park

#endif  // PARK_CORE_PARK_EVALUATOR_H_
