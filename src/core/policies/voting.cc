// The voting scheme (paper §5): a set of critics each examines the
// conflict and votes insert or delete; "the majority opinion of the
// critics is then adopted". Critics are themselves policies, so a critic
// can encode recency preferences, source reliability, or any other
// intuition — including a human (the paper observes that interactive
// resolution is the one-critic special case of voting).

#include "core/policy.h"

namespace park {
namespace {

class VotingPolicy final : public ConflictResolutionPolicy {
 public:
  explicit VotingPolicy(std::vector<PolicyPtr> critics)
      : critics_(std::move(critics)) {}

  std::string_view name() const override { return "voting"; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    int inserts = 0;
    int deletes = 0;
    for (const PolicyPtr& critic : critics_) {
      PARK_ASSIGN_OR_RETURN(Vote vote, critic->Select(context, conflict));
      if (vote == Vote::kInsert) ++inserts;
      if (vote == Vote::kDelete) ++deletes;
    }
    if (inserts > deletes) return Vote::kInsert;
    if (deletes > inserts) return Vote::kDelete;
    return Vote::kAbstain;
  }

 private:
  std::vector<PolicyPtr> critics_;
};

}  // namespace

PolicyPtr MakeVotingPolicy(std::vector<PolicyPtr> critics) {
  return std::make_shared<VotingPolicy>(std::move(critics));
}

}  // namespace park
