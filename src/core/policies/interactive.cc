// Interactive conflict resolution (paper §5): "as soon as a conflict is
// found, the user is queried and may resolve the conflict by choosing one
// among the conflicting rules". The paper singles this strategy out for
// databases monitoring critical systems (power plants, machine tools).
//
// MakeInteractivePolicy delegates to an arbitrary callback;
// MakeStreamInteractivePolicy is the canonical human loop over iostreams.

#include <istream>
#include <ostream>

#include "core/policy.h"

namespace park {
namespace {

class InteractivePolicy final : public ConflictResolutionPolicy {
 public:
  explicit InteractivePolicy(
      std::function<Result<Vote>(const PolicyContext&, const Conflict&)> ask)
      : ask_(std::move(ask)) {}

  std::string_view name() const override { return "interactive"; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    return ask_(context, conflict);
  }

 private:
  std::function<Result<Vote>(const PolicyContext&, const Conflict&)> ask_;
};

}  // namespace

PolicyPtr MakeInteractivePolicy(
    std::function<Result<Vote>(const PolicyContext&, const Conflict&)> ask) {
  return std::make_shared<InteractivePolicy>(std::move(ask));
}

PolicyPtr MakeStreamInteractivePolicy(std::istream& in, std::ostream& out) {
  return MakeInteractivePolicy(
      [&in, &out](const PolicyContext& context,
                  const Conflict& conflict) -> Result<Vote> {
        out << DescribeConflict(context, conflict);
        while (true) {
          out << "resolve [i]nsert / [d]elete / [a]bstain? " << std::flush;
          std::string answer;
          if (!std::getline(in, answer)) {
            return AbortedError("interactive policy: input stream closed");
          }
          if (answer == "i" || answer == "insert") return Vote::kInsert;
          if (answer == "d" || answer == "delete") return Vote::kDelete;
          if (answer == "a" || answer == "abstain") return Vote::kAbstain;
          out << "unrecognized answer '" << answer << "'\n";
        }
      });
}

}  // namespace park
