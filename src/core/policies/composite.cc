// Composite policy: first-non-abstain chaining. The paper presents
// specificity and priority as partial strategies "combined with other
// conflict resolution strategies"; this combinator is that combination.

#include "core/policy.h"

namespace park {
namespace {

class CompositePolicy final : public ConflictResolutionPolicy {
 public:
  explicit CompositePolicy(std::vector<PolicyPtr> policies)
      : policies_(std::move(policies)) {
    name_ = "composite(";
    for (size_t i = 0; i < policies_.size(); ++i) {
      if (i > 0) name_ += ",";
      name_ += policies_[i]->name();
    }
    name_ += ")";
  }

  std::string_view name() const override { return name_; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    for (const PolicyPtr& policy : policies_) {
      PARK_ASSIGN_OR_RETURN(Vote vote, policy->Select(context, conflict));
      if (vote != Vote::kAbstain) return vote;
    }
    return Vote::kAbstain;
  }

 private:
  std::vector<PolicyPtr> policies_;
  std::string name_;
};

}  // namespace

PolicyPtr MakeCompositePolicy(std::vector<PolicyPtr> policies) {
  return std::make_shared<CompositePolicy>(std::move(policies));
}

}  // namespace park
