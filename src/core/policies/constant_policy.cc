// Constant policies: unconditionally prefer insertion (or deletion).
// Useful as composite fallbacks, as degenerate critics in voting tests,
// and for "insertions always win" application conventions.

#include "core/policy.h"

namespace park {
namespace {

class ConstantPolicy final : public ConflictResolutionPolicy {
 public:
  explicit ConstantPolicy(Vote vote)
      : vote_(vote),
        name_(vote == Vote::kInsert ? "always-insert" : "always-delete") {}

  std::string_view name() const override { return name_; }

  Result<Vote> Select(const PolicyContext&, const Conflict&) override {
    return vote_;
  }

 private:
  Vote vote_;
  std::string name_;
};

}  // namespace

PolicyPtr MakeAlwaysInsertPolicy() {
  return std::make_shared<ConstantPolicy>(Vote::kInsert);
}

PolicyPtr MakeAlwaysDeletePolicy() {
  return std::make_shared<ConstantPolicy>(Vote::kDelete);
}

}  // namespace park
