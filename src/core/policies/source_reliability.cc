// Source-reliability conflict resolution — the paper's §5 voting-scheme
// critic that "may know that the two rules that are involved in the
// conflict came from two different sources, and that one of these sources
// is 'more reliable' than the other", available directly as a policy.

#include <algorithm>
#include <limits>

#include "core/policy.h"

namespace park {
namespace {

class SourceReliabilityPolicy final : public ConflictResolutionPolicy {
 public:
  SourceReliabilityPolicy(std::unordered_map<int, int> reliability,
                          int default_reliability)
      : reliability_(std::move(reliability)),
        default_reliability_(default_reliability) {}

  std::string_view name() const override { return "source-reliability"; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    int ins = SideReliability(context.program, conflict.inserters);
    int del = SideReliability(context.program, conflict.deleters);
    if (ins > del) return Vote::kInsert;
    if (del > ins) return Vote::kDelete;
    return Vote::kAbstain;
  }

 private:
  int RuleReliability(const Rule& rule) const {
    if (!rule.source().has_value()) return default_reliability_;
    auto it = reliability_.find(*rule.source());
    return it == reliability_.end() ? default_reliability_ : it->second;
  }

  int SideReliability(const Program& program,
                      const std::vector<RuleGrounding>& side) const {
    int best = std::numeric_limits<int>::min();
    for (const RuleGrounding& g : side) {
      best = std::max(best, RuleReliability(program.rule(g.rule_index())));
    }
    return best;
  }

  std::unordered_map<int, int> reliability_;
  int default_reliability_;
};

}  // namespace

PolicyPtr MakeSourceReliabilityPolicy(
    std::unordered_map<int, int> reliability, int default_reliability) {
  return std::make_shared<SourceReliabilityPolicy>(std::move(reliability),
                                                   default_reliability);
}

}  // namespace park
