// Predicate-directed policies: per-predicate vote tables and
// delete-protection. Both are partial (they abstain off their tables) and
// meant to be chained via MakeCompositePolicy.

#include <unordered_set>

#include "core/policy.h"

namespace park {
namespace {

class PredicateBiasPolicy final : public ConflictResolutionPolicy {
 public:
  explicit PredicateBiasPolicy(std::unordered_map<std::string, Vote> bias)
      : bias_(std::move(bias)) {}

  std::string_view name() const override { return "predicate-bias"; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    const std::string& pred =
        context.program.symbols()->PredicateName(conflict.atom.predicate());
    auto it = bias_.find(pred);
    if (it == bias_.end()) return Vote::kAbstain;
    return it->second;
  }

 private:
  std::unordered_map<std::string, Vote> bias_;
};

class ProtectedPredicatesPolicy final : public ConflictResolutionPolicy {
 public:
  explicit ProtectedPredicatesPolicy(std::vector<std::string> names)
      : protected_(names.begin(), names.end()) {}

  std::string_view name() const override { return "protected-predicates"; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    const std::string& pred =
        context.program.symbols()->PredicateName(conflict.atom.predicate());
    return protected_.contains(pred) ? Vote::kInsert : Vote::kAbstain;
  }

 private:
  std::unordered_set<std::string> protected_;
};

}  // namespace

PolicyPtr MakePredicateBiasPolicy(
    std::unordered_map<std::string, Vote> bias) {
  return std::make_shared<PredicateBiasPolicy>(std::move(bias));
}

PolicyPtr MakeProtectedPredicatesPolicy(
    std::vector<std::string> protected_names) {
  return std::make_shared<ProtectedPredicatesPolicy>(
      std::move(protected_names));
}

}  // namespace park
