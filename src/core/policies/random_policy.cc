// Random conflict resolution (paper §5): "the system just randomly
// chooses one from the conflicting rules". The randomness comes from an
// explicitly seeded deterministic stream, so any individual run is exactly
// reproducible — PARK's unambiguous-semantics guarantee then holds
// relative to the seed.

#include "core/policy.h"
#include "util/random.h"

namespace park {
namespace {

class RandomPolicy final : public ConflictResolutionPolicy {
 public:
  explicit RandomPolicy(uint64_t seed) : rng_(seed) {}

  std::string_view name() const override { return "random"; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    (void)context;
    (void)conflict;
    return rng_.Bernoulli(0.5) ? Vote::kInsert : Vote::kDelete;
  }

 private:
  Rng rng_;
};

}  // namespace

PolicyPtr MakeRandomPolicy(uint64_t seed) {
  return std::make_shared<RandomPolicy>(seed);
}

}  // namespace park
