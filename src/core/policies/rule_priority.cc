// Rule-priority conflict resolution (paper §5, following Ariel, Postgres
// and Starburst): the side containing the rule instance with the highest
// priority wins. Priority is the rule's `[prio=N]` annotation, defaulting
// to its 1-based program position (the paper's "rule ri has priority i").

#include <algorithm>
#include <limits>

#include "core/policy.h"

namespace park {
namespace {

int EffectivePriority(const Program& program, const RuleGrounding& g) {
  const Rule& rule = program.rule(g.rule_index());
  return rule.priority().value_or(rule.index() + 1);
}

int MaxPriority(const Program& program,
                const std::vector<RuleGrounding>& side) {
  int best = std::numeric_limits<int>::min();
  for (const RuleGrounding& g : side) {
    best = std::max(best, EffectivePriority(program, g));
  }
  return best;
}

class RulePriorityPolicy final : public ConflictResolutionPolicy {
 public:
  std::string_view name() const override { return "rule-priority"; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    int ins = MaxPriority(context.program, conflict.inserters);
    int del = MaxPriority(context.program, conflict.deleters);
    if (ins > del) return Vote::kInsert;
    if (del > ins) return Vote::kDelete;
    return Vote::kAbstain;
  }
};

}  // namespace

PolicyPtr MakeRulePriorityPolicy() {
  return std::make_shared<RulePriorityPolicy>();
}

}  // namespace park
