// Specificity-based conflict resolution (paper §5): "more specific rules
// should be given priority over more general rules" — the classic
// penguin/bird default-reasoning principle.
//
// Specificity of a rule here is the pair (number of body literals, number
// of constant argument positions in the body), compared lexicographically:
// penguin(X) -> -flies(X) does not beat bird(X) -> +flies(X) on this
// metric alone, but penguin(X), bird(X) -> -flies(X) does, as does any
// rule mentioning more conditions. The paper notes the principle is
// incomplete; equal or incomparable specificity abstains, so combine this
// policy with a fallback via MakeCompositePolicy.

#include <algorithm>
#include <utility>

#include "core/policy.h"

namespace park {
namespace {

std::pair<int, int> RuleSpecificity(const Rule& rule) {
  int constants = 0;
  for (const BodyLiteral& lit : rule.body()) {
    for (const Term& t : lit.atom.terms) {
      if (t.is_constant()) ++constants;
    }
  }
  return {static_cast<int>(rule.body().size()), constants};
}

std::pair<int, int> MaxSpecificity(const Program& program,
                                   const std::vector<RuleGrounding>& side) {
  std::pair<int, int> best{-1, -1};
  for (const RuleGrounding& g : side) {
    best = std::max(best, RuleSpecificity(program.rule(g.rule_index())));
  }
  return best;
}

class SpecificityPolicy final : public ConflictResolutionPolicy {
 public:
  std::string_view name() const override { return "specificity"; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    auto ins = MaxSpecificity(context.program, conflict.inserters);
    auto del = MaxSpecificity(context.program, conflict.deleters);
    if (ins > del) return Vote::kInsert;
    if (del > ins) return Vote::kDelete;
    return Vote::kAbstain;
  }
};

}  // namespace

PolicyPtr MakeSpecificityPolicy() {
  return std::make_shared<SpecificityPolicy>();
}

}  // namespace park
