// The principle of inertia (paper §4.1): a conflict on atom `a` is
// resolved so that the status of `a` stays what it was in the original
// database instance D. SELECT = insert iff a ∈ D.

#include "core/policy.h"

namespace park {
namespace {

class InertiaPolicy final : public ConflictResolutionPolicy {
 public:
  std::string_view name() const override { return "inertia"; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    return context.database.Contains(conflict.atom) ? Vote::kInsert
                                                    : Vote::kDelete;
  }
};

}  // namespace

PolicyPtr MakeInertiaPolicy() { return std::make_shared<InertiaPolicy>(); }

}  // namespace park
