#include "core/bistructure.h"

#include <algorithm>

namespace park {
namespace {

/// True iff sorted vector `a` is a subset of sorted vector `b`.
bool SortedSubset(const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

std::string BiStructureSnapshot::ToString() const {
  std::string out = "<{";
  for (size_t i = 0; i < blocked.size(); ++i) {
    if (i > 0) out += ", ";
    out += blocked[i];
  }
  out += "}, {";
  for (size_t i = 0; i < interpretation.size(); ++i) {
    if (i > 0) out += ", ";
    out += interpretation[i];
  }
  out += "}>";
  return out;
}

BiStructureSnapshot SnapshotBiStructure(const BlockedSet& blocked,
                                        const IInterpretation& interp,
                                        const Program& program) {
  BiStructureSnapshot snapshot;
  snapshot.blocked.reserve(blocked.size());
  const SymbolTable& symbols = *program.symbols();
  for (const RuleGrounding& g : blocked) {
    snapshot.blocked.push_back(g.ToString(program, symbols));
  }
  std::sort(snapshot.blocked.begin(), snapshot.blocked.end());
  snapshot.interpretation = interp.SortedLiteralStrings();
  return snapshot;
}

bool BiStructureLeq(const BiStructureSnapshot& a,
                    const BiStructureSnapshot& b) {
  if (a.blocked == b.blocked) {
    return SortedSubset(a.interpretation, b.interpretation);
  }
  return a.blocked.size() < b.blocked.size() &&
         SortedSubset(a.blocked, b.blocked);
}

}  // namespace park
