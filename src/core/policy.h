// Conflict-resolution policies — the SELECT parameter of the PARK
// semantics.
//
// A policy maps (D, P, I, conflict) to a resolution. The paper requires
// the inference engine and the policy to be independent components; here
// the policy is an abstract interface passed into the evaluator, and the
// engine treats it as an oracle.
//
// Policies vote kInsert (keep the insertion, block the deleting
// instances), kDelete (the reverse), or kAbstain (no opinion — meaningful
// inside composite/voting policies; the top-level policy handed to the
// evaluator must decide, so an abstention there aborts evaluation with a
// status error). A policy may also fail (e.g. an interactive policy whose
// user hangs up); failures propagate out of the evaluator as-is.

#ifndef PARK_CORE_POLICY_H_
#define PARK_CORE_POLICY_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/conflict.h"

namespace park {

/// A policy's opinion on one conflict.
enum class Vote {
  kInsert,   // perform the insertion; suppress (block) the deleters
  kDelete,   // perform the deletion; suppress (block) the inserters
  kAbstain,  // no opinion; defer to the next policy in a chain
};

const char* VoteToString(Vote vote);

/// Everything a policy may inspect: the original database instance D, the
/// running program P (with transaction-update seed rules, if any), the
/// current i-interpretation I, and where the computation stands.
struct PolicyContext {
  const Database& database;            // D — the original instance
  const Program& program;              // P (or P_U)
  const IInterpretation& interpretation;  // I — current state
  int restart_count = 0;               // conflict-resolution rounds so far
};

/// The SELECT function. Implementations must be deterministic functions of
/// their inputs (plus any explicit seed/state they were constructed with);
/// the unambiguous-semantics guarantee of PARK is relative to that.
class ConflictResolutionPolicy {
 public:
  virtual ~ConflictResolutionPolicy() = default;

  /// Short identifier used in traces and bench tables ("inertia", ...).
  virtual std::string_view name() const = 0;

  /// Resolves one conflict. See Vote for the meaning of the result.
  virtual Result<Vote> Select(const PolicyContext& context,
                              const Conflict& conflict) = 0;
};

using PolicyPtr = std::shared_ptr<ConflictResolutionPolicy>;

/// Wraps a callable as a policy; the simplest way to express bespoke
/// application strategies (e.g. the custom SELECT of the paper's §4.2
/// graph example).
PolicyPtr MakeLambdaPolicy(
    std::string name,
    std::function<Result<Vote>(const PolicyContext&, const Conflict&)> fn);

/// Renders a human-readable description of a conflict, used by interactive
/// policies and traces.
std::string DescribeConflict(const PolicyContext& context,
                             const Conflict& conflict);

// --- Policy factories (one .cc per strategy under core/policies/) ---

/// The principle of inertia (§4.1): conflicting actions cancel out and the
/// atom keeps its status from the original database D — vote kInsert iff
/// the atom is in D.
PolicyPtr MakeInertiaPolicy();

/// Rule priority (§5; Ariel/Postgres/Starburst style): the side containing
/// the highest-priority rule wins. A rule's priority is its `[prio=N]`
/// annotation, defaulting to its 1-based position in the program (the
/// paper's "rule ri has priority i"). Ties abstain.
PolicyPtr MakeRulePriorityPolicy();

/// Specificity (§5): the side whose most specific rule wins, where a
/// rule's specificity is (number of body literals, number of constant
/// arguments in the body) compared lexicographically. Incomparable or
/// equal specificity abstains — the paper notes this principle "is not a
/// complete conflict resolution strategy" and must be combined.
PolicyPtr MakeSpecificityPolicy();

/// Random (§5): votes kInsert with probability 1/2 from a deterministic
/// seeded stream, so a run is reproducible given the seed.
PolicyPtr MakeRandomPolicy(uint64_t seed);

/// Constant policies: always insert / always delete.
PolicyPtr MakeAlwaysInsertPolicy();
PolicyPtr MakeAlwaysDeletePolicy();

/// Interactive (§5): delegates to `ask`, which typically renders
/// DescribeConflict and queries a human. See MakeStreamInteractivePolicy
/// in policies/interactive for a ready-made stdin/stdout loop.
PolicyPtr MakeInteractivePolicy(
    std::function<Result<Vote>(const PolicyContext&, const Conflict&)> ask);

/// Interactive over iostreams: prints the conflict to `out` and reads
/// "i"/"insert", "d"/"delete" or "a"/"abstain" lines from `in`.
PolicyPtr MakeStreamInteractivePolicy(std::istream& in, std::ostream& out);

/// Voting (§5): each critic votes; the strict majority of non-abstaining
/// critics wins, otherwise the vote is kAbstain.
PolicyPtr MakeVotingPolicy(std::vector<PolicyPtr> critics);

/// Composite: asks each policy in order and returns the first non-abstain
/// vote; abstains if all abstain. The idiomatic complete strategy is e.g.
///   MakeCompositePolicy({MakeSpecificityPolicy(), MakeInertiaPolicy()}).
PolicyPtr MakeCompositePolicy(std::vector<PolicyPtr> policies);

/// Table-driven per-predicate resolution — the paper's "flexible conflict
/// resolution ... may depend critically upon the atom in question" as a
/// reusable policy: conflicts over a predicate listed in `bias` resolve to
/// the associated vote; others abstain. Keys are predicate names (any
/// arity of that name matches).
PolicyPtr MakePredicateBiasPolicy(
    std::unordered_map<std::string, Vote> bias);

/// Integrity protection: conflicts over any predicate in `protected_names`
/// resolve to kInsert (the deletion is suppressed); everything else
/// abstains. Chain before a general-purpose fallback to make a set of
/// relations effectively delete-proof against rule conflicts.
PolicyPtr MakeProtectedPredicatesPolicy(
    std::vector<std::string> protected_names);

/// Source reliability — §5's source-based critic: rules carry `[src=N]`
/// annotations; `reliability` maps source ids to trust scores (higher
/// wins; unannotated rules and unmapped sources score
/// `default_reliability`). The side containing the most reliable rule
/// wins; ties abstain.
PolicyPtr MakeSourceReliabilityPolicy(
    std::unordered_map<int, int> reliability, int default_reliability = 0);

}  // namespace park

#endif  // PARK_CORE_POLICY_H_
