// Conflicts (paper §4.2): a conflict is a maximal triple (a, ins, del)
// where `a` is a ground atom, `ins` is the set of rule groundings with
// valid bodies commanding +a, and `del` the set commanding -a.
//
// Conflicts are built from a Γ derivation list ("one step into the
// future"), restricted to non-blocked instances, and augmented with the
// provenance of marked atoms already in I — see DESIGN.md §2 for why both
// refinements are necessary and faithful.

#ifndef PARK_CORE_CONFLICT_H_
#define PARK_CORE_CONFLICT_H_

#include <string>
#include <vector>

#include "engine/consequence.h"

namespace park {

/// One conflict triple (a, ins, del). Both sides are non-empty, sorted,
/// and duplicate-free.
struct Conflict {
  GroundAtom atom;
  std::vector<RuleGrounding> inserters;  // the paper's `ins`
  std::vector<RuleGrounding> deleters;   // the paper's `del`

  /// "q(a): ins={(r1, [x <- a])} del={(r2, [x <- a])}"
  std::string ToString(const Program& program,
                       const SymbolTable& symbols) const;
};

/// Builds conflicts(P, I) for the Γ evaluation `gamma` of a program over
/// `interp`. One Conflict per clashing atom, sorted by atom for
/// determinism. `gamma` must have been computed against `interp`.
std::vector<Conflict> BuildConflicts(const GammaResult& gamma,
                                     const IInterpretation& interp);

}  // namespace park

#endif  // PARK_CORE_CONFLICT_H_
