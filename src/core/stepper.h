// ParkStepper: the Δ transition operator exposed one step at a time.
//
// The batch evaluator (Park()) runs ω_P to completion; the stepper lets a
// debugger, visualizer, or interactive tool drive the same computation
// transition by transition and inspect the live bi-structure ⟨B, I⟩
// between steps. Finishing a stepper yields exactly PARK(P, D) (asserted
// against the batch evaluator in stepper_test.cc).

#ifndef PARK_CORE_STEPPER_H_
#define PARK_CORE_STEPPER_H_

#include <chrono>
#include <optional>

#include "core/park_evaluator.h"
#include "engine/rule_graph.h"
#include "util/cancellation.h"

namespace park {

/// One Δ transition outcome.
struct StepOutcome {
  enum class Kind {
    kGamma,       // consistent Γ application; `new_marks` atoms added
    kResolution,  // conflicts resolved, blocked set grew, restarted at I°
    kFixpoint,    // Γ(P,B)(I) = I — the computation is complete
  };

  Kind kind = Kind::kFixpoint;
  /// kGamma: number of newly marked atoms.
  size_t new_marks = 0;
  /// kResolution: rendered descriptions of the conflicts just resolved.
  std::vector<std::string> conflicts;
  /// kResolution: number of rule instances newly blocked.
  size_t newly_blocked = 0;
};

/// Stateful, single-use driver of one PARK evaluation. The program and
/// database must outlive the stepper; neither is modified.
class ParkStepper {
 public:
  /// `options.trace_level` is ignored (the live state IS the trace);
  /// policy / granularity / gamma_mode behave as in Park().
  ParkStepper(const Program& program, const Database& db,
              ParkOptions options = {});

  ParkStepper(const ParkStepper&) = delete;
  ParkStepper& operator=(const ParkStepper&) = delete;

  /// Applies one Δ transition. Calling Step() after the fixpoint is
  /// reached keeps returning kFixpoint outcomes. Errors are the same as
  /// Park()'s (policy abstention, no progress, max_steps).
  Result<StepOutcome> Step();

  bool done() const { return done_; }

  /// The live i-interpretation I.
  const IInterpretation& interpretation() const { return interp_; }

  /// The live bi-structure ⟨B, I⟩, order-comparable (Theorem 4.1).
  BiStructureSnapshot Snapshot() const {
    return SnapshotBiStructure(blocked_, interp_, program_);
  }

  const ParkStats& stats() const { return stats_; }

  /// Runs remaining steps to the fixpoint and incorporates: the result
  /// database equals Park(program, db, options).database.
  Result<Database> Finish();

 private:
  /// Folds the parallel pool's counters and clocks into stats_.
  void RefreshParallelStats();
  /// Folds the plan cache's counters into stats_.
  void RefreshPlannerStats();
  /// Folds the run token's budget counters into stats_.
  void RefreshResourceStats();
  /// Folds the columnar footprint and batch-executor rows into stats_.
  void RefreshStorageStats();

  const Program& program_;
  const Database& db_;
  ParkOptions options_;
  PolicyPtr policy_;
  /// Engaged iff options_.num_threads resolves to > 1.
  std::optional<ParallelGamma> parallel_;
  /// Delta-driven Γ scheduling (see ParkOptions::scheduler_mode and
  /// docs/SCHEDULER.md). Engaged iff the scheduler is on and the Γ mode
  /// can use it (naive matches everything by definition).
  std::optional<RuleDependencyGraph> graph_;
  /// Compiled rule plans shared by every Γ section of this evaluation
  /// (see ParkOptions::planner_mode); its counters fold into stats_.
  PlanCache plans_;
  IInterpretation interp_;
  BlockedSet blocked_;
  DeltaState delta_;
  DeltaAtoms delta_atoms_;
  ParkStats stats_;
  /// Batch-executor row counters (see ParkOptions::exec_mode); folded
  /// into stats_ after every Γ section. All zero on tuple-mode runs.
  ExecStats exec_stats_;
  /// Exception-isolating view of options_.observer (see core/observer.h);
  /// OnRunStart fires at construction, OnRunEnd when the fixpoint lands.
  ObserverHook observer_;
  size_t steps_taken_ = 0;
  /// Construction time, against which options_.deadline_ms is checked
  /// (the budget covers the whole stepped evaluation, like Park()'s).
  std::chrono::steady_clock::time_point start_time_;
  /// Run governance (deadline / external cancel / memory / derivation
  /// budgets), shared by every thread of every Γ section. cancel_ is null
  /// when no governance is configured — workers then skip polling.
  CancellationToken token_;
  CancellationToken* cancel_ = nullptr;
  /// Coordinator-side memory scope for the merged Γ derivation lists.
  CancellationToken::MemoryScope gamma_scope_;
  /// Construction time on the timings clock (options_.collect_timings).
  int64_t run_start_ns_ = 0;
  bool done_ = false;
};

}  // namespace park

#endif  // PARK_CORE_STEPPER_H_
