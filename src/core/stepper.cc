#include "core/stepper.h"

#include "util/string_util.h"

namespace park {

ParkStepper::ParkStepper(const Program& program, const Database& db,
                         ParkOptions options)
    : program_(program),
      db_(db),
      options_(std::move(options)),
      policy_(options_.policy ? options_.policy : MakeInertiaPolicy()),
      interp_(&db),
      start_time_(std::chrono::steady_clock::now()) {
  PARK_CHECK(program.symbols() == db.symbols())
      << "program and database must share a symbol table";
  int num_threads = ResolveNumThreads(options_.num_threads);
  stats_.num_threads = static_cast<size_t>(num_threads);
  if (num_threads > 1) {
    parallel_.emplace(program_, num_threads, options_.min_slice_size);
  }
}

Result<StepOutcome> ParkStepper::Step() {
  if (done_) return StepOutcome{};  // kFixpoint
  if (steps_taken_ >= options_.max_steps) {
    return ResourceExhaustedError(StrFormat(
        "PARK evaluation exceeded max_steps=%zu", options_.max_steps));
  }
  if (options_.deadline_ms > 0) {
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start_time_)
                       .count();
    if (elapsed >= options_.deadline_ms) {
      return ResourceExhaustedError(StrFormat(
          "PARK evaluation exceeded deadline_ms=%lld (elapsed %lld ms)",
          static_cast<long long>(options_.deadline_ms),
          static_cast<long long>(elapsed)));
    }
  }
  ++steps_taken_;

  const GammaMode mode = options_.gamma_mode;
  ParallelGamma* parallel = parallel_.has_value() ? &*parallel_ : nullptr;
  GammaResult gamma;
  switch (mode) {
    case GammaMode::kNaive:
      gamma = ComputeGamma(program_, blocked_, interp_, parallel);
      break;
    case GammaMode::kDeltaFiltered:
      gamma = ComputeGammaFiltered(program_, blocked_, interp_, delta_,
                                   parallel);
      break;
    case GammaMode::kSemiNaive:
      gamma = ComputeGammaSemiNaive(program_, blocked_, interp_,
                                    delta_atoms_, parallel);
      break;
  }
  stats_.rule_evaluations += gamma.rules_evaluated;
  if (parallel != nullptr) {
    stats_.parallel_sections = parallel->pool().sections_run();
    stats_.parallel_tasks = parallel->pool().tasks_executed();
    stats_.parallel_sliced_units = parallel->sliced_units();
    stats_.parallel_slices = parallel->slice_tasks();
  }

  if (gamma.consistent) {
    if (gamma.newly_marked == 0) {
      done_ = true;
      stats_.blocked_instances = blocked_.size();
      return StepOutcome{};  // kFixpoint
    }
    StepOutcome outcome;
    outcome.kind = StepOutcome::Kind::kGamma;
    switch (mode) {
      case GammaMode::kNaive:
        outcome.new_marks = ApplyDerivations(gamma.derivations, interp_);
        break;
      case GammaMode::kDeltaFiltered:
        outcome.new_marks =
            ApplyDerivationsTracked(gamma.derivations, interp_, delta_);
        break;
      case GammaMode::kSemiNaive:
        outcome.new_marks = ApplyDerivationsTrackedAtoms(
            gamma.derivations, interp_, delta_atoms_);
        break;
    }
    stats_.derived_marks += outcome.new_marks;
    ++stats_.gamma_steps;
    return outcome;
  }

  // Resolution transition: same logic as the batch evaluator.
  if (mode != GammaMode::kNaive) {
    gamma = ComputeGamma(program_, blocked_, interp_, parallel);
    stats_.rule_evaluations += gamma.rules_evaluated;
  }
  std::vector<Conflict> conflicts = BuildConflicts(gamma, interp_);
  if (options_.block_granularity == BlockGranularity::kFirstConflictOnly &&
      conflicts.size() > 1) {
    conflicts.resize(1);
  }

  StepOutcome outcome;
  outcome.kind = StepOutcome::Kind::kResolution;
  PolicyContext context{db_, program_, interp_,
                        static_cast<int>(stats_.restarts)};
  for (const Conflict& conflict : conflicts) {
    ++stats_.policy_invocations;
    PARK_ASSIGN_OR_RETURN(Vote vote, policy_->Select(context, conflict));
    if (vote == Vote::kAbstain) {
      return AbortedError(StrFormat(
          "policy '%s' abstained on conflict over %s",
          std::string(policy_->name()).c_str(),
          conflict.atom.ToString(*program_.symbols()).c_str()));
    }
    ++stats_.conflicts_resolved;
    outcome.conflicts.push_back(
        conflict.ToString(program_, *program_.symbols()));
    const std::vector<RuleGrounding>& losing =
        vote == Vote::kInsert ? conflict.deleters : conflict.inserters;
    for (const RuleGrounding& g : losing) {
      if (blocked_.insert(g).second) ++outcome.newly_blocked;
    }
  }
  if (outcome.newly_blocked == 0) {
    return AbortedError(
        "conflict resolution made no progress (no new blocked instances)");
  }
  interp_.ClearMarks();
  delta_.Reset();
  delta_atoms_.Reset();
  ++stats_.restarts;
  return outcome;
}

Result<Database> ParkStepper::Finish() {
  while (!done_) {
    PARK_RETURN_IF_ERROR(Step().status());
  }
  return interp_.Incorporate();
}

}  // namespace park
