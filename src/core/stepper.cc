#include "core/stepper.h"

#include "util/metrics.h"
#include "util/string_util.h"

namespace park {
namespace {

const char* StepperGammaModeName(GammaMode mode) {
  switch (mode) {
    case GammaMode::kNaive: return "naive";
    case GammaMode::kDeltaFiltered: return "delta_filtered";
    case GammaMode::kSemiNaive: return "semi_naive";
  }
  return "unknown";
}

}  // namespace

ParkStepper::ParkStepper(const Program& program, const Database& db,
                         ParkOptions options)
    : program_(program),
      db_(db),
      options_(std::move(options)),
      policy_(options_.policy ? options_.policy : MakeInertiaPolicy()),
      plans_(program, options_.planner_mode),
      interp_(&db),
      observer_(options_.observer),
      start_time_(std::chrono::steady_clock::now()) {
  PARK_CHECK(program.symbols() == db.symbols())
      << "program and database must share a symbol table";
  int num_threads = ResolveNumThreads(options_.num_threads);
  stats_.num_threads = static_cast<size_t>(num_threads);
  stats_.planner_mode = options_.planner_mode;
  stats_.exec_mode = options_.exec_mode;
  stats_.timings.collected = options_.collect_timings;
  stats_.memory_limit_bytes = options_.max_memory_bytes;
  stats_.derivation_limit = options_.max_derivations;
  // Arm the run token only when some form of governance is configured;
  // ungoverned runs keep cancel_ == nullptr and skip all polling.
  if (options_.deadline_ms > 0 || options_.cancel != nullptr ||
      options_.max_memory_bytes > 0 || options_.max_derivations > 0) {
    if (options_.deadline_ms > 0) {
      token_.SetDeadline(start_time_ +
                         std::chrono::milliseconds(options_.deadline_ms));
    }
    if (options_.max_memory_bytes > 0) {
      token_.SetMemoryLimit(options_.max_memory_bytes);
    }
    if (options_.max_derivations > 0) {
      token_.SetWorkLimit(options_.max_derivations);
    }
    token_.ChainParent(options_.cancel);
    cancel_ = &token_;
  }
  if (num_threads > 1) {
    parallel_.emplace(program_, num_threads, options_.min_slice_size);
    if (options_.collect_timings) parallel_->EnableTiming();
  }
  stats_.scheduler_mode = options_.scheduler_mode;
  if (options_.scheduler_mode == SchedulerMode::kDependency &&
      options_.gamma_mode != GammaMode::kNaive) {
    graph_.emplace(program_);
    stats_.sched_strata = graph_->num_strata();
  }
  if (options_.observer != nullptr) {
    plans_.set_compile_listener([this](const PlanExplanation& explanation) {
      observer_.Notify(
          [&](RunObserver& o) { o.OnPlanCompiled(explanation); });
    });
  }
  if (options_.collect_timings) run_start_ns_ = MonotonicNanos();
  observer_.Notify([&](RunObserver& o) {
    o.OnRunStart(RunStartInfo{program_.size(), num_threads,
                              StepperGammaModeName(options_.gamma_mode)});
  });
}

void ParkStepper::RefreshParallelStats() {
  if (!parallel_.has_value()) return;
  stats_.parallel_sections = parallel_->pool().sections_run();
  stats_.parallel_tasks = parallel_->pool().tasks_executed();
  stats_.parallel_sliced_units = parallel_->sliced_units();
  stats_.parallel_slices = parallel_->slice_tasks();
  stats_.parallel_max_queue_depth = parallel_->pool().max_section_tasks();
  stats_.timings.parallel_match_ns = parallel_->match_ns();
  stats_.timings.parallel_merge_ns = parallel_->merge_ns();
  stats_.timings.pool_busy_ns = parallel_->pool().busy_ns();
}

void ParkStepper::RefreshPlannerStats() {
  stats_.plans_compiled = plans_.plans_compiled();
  stats_.plan_cache_hits = plans_.cache_hits();
  stats_.plan_replans = plans_.replans();
  stats_.planner_estimated_rows = plans_.estimated_rows();
  stats_.planner_actual_rows = plans_.actual_rows();
}

void ParkStepper::RefreshResourceStats() {
  if (cancel_ == nullptr) return;
  stats_.peak_memory_bytes = cancel_->peak_bytes();
  stats_.derivations_charged = cancel_->work_charged();
}

void ParkStepper::RefreshStorageStats() {
  Database::ColumnarFootprint fp = interp_.base().ColumnarStats();
  const Database::ColumnarFootprint plus_fp = interp_.plus().ColumnarStats();
  const Database::ColumnarFootprint minus_fp =
      interp_.minus().ColumnarStats();
  fp.segments += plus_fp.segments + minus_fp.segments;
  fp.segment_rows += plus_fp.segment_rows + minus_fp.segment_rows;
  fp.compactions += plus_fp.compactions + minus_fp.compactions;
  fp.dict_entries += plus_fp.dict_entries + minus_fp.dict_entries;
  stats_.storage_segments = static_cast<size_t>(fp.segments);
  stats_.storage_segment_rows = static_cast<size_t>(fp.segment_rows);
  stats_.storage_compactions = static_cast<size_t>(fp.compactions);
  stats_.storage_dict_entries = static_cast<size_t>(fp.dict_entries);
  stats_.exec_batch_rows =
      exec_stats_.batch_rows.load(std::memory_order_relaxed);
  stats_.exec_probe_rows =
      exec_stats_.probe_rows.load(std::memory_order_relaxed);
  stats_.exec_merge_rows =
      exec_stats_.merge_rows.load(std::memory_order_relaxed);
}

Result<StepOutcome> ParkStepper::Step() {
  if (done_) return StepOutcome{};  // kFixpoint
  if (steps_taken_ >= options_.max_steps) {
    return ResourceExhaustedError(StrFormat(
        "PARK evaluation exceeded max_steps=%zu", options_.max_steps));
  }
  if (cancel_ != nullptr && cancel_->Check()) {
    RefreshResourceStats();
    return cancel_->ToStatus();
  }
  const int step_number = static_cast<int>(steps_taken_);
  ++steps_taken_;
  observer_.Notify([&](RunObserver& o) { o.OnStepStart(step_number); });
  const bool timed = options_.collect_timings;

  const GammaMode mode = options_.gamma_mode;
  ParallelGamma* parallel = parallel_.has_value() ? &*parallel_ : nullptr;
  int64_t gamma_start_ns = timed ? MonotonicNanos() : 0;
  GammaResult gamma;
  switch (mode) {
    case GammaMode::kNaive:
      gamma = ComputeGamma(program_, blocked_, interp_, parallel, &plans_,
                           cancel_, options_.exec_mode, &exec_stats_);
      break;
    case GammaMode::kDeltaFiltered:
      gamma = ComputeGammaFiltered(program_, blocked_, interp_, delta_,
                                   parallel, &plans_, cancel_,
                                   options_.exec_mode, &exec_stats_,
                                   graph_.has_value() ? &*graph_ : nullptr);
      break;
    case GammaMode::kSemiNaive:
      gamma = ComputeGammaSemiNaive(program_, blocked_, interp_,
                                    delta_atoms_, parallel, &plans_,
                                    cancel_, options_.exec_mode,
                                    &exec_stats_,
                                    graph_.has_value() ? &*graph_ : nullptr);
      break;
  }
  if (timed) {
    stats_.timings.gamma_ns +=
        static_cast<uint64_t>(MonotonicNanos() - gamma_start_ns);
  }
  if (cancel_ != nullptr) {
    // The merged derivation list lives on the coordinator until applied.
    cancel_->UpdateScope(gamma_scope_,
                         gamma.derivations.capacity() * sizeof(Derivation));
    if (cancel_->Check()) {
      // gamma is partial — discard it and surface the cause.
      RefreshResourceStats();
      return cancel_->ToStatus();
    }
  }
  stats_.rule_evaluations += gamma.rules_evaluated;
  stats_.sched_rules_considered += gamma.rules_considered;
  stats_.sched_rules_skipped += gamma.rules_skipped;
  stats_.sched_pipeline_stages += gamma.pipeline_stages;
  RefreshParallelStats();
  RefreshPlannerStats();
  RefreshResourceStats();
  RefreshStorageStats();
  observer_.Notify([&](RunObserver& o) {
    o.OnGammaSection(GammaSectionInfo{
        step_number, gamma.rules_evaluated, gamma.derivations.size(),
        gamma.newly_marked, gamma.consistent});
  });

  if (gamma.consistent) {
    if (gamma.newly_marked == 0) {
      done_ = true;
      stats_.blocked_instances = blocked_.size();
      RefreshResourceStats();
      if (timed) {
        stats_.timings.total_ns =
            static_cast<uint64_t>(MonotonicNanos() - run_start_ns_);
      }
      observer_.Notify([&](RunObserver& o) { o.OnFixpoint(step_number); });
      observer_.Notify([&](RunObserver& o) { o.OnRunEnd(stats_); });
      return StepOutcome{};  // kFixpoint
    }
    StepOutcome outcome;
    outcome.kind = StepOutcome::Kind::kGamma;
    int64_t apply_start_ns = timed ? MonotonicNanos() : 0;
    switch (mode) {
      case GammaMode::kNaive:
        outcome.new_marks = ApplyDerivations(gamma.derivations, interp_);
        break;
      case GammaMode::kDeltaFiltered:
        outcome.new_marks =
            ApplyDerivationsTracked(gamma.derivations, interp_, delta_);
        break;
      case GammaMode::kSemiNaive:
        outcome.new_marks = ApplyDerivationsTrackedAtoms(
            gamma.derivations, interp_, delta_atoms_);
        break;
    }
    if (timed) {
      stats_.timings.apply_ns +=
          static_cast<uint64_t>(MonotonicNanos() - apply_start_ns);
    }
    stats_.derived_marks += outcome.new_marks;
    ++stats_.gamma_steps;
    return outcome;
  }

  // Resolution transition: same logic as the batch evaluator.
  if (mode != GammaMode::kNaive) {
    gamma_start_ns = timed ? MonotonicNanos() : 0;
    gamma = ComputeGamma(program_, blocked_, interp_, parallel, &plans_,
                         cancel_, options_.exec_mode, &exec_stats_);
    if (timed) {
      stats_.timings.gamma_ns +=
          static_cast<uint64_t>(MonotonicNanos() - gamma_start_ns);
    }
    if (cancel_ != nullptr) {
      cancel_->UpdateScope(
          gamma_scope_, gamma.derivations.capacity() * sizeof(Derivation));
      if (cancel_->Check()) {
        RefreshResourceStats();
        return cancel_->ToStatus();
      }
    }
    stats_.rule_evaluations += gamma.rules_evaluated;
    stats_.sched_rules_considered += gamma.rules_considered;
    stats_.sched_rules_skipped += gamma.rules_skipped;
    stats_.sched_pipeline_stages += gamma.pipeline_stages;
    RefreshParallelStats();
    RefreshPlannerStats();
    RefreshResourceStats();
    RefreshStorageStats();
    observer_.Notify([&](RunObserver& o) {
      o.OnGammaSection(GammaSectionInfo{
          step_number, gamma.rules_evaluated, gamma.derivations.size(),
          gamma.newly_marked, gamma.consistent});
    });
  }
  const int64_t conflict_start_ns = timed ? MonotonicNanos() : 0;
  std::vector<Conflict> conflicts = BuildConflicts(gamma, interp_);
  if (options_.block_granularity == BlockGranularity::kFirstConflictOnly &&
      conflicts.size() > 1) {
    conflicts.resize(1);
  }

  StepOutcome outcome;
  outcome.kind = StepOutcome::Kind::kResolution;
  PolicyContext context{db_, program_, interp_,
                        static_cast<int>(stats_.restarts)};
  for (const Conflict& conflict : conflicts) {
    ++stats_.policy_invocations;
    const int64_t policy_start_ns = timed ? MonotonicNanos() : 0;
    PARK_ASSIGN_OR_RETURN(Vote vote, policy_->Select(context, conflict));
    if (timed) {
      stats_.timings.policy_ns +=
          static_cast<uint64_t>(MonotonicNanos() - policy_start_ns);
    }
    if (vote == Vote::kAbstain) {
      return AbortedError(StrFormat(
          "policy '%s' abstained on conflict over %s",
          std::string(policy_->name()).c_str(),
          conflict.atom.ToString(*program_.symbols()).c_str()));
    }
    ++stats_.conflicts_resolved;
    observer_.Notify(
        [&](RunObserver& o) { o.OnPolicyDecision(conflict, vote); });
    outcome.conflicts.push_back(
        conflict.ToString(program_, *program_.symbols()));
    const std::vector<RuleGrounding>& losing =
        vote == Vote::kInsert ? conflict.deleters : conflict.inserters;
    for (const RuleGrounding& g : losing) {
      if (blocked_.insert(g).second) ++outcome.newly_blocked;
    }
  }
  observer_.Notify([&](RunObserver& o) {
    o.OnConflictRound(ConflictRoundInfo{
        stats_.restarts, conflicts.size(), outcome.newly_blocked});
  });
  if (timed) {
    stats_.timings.conflict_ns +=
        static_cast<uint64_t>(MonotonicNanos() - conflict_start_ns);
  }
  if (outcome.newly_blocked == 0) {
    return AbortedError(
        "conflict resolution made no progress (no new blocked instances)");
  }
  interp_.ClearMarks();
  delta_.Reset();
  delta_atoms_.Reset();
  ++stats_.restarts;
  observer_.Notify([&](RunObserver& o) { o.OnRestart(stats_.restarts); });
  return outcome;
}

Result<Database> ParkStepper::Finish() {
  while (!done_) {
    PARK_RETURN_IF_ERROR(Step().status());
  }
  return interp_.Incorporate();
}

}  // namespace park
