#include "core/trace.h"

#include "util/string_util.h"

namespace park {

const char* TraceEventKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kInitial:
      return "initial";
    case TraceEvent::Kind::kGammaStep:
      return "gamma";
    case TraceEvent::Kind::kInconsistent:
      return "clash";
    case TraceEvent::Kind::kConflict:
      return "conflict";
    case TraceEvent::Kind::kResolution:
      return "resolution";
    case TraceEvent::Kind::kRestart:
      return "restart";
    case TraceEvent::Kind::kFixpoint:
      return "fixpoint";
  }
  return "?";
}

void Trace::RecordInitial(const IInterpretation& interp, int step) {
  if (level_ == TraceLevel::kNone) return;
  TraceEvent event{TraceEvent::Kind::kInitial, step, {}, {}};
  if (level_ == TraceLevel::kFull) {
    event.interpretation = interp.SortedLiteralStrings();
  }
  events_.push_back(std::move(event));
}

void Trace::RecordGammaStep(const IInterpretation& interp, int step) {
  if (level_ != TraceLevel::kFull) return;
  TraceEvent event{TraceEvent::Kind::kGammaStep, step, {}, {}};
  event.interpretation = interp.SortedLiteralStrings();
  events_.push_back(std::move(event));
}

void Trace::RecordInconsistentStep(std::vector<std::string> snapshot,
                                   int step) {
  if (level_ != TraceLevel::kFull) return;
  events_.push_back(TraceEvent{TraceEvent::Kind::kInconsistent, step,
                               std::move(snapshot), {}});
}

void Trace::RecordConflict(std::vector<std::string> descriptions, int step) {
  if (level_ == TraceLevel::kNone) return;
  events_.push_back(TraceEvent{TraceEvent::Kind::kConflict, step, {},
                               std::move(descriptions)});
}

void Trace::RecordResolution(std::vector<std::string> notes, int step) {
  if (level_ == TraceLevel::kNone) return;
  events_.push_back(
      TraceEvent{TraceEvent::Kind::kResolution, step, {}, std::move(notes)});
}

void Trace::RecordRestart(int step) {
  if (level_ == TraceLevel::kNone) return;
  events_.push_back(TraceEvent{TraceEvent::Kind::kRestart, step, {}, {}});
}

void Trace::RecordFixpoint(const IInterpretation& interp, int step) {
  if (level_ == TraceLevel::kNone) return;
  TraceEvent event{TraceEvent::Kind::kFixpoint, step, {}, {}};
  if (level_ == TraceLevel::kFull) {
    event.interpretation = interp.SortedLiteralStrings();
  }
  events_.push_back(std::move(event));
}

std::vector<std::vector<std::string>> Trace::InterpretationHistory() const {
  std::vector<std::vector<std::string>> history;
  for (const TraceEvent& event : events_) {
    if (event.kind == TraceEvent::Kind::kGammaStep ||
        event.kind == TraceEvent::Kind::kInconsistent) {
      history.push_back(event.interpretation);
    }
  }
  return history;
}

std::string Trace::ToString() const {
  std::string out;
  for (const TraceEvent& event : events_) {
    out += StrFormat("[%3d] %-10s", event.step,
                     TraceEventKindName(event.kind));
    if (!event.interpretation.empty()) {
      out += " {";
      out += Join(event.interpretation, ", ");
      out += "}";
    }
    out += "\n";
    for (const std::string& note : event.notes) {
      out += "        ";
      out += note;
      out += "\n";
    }
  }
  return out;
}

}  // namespace park
