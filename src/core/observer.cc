#include "core/observer.h"

#include <exception>
#include <ostream>

#include "core/park_evaluator.h"
#include "util/logging.h"

namespace park {

void ObserverHook::ReportObserverFailure() {
  // Re-raise the in-flight exception to name it in the log; observers are
  // diagnostics, so their failures must never fail the evaluation.
  try {
    throw;
  } catch (const std::exception& e) {
    PARK_LOG(kWarning) << "RunObserver callback threw ("
                       << e.what() << "); observer detached for the rest "
                       << "of this run";
  } catch (...) {
    PARK_LOG(kWarning) << "RunObserver callback threw; observer detached "
                       << "for the rest of this run";
  }
}

// --- TracingObserver -----------------------------------------------------

void TracingObserver::OnRunStart(const RunStartInfo& info) {
  out_ << "[park] run start: " << info.num_rules << " rule(s), "
       << info.num_threads << " thread(s), gamma=" << info.gamma_mode
       << "\n";
}

void TracingObserver::OnStepStart(int step) {
  out_ << "[park] step " << step << " begin\n";
}

void TracingObserver::OnGammaSection(const GammaSectionInfo& info) {
  out_ << "[park] step " << info.step << ": gamma rules="
       << info.rules_evaluated << " derivations=" << info.derivations
       << " new_marks=" << info.newly_marked
       << (info.consistent ? " consistent" : " INCONSISTENT") << "\n";
}

void TracingObserver::OnPlanCompiled(const PlanExplanation& explanation) {
  out_ << "[park] " << ExplainPlanLine(explanation) << "\n";
}

void TracingObserver::OnPolicyDecision(const Conflict& conflict,
                                       Vote vote) {
  out_ << "[park]   select " << VoteToString(vote);
  if (symbols_ != nullptr) {
    out_ << " on " << conflict.atom.ToString(*symbols_);
  }
  out_ << " (ins=" << conflict.inserters.size()
       << " del=" << conflict.deleters.size() << ")\n";
}

void TracingObserver::OnConflictRound(const ConflictRoundInfo& info) {
  out_ << "[park] conflict round " << info.restart << ": "
       << info.conflicts << " conflict(s), " << info.newly_blocked
       << " newly blocked\n";
}

void TracingObserver::OnRestart(size_t restart) {
  out_ << "[park] restart #" << restart << " (marks cleared)\n";
}

void TracingObserver::OnFixpoint(int step) {
  out_ << "[park] fixpoint at step " << step << "\n";
}

void TracingObserver::OnRunEnd(const ParkStats& stats) {
  out_ << "[park] run end: " << stats.gamma_steps << " step(s), "
       << stats.restarts << " restart(s), " << stats.derived_marks
       << " mark(s)\n";
}

void TracingObserver::OnCommitStart(size_t updates) {
  out_ << "[park] commit start: " << updates << " update(s)\n";
}

void TracingObserver::OnCommitEnd(const CommitEndInfo& info) {
  out_ << "[park] commit end: +" << info.inserted << " -" << info.deleted
       << ", " << info.restarts << " restart(s)";
  if (info.journal_seq != 0) out_ << ", journal seq " << info.journal_seq;
  out_ << "\n";
}

void TracingObserver::OnJournalAppend(uint64_t seq) {
  out_ << "[park] journal append seq " << seq << "\n";
}

void TracingObserver::OnCheckpoint(uint64_t seq) {
  out_ << "[park] checkpoint at seq " << seq << "\n";
}

void TracingObserver::OnBatchCommit(const BatchCommitInfo& info) {
  out_ << "[park] batch " << info.batch_seq << ": " << info.txns
       << " txn(s)";
  if (info.journal_seq != 0) out_ << ", journal seq " << info.journal_seq;
  if (info.poisoned) out_ << ", POISONED (members retried individually)";
  out_ << "\n";
}

void TracingObserver::OnSnapshotOpen(uint64_t journal_seq) {
  out_ << "[park] snapshot open at seq " << journal_seq << "\n";
}

void TracingObserver::OnSnapshotRelease(uint64_t journal_seq) {
  out_ << "[park] snapshot release at seq " << journal_seq << "\n";
}

// --- MetricsObserver -----------------------------------------------------

MetricsObserver::MetricsObserver(MetricsRegistry* registry)
    : registry_(registry),
      runs_(registry->GetCounter("park.runs")),
      steps_(registry->GetCounter("park.steps")),
      gamma_sections_(registry->GetCounter("park.gamma_sections")),
      derivations_(registry->GetCounter("park.derivations")),
      new_marks_(registry->GetCounter("park.new_marks")),
      inconsistent_sections_(
          registry->GetCounter("park.inconsistent_sections")),
      policy_votes_insert_(
          registry->GetCounter("park.policy_votes_insert")),
      policy_votes_delete_(
          registry->GetCounter("park.policy_votes_delete")),
      conflict_rounds_(registry->GetCounter("park.conflict_rounds")),
      conflicts_(registry->GetCounter("park.conflicts")),
      newly_blocked_(registry->GetCounter("park.newly_blocked")),
      restarts_(registry->GetCounter("park.restarts")),
      fixpoints_(registry->GetCounter("park.fixpoints")),
      commits_(registry->GetCounter("park.commits")),
      commit_inserted_(registry->GetCounter("park.commit_inserted")),
      commit_deleted_(registry->GetCounter("park.commit_deleted")),
      journal_appends_(registry->GetCounter("park.journal_appends")),
      checkpoints_(registry->GetCounter("park.checkpoints")),
      batches_(registry->GetCounter("park.batches")),
      batched_txns_(registry->GetCounter("park.batched_txns")),
      poisoned_batches_(registry->GetCounter("park.poisoned_batches")),
      snapshots_opened_(registry->GetCounter("park.snapshots_opened")),
      snapshots_released_(registry->GetCounter("park.snapshots_released")),
      run_timer_(registry->GetTimer("park.run")),
      commit_timer_(registry->GetTimer("park.commit")) {}

void MetricsObserver::OnRunStart(const RunStartInfo& info) {
  (void)info;
  runs_->Add();
  if (registry_->enabled()) run_start_ns_ = MonotonicNanos();
}

void MetricsObserver::OnStepStart(int step) {
  (void)step;
  steps_->Add();
}

void MetricsObserver::OnGammaSection(const GammaSectionInfo& info) {
  gamma_sections_->Add();
  derivations_->Add(info.derivations);
  new_marks_->Add(info.newly_marked);
  if (!info.consistent) inconsistent_sections_->Add();
}

void MetricsObserver::OnPolicyDecision(const Conflict& conflict,
                                       Vote vote) {
  (void)conflict;
  if (vote == Vote::kInsert) {
    policy_votes_insert_->Add();
  } else if (vote == Vote::kDelete) {
    policy_votes_delete_->Add();
  }
}

void MetricsObserver::OnConflictRound(const ConflictRoundInfo& info) {
  conflict_rounds_->Add();
  conflicts_->Add(info.conflicts);
  newly_blocked_->Add(info.newly_blocked);
}

void MetricsObserver::OnRestart(size_t restart) {
  (void)restart;
  restarts_->Add();
}

void MetricsObserver::OnFixpoint(int step) {
  (void)step;
  fixpoints_->Add();
}

void MetricsObserver::OnRunEnd(const ParkStats& stats) {
  (void)stats;
  if (registry_->enabled()) {
    run_timer_->Record(
        static_cast<uint64_t>(MonotonicNanos() - run_start_ns_));
  }
}

void MetricsObserver::OnCommitStart(size_t updates) {
  (void)updates;
  commits_->Add();
  if (registry_->enabled()) commit_start_ns_ = MonotonicNanos();
}

void MetricsObserver::OnCommitEnd(const CommitEndInfo& info) {
  commit_inserted_->Add(info.inserted);
  commit_deleted_->Add(info.deleted);
  if (registry_->enabled()) {
    commit_timer_->Record(
        static_cast<uint64_t>(MonotonicNanos() - commit_start_ns_));
  }
}

void MetricsObserver::OnJournalAppend(uint64_t seq) {
  (void)seq;
  journal_appends_->Add();
}

void MetricsObserver::OnCheckpoint(uint64_t seq) {
  (void)seq;
  checkpoints_->Add();
}

void MetricsObserver::OnBatchCommit(const BatchCommitInfo& info) {
  batches_->Add();
  batched_txns_->Add(info.txns);
  if (info.poisoned) poisoned_batches_->Add();
}

void MetricsObserver::OnSnapshotOpen(uint64_t journal_seq) {
  (void)journal_seq;
  snapshots_opened_->Add();
}

void MetricsObserver::OnSnapshotRelease(uint64_t journal_seq) {
  (void)journal_seq;
  snapshots_released_->Add();
}

}  // namespace park
