#include "core/maintenance.h"

#include <algorithm>
#include <memory>

#include "util/metrics.h"
#include "util/thread_pool.h"

namespace park {

void FixpointMaintainer::Invalidate() {
  stable_ = false;
  bound_program_ = nullptr;
  bound_rule_count_ = 0;
  graph_.reset();
  plans_.reset();
  parallel_.reset();
  static_eligible_ = false;
  head_preds_.clear();
  negated_preds_.clear();
}

bool FixpointMaintainer::EnsureBound(const Program& program,
                                     const ParkOptions& options) {
  const bool program_changed =
      bound_program_ != &program || bound_rule_count_ != program.size();
  if (program_changed) {
    // A program identity change without an Invalidate() call (e.g. the
    // owning ActiveDatabase was moved) drops INV too: the flag describes
    // a (database, program) pair, and we can no longer vouch for it.
    Invalidate();
    bound_program_ = &program;
    bound_rule_count_ = program.size();

    // Static gate (docs/INCREMENTAL.md): (1) every head inserts — delete
    // heads make the stabilized instance a moving target; (2) no event or
    // negated body literal reads a predicate some head writes — those
    // literal kinds are satisfied by MARKS, and a from-scratch run marks
    // every derived atom while the seeded closure marks only the cone, so
    // feedback through them could fire rules the closure never sees.
    static_eligible_ = true;
    for (const Rule& rule : program.rules()) {
      if (rule.head().action != ActionKind::kInsert) {
        static_eligible_ = false;
      }
      head_preds_.insert(rule.head().atom.predicate);
    }
    for (const Rule& rule : program.rules()) {
      for (const BodyLiteral& lit : rule.body()) {
        if (lit.kind == LiteralKind::kNegated) {
          negated_preds_.insert(lit.atom.predicate);
        }
        if (lit.kind != LiteralKind::kPositive &&
            head_preds_.count(lit.atom.predicate) > 0) {
          static_eligible_ = false;
        }
      }
    }
  }
  if (!graph_.has_value()) graph_.emplace(program);
  if (!plans_.has_value() || bound_planner_ != options.planner_mode) {
    plans_.emplace(program, options.planner_mode);
    bound_planner_ = options.planner_mode;
  }
  const int threads = ResolveNumThreads(options.num_threads);
  if (threads > 1) {
    if (parallel_ == nullptr || bound_threads_ != threads ||
        bound_slice_ != options.min_slice_size) {
      parallel_ = std::make_unique<ParallelGamma>(program, threads,
                                                  options.min_slice_size);
      bound_threads_ = threads;
      bound_slice_ = options.min_slice_size;
    }
  } else {
    parallel_.reset();
    bound_threads_ = 1;
  }
  return true;
}

void FixpointMaintainer::NoteFullCommit(const Program& program,
                                        const ParkOptions& options,
                                        bool conflict_free) {
  EnsureBound(program, options);
  // INV holds after a conflict-free full run of a gated program: the run
  // ended at a Γ fixpoint, so every rule body valid over the pure result
  // instance had fired and its (insert) head is already stored — a
  // stabilize run would be a no-op. Blocked instances or restarts break
  // the argument (a blocked grounding could re-fire in a fresh run).
  stable_ = static_eligible_ && conflict_free;
}

std::optional<MaintenanceOutcome> FixpointMaintainer::TryCommit(
    const Database& db, const Program& program,
    const std::vector<Update>& updates, const ParkOptions& options) {
  EnsureBound(program, options);
  if (!stable_ || !static_eligible_) return std::nullopt;
  // Options gate: the incremental path produces no trace, provenance, or
  // per-step observer events, and skips governance polling — when any of
  // those is armed the caller needs the full evaluator's behavior.
  if (options.trace_level != TraceLevel::kNone || options.record_provenance ||
      options.observer != nullptr || options.deadline_ms > 0 ||
      options.cancel != nullptr || options.max_memory_bytes > 0 ||
      options.max_derivations > 0) {
    return std::nullopt;
  }

  // Dynamic gate over U: (3) no atom updated with both signs (that is a
  // guaranteed conflict — let the policy machinery handle it); (4) no
  // delete of a predicate some head writes (the closure would have to
  // re-derive into the deletion — exactly the degenerate DRed case,
  // docs/INCREMENTAL.md); (5) no insert into a negated predicate (a
  // from-scratch run may fire a !p(...) body in the same step the seed
  // lands; the proof keeps that window closed by gating it out).
  std::unordered_set<GroundAtom, GroundAtomHash> plus_seen;
  std::unordered_set<GroundAtom, GroundAtomHash> minus_seen;
  for (const Update& u : updates) {
    const bool insert = u.action == ActionKind::kInsert;
    if ((insert ? minus_seen : plus_seen).count(u.atom) > 0) {
      return std::nullopt;
    }
    (insert ? plus_seen : minus_seen).insert(u.atom);
    if (!insert && head_preds_.count(u.atom.predicate()) > 0) {
      return std::nullopt;
    }
    if (insert && negated_preds_.count(u.atom.predicate()) > 0) {
      return std::nullopt;
    }
  }

  const bool timed = options.collect_timings;
  const int64_t run_start_ns = timed ? MonotonicNanos() : 0;
  const bool scheduled = options.scheduler_mode == SchedulerMode::kDependency;
  const RuleDependencyGraph* graph = scheduled ? &*graph_ : nullptr;
  ParallelGamma* parallel = parallel_.get();
  ExecStats exec_stats;
  const uint64_t plans_compiled_before = plans_->plans_compiled();
  const uint64_t cache_hits_before = plans_->cache_hits();
  const uint64_t replans_before = plans_->replans();
  const uint64_t est_rows_before = plans_->estimated_rows();
  const uint64_t act_rows_before = plans_->actual_rows();
  const uint64_t sections_before =
      parallel != nullptr ? parallel->pool().sections_run() : 0;
  const uint64_t tasks_before =
      parallel != nullptr ? parallel->pool().tasks_executed() : 0;
  const uint64_t sliced_before =
      parallel != nullptr ? parallel->sliced_units() : 0;
  const uint64_t slices_before =
      parallel != nullptr ? parallel->slice_tasks() : 0;

  // Seed the closure: U's marks, exactly what the body-less seed rules of
  // P_U would produce in the full run's first step.
  IInterpretation interp(&db);
  DeltaAtoms delta;
  delta.initial = false;
  const RuleGrounding seed;  // rule_index -1: "seeded by the transaction"
  ParkStats stats;
  for (const Update& u : updates) {
    if (interp.AddMarked(u.action, u.atom, seed)) {
      (u.action == ActionKind::kInsert ? delta.plus : delta.minus)
          .push_back(u.atom);
      ++stats.derived_marks;
    }
  }

  // Semi-naive closure over the stable base. Rules untouched by the
  // delta never re-fire — INV says their heads are already stored.
  const BlockedSet no_blocked;
  size_t steps = 0;
  uint64_t gamma_ns = 0;
  uint64_t apply_ns = 0;
  while (true) {
    if (steps >= options.max_steps) return std::nullopt;
    const int64_t gamma_start_ns = timed ? MonotonicNanos() : 0;
    GammaResult gamma = ComputeGammaSemiNaive(
        program, no_blocked, interp, delta, parallel, &*plans_,
        /*cancel=*/nullptr, options.exec_mode, &exec_stats, graph);
    if (timed) {
      gamma_ns += static_cast<uint64_t>(MonotonicNanos() - gamma_start_ns);
    }
    stats.rule_evaluations += gamma.rules_evaluated;
    stats.sched_rules_considered += gamma.rules_considered;
    stats.sched_rules_skipped += gamma.rules_skipped;
    stats.sched_pipeline_stages += gamma.pipeline_stages;
    // A clash inside the cone means this commit has real conflicts; the
    // full evaluator owns conflict construction and SELECT policies.
    if (!gamma.consistent) return std::nullopt;
    if (gamma.newly_marked == 0) break;
    const int64_t apply_start_ns = timed ? MonotonicNanos() : 0;
    const size_t added =
        ApplyDerivationsTrackedAtoms(gamma.derivations, interp, delta);
    if (timed) {
      apply_ns += static_cast<uint64_t>(MonotonicNanos() - apply_start_ns);
    }
    stats.derived_marks += added;
    stats.maint_atoms_rederived += added;
    ++stats.gamma_steps;
    ++steps;
  }

  // The commit's diff, read straight off the marks in O(|marks|): the
  // result instance is (D ∪ plus) \ minus with plus ∩ minus = ∅.
  MaintenanceOutcome outcome;
  interp.plus().ForEach([&](const GroundAtom& atom) {
    if (!db.Contains(atom)) outcome.inserted.push_back(atom);
  });
  interp.minus().ForEach([&](const GroundAtom& atom) {
    if (db.Contains(atom)) outcome.deleted.push_back(atom);
  });
  // Same order Database::DiffWith reports, so CommitReports are
  // bit-identical between the incremental and the full path.
  std::sort(outcome.inserted.begin(), outcome.inserted.end());
  std::sort(outcome.deleted.begin(), outcome.deleted.end());

  stats.num_threads = static_cast<size_t>(
      parallel != nullptr ? parallel->num_threads() : 1);
  stats.planner_mode = options.planner_mode;
  stats.scheduler_mode = options.scheduler_mode;
  stats.exec_mode = options.exec_mode;
  if (scheduled) stats.sched_strata = graph_->num_strata();
  stats.plans_compiled = plans_->plans_compiled() - plans_compiled_before;
  stats.plan_cache_hits = plans_->cache_hits() - cache_hits_before;
  stats.plan_replans = plans_->replans() - replans_before;
  stats.planner_estimated_rows = plans_->estimated_rows() - est_rows_before;
  stats.planner_actual_rows = plans_->actual_rows() - act_rows_before;
  if (parallel != nullptr) {
    stats.parallel_sections =
        parallel->pool().sections_run() - sections_before;
    stats.parallel_tasks = parallel->pool().tasks_executed() - tasks_before;
    stats.parallel_sliced_units = parallel->sliced_units() - sliced_before;
    stats.parallel_slices = parallel->slice_tasks() - slices_before;
    stats.parallel_max_queue_depth = parallel->pool().max_section_tasks();
  }
  {
    Database::ColumnarFootprint fp = interp.base().ColumnarStats();
    const Database::ColumnarFootprint plus_fp = interp.plus().ColumnarStats();
    const Database::ColumnarFootprint minus_fp =
        interp.minus().ColumnarStats();
    fp.segments += plus_fp.segments + minus_fp.segments;
    fp.segment_rows += plus_fp.segment_rows + minus_fp.segment_rows;
    fp.compactions += plus_fp.compactions + minus_fp.compactions;
    fp.dict_entries += plus_fp.dict_entries + minus_fp.dict_entries;
    stats.storage_segments = static_cast<size_t>(fp.segments);
    stats.storage_segment_rows = static_cast<size_t>(fp.segment_rows);
    stats.storage_compactions = static_cast<size_t>(fp.compactions);
    stats.storage_dict_entries = static_cast<size_t>(fp.dict_entries);
  }
  stats.exec_batch_rows =
      exec_stats.batch_rows.load(std::memory_order_relaxed);
  stats.exec_probe_rows =
      exec_stats.probe_rows.load(std::memory_order_relaxed);
  stats.exec_merge_rows =
      exec_stats.merge_rows.load(std::memory_order_relaxed);

  stats.maintenance_mode = MaintenanceMode::kIncremental;
  stats.maint_commits = 1;
  stats.maint_atoms_overdeleted = outcome.deleted.size();
  {
    std::vector<PredicateId> plus_preds;
    std::vector<PredicateId> minus_preds;
    for (const GroundAtom& atom : plus_seen) {
      plus_preds.push_back(atom.predicate());
    }
    for (const GroundAtom& atom : minus_seen) {
      minus_preds.push_back(atom.predicate());
    }
    stats.maint_cone_rules = graph_->ConeRules(plus_preds, minus_preds).size();
  }
  stats.timings.collected = timed;
  if (timed) {
    stats.timings.gamma_ns = gamma_ns;
    stats.timings.apply_ns = apply_ns;
    stats.timings.total_ns =
        static_cast<uint64_t>(MonotonicNanos() - run_start_ns);
  }
  outcome.stats = std::move(stats);
  // The applied commit preserves INV (docs/INCREMENTAL.md): the closure
  // ended at a fixpoint, so the new instance is rule-stable too. stable_
  // simply stays true; the caller's journal-failure rollback restores the
  // previous (also stable) instance, so no post-hook is needed.
  return outcome;
}

}  // namespace park
