// Execution traces of the PARK fixpoint computation.
//
// At TraceLevel::kFull the trace records the i-interpretation after every
// Γ application — exactly the step listings the paper prints for its
// worked examples — plus every detected conflict, policy decision, blocked
// instance, and restart. Tests compare these against the paper's text
// verbatim; parkcli's --trace flag prints them.

#ifndef PARK_CORE_TRACE_H_
#define PARK_CORE_TRACE_H_

#include <string>
#include <vector>

#include "core/bistructure.h"

namespace park {

enum class TraceLevel {
  kNone,     // record nothing
  kSummary,  // conflicts / resolutions / restarts, no interpretations
  kFull,     // everything, including per-step interpretation snapshots
};

/// One recorded event.
struct TraceEvent {
  enum class Kind {
    kInitial,       // computation (re)starts from I°
    kGammaStep,     // one consistent Γ application; snapshot is the new I
    kInconsistent,  // a Γ application whose result clashes; snapshot is the
                    // never-applied I ∪ Γ-derivations (the paper prints
                    // these as ordinary steps, e.g. "{p, +a, +q, +b, -q}")
    kConflict,      // a conflict was detected (notes describe it)
    kResolution,    // the policy decided (notes: vote, blocked instances)
    kRestart,       // marks cleared, computation resumes from I°
    kFixpoint,      // Γ(P,B)(I) = I: ω reached
  };

  Kind kind;
  /// Γ-application counter at the time of the event (global, not reset on
  /// restart).
  int step = 0;
  /// Sorted rendered literals of I (kInitial/kGammaStep/kFixpoint at
  /// kFull; empty otherwise).
  std::vector<std::string> interpretation;
  /// Event-specific text: conflict descriptions, votes, blocked instances.
  std::vector<std::string> notes;
};

const char* TraceEventKindName(TraceEvent::Kind kind);

/// Append-only event log. All Record* calls are no-ops at levels that do
/// not include the event's payload.
class Trace {
 public:
  explicit Trace(TraceLevel level = TraceLevel::kNone) : level_(level) {}

  TraceLevel level() const { return level_; }

  void RecordInitial(const IInterpretation& interp, int step);
  void RecordGammaStep(const IInterpretation& interp, int step);
  void RecordInconsistentStep(std::vector<std::string> snapshot, int step);
  void RecordConflict(std::vector<std::string> descriptions, int step);
  void RecordResolution(std::vector<std::string> notes, int step);
  void RecordRestart(int step);
  void RecordFixpoint(const IInterpretation& interp, int step);

  const std::vector<TraceEvent>& events() const { return events_; }

  /// The sequence of per-Γ-application snapshots (kGammaStep and
  /// kInconsistent events, in order) — exactly the paper's numbered
  /// "after step k" listings, which include the inconsistent attempts.
  std::vector<std::vector<std::string>> InterpretationHistory() const;

  /// Multi-line human-readable rendering.
  std::string ToString() const;

 private:
  TraceLevel level_;
  std::vector<TraceEvent> events_;
};

}  // namespace park

#endif  // PARK_CORE_TRACE_H_
