#include "core/policy.h"

namespace park {
namespace {

class LambdaPolicy final : public ConflictResolutionPolicy {
 public:
  LambdaPolicy(
      std::string name,
      std::function<Result<Vote>(const PolicyContext&, const Conflict&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string_view name() const override { return name_; }

  Result<Vote> Select(const PolicyContext& context,
                      const Conflict& conflict) override {
    return fn_(context, conflict);
  }

 private:
  std::string name_;
  std::function<Result<Vote>(const PolicyContext&, const Conflict&)> fn_;
};

}  // namespace

const char* VoteToString(Vote vote) {
  switch (vote) {
    case Vote::kInsert:
      return "insert";
    case Vote::kDelete:
      return "delete";
    case Vote::kAbstain:
      return "abstain";
  }
  return "?";
}

PolicyPtr MakeLambdaPolicy(
    std::string name,
    std::function<Result<Vote>(const PolicyContext&, const Conflict&)> fn) {
  return std::make_shared<LambdaPolicy>(std::move(name), std::move(fn));
}

std::string DescribeConflict(const PolicyContext& context,
                             const Conflict& conflict) {
  const SymbolTable& symbols = *context.program.symbols();
  std::string atom = conflict.atom.ToString(symbols);
  std::string out = "conflict on " + atom + "\n";
  out += "  currently " +
         std::string(context.database.Contains(conflict.atom)
                         ? "present in"
                         : "absent from") +
         " the database\n";
  out += "  insert commanded by:\n";
  for (const RuleGrounding& g : conflict.inserters) {
    out += "    " + g.ToString(context.program, symbols) + "\n";
  }
  out += "  delete commanded by:\n";
  for (const RuleGrounding& g : conflict.deleters) {
    out += "    " + g.ToString(context.program, symbols) + "\n";
  }
  return out;
}

}  // namespace park
