// FixpointMaintainer: incremental maintenance of the materialized PARK
// fixpoint across commits (docs/INCREMENTAL.md).
//
// PARK's principle of inertia makes within-commit deletions non-cascading
// (a `-` mark never invalidates a positive body literal — see
// IInterpretation::IsValid), so the classical DRed over-delete cone of an
// eligible base-fact delete is the atom itself. What remains of
// over-delete/re-derive is the RE-DERIVE half: when the stored database is
// known to be RULE-STABLE (running the rules with no updates would change
// nothing — the invariant INV, established by any conflict-free full
// commit), a new commit's effect is exactly the semi-naive closure seeded
// from U over the stored instance. The maintainer tracks INV, checks the
// eligibility gates, runs that seeded closure with the warm caches it
// keeps across commits (dependency graph, plan cache, thread pool), and
// hands back the commit's diff — bit-identical to the from-scratch
// PARK(D, P, U) (proved in docs/INCREMENTAL.md, swept by
// incremental_oracle_test) at cost proportional to |U| and its cone
// instead of |D|.
//
// Anything outside the proof obligations falls back to the full
// evaluator: programs with delete heads or event/negation feedback onto
// derived predicates, commits that delete derived predicates or insert
// into negated ones, conflicts discovered mid-closure, armed governance /
// tracing / provenance / observers, and any commit before INV is
// (re-)established. Fallbacks are transparent and counted
// (ParkStats::maint_full_recompute_fallbacks).

#ifndef PARK_CORE_MAINTENANCE_H_
#define PARK_CORE_MAINTENANCE_H_

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/park_evaluator.h"
#include "engine/consequence.h"
#include "engine/matcher.h"
#include "engine/rule_graph.h"

namespace park {

/// What an incrementally served commit did: the exact diff the full
/// evaluator's DiffWith would report (both lists sorted the same way
/// Database::Diff sorts them) plus the evaluation stats, maintenance
/// block filled. The maintainer never mutates the database — the caller
/// applies the diff, journals, and keeps its existing rollback semantics.
struct MaintenanceOutcome {
  std::vector<GroundAtom> inserted;
  std::vector<GroundAtom> deleted;
  ParkStats stats;
};

/// One per ActiveDatabase. Not thread-safe (commits are already
/// serialized by the owner: directly for a bare ActiveDatabase, by the
/// group-commit leader for a Session).
class FixpointMaintainer {
 public:
  /// Serves PARK(D, P, U) incrementally if every gate passes; returns
  /// nullopt (database untouched, INV flag untouched) when the commit
  /// must go through the full evaluator. `db` is read, never written.
  std::optional<MaintenanceOutcome> TryCommit(
      const Database& db, const Program& program,
      const std::vector<Update>& updates, const ParkOptions& options);

  /// Reports a full (from-scratch) commit whose result database has been
  /// durably installed. `conflict_free` means the run ended with no
  /// blocked instances and no restarts — INV is established iff that
  /// holds and the program passes the static gate; otherwise cleared.
  void NoteFullCommit(const Program& program, const ParkOptions& options,
                      bool conflict_free);

  /// Drops INV and every binding: rules, facts, or options changed
  /// underneath the maintained state. The next commit falls back to the
  /// full evaluator and re-establishes INV from its result.
  void Invalidate();

  /// Whether the stored database is currently known rule-stable (INV).
  bool stable() const { return stable_; }

 private:
  /// (Re)binds the warm caches to (program, options) — dependency graph,
  /// plan cache, parallel pool, static gate analysis — rebuilding only
  /// what the changed knobs require. Returns false (and drops INV) when
  /// the program identity changed without an Invalidate() call.
  bool EnsureBound(const Program& program, const ParkOptions& options);

  bool StaticGatePasses() const { return static_eligible_; }

  // --- binding (valid while bound_program_ matches) ---
  const Program* bound_program_ = nullptr;
  size_t bound_rule_count_ = 0;
  PlannerMode bound_planner_ = PlannerMode::kCostBased;
  int bound_threads_ = 1;            // resolved
  size_t bound_slice_ = 0;
  std::optional<RuleDependencyGraph> graph_;
  std::optional<PlanCache> plans_;
  // unique_ptr, not optional: ParallelGamma owns a thread pool and is
  // immovable, but the maintainer must move with its ActiveDatabase.
  std::unique_ptr<ParallelGamma> parallel_;

  // --- static gate analysis of the bound program ---
  bool static_eligible_ = false;
  std::unordered_set<PredicateId> head_preds_;
  std::unordered_set<PredicateId> negated_preds_;

  /// INV: PARK(D, P, ∅).database == D for the CURRENT stored instance.
  bool stable_ = false;
};

}  // namespace park

#endif  // PARK_CORE_MAINTENANCE_H_
