// Baseline 1: the pure inflationary fixpoint semantics of Kolaitis and
// Papadimitriou [6] — the deductive engine PARK builds on, with no
// conflict handling whatsoever. On conflict-free programs PARK coincides
// with it (claim C4 in DESIGN.md); on conflicting programs the inflationary
// fixpoint is inconsistent and its result database is undefined.

#ifndef PARK_CORE_BASELINE_INFLATIONARY_H_
#define PARK_CORE_BASELINE_INFLATIONARY_H_

#include "engine/consequence.h"
#include "util/status.h"

namespace park {

/// Runs Γ(P, ∅) to its inflationary fixpoint from `base`, never blocking
/// and never restarting, even through inconsistencies. `base` must outlive
/// the returned interpretation. `steps_out` (optional) receives the number
/// of Γ applications.
Result<IInterpretation> UnblockedFixpoint(const Program& program,
                                          const Database& base,
                                          size_t max_steps,
                                          size_t* steps_out);

/// The inflationary-fixpoint result for `program` on `db`.
struct InflationaryResult {
  /// incorp of the final interpretation — only meaningful when
  /// `consistent` (the evaluation refuses to incorporate otherwise and
  /// leaves the database equal to `db`).
  Database database;
  bool consistent = true;
  size_t steps = 0;
  /// Final fixpoint rendered as sorted literals (always populated).
  std::vector<std::string> final_literals;
};

/// Computes the inflationary fixpoint semantics of `program` on `db`.
Result<InflationaryResult> InflationaryFixpoint(const Program& program,
                                                const Database& db,
                                                size_t max_steps = 1'000'000);

}  // namespace park

#endif  // PARK_CORE_BASELINE_INFLATIONARY_H_
