// Baseline 2: the "stubborn" naive semantics the paper dismantles in §4.1
// — compute the full inflationary fixpoint ignoring conflicts, then cancel
// every conflicting pair {+a, -a} (the principle of inertia applied only
// at the end), then incorporate.
//
// On program P2 of §4.1 this produces {p, q, r, s}, keeping the atom `s`
// whose only derivation went through the cancelled +a — which is exactly
// why PARK restarts from I° with blocked instances instead. The divergence
// is asserted in tests and measured in bench_vs_baselines.

#ifndef PARK_CORE_BASELINE_NAIVE_CANCEL_H_
#define PARK_CORE_BASELINE_NAIVE_CANCEL_H_

#include "core/baseline/inflationary.h"

namespace park {

struct NaiveCancelResult {
  Database database;
  size_t steps = 0;
  /// Number of {+a, -a} pairs that were cancelled at the end.
  size_t cancelled_pairs = 0;
  /// Fixpoint literals before cancellation, rendered and sorted.
  std::vector<std::string> fixpoint_literals;
};

/// Computes the naive cancel-at-the-end semantics of `program` on `db`.
Result<NaiveCancelResult> NaiveCancelSemantics(const Program& program,
                                               const Database& db,
                                               size_t max_steps = 1'000'000);

}  // namespace park

#endif  // PARK_CORE_BASELINE_NAIVE_CANCEL_H_
