#include "core/baseline/naive_cancel.h"

#include <vector>

namespace park {

Result<NaiveCancelResult> NaiveCancelSemantics(const Program& program,
                                               const Database& db,
                                               size_t max_steps) {
  size_t steps = 0;
  PARK_ASSIGN_OR_RETURN(IInterpretation interp,
                        UnblockedFixpoint(program, db, max_steps, &steps));
  NaiveCancelResult result{Database(db.symbols()), steps, 0,
                           interp.SortedLiteralStrings()};

  // Cancel conflicting pairs, then incorporate the survivors.
  std::vector<GroundAtom> cancelled;
  interp.plus().ForEach([&](const GroundAtom& atom) {
    if (interp.HasMinus(atom)) cancelled.push_back(atom);
  });
  result.cancelled_pairs = cancelled.size();

  Database final_db = db.Clone();
  interp.plus().ForEach([&](const GroundAtom& atom) {
    if (!interp.HasMinus(atom)) final_db.Insert(atom);
  });
  interp.minus().ForEach([&](const GroundAtom& atom) {
    if (!interp.HasPlus(atom)) final_db.Erase(atom);
  });
  result.database = std::move(final_db);
  return result;
}

}  // namespace park
