#include "core/baseline/inflationary.h"

#include "util/string_util.h"

namespace park {

Result<IInterpretation> UnblockedFixpoint(const Program& program,
                                          const Database& base,
                                          size_t max_steps,
                                          size_t* steps_out) {
  IInterpretation interp(&base);
  BlockedSet no_blocked;
  size_t steps = 0;
  while (true) {
    if (steps >= max_steps) {
      return ResourceExhaustedError(StrFormat(
          "inflationary fixpoint exceeded max_steps=%zu", max_steps));
    }
    GammaResult gamma = ComputeGamma(program, no_blocked, interp);
    if (gamma.newly_marked == 0) break;
    ApplyDerivations(gamma.derivations, interp);
    ++steps;
  }
  if (steps_out != nullptr) *steps_out = steps;
  return interp;
}

Result<InflationaryResult> InflationaryFixpoint(const Program& program,
                                                const Database& db,
                                                size_t max_steps) {
  size_t steps = 0;
  PARK_ASSIGN_OR_RETURN(IInterpretation interp,
                        UnblockedFixpoint(program, db, max_steps, &steps));
  InflationaryResult result{Database(db.symbols()), interp.IsConsistent(),
                            steps, interp.SortedLiteralStrings()};
  result.database = result.consistent ? interp.Incorporate() : db.Clone();
  return result;
}

}  // namespace park
