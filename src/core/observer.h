// RunObserver: a pluggable callback interface onto the structural points
// of a PARK evaluation and the ActiveDatabase commit pipeline, for
// debuggers, metric sinks, and live dashboards (docs/OBSERVABILITY.md).
//
// Active-rule engines are hard to observe from the outside precisely
// because rule firings cascade invisibly inside one Commit() call; the
// observer makes the Δ loop's skeleton — steps, Γ sections, conflict
// rounds, policy votes, restarts — visible as it happens, without
// touching the semantics:
//
//   - Observation is read-only. Callbacks receive counts and const
//     references; nothing an observer does can change the result.
//   - Observation is non-fatal. The evaluator invokes every callback
//     through ObserverHook, which catches anything thrown, logs it,
//     and DETACHES the observer; the evaluation then finishes exactly
//     as if no observer had been installed (asserted in observer_test).
//   - Observation is cheap. With no observer installed each hook site
//     is one null-pointer test.
//
// Install via ParkOptions::observer (one evaluation) or
// ActiveDatabase::Configure (every commit; also receives the commit
// pipeline and journal/checkpoint events).
//
// Threading: all callbacks fire on the coordinating thread, strictly
// ordered. A parallel Γ section completes its fan-out before
// OnGammaSection fires; worker threads never call observers.

#ifndef PARK_CORE_OBSERVER_H_
#define PARK_CORE_OBSERVER_H_

#include <cstdint>
#include <iosfwd>

#include "core/policy.h"
#include "util/metrics.h"

namespace park {

struct ParkStats;        // core/park_evaluator.h (which includes this header)
struct PlanExplanation;  // engine/matcher.h

/// Static facts about one evaluation, delivered once at run start.
struct RunStartInfo {
  size_t num_rules = 0;
  /// Resolved thread count (after ResolveNumThreads), not the raw knob.
  int num_threads = 1;
  /// "naive" | "delta_filtered" | "semi_naive".
  const char* gamma_mode = "";
};

/// One Γ(P,B)(I) evaluation, parallel or sequential, reported after its
/// fan-out (if any) has completed and before it is applied or resolved.
struct GammaSectionInfo {
  int step = 0;                // Γ applications so far, 0-based
  size_t rules_evaluated = 0;  // bodies matched (section may skip rules)
  size_t derivations = 0;      // firable non-blocked instances found
  size_t newly_marked = 0;     // marks not already in I
  bool consistent = true;      // false: a conflict round follows
};

/// One conflict-resolution round (the paper's blocked-set extension),
/// reported after every conflict in the round has been decided.
struct ConflictRoundInfo {
  size_t restart = 0;        // rounds completed before this one
  size_t conflicts = 0;      // conflicts decided this round
  size_t newly_blocked = 0;  // instances added to B this round
};

/// One committed transaction, reported after the stored instance moved.
struct CommitEndInfo {
  size_t updates = 0;   // user updates in the transaction
  size_t inserted = 0;  // atoms added to the stored instance
  size_t deleted = 0;   // atoms removed from the stored instance
  size_t restarts = 0;  // conflict rounds the evaluation needed
  /// Journal sequence number of the commit's record; 0 when the database
  /// has no journal attached.
  uint64_t journal_seq = 0;
};

/// One completed group commit (serve::Session, docs/SERVING.md): `txns`
/// staged transactions folded into a single PARK firing and journal
/// record. `poisoned` means the folded batch failed as a unit and its
/// members were retried individually (each retry reports its own
/// OnCommitStart/OnCommitEnd pair).
struct BatchCommitInfo {
  uint64_t batch_seq = 0;    // 1-based batch counter of the session
  size_t txns = 0;           // transactions folded into the batch
  uint64_t journal_seq = 0;  // record the batch landed in (0: no journal)
  bool poisoned = false;
};

/// Callback interface. Every method has an empty default, so observers
/// override only the events they care about. Callbacks should be fast
/// (they run inline on the evaluation thread) and must not re-enter the
/// database they observe.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  // --- PARK loop (Park(), ParkStepper) ---
  virtual void OnRunStart(const RunStartInfo& info) { (void)info; }
  /// A Δ transition begins. `step` counts all transitions (Γ applications
  /// and resolution rounds), matching the step numbering in traces.
  virtual void OnStepStart(int step) { (void)step; }
  virtual void OnGammaSection(const GammaSectionInfo& info) { (void)info; }
  /// The join planner compiled (or, after statistics drift, recompiled) a
  /// rule or Δ-seeded rule variant into a match plan. Fires on the
  /// coordinating thread, before the plan's first execution. Render with
  /// ExplainPlanLine (engine/matcher.h).
  virtual void OnPlanCompiled(const PlanExplanation& explanation) {
    (void)explanation;
  }
  /// One policy decision inside a conflict round. `conflict` is the live
  /// object — render it eagerly if kept beyond the callback.
  virtual void OnPolicyDecision(const Conflict& conflict, Vote vote) {
    (void)conflict;
    (void)vote;
  }
  virtual void OnConflictRound(const ConflictRoundInfo& info) {
    (void)info;
  }
  /// Marks cleared, computation restarting from I°. `restart` is 1-based:
  /// the value ParkStats::restarts will hold from now on.
  virtual void OnRestart(size_t restart) { (void)restart; }
  /// Γ(P,B)(I) = I: the fixpoint is reached (the run's last loop event).
  virtual void OnFixpoint(int step) { (void)step; }
  /// Final event of every successful evaluation; `stats` is complete
  /// (including timings, when collected).
  virtual void OnRunEnd(const ParkStats& stats) { (void)stats; }

  // --- commit pipeline (ActiveDatabase) ---
  virtual void OnCommitStart(size_t updates) { (void)updates; }
  virtual void OnCommitEnd(const CommitEndInfo& info) { (void)info; }
  /// The commit's record reached the journal (post sync-mode handling).
  virtual void OnJournalAppend(uint64_t seq) { (void)seq; }
  /// A checkpoint completed at watermark `seq`.
  virtual void OnCheckpoint(uint64_t seq) { (void)seq; }

  // --- serving layer (serve::Session, docs/SERVING.md) ---
  /// A group commit completed (success or poisoned fallback). Fires on
  /// the leader thread after the batch's members were all reported.
  virtual void OnBatchCommit(const BatchCommitInfo& info) { (void)info; }
  /// A snapshot was opened pinning the generation committed at
  /// `journal_seq` / released (its pinned segments became reclaimable).
  /// Fire on the opening thread and on whichever thread dropped the last
  /// handle, respectively.
  virtual void OnSnapshotOpen(uint64_t journal_seq) { (void)journal_seq; }
  virtual void OnSnapshotRelease(uint64_t journal_seq) {
    (void)journal_seq;
  }
};

/// The evaluator-side wrapper that makes observers non-fatal: Notify
/// invokes a callback and, if it throws, logs the error and detaches the
/// observer for the rest of the run. Copyable view; null observer = every
/// Notify is one branch.
class ObserverHook {
 public:
  explicit ObserverHook(RunObserver* observer) : observer_(observer) {}

  bool armed() const { return observer_ != nullptr; }

  template <typename Fn>
  void Notify(Fn&& fn) {
    if (observer_ == nullptr) return;
    try {
      fn(*observer_);
    } catch (...) {
      observer_ = nullptr;
      ReportObserverFailure();
    }
  }

 private:
  void ReportObserverFailure();  // logs; never throws

  RunObserver* observer_;
};

/// Prints one line per event to a stream — the quickest way to watch a
/// run cascade. `symbols` (optional) renders conflict atoms in policy
/// decisions; without it the decision line shows votes only.
class TracingObserver : public RunObserver {
 public:
  explicit TracingObserver(std::ostream& out,
                           const SymbolTable* symbols = nullptr)
      : out_(out), symbols_(symbols) {}

  void OnRunStart(const RunStartInfo& info) override;
  void OnStepStart(int step) override;
  void OnGammaSection(const GammaSectionInfo& info) override;
  void OnPlanCompiled(const PlanExplanation& explanation) override;
  void OnPolicyDecision(const Conflict& conflict, Vote vote) override;
  void OnConflictRound(const ConflictRoundInfo& info) override;
  void OnRestart(size_t restart) override;
  void OnFixpoint(int step) override;
  void OnRunEnd(const ParkStats& stats) override;
  void OnCommitStart(size_t updates) override;
  void OnCommitEnd(const CommitEndInfo& info) override;
  void OnJournalAppend(uint64_t seq) override;
  void OnCheckpoint(uint64_t seq) override;
  void OnBatchCommit(const BatchCommitInfo& info) override;
  void OnSnapshotOpen(uint64_t journal_seq) override;
  void OnSnapshotRelease(uint64_t journal_seq) override;

 private:
  std::ostream& out_;
  const SymbolTable* symbols_;
};

/// Mirrors every event into a MetricsRegistry (counter/timer names in
/// docs/OBSERVABILITY.md, all under "park."), aggregating across runs and
/// commits — point it at a long-lived registry and export ToJson()
/// periodically for a poor-man's dashboard.
class MetricsObserver : public RunObserver {
 public:
  explicit MetricsObserver(MetricsRegistry* registry);

  void OnRunStart(const RunStartInfo& info) override;
  void OnStepStart(int step) override;
  void OnGammaSection(const GammaSectionInfo& info) override;
  void OnPolicyDecision(const Conflict& conflict, Vote vote) override;
  void OnConflictRound(const ConflictRoundInfo& info) override;
  void OnRestart(size_t restart) override;
  void OnFixpoint(int step) override;
  void OnRunEnd(const ParkStats& stats) override;
  void OnCommitStart(size_t updates) override;
  void OnCommitEnd(const CommitEndInfo& info) override;
  void OnJournalAppend(uint64_t seq) override;
  void OnCheckpoint(uint64_t seq) override;
  void OnBatchCommit(const BatchCommitInfo& info) override;
  void OnSnapshotOpen(uint64_t journal_seq) override;
  void OnSnapshotRelease(uint64_t journal_seq) override;

 private:
  MetricsRegistry* registry_;
  // Pre-resolved handles (see util/metrics.h: stable for the registry's
  // lifetime), so per-event cost is one add.
  MetricsRegistry::Counter* runs_;
  MetricsRegistry::Counter* steps_;
  MetricsRegistry::Counter* gamma_sections_;
  MetricsRegistry::Counter* derivations_;
  MetricsRegistry::Counter* new_marks_;
  MetricsRegistry::Counter* inconsistent_sections_;
  MetricsRegistry::Counter* policy_votes_insert_;
  MetricsRegistry::Counter* policy_votes_delete_;
  MetricsRegistry::Counter* conflict_rounds_;
  MetricsRegistry::Counter* conflicts_;
  MetricsRegistry::Counter* newly_blocked_;
  MetricsRegistry::Counter* restarts_;
  MetricsRegistry::Counter* fixpoints_;
  MetricsRegistry::Counter* commits_;
  MetricsRegistry::Counter* commit_inserted_;
  MetricsRegistry::Counter* commit_deleted_;
  MetricsRegistry::Counter* journal_appends_;
  MetricsRegistry::Counter* checkpoints_;
  MetricsRegistry::Counter* batches_;
  MetricsRegistry::Counter* batched_txns_;
  MetricsRegistry::Counter* poisoned_batches_;
  MetricsRegistry::Counter* snapshots_opened_;
  MetricsRegistry::Counter* snapshots_released_;
  MetricsRegistry::Timer* run_timer_;
  MetricsRegistry::Timer* commit_timer_;
  int64_t run_start_ns_ = 0;
  int64_t commit_start_ns_ = 0;
};

}  // namespace park

#endif  // PARK_CORE_OBSERVER_H_
