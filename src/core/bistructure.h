// Bi-structures ⟨B, I⟩ (paper §4.2): the state of the PARK computation —
// a set B of blocked rule instances plus an i-interpretation I, ordered by
//
//     ⟨B, I⟩ ⊑ ⟨B', I'⟩  iff  B ⊂ B', or (B = B' and I ⊆ I').
//
// The evaluator keeps the live bi-structure implicitly (a BlockedSet plus
// an IInterpretation); this header defines the value-level snapshot used
// by traces and by the property tests that verify Theorem 4.1 (Δ is
// growing; ω is a fixpoint).

#ifndef PARK_CORE_BISTRUCTURE_H_
#define PARK_CORE_BISTRUCTURE_H_

#include <string>
#include <vector>

#include "engine/interpretation.h"

namespace park {

/// An order-comparable snapshot of a bi-structure. Both components are
/// sorted rendered strings, so snapshots are self-contained (no live
/// references into the evaluator).
struct BiStructureSnapshot {
  std::vector<std::string> blocked;         // rendered RuleGroundings, sorted
  std::vector<std::string> interpretation;  // rendered literals, sorted

  /// "<{...blocked...}, {...literals...}>"
  std::string ToString() const;
};

/// Captures the current ⟨B, I⟩.
BiStructureSnapshot SnapshotBiStructure(const BlockedSet& blocked,
                                        const IInterpretation& interp,
                                        const Program& program);

/// The paper's ordering: a ⊑ b (reflexive).
bool BiStructureLeq(const BiStructureSnapshot& a,
                    const BiStructureSnapshot& b);

}  // namespace park

#endif  // PARK_CORE_BISTRUCTURE_H_
