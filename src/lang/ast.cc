#include "lang/ast.h"

#include <algorithm>

#include "lang/analyzer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace park {
namespace {

void CollectVariables(const AtomPattern& atom, std::vector<int>& out) {
  for (const Term& t : atom.terms) {
    if (t.is_variable()) out.push_back(t.var_index());
  }
}

std::vector<int> SortedUnique(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

const char* ActionKindSign(ActionKind kind) {
  return kind == ActionKind::kInsert ? "+" : "-";
}

bool AtomPattern::IsGround() const {
  for (const Term& t : terms) {
    if (t.is_variable()) return false;
  }
  return true;
}

GroundAtom AtomPattern::Ground(const std::vector<Value>& binding) const {
  Tuple tuple;
  for (const Term& t : terms) {
    if (t.is_constant()) {
      tuple.Append(t.constant());
    } else {
      PARK_CHECK_LT(static_cast<size_t>(t.var_index()), binding.size())
          << "unbound variable during grounding";
      tuple.Append(binding[static_cast<size_t>(t.var_index())]);
    }
  }
  return GroundAtom(predicate, std::move(tuple));
}

bool Rule::HasEventLiterals() const {
  for (const BodyLiteral& lit : body_) {
    if (lit.kind == LiteralKind::kEventInsert ||
        lit.kind == LiteralKind::kEventDelete) {
      return true;
    }
  }
  return false;
}

std::vector<int> Rule::HeadVariables() const {
  std::vector<int> vars;
  CollectVariables(head_.atom, vars);
  return SortedUnique(std::move(vars));
}

std::vector<int> Rule::BindingBodyVariables() const {
  std::vector<int> vars;
  for (const BodyLiteral& lit : body_) {
    if (lit.kind != LiteralKind::kNegated) CollectVariables(lit.atom, vars);
  }
  return SortedUnique(std::move(vars));
}

std::vector<int> Rule::NegatedBodyVariables() const {
  std::vector<int> vars;
  for (const BodyLiteral& lit : body_) {
    if (lit.kind == LiteralKind::kNegated) CollectVariables(lit.atom, vars);
  }
  return SortedUnique(std::move(vars));
}

Program::Program(std::shared_ptr<SymbolTable> symbols)
    : symbols_(std::move(symbols)) {
  PARK_CHECK(symbols_ != nullptr) << "Program requires a symbol table";
}

Program Program::Clone() const {
  Program copy(symbols_);
  copy.rules_ = rules_;
  copy.rules_by_name_ = rules_by_name_;
  return copy;
}

Status Program::AddRule(Rule rule) {
  PARK_RETURN_IF_ERROR(CheckRuleSafety(rule, *symbols_));
  if (!rule.name_.empty()) {
    if (rules_by_name_.contains(rule.name_)) {
      return AlreadyExistsError(
          StrFormat("duplicate rule label '%s'", rule.name_.c_str()));
    }
    rules_by_name_.emplace(rule.name_, static_cast<int>(rules_.size()));
  }
  rule.index_ = static_cast<int>(rules_.size());
  rules_.push_back(std::move(rule));
  return Status::OK();
}

std::optional<int> Program::FindRule(const std::string& name) const {
  auto it = rules_by_name_.find(name);
  if (it == rules_by_name_.end()) return std::nullopt;
  return it->second;
}

}  // namespace park
