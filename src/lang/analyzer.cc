#include "lang/analyzer.h"

#include <algorithm>
#include <optional>

#include "util/string_util.h"

namespace park {
namespace {

std::string RuleLabelForError(const Rule& rule) {
  if (!rule.name().empty()) return "rule '" + rule.name() + "'";
  if (rule.index() >= 0) return StrFormat("rule #%d", rule.index());
  return "rule";
}

/// Union-find over the disjoint variable spaces of two atom patterns,
/// where each class may carry at most one constant.
class HeadUnifier {
 public:
  HeadUnifier(int vars_a, int vars_b)
      : offset_(vars_a),
        parent_(static_cast<size_t>(vars_a + vars_b)),
        constant_(static_cast<size_t>(vars_a + vars_b)) {
    for (size_t i = 0; i < parent_.size(); ++i) {
      parent_[i] = static_cast<int>(i);
    }
  }

  /// Unifies position terms `a` (from the first rule) and `b` (from the
  /// second). Returns false on a constant clash.
  bool Unify(const Term& a, const Term& b) {
    if (a.is_constant() && b.is_constant()) {
      return a.constant() == b.constant();
    }
    if (a.is_constant()) return BindConstant(b.var_index() + offset_, a.constant());
    if (b.is_constant()) return BindConstant(a.var_index(), b.constant());
    return Union(a.var_index(), b.var_index() + offset_);
  }

 private:
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  bool BindConstant(int var, const Value& value) {
    int root = Find(var);
    auto& slot = constant_[static_cast<size_t>(root)];
    if (slot.has_value()) return *slot == value;
    slot = value;
    return true;
  }

  bool Union(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return true;
    const auto& ca = constant_[static_cast<size_t>(ra)];
    const auto& cb = constant_[static_cast<size_t>(rb)];
    if (ca.has_value() && cb.has_value() && *ca != *cb) return false;
    parent_[static_cast<size_t>(rb)] = ra;
    if (!ca.has_value() && cb.has_value()) {
      constant_[static_cast<size_t>(ra)] = cb;
    }
    return true;
  }

  int offset_;
  std::vector<int> parent_;
  std::vector<std::optional<Value>> constant_;
};

}  // namespace

bool HeadsMayConflict(const Rule& inserter, const Rule& deleter) {
  const AtomPattern& a = inserter.head().atom;
  const AtomPattern& b = deleter.head().atom;
  if (a.predicate != b.predicate) return false;
  HeadUnifier unifier(inserter.num_variables(), deleter.num_variables());
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (!unifier.Unify(a.terms[i], b.terms[i])) return false;
  }
  return true;
}

Status CheckRuleSafety(const Rule& rule, const SymbolTable& symbols) {
  (void)symbols;
  std::vector<int> binding = rule.BindingBodyVariables();
  auto is_bound = [&binding](int var) {
    return std::binary_search(binding.begin(), binding.end(), var);
  };
  for (int var : rule.HeadVariables()) {
    if (!is_bound(var)) {
      return InvalidArgumentError(StrFormat(
          "%s is unsafe: head variable '%s' does not occur in a positive "
          "body literal",
          RuleLabelForError(rule).c_str(),
          rule.variable_names()[static_cast<size_t>(var)].c_str()));
    }
  }
  for (int var : rule.NegatedBodyVariables()) {
    if (!is_bound(var)) {
      return InvalidArgumentError(StrFormat(
          "%s is unsafe: variable '%s' of a negated literal does not occur "
          "in a positive body literal",
          RuleLabelForError(rule).c_str(),
          rule.variable_names()[static_cast<size_t>(var)].c_str()));
    }
  }
  return Status::OK();
}

ProgramAnalysis AnalyzeProgram(const Program& program) {
  ProgramAnalysis analysis;
  for (const Rule& rule : program.rules()) {
    PredicateId head_pred = rule.head().atom.predicate;
    if (rule.head().action == ActionKind::kInsert) {
      analysis.inserters[head_pred].push_back(rule.index());
    } else {
      analysis.deleters[head_pred].push_back(rule.index());
    }
    for (const BodyLiteral& lit : rule.body()) {
      analysis.depends_on[head_pred].insert(lit.atom.predicate);
      if (lit.kind == LiteralKind::kEventInsert ||
          lit.kind == LiteralKind::kEventDelete) {
        analysis.uses_events = true;
      }
    }
    analysis.max_rule_variables =
        std::max(analysis.max_rule_variables, rule.num_variables());
  }

  for (const auto& [pred, rules] : analysis.inserters) {
    auto deleters_it = analysis.deleters.find(pred);
    if (deleters_it == analysis.deleters.end()) continue;
    analysis.potentially_conflicting_predicates.push_back(pred);
    for (int inserter : rules) {
      for (int deleter : deleters_it->second) {
        if (HeadsMayConflict(program.rule(inserter),
                             program.rule(deleter))) {
          analysis.potentially_conflicting_rule_pairs.emplace_back(
              inserter, deleter);
        }
      }
    }
  }
  std::sort(analysis.potentially_conflicting_predicates.begin(),
            analysis.potentially_conflicting_predicates.end());
  std::sort(analysis.potentially_conflicting_rule_pairs.begin(),
            analysis.potentially_conflicting_rule_pairs.end());

  // Recursion: DFS from each head predicate over depends_on edges.
  for (const auto& [start, _] : analysis.depends_on) {
    std::vector<PredicateId> stack{start};
    std::unordered_set<PredicateId> seen;
    bool recursive = false;
    while (!stack.empty() && !recursive) {
      PredicateId current = stack.back();
      stack.pop_back();
      auto it = analysis.depends_on.find(current);
      if (it == analysis.depends_on.end()) continue;
      for (PredicateId dep : it->second) {
        if (dep == start) {
          recursive = true;
          break;
        }
        if (seen.insert(dep).second) stack.push_back(dep);
      }
    }
    if (recursive) {
      analysis.is_recursive = true;
      break;
    }
  }
  return analysis;
}

}  // namespace park
