// Parser for the active-rule language and for fact (database) files, plus
// a programmatic RuleBuilder.
//
// Grammar (EBNF; comments and whitespace skipped by the lexer):
//
//   program     = { rule } ;
//   rule        = [ label ] [ annotations ] body "->" head "." ;
//   label       = identifier ":" ;
//   annotations = "[" annotation { "," annotation } "]" ;
//   annotation  = ("prio" | "priority" | "src" | "source")
//                 "=" [ "-" ] integer ;
//   body        = [ literal { "," literal } ] ;          (* may be empty *)
//   literal     = ("!" | "not") atom                     (* negation *)
//               | "+" atom                               (* event: inserted *)
//               | "-" atom                               (* event: deleted *)
//               | atom ;                                 (* condition *)
//   head        = ("+" | "-") atom ;
//   atom        = identifier [ "(" term { "," term } ")" ] ;
//   term        = identifier | variable | [ "-" ] integer | string ;
//
//   facts       = { atom "." } ;                         (* database files *)
//
// Identifiers are lowercase-initial (constants / predicates / labels);
// variables are uppercase- or underscore-initial. The variable `_` is
// anonymous: each occurrence is a fresh variable.
//
// Example:
//   r1 [prio=2]: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
//   # a transaction update seeded as a body-less rule (paper §4.3):
//   -> +q(b).

#ifndef PARK_LANG_PARSER_H_
#define PARK_LANG_PARSER_H_

#include <memory>
#include <string_view>

#include "lang/ast.h"
#include "lang/lexer.h"
#include "storage/database.h"

namespace park {

/// Parses a whole program. All constants and predicates are interned into
/// `symbols`; the returned Program shares it.
Result<Program> ParseProgram(std::string_view input,
                             std::shared_ptr<SymbolTable> symbols);

/// Parses a single rule (with trailing '.').
Result<Rule> ParseRule(std::string_view input,
                       std::shared_ptr<SymbolTable> symbols);

/// Parses a fact file ("p(a). q(b, 1).") into a fresh Database.
Result<Database> ParseDatabase(std::string_view input,
                               std::shared_ptr<SymbolTable> symbols);

/// Parses a fact file and inserts every fact into `db`.
Status ParseFactsInto(std::string_view input, Database& db);

/// Parses a single ground atom, e.g. "payroll(john, 5000)".
Result<GroundAtom> ParseGroundAtom(std::string_view input,
                                   std::shared_ptr<SymbolTable> symbols);

/// A possibly non-ground atom plus the names of its variables
/// (indexed by Term::var_index; anonymous variables are named "_").
struct ParsedAtomPattern {
  AtomPattern atom;
  std::vector<std::string> variable_names;
};

/// Parses a single atom pattern, e.g. "payroll(X, S)" — used by the query
/// API (lang/query.h).
Result<ParsedAtomPattern> ParseAtomPattern(
    std::string_view input, std::shared_ptr<SymbolTable> symbols);

/// Fluent programmatic construction of a Rule, as an alternative to text.
/// Argument strings follow the surface syntax: uppercase-initial strings
/// are variables, lowercase-initial are constant symbols, digit strings
/// are integers.
///
///   auto rule = RuleBuilder(symbols)
///                   .Name("r1")
///                   .When("emp", {"X"})
///                   .WhenNot("active", {"X"})
///                   .Delete("payroll", {"X", "S"})   // oops: unsafe, S free
///                   .Build();                        // -> error status
class RuleBuilder {
 public:
  explicit RuleBuilder(std::shared_ptr<SymbolTable> symbols);

  RuleBuilder& Name(std::string_view name);
  RuleBuilder& Priority(int priority);
  /// Tags the rule with an authoring source (see Rule::source()).
  RuleBuilder& Source(int source);

  /// Positive condition literal.
  RuleBuilder& When(std::string_view predicate,
                    const std::vector<std::string>& args);
  /// Negated condition literal (negation as failure).
  RuleBuilder& WhenNot(std::string_view predicate,
                       const std::vector<std::string>& args);
  /// Event literal `+p(...)` — fires when the insertion is pending.
  RuleBuilder& OnInserted(std::string_view predicate,
                          const std::vector<std::string>& args);
  /// Event literal `-p(...)` — fires when the deletion is pending.
  RuleBuilder& OnDeleted(std::string_view predicate,
                         const std::vector<std::string>& args);

  /// Head actions (exactly one of Insert/Delete must be called).
  RuleBuilder& Insert(std::string_view predicate,
                      const std::vector<std::string>& args);
  RuleBuilder& Delete(std::string_view predicate,
                      const std::vector<std::string>& args);

  /// Validates (safety, head present) and returns the rule.
  Result<Rule> Build();

 private:
  AtomPattern MakeAtom(std::string_view predicate,
                       const std::vector<std::string>& args);
  Term MakeTerm(const std::string& text);

  std::shared_ptr<SymbolTable> symbols_;
  Rule rule_;
  std::unordered_map<std::string, int> var_indexes_;
  bool has_head_ = false;
  Status deferred_error_;
};

}  // namespace park

#endif  // PARK_LANG_PARSER_H_
