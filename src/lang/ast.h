// Abstract syntax of active rules (paper §2 and §4.3):
//
//   l1, ..., ln -> +l0      (insert action)
//   l1, ..., ln -> -l0      (delete action)
//
// Body literals are positive atoms, negated atoms (negation as failure), or
// — for full ECA rules — event literals `+a` / `-a` that match pending
// updates. Rules carry an optional label and an optional priority used by
// priority-based conflict resolution.

#ifndef PARK_LANG_AST_H_
#define PARK_LANG_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/ground_atom.h"
#include "util/status.h"

namespace park {

/// What a rule head (or a transaction update) does to its atom.
enum class ActionKind : uint8_t {
  kInsert,  // +a : insert `a` into the database
  kDelete,  // -a : delete `a` from the database
};

/// "+" or "-".
const char* ActionKindSign(ActionKind kind);

/// How a body literal is evaluated against an i-interpretation.
enum class LiteralKind : uint8_t {
  kPositive,     // a    : `a` unmarked or `+a` present
  kNegated,      // !a   : `-a` present, or neither `a` nor `+a` present
  kEventInsert,  // +a   : the update `+a` is pending (ECA trigger, §4.3)
  kEventDelete,  // -a   : the update `-a` is pending (ECA trigger, §4.3)
};

/// A term in a rule: either a variable (identified by its per-rule index)
/// or a constant Value.
class Term {
 public:
  static Term Variable(int index) { return Term(index); }
  static Term Constant(Value value) { return Term(value); }

  bool is_variable() const { return var_index_ >= 0; }
  bool is_constant() const { return var_index_ < 0; }

  /// Valid only when is_variable().
  int var_index() const { return var_index_; }
  /// Valid only when is_constant().
  const Value& constant() const { return constant_; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.var_index_ != b.var_index_) return false;
    return a.is_variable() || a.constant_ == b.constant_;
  }

 private:
  explicit Term(int index) : var_index_(index) {}
  explicit Term(Value value) : var_index_(-1), constant_(value) {}

  int var_index_;   // >= 0 for variables, -1 for constants
  Value constant_;  // meaningful only for constants
};

/// A possibly non-ground atom `p(t1, ..., tn)`.
struct AtomPattern {
  PredicateId predicate = 0;
  std::vector<Term> terms;

  bool IsGround() const;

  /// Instantiates this pattern with `binding` (indexed by variable index).
  /// Every variable appearing in the pattern must be bound.
  GroundAtom Ground(const std::vector<Value>& binding) const;
};

/// One literal of a rule body.
struct BodyLiteral {
  LiteralKind kind = LiteralKind::kPositive;
  AtomPattern atom;
};

/// The head of a rule: an action on a positive atom.
struct RuleHead {
  ActionKind action = ActionKind::kInsert;
  AtomPattern atom;
};

/// Mutable aggregate from which a Rule is assembled; used by the parser
/// and other internal builders. Most callers never touch this — they parse
/// rule text or use RuleBuilder.
struct RuleParts {
  std::string name;
  std::optional<int> priority;
  std::optional<int> source;
  std::vector<BodyLiteral> body;
  RuleHead head;
  std::vector<std::string> variable_names;
};

/// A single active rule. Construct via Parser or the programmatic
/// RuleBuilder in parser.h; Rules are immutable once added to a Program.
class Rule {
 public:
  Rule() = default;

  /// Assembles a rule from parsed parts. Does not validate safety; that
  /// happens in Program::AddRule / RuleBuilder::Build.
  explicit Rule(RuleParts parts)
      : name_(std::move(parts.name)),
        priority_(parts.priority),
        source_(parts.source),
        body_(std::move(parts.body)),
        head_(std::move(parts.head)),
        variable_names_(std::move(parts.variable_names)) {}

  const std::string& name() const { return name_; }
  const std::optional<int>& priority() const { return priority_; }
  /// Provenance tag from a `[src=N]` annotation: which source authored
  /// this rule. Used by source-reliability conflict resolution (§5's
  /// "source-based approach" critic).
  const std::optional<int>& source() const { return source_; }
  const std::vector<BodyLiteral>& body() const { return body_; }
  const RuleHead& head() const { return head_; }

  /// Number of distinct variables; bindings are vectors of this length.
  int num_variables() const {
    return static_cast<int>(variable_names_.size());
  }
  const std::vector<std::string>& variable_names() const {
    return variable_names_;
  }

  /// Position of this rule within its Program; -1 until added.
  int index() const { return index_; }

  /// True if some body literal is an event literal (full ECA rule).
  bool HasEventLiterals() const;

  /// Variable indexes occurring in the head / in binding body literals
  /// (positive + event) / in negated literals.
  std::vector<int> HeadVariables() const;
  std::vector<int> BindingBodyVariables() const;
  std::vector<int> NegatedBodyVariables() const;

 private:
  friend class Parser;
  friend class Program;
  friend class RuleBuilder;

  std::string name_;
  std::optional<int> priority_;
  std::optional<int> source_;
  std::vector<BodyLiteral> body_;
  RuleHead head_;
  std::vector<std::string> variable_names_;
  int index_ = -1;
};

/// An ordered set of rules sharing a SymbolTable. The order is significant
/// only as an identity (rule index); the PARK semantics itself is
/// order-independent.
class Program {
 public:
  /// Creates an empty program over `symbols` (must be non-null).
  explicit Program(std::shared_ptr<SymbolTable> symbols);

  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  /// Deep copy (shares the symbol table).
  Program Clone() const;

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

  /// Validates the safety conditions of §2 (extended to event literals)
  /// and label uniqueness, then appends `rule` and assigns its index.
  Status AddRule(Rule rule);

  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const Rule& rule(int index) const { return rules_[static_cast<size_t>(index)]; }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Index of the rule labeled `name`, or nullopt.
  std::optional<int> FindRule(const std::string& name) const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Rule> rules_;
  std::unordered_map<std::string, int> rules_by_name_;
};

}  // namespace park

#endif  // PARK_LANG_AST_H_
