#include "lang/parser.h"

#include <cctype>

#include "lang/analyzer.h"
#include "util/string_util.h"

namespace park {
namespace {

/// Recursive-descent parser over the Lexer token stream. One instance
/// parses one input; errors abort the parse with a located message.
class ParserImpl {
 public:
  ParserImpl(std::string_view input, std::shared_ptr<SymbolTable> symbols)
      : lexer_(input), symbols_(std::move(symbols)) {}

  Result<Program> ParseProgram() {
    Program program(symbols_);
    while (Peek().kind != TokenKind::kEof) {
      PARK_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
      PARK_RETURN_IF_ERROR(program.AddRule(std::move(rule)));
    }
    return program;
  }

  Result<Rule> ParseSingleRule() {
    PARK_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
    PARK_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    PARK_RETURN_IF_ERROR(CheckRuleSafety(rule, *symbols_));
    return rule;
  }

  Status ParseFacts(Database& db) {
    while (Peek().kind != TokenKind::kEof) {
      PARK_ASSIGN_OR_RETURN(GroundAtom atom, ParseOneGroundAtom());
      PARK_RETURN_IF_ERROR(Expect(TokenKind::kPeriod));
      db.Insert(atom);
    }
    return Status::OK();
  }

  Result<GroundAtom> ParseSingleGroundAtom() {
    PARK_ASSIGN_OR_RETURN(GroundAtom atom, ParseOneGroundAtom());
    PARK_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    return atom;
  }

  Result<ParsedAtomPattern> ParseSingleAtomPattern() {
    RuleParts parts;
    var_indexes_.clear();
    current_parts_ = &parts;
    PARK_ASSIGN_OR_RETURN(AtomPattern atom, ParseAtom());
    PARK_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    return ParsedAtomPattern{std::move(atom),
                             std::move(parts.variable_names)};
  }

 private:
  const Token& Peek() { return lexer_.Peek(); }

  Token Advance() { return lexer_.Advance(); }

  Status ErrorAt(const Token& token, std::string message) {
    return InvalidArgumentError(StrFormat("%d:%d: %s", token.line,
                                          token.column, message.c_str()));
  }

  Status Expect(TokenKind kind) {
    const Token& token = Peek();
    if (token.kind == TokenKind::kError) return ErrorAt(token, token.text);
    if (token.kind != kind) {
      return ErrorAt(token, StrFormat("expected %s, found %s",
                                      TokenKindName(kind),
                                      TokenKindName(token.kind)));
    }
    Advance();
    return Status::OK();
  }

  Result<Rule> ParseOneRule() {
    RuleParts parts;
    var_indexes_.clear();
    current_parts_ = &parts;

    // Optional label: IDENT ':' or IDENT '[' annotations ']' ':'.
    if (Peek().kind == TokenKind::kIdentifier) {
      Token ident = Advance();
      if (Peek().kind == TokenKind::kLBracket) {
        // Annotations can only follow a rule label, never a body atom.
        parts.name = ident.text;
        PARK_RETURN_IF_ERROR(ParseAnnotations(parts));
        PARK_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        PARK_RETURN_IF_ERROR(ParseRuleTail(parts, /*body_started=*/false));
        return Rule(std::move(parts));
      }
      if (Peek().kind == TokenKind::kColon) {
        Advance();  // ':'
        parts.name = ident.text;
      } else {
        // Not a label: `ident` starts the first body atom.
        PARK_ASSIGN_OR_RETURN(AtomPattern atom, ParseAtomAfterName(ident));
        parts.body.push_back(BodyLiteral{LiteralKind::kPositive, atom});
        PARK_RETURN_IF_ERROR(ParseRuleTail(parts, /*body_started=*/true));
        return Rule(std::move(parts));
      }
    }

    // Optional annotations.
    if (Peek().kind == TokenKind::kLBracket) {
      PARK_RETURN_IF_ERROR(ParseAnnotations(parts));
    }

    PARK_RETURN_IF_ERROR(ParseRuleTail(parts, /*body_started=*/false));
    return Rule(std::move(parts));
  }

  /// Parses `[rest-of-body] -> head .` into `parts`. If `body_started` is
  /// true, the first literal is already in parts.body and a ',' or '->'
  /// follows.
  Status ParseRuleTail(RuleParts& parts, bool body_started) {
    if (body_started) {
      while (Peek().kind == TokenKind::kComma) {
        Advance();
        PARK_ASSIGN_OR_RETURN(BodyLiteral lit, ParseBodyLiteral());
        parts.body.push_back(std::move(lit));
      }
    } else if (Peek().kind != TokenKind::kArrow) {
      PARK_ASSIGN_OR_RETURN(BodyLiteral first, ParseBodyLiteral());
      parts.body.push_back(std::move(first));
      while (Peek().kind == TokenKind::kComma) {
        Advance();
        PARK_ASSIGN_OR_RETURN(BodyLiteral lit, ParseBodyLiteral());
        parts.body.push_back(std::move(lit));
      }
    }
    PARK_RETURN_IF_ERROR(Expect(TokenKind::kArrow));

    // Head: mandatory sign, then atom.
    const Token& sign = Peek();
    if (sign.kind == TokenKind::kPlus) {
      parts.head.action = ActionKind::kInsert;
    } else if (sign.kind == TokenKind::kMinus) {
      parts.head.action = ActionKind::kDelete;
    } else {
      return ErrorAt(sign, StrFormat("rule head must start with '+' or '-',"
                                     " found %s",
                                     TokenKindName(sign.kind)));
    }
    Advance();
    PARK_ASSIGN_OR_RETURN(parts.head.atom, ParseAtom());
    PARK_RETURN_IF_ERROR(Expect(TokenKind::kPeriod));
    return Status::OK();
  }

  Status ParseAnnotations(RuleParts& parts) {
    PARK_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    while (true) {
      const Token& key = Peek();
      if (key.kind != TokenKind::kIdentifier) {
        return ErrorAt(key, "expected annotation name");
      }
      std::string name = key.text;
      Advance();
      PARK_RETURN_IF_ERROR(Expect(TokenKind::kEquals));
      bool negative = false;
      if (Peek().kind == TokenKind::kMinus) {
        Advance();
        negative = true;
      }
      const Token& value = Peek();
      if (value.kind != TokenKind::kInt) {
        return ErrorAt(value, "expected integer annotation value");
      }
      int64_t v = negative ? -value.int_value : value.int_value;
      Advance();
      if (name == "prio" || name == "priority") {
        parts.priority = static_cast<int>(v);
      } else if (name == "src" || name == "source") {
        parts.source = static_cast<int>(v);
      } else {
        return ErrorAt(key,
                       StrFormat("unknown annotation '%s' (supported: prio, "
                                 "priority, src, source)",
                                 name.c_str()));
      }
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return Expect(TokenKind::kRBracket);
  }

  Result<BodyLiteral> ParseBodyLiteral() {
    const Token& token = Peek();
    LiteralKind kind = LiteralKind::kPositive;
    switch (token.kind) {
      case TokenKind::kBang:
        kind = LiteralKind::kNegated;
        Advance();
        break;
      case TokenKind::kPlus:
        kind = LiteralKind::kEventInsert;
        Advance();
        break;
      case TokenKind::kMinus:
        kind = LiteralKind::kEventDelete;
        Advance();
        break;
      case TokenKind::kError:
        return ErrorAt(token, token.text);
      default:
        break;
    }
    PARK_ASSIGN_OR_RETURN(AtomPattern atom, ParseAtom());
    return BodyLiteral{kind, std::move(atom)};
  }

  Result<AtomPattern> ParseAtom() {
    const Token& token = Peek();
    if (token.kind == TokenKind::kError) return ErrorAt(token, token.text);
    if (token.kind != TokenKind::kIdentifier) {
      return ErrorAt(token, StrFormat("expected predicate name, found %s",
                                      TokenKindName(token.kind)));
    }
    Token name = Advance();
    return ParseAtomAfterName(name);
  }

  Result<AtomPattern> ParseAtomAfterName(const Token& name) {
    AtomPattern atom;
    std::vector<Term> terms;
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      while (true) {
        PARK_ASSIGN_OR_RETURN(Term term, ParseTerm());
        terms.push_back(term);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      PARK_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    atom.predicate = symbols_->InternPredicate(
        name.text, static_cast<int>(terms.size()));
    atom.terms = std::move(terms);
    return atom;
  }

  Result<Term> ParseTerm() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIdentifier: {
        Token t = Advance();
        return Term::Constant(Value::Symbol(symbols_->InternSymbol(t.text)));
      }
      case TokenKind::kVariable: {
        if (current_parts_ == nullptr) {
          // Fact/ground-atom context: variables are not allowed.
          return ErrorAt(token, "facts must be ground (no variables)");
        }
        Token t = Advance();
        return Term::Variable(VariableIndex(t.text));
      }
      case TokenKind::kInt: {
        Token t = Advance();
        return Term::Constant(Value::Int(t.int_value));
      }
      case TokenKind::kMinus: {
        Advance();
        const Token& next = Peek();
        if (next.kind != TokenKind::kInt) {
          return ErrorAt(next, "expected integer after '-'");
        }
        Token t = Advance();
        return Term::Constant(Value::Int(-t.int_value));
      }
      case TokenKind::kString: {
        Token t = Advance();
        return Term::Constant(Value::String(symbols_->InternSymbol(t.text)));
      }
      case TokenKind::kError:
        return ErrorAt(token, token.text);
      default:
        return ErrorAt(token, StrFormat("expected term, found %s",
                                        TokenKindName(token.kind)));
    }
  }

  int VariableIndex(const std::string& name) {
    RuleParts& parts = *current_parts_;
    if (name == "_") {
      // Anonymous: always a fresh variable.
      int index = static_cast<int>(parts.variable_names.size());
      parts.variable_names.push_back("_");
      return index;
    }
    auto it = var_indexes_.find(name);
    if (it != var_indexes_.end()) return it->second;
    int index = static_cast<int>(parts.variable_names.size());
    parts.variable_names.push_back(name);
    var_indexes_.emplace(name, index);
    return index;
  }

  Result<GroundAtom> ParseOneGroundAtom() {
    PARK_ASSIGN_OR_RETURN(AtomPattern atom, ParseAtom());
    if (!atom.IsGround()) {
      return InvalidArgumentError("facts must be ground (no variables)");
    }
    return atom.Ground({});
  }

  Lexer lexer_;
  std::shared_ptr<SymbolTable> symbols_;
  RuleParts* current_parts_ = nullptr;
  std::unordered_map<std::string, int> var_indexes_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view input,
                             std::shared_ptr<SymbolTable> symbols) {
  ParserImpl parser(input, std::move(symbols));
  return parser.ParseProgram();
}

Result<Rule> ParseRule(std::string_view input,
                       std::shared_ptr<SymbolTable> symbols) {
  ParserImpl parser(input, std::move(symbols));
  return parser.ParseSingleRule();
}

Result<Database> ParseDatabase(std::string_view input,
                               std::shared_ptr<SymbolTable> symbols) {
  Database db(symbols);
  ParserImpl parser(input, std::move(symbols));
  PARK_RETURN_IF_ERROR(parser.ParseFacts(db));
  return db;
}

Status ParseFactsInto(std::string_view input, Database& db) {
  ParserImpl parser(input, db.symbols());
  return parser.ParseFacts(db);
}

Result<GroundAtom> ParseGroundAtom(std::string_view input,
                                   std::shared_ptr<SymbolTable> symbols) {
  ParserImpl parser(input, std::move(symbols));
  return parser.ParseSingleGroundAtom();
}

Result<ParsedAtomPattern> ParseAtomPattern(
    std::string_view input, std::shared_ptr<SymbolTable> symbols) {
  ParserImpl parser(input, std::move(symbols));
  return parser.ParseSingleAtomPattern();
}

RuleBuilder::RuleBuilder(std::shared_ptr<SymbolTable> symbols)
    : symbols_(std::move(symbols)) {
  PARK_CHECK(symbols_ != nullptr) << "RuleBuilder requires a symbol table";
}

Term RuleBuilder::MakeTerm(const std::string& text) {
  PARK_CHECK(!text.empty()) << "empty term";
  char first = text[0];
  if (first == '_' || std::isupper(static_cast<unsigned char>(first))) {
    if (text == "_") {
      int index = static_cast<int>(rule_.variable_names_.size());
      rule_.variable_names_.push_back("_");
      return Term::Variable(index);
    }
    auto it = var_indexes_.find(text);
    if (it != var_indexes_.end()) return Term::Variable(it->second);
    int index = static_cast<int>(rule_.variable_names_.size());
    rule_.variable_names_.push_back(text);
    var_indexes_.emplace(text, index);
    return Term::Variable(index);
  }
  return Term::Constant(ConstantFromText(text, *symbols_));
}

AtomPattern RuleBuilder::MakeAtom(std::string_view predicate,
                                  const std::vector<std::string>& args) {
  AtomPattern atom;
  atom.predicate = symbols_->InternPredicate(
      predicate, static_cast<int>(args.size()));
  atom.terms.reserve(args.size());
  for (const std::string& arg : args) atom.terms.push_back(MakeTerm(arg));
  return atom;
}

RuleBuilder& RuleBuilder::Name(std::string_view name) {
  rule_.name_ = std::string(name);
  return *this;
}

RuleBuilder& RuleBuilder::Priority(int priority) {
  rule_.priority_ = priority;
  return *this;
}

RuleBuilder& RuleBuilder::Source(int source) {
  rule_.source_ = source;
  return *this;
}

RuleBuilder& RuleBuilder::When(std::string_view predicate,
                               const std::vector<std::string>& args) {
  rule_.body_.push_back(
      BodyLiteral{LiteralKind::kPositive, MakeAtom(predicate, args)});
  return *this;
}

RuleBuilder& RuleBuilder::WhenNot(std::string_view predicate,
                                  const std::vector<std::string>& args) {
  rule_.body_.push_back(
      BodyLiteral{LiteralKind::kNegated, MakeAtom(predicate, args)});
  return *this;
}

RuleBuilder& RuleBuilder::OnInserted(std::string_view predicate,
                                     const std::vector<std::string>& args) {
  rule_.body_.push_back(
      BodyLiteral{LiteralKind::kEventInsert, MakeAtom(predicate, args)});
  return *this;
}

RuleBuilder& RuleBuilder::OnDeleted(std::string_view predicate,
                                    const std::vector<std::string>& args) {
  rule_.body_.push_back(
      BodyLiteral{LiteralKind::kEventDelete, MakeAtom(predicate, args)});
  return *this;
}

RuleBuilder& RuleBuilder::Insert(std::string_view predicate,
                                 const std::vector<std::string>& args) {
  if (has_head_) {
    deferred_error_ = InvalidArgumentError("rule already has a head");
    return *this;
  }
  has_head_ = true;
  rule_.head_ = RuleHead{ActionKind::kInsert, MakeAtom(predicate, args)};
  return *this;
}

RuleBuilder& RuleBuilder::Delete(std::string_view predicate,
                                 const std::vector<std::string>& args) {
  if (has_head_) {
    deferred_error_ = InvalidArgumentError("rule already has a head");
    return *this;
  }
  has_head_ = true;
  rule_.head_ = RuleHead{ActionKind::kDelete, MakeAtom(predicate, args)};
  return *this;
}

Result<Rule> RuleBuilder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (!has_head_) {
    return InvalidArgumentError("rule has no head (call Insert or Delete)");
  }
  PARK_RETURN_IF_ERROR(CheckRuleSafety(rule_, *symbols_));
  return rule_;
}

}  // namespace park
