#include "lang/io.h"

#include "lang/printer.h"

namespace park {

Result<Database> ReadDatabaseFile(const std::string& path,
                                  std::shared_ptr<SymbolTable> symbols) {
  PARK_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  auto db = ParseDatabase(contents, std::move(symbols));
  if (!db.ok()) return db.status().WithContext(path);
  return db;
}

Result<Program> ReadProgramFile(const std::string& path,
                                std::shared_ptr<SymbolTable> symbols) {
  PARK_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  auto program = ParseProgram(contents, std::move(symbols));
  if (!program.ok()) return program.status().WithContext(path);
  return program;
}

Status WriteProgramFile(const Program& program, const std::string& path) {
  return WriteStringToFile(ProgramToString(program), path);
}

}  // namespace park
