#include "lang/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace park {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Lexer::Lexer(std::string_view input) : input_(input) { Lex(); }

Token Lexer::Advance() {
  Token result = current_;
  if (current_.kind != TokenKind::kEof && current_.kind != TokenKind::kError) {
    Lex();
  }
  return result;
}

void Lexer::Bump() {
  if (CurrentChar() == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  ++pos_;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = CurrentChar();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Bump();
    } else if (c == '#' || c == '%') {
      while (!AtEnd() && CurrentChar() != '\n') Bump();
    } else if (c == '/' && pos_ + 1 < input_.size() &&
               input_[pos_ + 1] == '/') {
      while (!AtEnd() && CurrentChar() != '\n') Bump();
    } else {
      return;
    }
  }
}

Token Lexer::MakeToken(TokenKind kind, std::string text) {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.line = token_line_;
  t.column = token_column_;
  return t;
}

Token Lexer::LexIdentifierOrVariable() {
  size_t start = pos_;
  while (!AtEnd() && IsIdentChar(CurrentChar())) Bump();
  std::string text(input_.substr(start, pos_ - start));
  char first = text[0];
  bool is_variable = (first == '_') || std::isupper(static_cast<unsigned char>(first));
  // `not` is surface syntax for negation; report it as kBang so the parser
  // has a single negation token.
  if (text == "not") return MakeToken(TokenKind::kBang, "not");
  return MakeToken(
      is_variable ? TokenKind::kVariable : TokenKind::kIdentifier, text);
}

Token Lexer::LexNumber() {
  size_t start = pos_;
  while (!AtEnd() && std::isdigit(static_cast<unsigned char>(CurrentChar()))) {
    Bump();
  }
  std::string text(input_.substr(start, pos_ - start));
  auto value = ParseInt64(text);
  if (!value.has_value()) {
    return MakeToken(TokenKind::kError, "integer literal out of range: " + text);
  }
  Token t = MakeToken(TokenKind::kInt, text);
  t.int_value = *value;
  return t;
}

Token Lexer::LexString() {
  Bump();  // opening quote
  std::string text;
  while (!AtEnd() && CurrentChar() != '"') {
    char c = CurrentChar();
    if (c == '\n') {
      return MakeToken(TokenKind::kError, "newline in string literal");
    }
    if (c == '\\') {
      Bump();
      if (AtEnd()) break;
      char escaped = CurrentChar();
      if (escaped == '"' || escaped == '\\') {
        text += escaped;
      } else if (escaped == 'n') {
        text += '\n';
      } else if (escaped == 't') {
        text += '\t';
      } else {
        return MakeToken(TokenKind::kError,
                         std::string("unknown escape: \\") + escaped);
      }
      Bump();
      continue;
    }
    text += c;
    Bump();
  }
  if (AtEnd()) {
    return MakeToken(TokenKind::kError, "unterminated string literal");
  }
  Bump();  // closing quote
  return MakeToken(TokenKind::kString, std::move(text));
}

void Lexer::Lex() {
  SkipWhitespaceAndComments();
  token_line_ = line_;
  token_column_ = column_;
  if (AtEnd()) {
    current_ = MakeToken(TokenKind::kEof);
    return;
  }
  char c = CurrentChar();
  if (IsIdentStart(c)) {
    current_ = LexIdentifierOrVariable();
    return;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    current_ = LexNumber();
    return;
  }
  if (c == '"') {
    current_ = LexString();
    return;
  }
  switch (c) {
    case '(':
      Bump();
      current_ = MakeToken(TokenKind::kLParen);
      return;
    case ')':
      Bump();
      current_ = MakeToken(TokenKind::kRParen);
      return;
    case '[':
      Bump();
      current_ = MakeToken(TokenKind::kLBracket);
      return;
    case ']':
      Bump();
      current_ = MakeToken(TokenKind::kRBracket);
      return;
    case ',':
      Bump();
      current_ = MakeToken(TokenKind::kComma);
      return;
    case '.':
      Bump();
      current_ = MakeToken(TokenKind::kPeriod);
      return;
    case ':':
      Bump();
      current_ = MakeToken(TokenKind::kColon);
      return;
    case '+':
      Bump();
      current_ = MakeToken(TokenKind::kPlus);
      return;
    case '!':
      Bump();
      current_ = MakeToken(TokenKind::kBang);
      return;
    case '=':
      Bump();
      current_ = MakeToken(TokenKind::kEquals);
      return;
    case '-':
      Bump();
      if (!AtEnd() && CurrentChar() == '>') {
        Bump();
        current_ = MakeToken(TokenKind::kArrow);
      } else {
        current_ = MakeToken(TokenKind::kMinus);
      }
      return;
    default:
      current_ = MakeToken(TokenKind::kError,
                           StrFormat("unexpected character '%c'", c));
      Bump();
      return;
  }
}

Result<std::vector<Token>> LexAll(std::string_view input) {
  Lexer lexer(input);
  std::vector<Token> tokens;
  while (true) {
    Token t = lexer.Advance();
    if (t.kind == TokenKind::kError) {
      return InvalidArgumentError(StrFormat("%d:%d: %s", t.line, t.column,
                                            t.text.c_str()));
    }
    tokens.push_back(t);
    if (t.kind == TokenKind::kEof) return tokens;
  }
}

}  // namespace park
