#include "lang/query.h"

#include <algorithm>
#include <optional>

namespace park {
namespace {

/// Attempts to bind the pattern's variables against `tuple`; returns the
/// projected row (named variables only, in variable-index order of the
/// projection) or nullopt when repeated variables disagree. Constants and
/// already-bound pattern positions were pre-filtered by the TuplePattern,
/// except repeated variables, which are checked here.
std::optional<Tuple> BindRow(const AtomPattern& atom, const Tuple& tuple,
                             int num_variables,
                             const std::vector<int>& projection) {
  std::vector<std::optional<Value>> binding(
      static_cast<size_t>(num_variables));
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    if (term.is_constant()) continue;
    auto& slot = binding[static_cast<size_t>(term.var_index())];
    const Value& value = tuple[static_cast<int>(i)];
    if (slot.has_value()) {
      if (*slot != value) return std::nullopt;
    } else {
      slot = value;
    }
  }
  Tuple row;
  for (int var : projection) row.Append(*binding[static_cast<size_t>(var)]);
  return row;
}

}  // namespace

std::vector<std::string> QueryResult::ToStrings(
    const SymbolTable& symbols) const {
  std::vector<std::string> out;
  out.reserve(bindings.size());
  for (const Tuple& row : bindings) {
    std::string rendered;
    for (size_t i = 0; i < variable_names.size(); ++i) {
      if (i > 0) rendered += ", ";
      rendered += variable_names[i];
      rendered += "=";
      rendered += row[static_cast<int>(i)].ToString(symbols);
    }
    out.push_back(std::move(rendered));
  }
  return out;
}

Result<QueryResult> QueryDatabase(
    const Database& db, std::string_view pattern_text,
    const std::shared_ptr<SymbolTable>& symbols) {
  PARK_ASSIGN_OR_RETURN(ParsedAtomPattern parsed,
                        ParseAtomPattern(pattern_text, symbols));

  QueryResult result;
  // Project the named (non-anonymous) variables, by variable index.
  std::vector<int> projection;
  for (size_t v = 0; v < parsed.variable_names.size(); ++v) {
    if (parsed.variable_names[v] != "_") {
      projection.push_back(static_cast<int>(v));
      result.variable_names.push_back(parsed.variable_names[v]);
    }
  }

  const Relation* relation = db.GetRelation(parsed.atom.predicate);
  if (relation == nullptr) return result;  // predicate never populated

  // Constants become bound pattern positions; variables scan.
  TuplePattern tuple_pattern;
  tuple_pattern.reserve(parsed.atom.terms.size());
  for (const Term& term : parsed.atom.terms) {
    if (term.is_constant()) {
      tuple_pattern.push_back(term.constant());
    } else {
      tuple_pattern.push_back(std::nullopt);
    }
  }

  relation->ForEachMatching(tuple_pattern, [&](const Tuple& tuple) {
    auto row = BindRow(parsed.atom, tuple,
                       static_cast<int>(parsed.variable_names.size()),
                       projection);
    if (row.has_value()) result.bindings.push_back(std::move(*row));
  });
  std::sort(result.bindings.begin(), result.bindings.end());
  result.bindings.erase(
      std::unique(result.bindings.begin(), result.bindings.end()),
      result.bindings.end());
  return result;
}

Result<bool> DatabaseMatches(const Database& db,
                             std::string_view pattern_text,
                             const std::shared_ptr<SymbolTable>& symbols) {
  PARK_ASSIGN_OR_RETURN(QueryResult result,
                        QueryDatabase(db, pattern_text, symbols));
  return !result.empty();
}

}  // namespace park
