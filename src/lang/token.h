// Token definitions for the active-rule language.

#ifndef PARK_LANG_TOKEN_H_
#define PARK_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace park {

enum class TokenKind {
  kEof,
  kIdentifier,   // lowercase-initial: constant symbol or predicate name
  kVariable,     // uppercase- or underscore-initial: rule variable
  kInt,          // integer literal
  kString,       // quoted string literal (text stored unescaped)
  kLParen,       // (
  kRParen,       // )
  kLBracket,     // [
  kRBracket,     // ]
  kComma,        // ,
  kPeriod,       // .
  kColon,        // :
  kArrow,        // ->
  kPlus,         // +
  kMinus,        // -
  kBang,         // !
  kEquals,       // =
  kError,        // lexing error; message in `text`
};

/// Human-readable name of a token kind, for diagnostics.
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier/variable/string payload or error text
  int64_t int_value = 0;  // valid when kind == kInt
  int line = 1;           // 1-based source position of the first character
  int column = 1;
};

}  // namespace park

#endif  // PARK_LANG_TOKEN_H_
