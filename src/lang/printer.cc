#include "lang/printer.h"

#include "util/string_util.h"

namespace park {

std::string TermToString(const Term& term, const Rule& rule,
                         const SymbolTable& symbols) {
  if (term.is_variable()) {
    return rule.variable_names()[static_cast<size_t>(term.var_index())];
  }
  return term.constant().ToString(symbols);
}

std::string AtomPatternToString(const AtomPattern& atom, const Rule& rule,
                                const SymbolTable& symbols) {
  std::string out = symbols.PredicateName(atom.predicate);
  if (!atom.terms.empty()) {
    out += "(";
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      if (i > 0) out += ", ";
      out += TermToString(atom.terms[i], rule, symbols);
    }
    out += ")";
  }
  return out;
}

std::string BodyLiteralToString(const BodyLiteral& literal, const Rule& rule,
                                const SymbolTable& symbols) {
  std::string prefix;
  switch (literal.kind) {
    case LiteralKind::kPositive:
      break;
    case LiteralKind::kNegated:
      prefix = "!";
      break;
    case LiteralKind::kEventInsert:
      prefix = "+";
      break;
    case LiteralKind::kEventDelete:
      prefix = "-";
      break;
  }
  return prefix + AtomPatternToString(literal.atom, rule, symbols);
}

namespace {

/// "[prio=2, src=1]" or "" when the rule has no annotations.
std::string AnnotationsToString(const Rule& rule) {
  std::vector<std::string> parts;
  if (rule.priority().has_value()) {
    parts.push_back(StrFormat("prio=%d", *rule.priority()));
  }
  if (rule.source().has_value()) {
    parts.push_back(StrFormat("src=%d", *rule.source()));
  }
  if (parts.empty()) return "";
  return "[" + Join(parts, ", ") + "]";
}

}  // namespace

std::string RuleToString(const Rule& rule, const SymbolTable& symbols) {
  std::string out;
  std::string annotations = AnnotationsToString(rule);
  if (!rule.name().empty()) {
    out += rule.name();
    if (!annotations.empty()) {
      out += " ";
      out += annotations;
    }
    out += ": ";
  } else if (!annotations.empty()) {
    out += annotations;
    out += " ";
  }
  for (size_t i = 0; i < rule.body().size(); ++i) {
    if (i > 0) out += ", ";
    out += BodyLiteralToString(rule.body()[i], rule, symbols);
  }
  if (!rule.body().empty()) out += " ";
  out += "-> ";
  out += ActionKindSign(rule.head().action);
  out += AtomPatternToString(rule.head().atom, rule, symbols);
  out += ".";
  return out;
}

std::string ProgramToString(const Program& program) {
  std::string out;
  for (const Rule& rule : program.rules()) {
    out += RuleToString(rule, *program.symbols());
    out += "\n";
  }
  return out;
}

}  // namespace park
