#include "lang/token.h"

namespace park {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kPeriod:
      return "'.'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kError:
      return "lexing error";
  }
  return "unknown token";
}

}  // namespace park
