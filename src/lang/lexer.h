// Lexer for the active-rule language.
//
// Syntax summary (see parser.h for the grammar):
//   - identifiers: lowercase-initial `[a-z][A-Za-z0-9_]*` (constants,
//     predicate names, rule labels)
//   - variables: uppercase- or underscore-initial `[A-Z_][A-Za-z0-9_]*`
//   - integers: `-?[0-9]+` (the '-' is a separate token; the parser folds
//     it into literals where a term is expected)
//   - strings: double-quoted with `\"` and `\\` escapes
//   - comments: `//` and `#` to end of line, `%` (Prolog style) to end of
//     line
//   - punctuation: ( ) [ ] , . : -> + - ! =

#ifndef PARK_LANG_LEXER_H_
#define PARK_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.h"
#include "util/status.h"

namespace park {

/// One-token-lookahead lexer. Errors surface as kError tokens whose `text`
/// is the message; the parser converts them to Status.
class Lexer {
 public:
  explicit Lexer(std::string_view input);

  /// The current token. Valid until Advance() is called.
  const Token& Peek() const { return current_; }

  /// Consumes the current token and returns it; lexes the next one.
  Token Advance();

 private:
  void Lex();
  void SkipWhitespaceAndComments();
  char CurrentChar() const { return input_[pos_]; }
  bool AtEnd() const { return pos_ >= input_.size(); }
  void Bump();

  Token MakeToken(TokenKind kind, std::string text = "");
  Token LexIdentifierOrVariable();
  Token LexNumber();
  Token LexString();

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
  Token current_;
};

/// Lexes the entire input; returns the token list (ending with kEof) or the
/// first lexing error. Mostly a testing convenience.
Result<std::vector<Token>> LexAll(std::string_view input);

}  // namespace park

#endif  // PARK_LANG_LEXER_H_
