// Rendering of AST nodes back to surface syntax. Printing a parsed rule
// and re-parsing it yields a structurally identical rule (round-trip
// property, tested in printer_test.cc).

#ifndef PARK_LANG_PRINTER_H_
#define PARK_LANG_PRINTER_H_

#include <string>

#include "lang/ast.h"

namespace park {

/// "X" / "alice" / "42" / "\"text\"".
std::string TermToString(const Term& term, const Rule& rule,
                         const SymbolTable& symbols);

/// "p(X, a)".
std::string AtomPatternToString(const AtomPattern& atom, const Rule& rule,
                                const SymbolTable& symbols);

/// "!p(X)", "+p(X)", "-p(X)" or "p(X)".
std::string BodyLiteralToString(const BodyLiteral& literal, const Rule& rule,
                                const SymbolTable& symbols);

/// Full rule text, e.g. "r1 [prio=2]: p(X), !q(X) -> +r(X)."
std::string RuleToString(const Rule& rule, const SymbolTable& symbols);

/// One rule per line.
std::string ProgramToString(const Program& program);

}  // namespace park

#endif  // PARK_LANG_PRINTER_H_
