// Static analysis of active-rule programs: the safety conditions of §2,
// plus structural metadata used by tools, policies, and benchmarks
// (predicate dependency graph, recursion detection, potential conflicts).

#ifndef PARK_LANG_ANALYZER_H_
#define PARK_LANG_ANALYZER_H_

#include <unordered_map>
#include <utility>
#include <unordered_set>
#include <vector>

#include "lang/ast.h"

namespace park {

/// Checks the two safety conditions of §2 (extended to event literals,
/// which bind variables just like positive literals do):
///  1. every head variable occurs in the body;
///  2. every variable of a negated literal occurs in some positive (or
///     event) body literal.
Status CheckRuleSafety(const Rule& rule, const SymbolTable& symbols);

/// True iff the head atoms of `inserter` and `deleter` unify — i.e. some
/// database instance exists on which the two rules command +a and -a for
/// the same ground atom `a`. A sound and complete test at the head level
/// (bodies are not analyzed, so a `true` here may still never manifest).
bool HeadsMayConflict(const Rule& inserter, const Rule& deleter);

/// Structural facts about a whole program.
struct ProgramAnalysis {
  /// Predicates that appear in some rule head with `+` and in some (other
  /// or the same) rule head with `-`: the only predicates that can ever be
  /// the subject of a conflict.
  std::vector<PredicateId> potentially_conflicting_predicates;

  /// Rule-index pairs (inserter, deleter) whose heads unify — the precise
  /// (head-level) refinement of potentially_conflicting_predicates.
  /// `p(a, X) -> +q(a)` and `r(Y) -> -q(b)` share predicate q but can
  /// never conflict; they are excluded here.
  std::vector<std::pair<int, int>> potentially_conflicting_rule_pairs;

  /// For each predicate: the indexes of rules whose head inserts /
  /// deletes it.
  std::unordered_map<PredicateId, std::vector<int>> inserters;
  std::unordered_map<PredicateId, std::vector<int>> deleters;

  /// Edges head-predicate <- body-predicate of the dependency graph.
  std::unordered_map<PredicateId, std::unordered_set<PredicateId>> depends_on;

  /// True if some head predicate (transitively) depends on itself.
  bool is_recursive = false;

  /// True if any rule has an event literal in its body (full ECA program).
  bool uses_events = false;

  /// Maximum number of variables in any single rule.
  int max_rule_variables = 0;
};

/// Computes ProgramAnalysis for `program`. The program's rules are assumed
/// individually safe (Program::AddRule enforces this).
ProgramAnalysis AnalyzeProgram(const Program& program);

}  // namespace park

#endif  // PARK_LANG_ANALYZER_H_
