// File-level load/save for databases and programs (parser-side of
// storage/io.h). Formats are the ordinary surface syntax, so anything the
// parser accepts can be a snapshot.

#ifndef PARK_LANG_IO_H_
#define PARK_LANG_IO_H_

#include "lang/parser.h"
#include "storage/io.h"

namespace park {

/// Reads a fact file into a fresh Database over `symbols`.
Result<Database> ReadDatabaseFile(const std::string& path,
                                  std::shared_ptr<SymbolTable> symbols);

/// Reads a rule file into a fresh Program over `symbols`.
Result<Program> ReadProgramFile(const std::string& path,
                                std::shared_ptr<SymbolTable> symbols);

/// Writes `program` as a rule file (atomic temp-file + rename).
Status WriteProgramFile(const Program& program, const std::string& path);

}  // namespace park

#endif  // PARK_LANG_IO_H_
