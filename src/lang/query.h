// Ad-hoc pattern queries over a Database: the read side of the library.
//
//   auto hits = park::QueryDatabase(db, "payroll(X, S)", symbols).value();
//   // hits.variable_names == {"X", "S"}
//   // hits.bindings       == one Tuple (X, S) per matching atom
//
// Patterns are single atoms in the ordinary surface syntax; variables,
// repeated variables (`q(X, X)`), anonymous `_`, and constants all work.

#ifndef PARK_LANG_QUERY_H_
#define PARK_LANG_QUERY_H_

#include "lang/parser.h"
#include "storage/database.h"

namespace park {

/// The answer to a pattern query.
struct QueryResult {
  /// Names of the pattern's named variables, in first-occurrence order
  /// (anonymous `_` positions are not reported).
  std::vector<std::string> variable_names;
  /// One row per matching atom: the values bound to `variable_names`.
  /// Sorted, duplicate-free.
  std::vector<Tuple> bindings;

  size_t size() const { return bindings.size(); }
  bool empty() const { return bindings.empty(); }

  /// Rendered rows: {"X=a, S=100", ...} in sorted order.
  std::vector<std::string> ToStrings(const SymbolTable& symbols) const;
};

/// Matches `pattern_text` (e.g. "payroll(X, 100)") against `db`.
/// Returns kInvalidArgument on parse errors. A predicate never seen by
/// `db` yields an empty result, not an error.
Result<QueryResult> QueryDatabase(const Database& db,
                                  std::string_view pattern_text,
                                  const std::shared_ptr<SymbolTable>& symbols);

/// True iff at least one atom matches (`exists` query).
Result<bool> DatabaseMatches(const Database& db,
                             std::string_view pattern_text,
                             const std::shared_ptr<SymbolTable>& symbols);

}  // namespace park

#endif  // PARK_LANG_QUERY_H_
