// IInterpretation: the "intermediate interpretation" of paper §4.2 — a set
// of unmarked atoms (always exactly the original database instance D; the
// fixpoint computation never changes I°) plus sets of atoms marked `+` and
// `-`, together with the validity relation for all four literal kinds and
// provenance bookkeeping for conflict construction.

#ifndef PARK_ENGINE_INTERPRETATION_H_
#define PARK_ENGINE_INTERPRETATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/rule_grounding.h"
#include "storage/database.h"

namespace park {

/// An i-interpretation I = I° ∪ I⁺ ∪ I⁻ over a fixed base database.
///
/// The base (I°) is borrowed and never mutated; marked atoms accumulate via
/// AddMarked and are discarded wholesale by ClearMarks (the "restart from
/// I°" step of the Δ operator). The class also records, for every marked
/// atom, which rule groundings derived it — used to build conflict sides
/// when a stale derivation clashes with a current one (see DESIGN.md §2).
class IInterpretation {
 public:
  /// `base` must outlive this interpretation.
  explicit IInterpretation(const Database* base);

  IInterpretation(const IInterpretation&) = delete;
  IInterpretation& operator=(const IInterpretation&) = delete;
  IInterpretation(IInterpretation&&) = default;

  const Database& base() const { return *base_; }
  const Database& plus() const { return plus_; }
  const Database& minus() const { return minus_; }

  /// Literal validity per §4.2 (conditions) and §4.3 (events):
  ///  - kPositive:    atom ∈ I° or +atom ∈ I⁺
  ///  - kNegated:     -atom ∈ I⁻, or (atom ∉ I° and +atom ∉ I⁺)
  ///  - kEventInsert: +atom ∈ I⁺
  ///  - kEventDelete: -atom ∈ I⁻
  bool IsValid(const GroundAtom& atom, LiteralKind kind) const;

  /// IsValid over a flat argument span — same truth table, no GroundAtom
  /// or Tuple materialized. The executors' filter steps (fully bound
  /// literals) evaluate through here, once per candidate binding.
  bool IsValid(PredicateId predicate, const Value* args, size_t n,
               LiteralKind kind) const;

  bool HasPlus(const GroundAtom& atom) const { return plus_.Contains(atom); }
  bool HasMinus(const GroundAtom& atom) const { return minus_.Contains(atom); }
  bool HasUnmarked(const GroundAtom& atom) const {
    return base_->Contains(atom);
  }

  /// Adds `±atom` and records `by` as one of its derivations. Returns true
  /// if the marked atom is new. Does NOT check consistency — the caller
  /// (the Δ operator) decides whether a would-be-inconsistent Γ result is
  /// ever applied.
  bool AddMarked(ActionKind action, const GroundAtom& atom,
                 const RuleGrounding& by);

  /// All groundings that ever derived `±atom` since the last ClearMarks.
  const std::vector<RuleGrounding>* Provenance(ActionKind action,
                                               const GroundAtom& atom) const;

  /// Discards all marked atoms and provenance: I becomes I° again.
  void ClearMarks();

  /// True iff no atom is marked both + and -.
  bool IsConsistent() const { return inconsistent_count_ == 0; }

  size_t num_plus() const { return plus_.size(); }
  size_t num_minus() const { return minus_.size(); }

  /// incorp(I) (paper §4.2): (I° ∪ {a | +a ∈ I⁺}) − {a | -a ∈ I⁻}.
  /// Must only be called on a consistent interpretation.
  Database Incorporate() const;

  /// Renders like the paper's traces: "{p, +q, -a}", atoms sorted within
  /// each mark class (unmarked first, then +, then -).
  std::string ToString() const;

  /// Sorted rendered atoms, e.g. {"p", "+q", "-a"} — handy for EXPECT_EQ
  /// against the paper's step listings.
  std::vector<std::string> SortedLiteralStrings() const;

 private:
  using ProvenanceMap =
      std::unordered_map<GroundAtom, std::vector<RuleGrounding>,
                         GroundAtomHash>;

  const Database* base_;
  Database plus_;
  Database minus_;
  ProvenanceMap plus_provenance_;
  ProvenanceMap minus_provenance_;
  // Number of atoms currently marked both ways.
  size_t inconsistent_count_ = 0;
};

}  // namespace park

#endif  // PARK_ENGINE_INTERPRETATION_H_
