// The static rule/predicate dependency graph behind delta-driven Γ
// scheduling (docs/SCHEDULER.md).
//
// Built once per (program, evaluation): for every rule, which predicates
// its body WATCHES — split by the polarity of the marks that can wake it
// (positive and +event literals gain witnesses from new `+` marks;
// negated and -event literals from new `-` marks, see
// engine/consequence.h) — and which predicate its head WRITES. Inverting
// the watch relation gives the per-predicate watcher index the scheduler
// uses to turn a Γ step's delta into its affected rule set in
// O(|changed predicates|) instead of the O(|P|) all-rules scan
// ComputeGammaFiltered otherwise pays per step.
//
// On top of the same edges (rule r feeds rule s iff r's head write is
// watched by s's body) the graph condenses strongly connected components
// and assigns each rule a STRATUM: the longest feed path from any source
// component to the rule's component. Rules in one stratum never feed each
// other through rules of later strata, so a Γ section's affected set
// partitions into strata-ordered pipeline stages the parallel evaluator
// dispatches as separate pool sections, prewarming each stage's plans
// (and indexes) right before the stage runs. Scheduling NEVER changes
// results: the affected set equals the scan's set by construction, and
// staged buffers are merged back into program order (scheduler_oracle_test
// pins bit-identity against unscheduled runs).

#ifndef PARK_ENGINE_RULE_GRAPH_H_
#define PARK_ENGINE_RULE_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "engine/consequence.h"
#include "lang/ast.h"

namespace park {

/// One Γ section's schedule: the affected rules (program order — exactly
/// the set ComputeGammaFiltered's RuleIsAffected scan would select) plus
/// their partition into strata-ordered stages for pipelined dispatch.
struct GammaSchedule {
  /// Affected rule indexes, ascending (= program order).
  std::vector<int> rules;
  /// Stage partition of `rules`: stages in ascending stratum order, each
  /// stage's rules in program order. Empty when `rules` is empty;
  /// size() == 1 when every affected rule shares one stratum.
  std::vector<std::vector<int>> stages;
};

/// Immutable dependency analysis of one Program. The program must outlive
/// the graph. Thread-compatible: built on the coordinator, read-only
/// afterwards (workers never touch it).
class RuleDependencyGraph {
 public:
  explicit RuleDependencyGraph(const Program& program);

  size_t size() const { return stratum_.size(); }

  /// Rules with a body literal that gains witnesses from new `+` (resp.
  /// `-`) marks of `predicate`, ascending. Empty for unwatched predicates.
  const std::vector<int>& PlusWatchers(PredicateId predicate) const;
  const std::vector<int>& MinusWatchers(PredicateId predicate) const;

  /// Stratum of `rule_index` (0-based level in the condensation's longest-
  /// path layering; rules of one SCC share a stratum).
  int stratum(int rule_index) const {
    return stratum_[static_cast<size_t>(rule_index)];
  }
  /// Number of distinct strata (0 for the empty program).
  size_t num_strata() const { return num_strata_; }
  /// Strongly connected components of the rule feed graph (recursive rule
  /// clusters collapse to one component each).
  size_t num_sccs() const { return num_sccs_; }
  /// Distinct rule → rule feed edges (self-loops included).
  size_t num_edges() const { return num_edges_; }

  /// The schedule for a delta-filtered Γ section: affected rules gathered
  /// through the watcher index (identical, by construction, to the set
  /// {r : RuleIsAffected(r, delta)}), partitioned into stages by stratum.
  GammaSchedule Schedule(const DeltaState& delta) const;

  /// Partitions an already-computed affected set (ascending rule indexes)
  /// into strata-ordered stages. Exposed for the semi-naive path, which
  /// derives its affected set from seed tasks.
  std::vector<std::vector<int>> StagesFor(
      const std::vector<int>& rules) const;

  /// Every rule transitively reachable from marks of the given polarities:
  /// the closure of the watcher wake-up relation starting from `+` marks
  /// of plus_preds and `-` marks of minus_preds, following each woken
  /// rule's head write to its own watchers. Ascending rule indexes. This
  /// is the static dependency CONE of an update set — incremental
  /// maintenance (docs/INCREMENTAL.md) reports its size and uses it to
  /// bound what a commit can touch.
  std::vector<int> ConeRules(const std::vector<PredicateId>& plus_preds,
                             const std::vector<PredicateId>& minus_preds)
      const;

 private:
  using WatcherIndex = std::unordered_map<PredicateId, std::vector<int>>;

  const std::vector<int>& Watchers(const WatcherIndex& index,
                                   PredicateId predicate) const;

  WatcherIndex plus_watchers_;
  WatcherIndex minus_watchers_;
  /// Per-rule head write (action polarity + predicate), for cone BFS.
  std::vector<std::pair<ActionKind, PredicateId>> heads_;
  std::vector<int> stratum_;  // per rule index
  size_t num_strata_ = 0;
  size_t num_sccs_ = 0;
  size_t num_edges_ = 0;
  std::vector<int> empty_;
};

}  // namespace park

#endif  // PARK_ENGINE_RULE_GRAPH_H_
