// RuleGrounding: a pair (r, θ) of a rule and a ground substitution for it
// (paper §4.2). Blocked-rule-instance sets — the `B` component of a
// bi-structure — are sets of RuleGroundings.

#ifndef PARK_ENGINE_RULE_GROUNDING_H_
#define PARK_ENGINE_RULE_GROUNDING_H_

#include <string>
#include <unordered_set>

#include "lang/ast.h"

namespace park {

/// A ground instance of a rule: the rule's index in its Program plus the
/// value bound to each of the rule's variables (indexed by variable index,
/// stored as a Tuple). Value type: copyable, hashable, ordered.
class RuleGrounding {
 public:
  RuleGrounding() : rule_index_(-1) {}
  RuleGrounding(int rule_index, Tuple binding)
      : rule_index_(rule_index), binding_(std::move(binding)) {}

  int rule_index() const { return rule_index_; }
  const Tuple& binding() const { return binding_; }

  /// Renders as "(r1, [X <- a, Y <- b])", using the rule's variable names.
  std::string ToString(const Program& program,
                       const SymbolTable& symbols) const;

  size_t Hash() const {
    return HashCombine(static_cast<size_t>(rule_index_), binding_.Hash());
  }

  friend bool operator==(const RuleGrounding& a, const RuleGrounding& b) {
    return a.rule_index_ == b.rule_index_ && a.binding_ == b.binding_;
  }
  friend bool operator!=(const RuleGrounding& a, const RuleGrounding& b) {
    return !(a == b);
  }
  friend bool operator<(const RuleGrounding& a, const RuleGrounding& b) {
    if (a.rule_index_ != b.rule_index_) return a.rule_index_ < b.rule_index_;
    return a.binding_ < b.binding_;
  }

 private:
  int rule_index_;
  Tuple binding_;
};

struct RuleGroundingHash {
  size_t operator()(const RuleGrounding& g) const { return g.Hash(); }
};

/// The `B` of a bi-structure ⟨B, I⟩: rule instances barred from firing.
using BlockedSet = std::unordered_set<RuleGrounding, RuleGroundingHash>;

}  // namespace park

#endif  // PARK_ENGINE_RULE_GROUNDING_H_
