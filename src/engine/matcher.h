// Body matching: enumerating the ground substitutions that make a rule
// body valid in an i-interpretation.
//
// Matching is plan-driven. A rule (or a (rule, Δ-seed-literal) variant) is
// compiled once into a CompiledPlan: a literal order, one CompiledStep per
// body literal with pre-resolved pattern slots, bind/check ops, and the
// index column each generator probes. Two planners produce plans:
//
//   - kHeuristic: the original static ordering (fully-bound filters first,
//     then most bound argument positions, ties by source order; probe =
//     first bound position). Needs no statistics; this is the order
//     PlanBodyOrder exposes and the legacy ForEachBodyMatch entry points
//     execute.
//   - kCostBased: greedy smallest-estimated-candidate-stream ordering
//     driven by live storage statistics (RelationStats: row counts and
//     per-column distinct estimates), with the probe column chosen as the
//     most selective bound column. See docs/PLANNER.md for the cost model
//     and the determinism argument.
//
// Plans are cached per (rule, seed literal) in a PlanCache and invalidated
// only when the statistics they were computed from drift past a threshold,
// so steady-state evaluation compiles nothing. Execution is a flattened
// iterative loop over the compiled steps with arena-backed candidate
// buffers (util/arena.h) — no per-literal recursion and zero steady-state
// heap allocation.
//
// Matching never mutates the interpretation, with one historical
// exception: the storage layer's lazy column-index build. The
// requirements() of a PlanCache are derived from the compiled plans
// themselves (a monotone union over every plan ever compiled), so the
// parallel evaluator can build exactly the indexes any cached plan probes
// and freeze the relations for the duration of the parallel section.
// CollectIndexRequirements is the program-level variant for the heuristic
// planner, likewise derived from compiled plans.

#ifndef PARK_ENGINE_MATCHER_H_
#define PARK_ENGINE_MATCHER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/interpretation.h"
#include "util/function_ref.h"

namespace park {

class CancellationToken;

/// Which join planner compiles rule plans (see file comment). The two
/// planners enumerate the same match SET for every rule — only the
/// enumeration order differs — so results are equal as sets either way;
/// planner_oracle_test sweeps this.
enum class PlannerMode {
  kHeuristic,
  kCostBased,
};

/// How compiled plans execute (ParkOptions::exec_mode). kTuple is the
/// classic tuple-at-a-time backtracking executor over per-column hash
/// indexes. kBatch is batch-at-a-time: steps consume and produce whole
/// binding batches against the storage layer's sorted, dictionary-encoded
/// columnar segments (storage/segment.h), with per-step probe or
/// sorted-merge joins and candidate slices that are plain segment ranges.
/// The two modes enumerate the same match SET for every plan — the batch
/// candidate stream is the canonical sorted segment order instead of hash
/// order — and each mode is bit-identical across thread counts
/// (docs/STORAGE.md; planner_oracle_test sweeps exec_mode).
enum class ExecMode {
  kTuple,
  kBatch,
};

/// Physical join operator of one batch-mode generator step, chosen at
/// plan-compile time from estimated cardinalities (tuple mode always
/// probes). kMerge sorts the incoming batch by its probe-key and walks
/// the segment's sorted column once per distinct key; kProbe binary-
/// searches the segment per binding (or hash-probes in tuple mode).
enum class JoinAlgo : uint8_t {
  kProbe,
  kMerge,
};

/// Batch-execution row counters, accumulated atomically by worker threads
/// (each counter is a sum over a partition of the same row multiset, so
/// the totals are thread-count invariant; surfaced as the park-stats-v1
/// "exec" block). All stay 0 in tuple mode.
struct ExecStats {
  std::atomic<uint64_t> batch_rows{0};  // step-0 bindings materialized
  std::atomic<uint64_t> probe_rows{0};  // bindings emitted by probe joins
  std::atomic<uint64_t> merge_rows{0};  // bindings emitted by merge joins
};

/// One body literal of a compiled plan, in execution order, with every
/// per-candidate decision pre-resolved at compile time. Variable boundness
/// at a given step is static (it depends only on the literal order and the
/// seed), so execution needs no dynamic bound-flag array: a slot is
/// constant, bound-variable, or free once and for all.
struct CompiledStep {
  /// A pattern position of the literal.
  struct Slot {
    enum class Kind : uint8_t {
      kConst,     // constant term: pattern gets `constant`
      kBoundVar,  // variable bound by the seed or an earlier step
      kFree,      // variable this step binds (or re-checks, see checks)
    };
    Kind kind = Kind::kFree;
    int var = -1;    // variable index (kBoundVar / kFree)
    Value constant;  // (kConst)
  };

  int literal_index = 0;  // index into rule.body()
  LiteralKind kind = LiteralKind::kPositive;
  PredicateId predicate = 0;
  /// True when every slot is kConst/kBoundVar: the step grounds the
  /// literal and checks validity (a constant-time filter, never a
  /// candidate generator).
  bool filter = false;
  /// Pattern position whose column index the candidate scan probes; -1
  /// means full scan (no bound position). Generator steps only.
  int probe_column = -1;
  std::vector<Slot> slots;
  /// (position, var): first occurrence of each free variable — bound from
  /// the candidate tuple.
  std::vector<std::pair<int, int>> binds;
  /// (position, var): repeated occurrence of a free variable within this
  /// literal — checked against the binding made by its first occurrence
  /// (the TuplePattern cannot express intra-literal equality).
  std::vector<std::pair<int, int>> checks;
  /// Planner's estimate of this step's candidate stream size given the
  /// statistics at compile time (for EXPLAIN; 0 for filter steps).
  double estimated_rows = 0;
  /// Physical join operator when the plan executes in batch mode (see
  /// JoinAlgo); tuple mode ignores it. Chosen at compile time so the
  /// choice replays bit-identically with the plan.
  JoinAlgo join = JoinAlgo::kProbe;
};

/// A rule body compiled against one statistics snapshot. Pure function of
/// (rule, seed_index, mode, stats snapshot) — recompiling with unchanged
/// statistics yields an identical plan, which is what makes fixed-config
/// runs bit-identical across repeats.
struct CompiledPlan {
  int rule_index = 0;
  int seed_index = -1;  // body literal pre-bound by a Δ seed; -1 = none
  PlannerMode mode = PlannerMode::kHeuristic;
  std::vector<CompiledStep> steps;
  /// Seed literal binding program (seed plans only): how to bind/check the
  /// rule's variables against the seed atom.
  std::vector<CompiledStep::Slot> seed_slots;
  /// Estimate of the first generator step's candidate stream (the
  /// planner's predicted `actual_rows` per execution; 0 if unsliceable).
  double estimated_candidates = 0;

  /// Row counts of every store the plan's cost depends on, at compile
  /// time. PlanCache::Get replans when the live counts drift past a
  /// threshold (see docs/PLANNER.md).
  struct StoreRows {
    uint8_t store = 0;  // 0 = base, 1 = plus, 2 = minus
    PredicateId predicate = 0;
    size_t rows = 0;
  };
  std::vector<StoreRows> stats_snapshot;
};

/// Compile-time summary of one plan, for the EXPLAIN output and the
/// RunObserver::OnPlanCompiled hook.
struct PlanExplanation {
  int rule_index = 0;
  int seed_index = -1;
  PlannerMode mode = PlannerMode::kHeuristic;
  bool replan = false;  // recompile triggered by statistics drift
  double estimated_candidates = 0;
  struct Step {
    int literal_index = 0;
    bool filter = false;
    int probe_column = -1;
    double estimated_rows = 0;
    JoinAlgo join = JoinAlgo::kProbe;
  };
  std::vector<Step> steps;
};

/// Invokes `fn(binding)` once per distinct ground substitution θ (a Tuple
/// indexed by the rule's variable indexes) such that every body literal of
/// `rule` is valid in `interp`. A rule with an empty body yields exactly
/// one (empty) binding. `fn` must not mutate `interp`. Executes the
/// heuristic plan (legacy entry point; the evaluator's plan-cached path is
/// ExecutePlan below).
void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      FunctionRef<void(const Tuple& binding)> fn);

// --- Candidate-range slicing (intra-rule parallelism) ---
//
// The first generator step of a plan draws its candidate tuples from a
// deterministic stream: the relation scan or index probe order of the
// stores it reads (base then plus for positive literals). Assigning each
// candidate an ordinal in that stream lets the parallel evaluator split
// ONE rule's work into [begin, end) slices whose per-slice match lists,
// concatenated in slice order, are byte-identical to the unsliced
// enumeration — the stream order is stable as long as the relations are
// not mutated, which the frozen parallel section guarantees.

/// A sub-range of the first generator step's candidate ordinals.
/// `kSliceEnd` as `end` means "through the last candidate" (the final
/// slice uses it so coverage never depends on the counted total).
struct CandidateSlice {
  static constexpr size_t kSliceEnd = std::numeric_limits<size_t>::max();
  size_t begin = 0;
  size_t end = kSliceEnd;

  bool IsFull() const { return begin == 0 && end == kSliceEnd; }
};

/// Number of candidate tuples the first planned literal of `rule` would
/// draw from its stream(s) in `interp` (before any dedup or binding
/// checks), under the heuristic plan. Returns 0 when the rule is not
/// sliceable — empty body, or a first plan literal that is fully bound and
/// therefore a constant-time filter rather than a generator. Callers treat
/// 0 as "run unsliced".
size_t CountFirstLiteralCandidates(const Rule& rule,
                                   const IInterpretation& interp);

/// Sliced variant of ForEachBodyMatch: enumerates only the matches rooted
/// at first-literal candidates with ordinals in `slice`. Concatenating the
/// outputs of a partition of [0, CountFirstLiteralCandidates(...)) in
/// slice order reproduces the unsliced output exactly. A full slice is
/// identical to the unsliced overload (including for unsliceable rules).
///
/// `cancel` (here and on every execution entry point below) is the run's
/// cooperative cancellation token, polled every
/// CancellationToken::kCheckStride visited tuples; nullptr disables
/// polling. Once the token fires, enumeration stops early and the partial
/// output MUST be discarded by the caller — the evaluator converts the
/// token's cause into the run's error status.
void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      CandidateSlice slice,
                      FunctionRef<void(const Tuple& binding)> fn,
                      CancellationToken* cancel = nullptr);

/// Returns the body-literal evaluation order the HEURISTIC planner uses
/// for `rule` (indexes into rule.body()). Exposed for tests; the detailed
/// EXPLAIN path goes through PlanCache / PlanExplanation.
std::vector<int> PlanBodyOrder(const Rule& rule);

/// The heuristic order when literal `seed_index` is pre-bound by a delta
/// seed (it is excluded from the returned order). Exposed for tests.
std::vector<int> PlanBodyOrderSeeded(const Rule& rule, int seed_index);

/// Semi-naive building block: enumerates the matches of `rule` in which
/// body literal `seed_index` is grounded by exactly `seed_atom`. The
/// seed literal's constants and repeated variables are checked against
/// the atom; its variables are pre-bound; the remaining literals are then
/// enumerated as usual. The caller guarantees `seed_atom` makes the seed
/// literal valid (it came from the engine's delta of new marks).
void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            FunctionRef<void(const Tuple&)> fn);

/// CountFirstLiteralCandidates for the seeded heuristic plan: candidates
/// of the first literal scheduled AFTER the seed pre-binding. Returns 0
/// when the seeded rule is unsliceable (no remaining generator literal, or
/// the seed atom already fails the seed literal's constants / repeated
/// variables, in which case there are no matches at all).
size_t CountFirstLiteralCandidatesSeeded(const Rule& rule,
                                         const IInterpretation& interp,
                                         int seed_index,
                                         const GroundAtom& seed_atom);

/// Sliced variant of ForEachBodyMatchSeeded, with the same concatenation
/// guarantee as the sliced ForEachBodyMatch (and the same `cancel`
/// contract).
void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            CandidateSlice slice,
                            FunctionRef<void(const Tuple&)> fn,
                            CancellationToken* cancel = nullptr);

// --- Compiled-plan interface (the evaluator's hot path) ---

/// Compiles `rule` (with `seed_index` pre-bound; -1 for unseeded) under
/// `mode`. `interp` supplies the statistics; it may be null only in
/// kHeuristic mode (ordering is then static and estimates stay 0).
CompiledPlan CompilePlan(const Rule& rule, int seed_index, PlannerMode mode,
                         const IInterpretation* interp);

/// Executes `plan` over `interp`, restricted to first-generator-step
/// candidates with ordinals in `slice`; `fn` is invoked once per match.
/// Returns the number of step-0 candidates the slice claimed (pre-dedup;
/// the planner's actual-rows counter — slice counts of a partition sum to
/// the full stream count). `rule` must be the rule the plan was compiled
/// from. With a fired `cancel` the claimed count and emitted matches are
/// partial and must be discarded.
///
/// `exec` picks the executor (see ExecMode). In batch mode the step-0
/// stream is the probe range of the stores' columnar segments, so a
/// slice's ordinals resolve by range arithmetic (no per-tuple claiming),
/// and `exec_stats` (optional) accumulates the batch row counters.
size_t ExecutePlan(const CompiledPlan& plan, const Rule& rule,
                   const IInterpretation& interp, CandidateSlice slice,
                   FunctionRef<void(const Tuple& binding)> fn,
                   CancellationToken* cancel = nullptr,
                   ExecMode exec = ExecMode::kTuple,
                   ExecStats* exec_stats = nullptr);

/// Seeded execution: binds the seed literal against `seed_atom` first
/// (returning 0 matches if constants / repeated variables disagree).
size_t ExecutePlanSeeded(const CompiledPlan& plan, const Rule& rule,
                         const IInterpretation& interp,
                         const GroundAtom& seed_atom, CandidateSlice slice,
                         FunctionRef<void(const Tuple& binding)> fn,
                         CancellationToken* cancel = nullptr,
                         ExecMode exec = ExecMode::kTuple,
                         ExecStats* exec_stats = nullptr);

/// Size of the plan's first generator step candidate stream (0 when
/// unsliceable), consistent with the ordinals the matching executor
/// claims. Tuple mode counts full-pattern index matches (touching
/// exactly the indexes execution would); batch mode is the probe range
/// of the columnar segments — O(log rows) arithmetic, no scan.
size_t CountPlanCandidates(const CompiledPlan& plan,
                           const IInterpretation& interp,
                           ExecMode exec = ExecMode::kTuple);
size_t CountPlanCandidatesSeeded(const CompiledPlan& plan, const Rule& rule,
                                 const IInterpretation& interp,
                                 const GroundAtom& seed_atom,
                                 ExecMode exec = ExecMode::kTuple);

/// The column indexes that evaluating a program's bodies can probe, per
/// predicate, split by which part of the i-interpretation the matcher
/// reads them from (kPositive literals probe base AND plus; +event plus;
/// -event minus; negated literals are never generators). Derived from the
/// compiled plans themselves, so it is exact for the plans it was
/// collected from, never an over-approximation of a different planner.
struct IndexRequirements {
  using ColumnsByPredicate =
      std::unordered_map<PredicateId, std::vector<int>>;
  ColumnsByPredicate base;
  ColumnsByPredicate plus;
  ColumnsByPredicate minus;
};

/// Requirements of every HEURISTIC plan of `program` — the unseeded plan
/// and all Δ-seeded variants of each rule. Implemented by compiling those
/// plans and unioning their probes (planner_test asserts it can never
/// diverge from what the compiled plans execute).
IndexRequirements CollectIndexRequirements(const Program& program);

/// Adds the probes of `plan` into `out` (dedup'd).
void AddPlanRequirements(const CompiledPlan& plan, IndexRequirements& out);

/// Per-(program, schema) plan cache: one CompiledPlan per (rule, Δ-seed
/// literal) slot, compiled on first use against the live statistics and
/// recompiled only when those statistics drift past a threshold
/// (docs/PLANNER.md). Single-threaded by design: the evaluator
/// coordinator calls Get before fanning a parallel section out, and
/// workers only execute the returned plans.
class PlanCache {
 public:
  PlanCache(const Program& program, PlannerMode mode);

  PlannerMode mode() const { return mode_; }

  /// The plan for (`rule`, `seed_index`), compiling or replanning as
  /// needed. The reference stays valid until the next Get for the same
  /// slot. `rule` must belong to the cache's program.
  const CompiledPlan& Get(const Rule& rule, int seed_index,
                          const IInterpretation& interp);

  /// Union of the probes of every plan ever compiled by this cache —
  /// monotone, so a plan obtained from Get never probes an index outside
  /// requirements(), even across replans.
  const IndexRequirements& requirements() const { return requirements_; }

  /// Called after each compile (initial or replan) with the new plan's
  /// explanation — the evaluator forwards this to RunObserver /
  /// the EXPLAIN output.
  using CompileListener = std::function<void(const PlanExplanation&)>;
  void set_compile_listener(CompileListener listener) {
    listener_ = std::move(listener);
  }

  // --- planner counters (surfaced as ParkStats "planner" block) ---
  uint64_t plans_compiled() const { return plans_compiled_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t replans() const { return replans_; }
  /// Accumulators the evaluator feeds per evaluation unit: the compiled
  /// plan's estimated first-step candidates vs. the candidates actually
  /// claimed by execution.
  void AddEstimatedRows(double rows) { estimated_rows_ += rows; }
  void AddActualRows(uint64_t rows) { actual_rows_ += rows; }
  uint64_t estimated_rows() const;
  uint64_t actual_rows() const { return actual_rows_; }

 private:
  bool Drifted(const CompiledPlan& plan, const IInterpretation& interp) const;
  const CompiledPlan& Install(std::unique_ptr<CompiledPlan>& slot,
                              const Rule& rule, int seed_index,
                              const IInterpretation& interp, bool replan);

  const Program& program_;
  PlannerMode mode_;
  // plans_[rule][seed_index + 1]; null = not compiled yet.
  std::vector<std::vector<std::unique_ptr<CompiledPlan>>> plans_;
  IndexRequirements requirements_;
  CompileListener listener_;
  uint64_t plans_compiled_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t replans_ = 0;
  double estimated_rows_ = 0;
  uint64_t actual_rows_ = 0;
};

/// Flattens a compiled plan into its explanation record (what the
/// PlanCache hands to its compile listener). For ad-hoc EXPLAIN dumps
/// outside a cache — parkcli compiles and explains per rule.
PlanExplanation ExplainPlan(const CompiledPlan& plan, bool replan = false);

/// Renders a one-line summary ("rule 2 [seed 1] cost-based: lit3 probe c0
/// ~12 rows | lit1 filter") for traces and EXPLAIN.
std::string ExplainPlanLine(const PlanExplanation& explanation);

}  // namespace park

#endif  // PARK_ENGINE_MATCHER_H_
