// Body matching: enumerating the ground substitutions that make a rule
// body valid in an i-interpretation.
//
// The matcher plans a literal order per rule (filters as early as possible,
// then the binding literal with the most bound argument positions, so that
// the storage layer's column indexes are used), then enumerates matches by
// backtracking. Negated literals are only ever evaluated once fully bound —
// guaranteed possible by the safety conditions.

#ifndef PARK_ENGINE_MATCHER_H_
#define PARK_ENGINE_MATCHER_H_

#include <functional>
#include <vector>

#include "engine/interpretation.h"

namespace park {

/// Invokes `fn(binding)` once per distinct ground substitution θ (a Tuple
/// indexed by the rule's variable indexes) such that every body literal of
/// `rule` is valid in `interp`. A rule with an empty body yields exactly
/// one (empty) binding. `fn` must not mutate `interp`.
void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      const std::function<void(const Tuple& binding)>& fn);

/// Returns the body-literal evaluation order the matcher would use for
/// `rule` (indexes into rule.body()). Exposed for tests and for the
/// EXPLAIN output of the parkcli tool.
std::vector<int> PlanBodyOrder(const Rule& rule);

/// Semi-naive building block: enumerates the matches of `rule` in which
/// body literal `seed_index` is grounded by exactly `seed_atom`. The
/// seed literal's constants and repeated variables are checked against
/// the atom; its variables are pre-bound; the remaining literals are then
/// enumerated as usual. The caller guarantees `seed_atom` makes the seed
/// literal valid (it came from the engine's delta of new marks).
void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            const std::function<void(const Tuple&)>& fn);

}  // namespace park

#endif  // PARK_ENGINE_MATCHER_H_
