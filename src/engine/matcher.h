// Body matching: enumerating the ground substitutions that make a rule
// body valid in an i-interpretation.
//
// The matcher plans a literal order per rule (filters as early as possible,
// then the binding literal with the most bound argument positions, so that
// the storage layer's column indexes are used), then enumerates matches by
// backtracking. Negated literals are only ever evaluated once fully bound —
// guaranteed possible by the safety conditions.
//
// Matching never mutates the interpretation, with one historical exception:
// the storage layer's lazy column-index build. For parallel Γ evaluation,
// CollectIndexRequirements computes — from the same plans the matcher will
// execute — exactly which (predicate, column) indexes any match of the
// program can probe, so the evaluator can build them up front and freeze
// the relations for the duration of the parallel section.

#ifndef PARK_ENGINE_MATCHER_H_
#define PARK_ENGINE_MATCHER_H_

#include <cstddef>
#include <limits>
#include <unordered_map>
#include <vector>

#include "engine/interpretation.h"
#include "util/function_ref.h"

namespace park {

/// Invokes `fn(binding)` once per distinct ground substitution θ (a Tuple
/// indexed by the rule's variable indexes) such that every body literal of
/// `rule` is valid in `interp`. A rule with an empty body yields exactly
/// one (empty) binding. `fn` must not mutate `interp`.
void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      FunctionRef<void(const Tuple& binding)> fn);

// --- Candidate-range slicing (intra-rule parallelism) ---
//
// The first planned literal of a rule (the seed/scan literal) draws its
// candidate tuples from a deterministic stream: the relation scan or index
// probe order of the stores it reads (base then plus for positive
// literals). Assigning each candidate an ordinal in that stream lets the
// parallel evaluator split ONE rule's work into [begin, end) slices whose
// per-slice match lists, concatenated in slice order, are byte-identical
// to the unsliced enumeration — the stream order is stable as long as the
// relations are not mutated, which the frozen parallel section guarantees.

/// A sub-range of the first planned literal's candidate ordinals.
/// `kSliceEnd` as `end` means "through the last candidate" (the final
/// slice uses it so coverage never depends on the counted total).
struct CandidateSlice {
  static constexpr size_t kSliceEnd = std::numeric_limits<size_t>::max();
  size_t begin = 0;
  size_t end = kSliceEnd;

  bool IsFull() const { return begin == 0 && end == kSliceEnd; }
};

/// Number of candidate tuples the first planned literal of `rule` would
/// draw from its stream(s) in `interp` (before any dedup or binding
/// checks). Returns 0 when the rule is not sliceable — empty body, or a
/// first plan literal that is fully bound and therefore a constant-time
/// filter rather than a generator. Callers treat 0 as "run unsliced".
size_t CountFirstLiteralCandidates(const Rule& rule,
                                   const IInterpretation& interp);

/// Sliced variant of ForEachBodyMatch: enumerates only the matches rooted
/// at first-literal candidates with ordinals in `slice`. Concatenating the
/// outputs of a partition of [0, CountFirstLiteralCandidates(...)) in
/// slice order reproduces the unsliced output exactly. A full slice is
/// identical to the unsliced overload (including for unsliceable rules).
void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      CandidateSlice slice,
                      FunctionRef<void(const Tuple& binding)> fn);

/// Returns the body-literal evaluation order the matcher would use for
/// `rule` (indexes into rule.body()). Exposed for tests and for the
/// EXPLAIN output of the parkcli tool.
std::vector<int> PlanBodyOrder(const Rule& rule);

/// The order used when literal `seed_index` is pre-bound by a delta seed
/// (it is excluded from the returned order). Exposed for the index
/// prewarm pass and tests.
std::vector<int> PlanBodyOrderSeeded(const Rule& rule, int seed_index);

/// Semi-naive building block: enumerates the matches of `rule` in which
/// body literal `seed_index` is grounded by exactly `seed_atom`. The
/// seed literal's constants and repeated variables are checked against
/// the atom; its variables are pre-bound; the remaining literals are then
/// enumerated as usual. The caller guarantees `seed_atom` makes the seed
/// literal valid (it came from the engine's delta of new marks).
void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            FunctionRef<void(const Tuple&)> fn);

/// CountFirstLiteralCandidates for the seeded plan: candidates of the
/// first literal scheduled AFTER the seed pre-binding. Returns 0 when the
/// seeded rule is unsliceable (no remaining generator literal, or the
/// seed atom already fails the seed literal's constants / repeated
/// variables, in which case there are no matches at all).
size_t CountFirstLiteralCandidatesSeeded(const Rule& rule,
                                         const IInterpretation& interp,
                                         int seed_index,
                                         const GroundAtom& seed_atom);

/// Sliced variant of ForEachBodyMatchSeeded, with the same concatenation
/// guarantee as the sliced ForEachBodyMatch.
void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            CandidateSlice slice,
                            FunctionRef<void(const Tuple&)> fn);

/// The column indexes that evaluating a program's bodies can probe, per
/// predicate, split by which part of the i-interpretation the matcher
/// reads them from (kPositive literals probe base AND plus; +event plus;
/// -event minus; negated literals are never generators). Derived from the
/// same plans the matcher executes — both the unseeded plan and every
/// possible seeded plan — so it is exact, not an over-approximation of a
/// different planner.
struct IndexRequirements {
  using ColumnsByPredicate =
      std::unordered_map<PredicateId, std::vector<int>>;
  ColumnsByPredicate base;
  ColumnsByPredicate plus;
  ColumnsByPredicate minus;
};

IndexRequirements CollectIndexRequirements(const Program& program);

}  // namespace park

#endif  // PARK_ENGINE_MATCHER_H_
