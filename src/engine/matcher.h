// Body matching: enumerating the ground substitutions that make a rule
// body valid in an i-interpretation.
//
// The matcher plans a literal order per rule (filters as early as possible,
// then the binding literal with the most bound argument positions, so that
// the storage layer's column indexes are used), then enumerates matches by
// backtracking. Negated literals are only ever evaluated once fully bound —
// guaranteed possible by the safety conditions.
//
// Matching never mutates the interpretation, with one historical exception:
// the storage layer's lazy column-index build. For parallel Γ evaluation,
// CollectIndexRequirements computes — from the same plans the matcher will
// execute — exactly which (predicate, column) indexes any match of the
// program can probe, so the evaluator can build them up front and freeze
// the relations for the duration of the parallel section.

#ifndef PARK_ENGINE_MATCHER_H_
#define PARK_ENGINE_MATCHER_H_

#include <unordered_map>
#include <vector>

#include "engine/interpretation.h"
#include "util/function_ref.h"

namespace park {

/// Invokes `fn(binding)` once per distinct ground substitution θ (a Tuple
/// indexed by the rule's variable indexes) such that every body literal of
/// `rule` is valid in `interp`. A rule with an empty body yields exactly
/// one (empty) binding. `fn` must not mutate `interp`.
void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      FunctionRef<void(const Tuple& binding)> fn);

/// Returns the body-literal evaluation order the matcher would use for
/// `rule` (indexes into rule.body()). Exposed for tests and for the
/// EXPLAIN output of the parkcli tool.
std::vector<int> PlanBodyOrder(const Rule& rule);

/// The order used when literal `seed_index` is pre-bound by a delta seed
/// (it is excluded from the returned order). Exposed for the index
/// prewarm pass and tests.
std::vector<int> PlanBodyOrderSeeded(const Rule& rule, int seed_index);

/// Semi-naive building block: enumerates the matches of `rule` in which
/// body literal `seed_index` is grounded by exactly `seed_atom`. The
/// seed literal's constants and repeated variables are checked against
/// the atom; its variables are pre-bound; the remaining literals are then
/// enumerated as usual. The caller guarantees `seed_atom` makes the seed
/// literal valid (it came from the engine's delta of new marks).
void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            FunctionRef<void(const Tuple&)> fn);

/// The column indexes that evaluating a program's bodies can probe, per
/// predicate, split by which part of the i-interpretation the matcher
/// reads them from (kPositive literals probe base AND plus; +event plus;
/// -event minus; negated literals are never generators). Derived from the
/// same plans the matcher executes — both the unseeded plan and every
/// possible seeded plan — so it is exact, not an over-approximation of a
/// different planner.
struct IndexRequirements {
  using ColumnsByPredicate =
      std::unordered_map<PredicateId, std::vector<int>>;
  ColumnsByPredicate base;
  ColumnsByPredicate plus;
  ColumnsByPredicate minus;
};

IndexRequirements CollectIndexRequirements(const Program& program);

}  // namespace park

#endif  // PARK_ENGINE_MATCHER_H_
