#include "engine/consequence.h"

#include <algorithm>

namespace park {
namespace {

/// Fills consistency / newly_marked / clashing_atoms of `result` from its
/// derivation list against `interp`.
void AnalyzeDerivations(const IInterpretation& interp, GammaResult& result) {
  std::unordered_set<GroundAtom, GroundAtomHash> derived_plus;
  std::unordered_set<GroundAtom, GroundAtomHash> derived_minus;
  for (const Derivation& d : result.derivations) {
    if (d.action == ActionKind::kInsert) {
      derived_plus.insert(d.atom);
    } else {
      derived_minus.insert(d.atom);
    }
  }
  for (const GroundAtom& atom : derived_plus) {
    if (!interp.HasPlus(atom)) ++result.newly_marked;
    if (derived_minus.contains(atom) || interp.HasMinus(atom)) {
      result.clashing_atoms.push_back(atom);
    }
  }
  for (const GroundAtom& atom : derived_minus) {
    if (!interp.HasMinus(atom)) ++result.newly_marked;
    if (!derived_plus.contains(atom) && interp.HasPlus(atom)) {
      result.clashing_atoms.push_back(atom);
    }
  }
  std::sort(result.clashing_atoms.begin(), result.clashing_atoms.end());
  result.clashing_atoms.erase(
      std::unique(result.clashing_atoms.begin(),
                  result.clashing_atoms.end()),
      result.clashing_atoms.end());
  result.consistent = result.clashing_atoms.empty();
}

void MatchRule(const Rule& rule, const BlockedSet& blocked,
               const IInterpretation& interp, GammaResult& result) {
  ForEachBodyMatch(rule, interp, [&](const Tuple& binding) {
    RuleGrounding grounding(rule.index(), binding);
    if (blocked.contains(grounding)) return;
    GroundAtom head = rule.head().atom.Ground(binding.values());
    result.derivations.push_back(Derivation{
        std::move(grounding), rule.head().action, std::move(head)});
  });
  ++result.rules_evaluated;
}

}  // namespace

GammaResult ComputeGamma(const Program& program, const BlockedSet& blocked,
                         const IInterpretation& interp) {
  GammaResult result;
  for (const Rule& rule : program.rules()) {
    MatchRule(rule, blocked, interp, result);
  }
  AnalyzeDerivations(interp, result);
  return result;
}

size_t ApplyDerivations(const std::vector<Derivation>& derivations,
                        IInterpretation& interp) {
  size_t added = 0;
  for (const Derivation& d : derivations) {
    if (interp.AddMarked(d.action, d.atom, d.grounding)) ++added;
  }
  return added;
}

bool RuleIsAffected(const Rule& rule, const DeltaState& delta) {
  if (delta.initial) return true;
  for (const BodyLiteral& lit : rule.body()) {
    switch (lit.kind) {
      case LiteralKind::kPositive:
      case LiteralKind::kEventInsert:
        if (delta.plus_changed.contains(lit.atom.predicate)) return true;
        break;
      case LiteralKind::kNegated:
      case LiteralKind::kEventDelete:
        if (delta.minus_changed.contains(lit.atom.predicate)) return true;
        break;
    }
  }
  return false;
}

GammaResult ComputeGammaFiltered(const Program& program,
                                 const BlockedSet& blocked,
                                 const IInterpretation& interp,
                                 const DeltaState& delta) {
  GammaResult result;
  for (const Rule& rule : program.rules()) {
    if (!RuleIsAffected(rule, delta)) continue;
    MatchRule(rule, blocked, interp, result);
  }
  AnalyzeDerivations(interp, result);
  return result;
}

GammaResult ComputeGammaSemiNaive(const Program& program,
                                  const BlockedSet& blocked,
                                  const IInterpretation& interp,
                                  const DeltaAtoms& delta) {
  if (delta.initial) return ComputeGamma(program, blocked, interp);

  GammaResult result;
  std::unordered_set<RuleGrounding, RuleGroundingHash> seen;
  for (const Rule& rule : program.rules()) {
    bool evaluated = false;
    auto complete_seed = [&](int literal_index, const GroundAtom& atom) {
      ForEachBodyMatchSeeded(
          rule, interp, literal_index, atom, [&](const Tuple& binding) {
            RuleGrounding grounding(rule.index(), binding);
            if (blocked.contains(grounding)) return;
            if (!seen.insert(grounding).second) return;  // multi-seeded
            GroundAtom head = rule.head().atom.Ground(binding.values());
            result.derivations.push_back(Derivation{
                std::move(grounding), rule.head().action, std::move(head)});
          });
    };
    for (size_t i = 0; i < rule.body().size(); ++i) {
      const BodyLiteral& lit = rule.body()[i];
      const std::vector<GroundAtom>* source = nullptr;
      switch (lit.kind) {
        case LiteralKind::kPositive:
        case LiteralKind::kEventInsert:
          source = &delta.plus;
          break;
        case LiteralKind::kNegated:
        case LiteralKind::kEventDelete:
          source = &delta.minus;
          break;
      }
      for (const GroundAtom& atom : *source) {
        if (atom.predicate() != lit.atom.predicate) continue;
        complete_seed(static_cast<int>(i), atom);
        evaluated = true;
      }
    }
    if (evaluated) ++result.rules_evaluated;
  }
  AnalyzeDerivations(interp, result);
  return result;
}

size_t ApplyDerivationsTrackedAtoms(
    const std::vector<Derivation>& derivations, IInterpretation& interp,
    DeltaAtoms& next_delta) {
  next_delta.initial = false;
  next_delta.plus.clear();
  next_delta.minus.clear();
  size_t added = 0;
  for (const Derivation& d : derivations) {
    if (interp.AddMarked(d.action, d.atom, d.grounding)) {
      ++added;
      if (d.action == ActionKind::kInsert) {
        next_delta.plus.push_back(d.atom);
      } else {
        next_delta.minus.push_back(d.atom);
      }
    }
  }
  return added;
}

size_t ApplyDerivationsTracked(const std::vector<Derivation>& derivations,
                               IInterpretation& interp,
                               DeltaState& next_delta) {
  next_delta.initial = false;
  next_delta.plus_changed.clear();
  next_delta.minus_changed.clear();
  size_t added = 0;
  for (const Derivation& d : derivations) {
    if (interp.AddMarked(d.action, d.atom, d.grounding)) {
      ++added;
      if (d.action == ActionKind::kInsert) {
        next_delta.plus_changed.insert(d.atom.predicate());
      } else {
        next_delta.minus_changed.insert(d.atom.predicate());
      }
    }
  }
  return added;
}

}  // namespace park
