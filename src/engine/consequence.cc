#include "engine/consequence.h"

#include <algorithm>
#include <unordered_map>

#include "engine/rule_graph.h"
#include "util/cancellation.h"
#include "util/metrics.h"

namespace park {
namespace {

/// Fills consistency / newly_marked / clashing_atoms of `result` from its
/// derivation list against `interp`.
void AnalyzeDerivations(const IInterpretation& interp, GammaResult& result) {
  std::unordered_set<GroundAtom, GroundAtomHash> derived_plus;
  std::unordered_set<GroundAtom, GroundAtomHash> derived_minus;
  for (const Derivation& d : result.derivations) {
    if (d.action == ActionKind::kInsert) {
      derived_plus.insert(d.atom);
    } else {
      derived_minus.insert(d.atom);
    }
  }
  for (const GroundAtom& atom : derived_plus) {
    if (!interp.HasPlus(atom)) ++result.newly_marked;
    if (derived_minus.contains(atom) || interp.HasMinus(atom)) {
      result.clashing_atoms.push_back(atom);
    }
  }
  for (const GroundAtom& atom : derived_minus) {
    if (!interp.HasMinus(atom)) ++result.newly_marked;
    if (!derived_plus.contains(atom) && interp.HasPlus(atom)) {
      result.clashing_atoms.push_back(atom);
    }
  }
  std::sort(result.clashing_atoms.begin(), result.clashing_atoms.end());
  result.clashing_atoms.erase(
      std::unique(result.clashing_atoms.begin(),
                  result.clashing_atoms.end()),
      result.clashing_atoms.end());
  result.consistent = result.clashing_atoms.empty();
}

/// Appends every firable, non-blocked grounding of `rule` (restricted to
/// first-literal candidates in `slice`; full slice = whole rule) to `out`.
/// With `plan` the cached compiled plan executes (and the number of
/// claimed step-0 candidates is returned — the planner's actual-rows
/// counter); without, the legacy per-call heuristic path runs.
size_t MatchRule(const Rule& rule, const BlockedSet& blocked,
                 const IInterpretation& interp, const CompiledPlan* plan,
                 std::vector<Derivation>& out,
                 CandidateSlice slice = CandidateSlice{},
                 CancellationToken* cancel = nullptr,
                 ExecMode exec = ExecMode::kTuple,
                 ExecStats* exec_stats = nullptr) {
  // Governance: each derivation is charged to the token's work budget and
  // the output buffer's capacity to its memory budget (UpdateScope is a
  // no-op branch while the capacity is unchanged). A fired token stops
  // emission — the partial buffer is discarded by the evaluator.
  CancellationToken::MemoryScope mem_scope;
  auto emit = [&](const Tuple& binding) {
    if (cancel != nullptr && cancel->fired()) return;
    RuleGrounding grounding(rule.index(), binding);
    if (blocked.contains(grounding)) return;
    GroundAtom head = rule.head().atom.Ground(binding.values());
    out.push_back(Derivation{
        std::move(grounding), rule.head().action, std::move(head)});
    if (cancel != nullptr) {
      cancel->ChargeWork(1);
      cancel->UpdateScope(mem_scope, out.capacity() * sizeof(Derivation));
    }
  };
  size_t claimed = 0;
  if (plan != nullptr) {
    claimed = ExecutePlan(*plan, rule, interp, slice, emit, cancel, exec,
                          exec_stats);
  } else {
    // The legacy per-call heuristic path has no compiled plan to execute
    // in batch mode; it always runs the tuple executor.
    ForEachBodyMatch(rule, interp, slice, emit, cancel);
  }
  if (cancel != nullptr) cancel->CloseScope(mem_scope);
  return claimed;
}

// --- Intra-rule slicing policy ---
//
// A unit (one rule, or one (rule, Δ-seed) pair) is split into candidate
// slices only when splitting can pay for the counting pass: the section
// must not already have ample units to fill the pool, and the unit's
// first-literal candidate stream must be big enough that every slice
// carries at least min_slice_size candidates. The resulting partition
// NEVER affects the merged derivation list (slices of a unit concatenate
// back to the unit's sequential enumeration), so any policy change here
// is a pure performance knob.

/// Slice-task fan-out cap per unit, in multiples of the pool size; also
/// the unit-count threshold above which sections skip slicing entirely.
constexpr size_t kSlicesPerThread = 4;

/// True if a section with `units` tasks should consider splitting them.
bool ShouldConsiderSlicing(size_t units, int threads) {
  return units < kSlicesPerThread * static_cast<size_t>(threads);
}

/// Number of slices for a unit with `candidates` stream tuples.
size_t NumSlicesFor(size_t candidates, size_t min_slice_size, int threads) {
  if (min_slice_size == 0) min_slice_size = 1;
  size_t by_size = candidates / min_slice_size;
  size_t cap = kSlicesPerThread * static_cast<size_t>(threads);
  size_t n = by_size < cap ? by_size : cap;
  return n < 2 ? 1 : n;
}

/// Appends the `num_slices`-way partition of [0, candidates) for `unit`.
/// The last slice is open-ended (kSliceEnd) so coverage never depends on
/// the counted total. Tasks are [begin, end) unit ranges so the same task
/// shape also carries the multi-unit chunks of AppendChunkTasks; a sliced
/// task always covers exactly one unit.
template <typename Task>
void AppendSliceTasks(size_t unit, size_t candidates, size_t num_slices,
                      std::vector<Task>& out) {
  if (num_slices <= 1) {
    out.push_back(Task{unit, unit + 1, CandidateSlice{}});
    return;
  }
  for (size_t s = 0; s < num_slices; ++s) {
    CandidateSlice slice;
    slice.begin = candidates * s / num_slices;
    slice.end = s + 1 == num_slices ? CandidateSlice::kSliceEnd
                                    : candidates * (s + 1) / num_slices;
    out.push_back(Task{unit, unit + 1, slice});
  }
}

/// Partitions [0, units) into at most kSlicesPerThread * threads
/// contiguous chunks balanced by `weight(unit)`, one full-slice task per
/// chunk. Used when a section has many more units than the pool can keep
/// busy: one pool task per (often tiny) unit pays per-task dispatch and
/// buffer overhead that can swamp the matching itself — the regression
/// profile of fine-grained ECA workloads. Chunks preserve unit order, so
/// the merged buffers still concatenate to the sequential enumeration.
template <typename Task, typename WeightFn>
void AppendChunkTasks(size_t units, int threads, WeightFn weight,
                      std::vector<Task>& out) {
  const size_t num_chunks =
      kSlicesPerThread * static_cast<size_t>(threads);
  double total_weight = 0;
  for (size_t i = 0; i < units; ++i) total_weight += weight(i);
  size_t begin = 0;
  size_t chunk = 0;
  double acc = 0;
  for (size_t i = 0; i < units; ++i) {
    acc += weight(i);
    bool cut = chunk + 1 < num_chunks &&
               acc >= total_weight * static_cast<double>(chunk + 1) /
                          static_cast<double>(num_chunks);
    if (cut || i + 1 == units) {
      out.push_back(Task{begin, i + 1, CandidateSlice{}});
      begin = i + 1;
      ++chunk;
    }
  }
}

/// Builds the index for every (predicate, column) of `columns` whose
/// relation exists in `db` (later-created relations can't be probed in
/// this section: matching only reads what exists now).
void PrewarmDatabase(const Database& db,
                     const IndexRequirements::ColumnsByPredicate& columns) {
  for (const auto& [pred, cols] : columns) {
    if (const Relation* rel = db.GetRelation(pred)) {
      for (int c : cols) rel->BuildIndex(c);
    }
  }
}

/// RAII guard for a parallel read-only matching section: builds every
/// index the program's plans can probe, then freezes I's three databases
/// so a missed prewarm fails loudly instead of racing on a lazy build.
/// With `prewarm_indexes` false (batch execution through compiled plans —
/// which probes columnar segments, never hash indexes) the index build is
/// skipped; the coordinator has already compacted the columnar views at
/// the Γ-section boundary, so the freeze still guarantees workers find
/// every relation compact.
class FrozenInterpretation {
 public:
  FrozenInterpretation(const IInterpretation& interp,
                       const IndexRequirements& requirements,
                       bool prewarm_indexes = true)
      : interp_(interp) {
    if (prewarm_indexes) {
      PrewarmDatabase(interp_.base(), requirements.base);
      PrewarmDatabase(interp_.plus(), requirements.plus);
      PrewarmDatabase(interp_.minus(), requirements.minus);
    }
    interp_.base().FreezeIndexes();
    interp_.plus().FreezeIndexes();
    interp_.minus().FreezeIndexes();
  }

  ~FrozenInterpretation() {
    interp_.base().ThawIndexes();
    interp_.plus().ThawIndexes();
    interp_.minus().ThawIndexes();
  }

  FrozenInterpretation(const FrozenInterpretation&) = delete;
  FrozenInterpretation& operator=(const FrozenInterpretation&) = delete;

 private:
  const IInterpretation& interp_;
};

/// Fans rule matching out over the pool as a flat (rule, slice) task
/// list — skewed rules are split into candidate slices — then
/// concatenates the per-task buffers in task order: rules in program
/// order, slices of one rule in ordinal order. That is exactly the order
/// the sequential loop produces.
void MatchRulesParallel(const std::vector<const Rule*>& rules,
                        const BlockedSet& blocked,
                        const IInterpretation& interp,
                        ParallelGamma& parallel, PlanCache* plans,
                        std::vector<Derivation>& out,
                        CancellationToken* cancel = nullptr,
                        ExecMode exec = ExecMode::kTuple,
                        ExecStats* exec_stats = nullptr) {
  struct RuleSliceTask {
    size_t begin;  // [begin, end) of `rules`; sliced tasks cover one unit
    size_t end;
    CandidateSlice slice;
  };
  // Plan fetch happens on the coordinator BEFORE the freeze: compiling can
  // grow the cache's index requirements, which the prewarm below must
  // already include.
  std::vector<const CompiledPlan*> rule_plans(rules.size(), nullptr);
  if (plans != nullptr) {
    for (size_t i = 0; i < rules.size(); ++i) {
      rule_plans[i] = &plans->Get(*rules[i], /*seed_index=*/-1, interp);
      plans->AddEstimatedRows(rule_plans[i]->estimated_candidates);
    }
  }
  std::vector<RuleSliceTask> tasks;
  tasks.reserve(rules.size());
  std::vector<std::vector<Derivation>> buffers;
  std::vector<size_t> claimed;
  {
    FrozenInterpretation frozen(
        interp,
        plans != nullptr ? plans->requirements() : parallel.requirements(),
        /*prewarm_indexes=*/exec == ExecMode::kTuple || plans == nullptr);
    const int threads = parallel.num_threads();
    const size_t min_slice = parallel.min_slice_size();
    if (ShouldConsiderSlicing(rules.size(), threads)) {
      size_t sliced_units = 0;
      size_t slice_tasks = 0;
      for (size_t i = 0; i < rules.size(); ++i) {
        // Estimate gate: when the planner already predicts the unit's
        // stream is well below one slice's worth, skip the counting probe
        // — for many tiny units the counting pass itself was the
        // dominant parallel overhead.
        size_t candidates = 0;
        if (plans != nullptr) {
          if (rule_plans[i]->estimated_candidates >=
              2.0 * static_cast<double>(min_slice)) {
            candidates = CountPlanCandidates(*rule_plans[i], interp, exec);
          }
        } else {
          candidates = CountFirstLiteralCandidates(*rules[i], interp);
        }
        size_t num_slices = NumSlicesFor(candidates, min_slice, threads);
        if (num_slices > 1) {
          ++sliced_units;
          slice_tasks += num_slices;
        }
        AppendSliceTasks(i, candidates, num_slices, tasks);
      }
      parallel.RecordSlicing(sliced_units, slice_tasks);
    } else {
      AppendChunkTasks(
          rules.size(), threads,
          [&](size_t i) {
            return plans != nullptr
                       ? 1.0 + rule_plans[i]->estimated_candidates
                       : 1.0;
          },
          tasks);
    }
    buffers.resize(tasks.size());
    claimed.assign(tasks.size(), 0);
    const int64_t match_start =
        parallel.timing_enabled() ? MonotonicNanos() : 0;
    parallel.pool().ParallelFor(tasks.size(), [&](size_t i) {
      // A queued task whose token already fired starts no work at all —
      // the sticky flag drains the remaining section promptly.
      if (cancel != nullptr && cancel->fired()) return;
      size_t task_claimed = 0;
      for (size_t u = tasks[i].begin; u < tasks[i].end; ++u) {
        task_claimed +=
            MatchRule(*rules[u], blocked, interp, rule_plans[u], buffers[i],
                      tasks[i].slice, cancel, exec, exec_stats);
      }
      claimed[i] = task_claimed;
    });
    if (parallel.timing_enabled()) {
      parallel.RecordMatchNs(
          static_cast<uint64_t>(MonotonicNanos() - match_start));
    }
  }
  if (plans != nullptr) {
    // Slices of a unit claim disjoint ordinal ranges, so this sum is the
    // full per-unit stream count — independent of the slicing partition.
    size_t total_claimed = 0;
    for (size_t c : claimed) total_claimed += c;
    plans->AddActualRows(total_claimed);
  }
  const int64_t merge_start =
      parallel.timing_enabled() ? MonotonicNanos() : 0;
  size_t total = 0;
  for (const auto& buffer : buffers) total += buffer.size();
  out.reserve(out.size() + total);
  for (auto& buffer : buffers) {
    for (Derivation& d : buffer) out.push_back(std::move(d));
  }
  if (parallel.timing_enabled()) {
    parallel.RecordMergeNs(
        static_cast<uint64_t>(MonotonicNanos() - merge_start));
  }
}

}  // namespace

ParallelGamma::ParallelGamma(const Program& program, int num_threads,
                             size_t min_slice_size)
    : requirements_(CollectIndexRequirements(program)),
      min_slice_size_(min_slice_size),
      pool_(num_threads) {}

/// Batch-mode Γ-section prewarm: compact every relation's columnar view
/// on the coordinator, in BOTH the sequential and parallel paths, so (a)
/// frozen parallel workers always find the views compact and (b) the
/// storage compaction counters are a property of the computation, never
/// of the thread count. No-op in tuple mode and for compact relations.
void CompactForBatch(const IInterpretation& interp, ExecMode exec) {
  if (exec != ExecMode::kBatch) return;
  interp.base().CompactColumnar();
  interp.plus().CompactColumnar();
  interp.minus().CompactColumnar();
}

GammaResult ComputeGamma(const Program& program, const BlockedSet& blocked,
                         const IInterpretation& interp,
                         ParallelGamma* parallel, PlanCache* plans,
                         CancellationToken* cancel, ExecMode exec,
                         ExecStats* exec_stats) {
  GammaResult result;
  CompactForBatch(interp, exec);
  // Even a one-rule program fans out: intra-rule slicing can split it.
  if (parallel != nullptr && program.size() > 0) {
    std::vector<const Rule*> rules;
    rules.reserve(program.size());
    for (const Rule& rule : program.rules()) rules.push_back(&rule);
    MatchRulesParallel(rules, blocked, interp, *parallel, plans,
                       result.derivations, cancel, exec, exec_stats);
    result.rules_evaluated = rules.size();
  } else {
    for (const Rule& rule : program.rules()) {
      if (cancel != nullptr && cancel->fired()) break;
      const CompiledPlan* plan = nullptr;
      if (plans != nullptr) {
        plan = &plans->Get(rule, /*seed_index=*/-1, interp);
        plans->AddEstimatedRows(plan->estimated_candidates);
      }
      size_t claimed = MatchRule(rule, blocked, interp, plan,
                                 result.derivations, CandidateSlice{},
                                 cancel, exec, exec_stats);
      if (plans != nullptr) plans->AddActualRows(claimed);
      ++result.rules_evaluated;
    }
  }
  result.rules_considered = program.size();
  AnalyzeDerivations(interp, result);
  return result;
}

size_t ApplyDerivations(const std::vector<Derivation>& derivations,
                        IInterpretation& interp) {
  size_t added = 0;
  for (const Derivation& d : derivations) {
    if (interp.AddMarked(d.action, d.atom, d.grounding)) ++added;
  }
  return added;
}

bool RuleIsAffected(const Rule& rule, const DeltaState& delta) {
  if (delta.initial) return true;
  for (const BodyLiteral& lit : rule.body()) {
    switch (lit.kind) {
      case LiteralKind::kPositive:
      case LiteralKind::kEventInsert:
        if (delta.plus_changed.contains(lit.atom.predicate)) return true;
        break;
      case LiteralKind::kNegated:
      case LiteralKind::kEventDelete:
        if (delta.minus_changed.contains(lit.atom.predicate)) return true;
        break;
    }
  }
  return false;
}

GammaResult ComputeGammaFiltered(const Program& program,
                                 const BlockedSet& blocked,
                                 const IInterpretation& interp,
                                 const DeltaState& delta,
                                 ParallelGamma* parallel,
                                 PlanCache* plans,
                                 CancellationToken* cancel, ExecMode exec,
                                 ExecStats* exec_stats,
                                 const RuleDependencyGraph* graph) {
  GammaResult result;
  CompactForBatch(interp, exec);
  std::vector<const Rule*> affected;
  std::vector<std::vector<int>> stages;
  if (graph != nullptr) {
    // Scheduled path: the watcher index yields {r : RuleIsAffected(r,
    // delta)} — same set, same program order — in O(|changed predicates|)
    // instead of the all-rules scan below.
    GammaSchedule schedule = graph->Schedule(delta);
    result.rules_considered = schedule.rules.size();
    result.pipeline_stages = schedule.stages.size();
    if (schedule.rules.empty()) {
      // Quick exit: no watched predicate changed, so Γ restricted to
      // affected rules is empty — an O(1) no-op step that never touches
      // the pool, the plan cache, or the derivation analysis
      // (stepper_test pins this with the scheduler counters).
      result.rules_skipped = program.size();
      result.consistent = true;
      return result;
    }
    affected.reserve(schedule.rules.size());
    for (int r : schedule.rules) affected.push_back(&program.rule(r));
    stages = std::move(schedule.stages);
  } else {
    affected.reserve(program.size());
    for (const Rule& rule : program.rules()) {
      if (RuleIsAffected(rule, delta)) affected.push_back(&rule);
    }
    result.rules_considered = program.size();
  }
  result.rules_skipped = program.size() - affected.size();
  if (parallel != nullptr && stages.size() > 1) {
    // Pipelined dispatch: one pool section per stratum group, each with
    // its own plan fetch + index prewarm (inside MatchRulesParallel), so
    // a deep program warms the cache stage by stage instead of
    // front-loading every rule's plan. Every rule lives in exactly one
    // stage and every stage keeps program order internally, so walking
    // the affected list while draining each stage's buffer by rule index
    // reassembles the exact unstaged derivation order.
    std::vector<std::vector<Derivation>> stage_out(stages.size());
    std::unordered_map<int, size_t> stage_of;
    for (size_t s = 0; s < stages.size(); ++s) {
      for (int r : stages[s]) stage_of.emplace(r, s);
    }
    for (size_t s = 0; s < stages.size(); ++s) {
      if (cancel != nullptr && cancel->fired()) break;
      std::vector<const Rule*> stage_rules;
      stage_rules.reserve(stages[s].size());
      for (int r : stages[s]) stage_rules.push_back(&program.rule(r));
      MatchRulesParallel(stage_rules, blocked, interp, *parallel, plans,
                         stage_out[s], cancel, exec, exec_stats);
    }
    std::vector<size_t> cursor(stages.size(), 0);
    size_t total = 0;
    for (const auto& buffer : stage_out) total += buffer.size();
    result.derivations.reserve(total);
    for (const Rule* rule : affected) {
      const size_t s = stage_of.at(rule->index());
      std::vector<Derivation>& buffer = stage_out[s];
      size_t& c = cursor[s];
      while (c < buffer.size() &&
             buffer[c].grounding.rule_index() == rule->index()) {
        result.derivations.push_back(std::move(buffer[c++]));
      }
    }
  } else if (parallel != nullptr && !affected.empty()) {
    MatchRulesParallel(affected, blocked, interp, *parallel, plans,
                       result.derivations, cancel, exec, exec_stats);
  } else {
    for (const Rule* rule : affected) {
      if (cancel != nullptr && cancel->fired()) break;
      const CompiledPlan* plan = nullptr;
      if (plans != nullptr) {
        plan = &plans->Get(*rule, /*seed_index=*/-1, interp);
        plans->AddEstimatedRows(plan->estimated_candidates);
      }
      size_t claimed = MatchRule(*rule, blocked, interp, plan,
                                 result.derivations, CandidateSlice{},
                                 cancel, exec, exec_stats);
      if (plans != nullptr) plans->AddActualRows(claimed);
    }
  }
  result.rules_evaluated = affected.size();
  AnalyzeDerivations(interp, result);
  return result;
}

GammaResult ComputeGammaSemiNaive(const Program& program,
                                  const BlockedSet& blocked,
                                  const IInterpretation& interp,
                                  const DeltaAtoms& delta,
                                  ParallelGamma* parallel,
                                  PlanCache* plans,
                                  CancellationToken* cancel, ExecMode exec,
                                  ExecStats* exec_stats,
                                  const RuleDependencyGraph* graph) {
  if (delta.initial) {
    return ComputeGamma(program, blocked, interp, parallel, plans, cancel,
                        exec, exec_stats);
  }
  GammaResult result;
  CompactForBatch(interp, exec);

  // With a dependency graph, collapse the delta atoms to their changed
  // predicates and let the watcher index name the rules that can hold a
  // seed — task building then iterates those rules only, instead of
  // crossing every rule's body with the delta. The rules come back in
  // program order and the inner loops below are unchanged, so the task
  // list (hence the derivation list) is bit-identical to the full scan's.
  GammaSchedule schedule;
  if (graph != nullptr) {
    DeltaState changed;
    changed.initial = false;
    for (const GroundAtom& atom : delta.plus) {
      changed.plus_changed.insert(atom.predicate());
    }
    for (const GroundAtom& atom : delta.minus) {
      changed.minus_changed.insert(atom.predicate());
    }
    schedule = graph->Schedule(changed);
    result.rules_considered = schedule.rules.size();
    result.pipeline_stages = schedule.stages.size();
    if (schedule.rules.empty()) {
      // Quick exit — see ComputeGammaFiltered.
      result.rules_skipped = program.size();
      result.consistent = true;
      return result;
    }
  } else {
    result.rules_considered = program.size();
  }

  // Enumerate the (rule, seed literal, seed atom) completions to run.
  // Listing them up front (in the same nested order the sequential loop
  // uses) is what lets the parallel path merge per-task buffers back into
  // the exact sequential derivation order.
  struct SeedTask {
    const Rule* rule;
    int literal;
    const GroundAtom* atom;
  };
  std::vector<SeedTask> tasks;
  size_t rules_evaluated = 0;
  auto seed_rule = [&](const Rule& rule) {
    bool evaluated = false;
    for (size_t i = 0; i < rule.body().size(); ++i) {
      const BodyLiteral& lit = rule.body()[i];
      const std::vector<GroundAtom>* source = nullptr;
      switch (lit.kind) {
        case LiteralKind::kPositive:
        case LiteralKind::kEventInsert:
          source = &delta.plus;
          break;
        case LiteralKind::kNegated:
        case LiteralKind::kEventDelete:
          source = &delta.minus;
          break;
      }
      for (const GroundAtom& atom : *source) {
        if (atom.predicate() != lit.atom.predicate) continue;
        tasks.push_back(SeedTask{&rule, static_cast<int>(i), &atom});
        evaluated = true;
      }
    }
    if (evaluated) ++rules_evaluated;
  };
  if (graph != nullptr) {
    for (int r : schedule.rules) seed_rule(program.rule(r));
  } else {
    for (const Rule& rule : program.rules()) seed_rule(rule);
  }

  result.rules_evaluated = rules_evaluated;
  result.rules_skipped = program.size() - rules_evaluated;

  // With a plan cache, fetch every task's Δ-seeded plan up front on the
  // coordinator (tasks sharing a (rule, literal) hit the cache) so the
  // parallel freeze below sees the final index requirements. The counter
  // stream (hits / replans / estimates) is identical in the sequential
  // path because the fetch loop order is task order in both.
  std::vector<const CompiledPlan*> task_plans(tasks.size(), nullptr);
  if (plans != nullptr) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      task_plans[i] = &plans->Get(*tasks[i].rule, tasks[i].literal, interp);
      plans->AddEstimatedRows(task_plans[i]->estimated_candidates);
    }
  }

  auto run_task = [&](const SeedTask& task, const CompiledPlan* plan,
                      std::vector<Derivation>& out,
                      CandidateSlice slice = CandidateSlice{}) -> size_t {
    // Same governance as MatchRule: derivations feed the work budget, the
    // buffer's capacity the memory budget, and a fired token stops
    // emission (the evaluator discards the partial Γ).
    CancellationToken::MemoryScope mem_scope;
    auto emit = [&](const Tuple& binding) {
      if (cancel != nullptr && cancel->fired()) return;
      RuleGrounding grounding(task.rule->index(), binding);
      if (blocked.contains(grounding)) return;
      GroundAtom head = task.rule->head().atom.Ground(binding.values());
      out.push_back(Derivation{std::move(grounding),
                               task.rule->head().action, std::move(head)});
      if (cancel != nullptr) {
        cancel->ChargeWork(1);
        cancel->UpdateScope(mem_scope, out.capacity() * sizeof(Derivation));
      }
    };
    size_t claimed = 0;
    if (plan != nullptr) {
      claimed = ExecutePlanSeeded(*plan, *task.rule, interp, *task.atom,
                                  slice, emit, cancel, exec, exec_stats);
    } else {
      ForEachBodyMatchSeeded(*task.rule, interp, task.literal, *task.atom,
                             slice, emit, cancel);
    }
    if (cancel != nullptr) cancel->CloseScope(mem_scope);
    return claimed;
  };

  // A grounding reachable from several seeds is derived once. Sequential
  // and parallel paths both keep the FIRST occurrence in task order, so
  // the surviving list is identical.
  std::unordered_set<RuleGrounding, RuleGroundingHash> seen;
  auto merge_deduped = [&](std::vector<Derivation>& buffer) {
    for (Derivation& d : buffer) {
      if (!seen.insert(d.grounding).second) continue;  // multi-seeded
      result.derivations.push_back(std::move(d));
    }
  };

  if (parallel != nullptr && !tasks.empty()) {
    // Second task level: a seed whose remaining candidate stream is large
    // splits into (rule, Δ-seed, slice) tasks. The flattened order is
    // (seed in nested-loop order, slice in ordinal order), so replaying
    // the cross-seed grounding dedup over the buffers in task order keeps
    // first-occurrence-in-sequential-order exactly.
    struct SeedSliceTask {
      size_t begin;  // [begin, end) of `tasks`; sliced tasks cover one
      size_t end;
      CandidateSlice slice;
    };
    std::vector<SeedSliceTask> slice_tasks;
    slice_tasks.reserve(tasks.size());
    std::vector<std::vector<Derivation>> buffers;
    std::vector<size_t> claimed;
    {
      FrozenInterpretation frozen(
          interp,
          plans != nullptr ? plans->requirements()
                           : parallel->requirements(),
          /*prewarm_indexes=*/exec == ExecMode::kTuple || plans == nullptr);
      const int threads = parallel->num_threads();
      const size_t min_slice = parallel->min_slice_size();
      if (ShouldConsiderSlicing(tasks.size(), threads)) {
        size_t sliced_units = 0;
        size_t new_slice_tasks = 0;
        for (size_t i = 0; i < tasks.size(); ++i) {
          // Same estimate gate as MatchRulesParallel: don't pay a
          // counting probe for a seed the planner already predicts to be
          // far below one slice's worth.
          size_t candidates = 0;
          if (plans != nullptr) {
            if (task_plans[i]->estimated_candidates >=
                2.0 * static_cast<double>(min_slice)) {
              candidates =
                  CountPlanCandidatesSeeded(*task_plans[i], *tasks[i].rule,
                                            interp, *tasks[i].atom, exec);
            }
          } else {
            candidates = CountFirstLiteralCandidatesSeeded(
                *tasks[i].rule, interp, tasks[i].literal, *tasks[i].atom);
          }
          size_t num_slices = NumSlicesFor(candidates, min_slice, threads);
          if (num_slices > 1) {
            ++sliced_units;
            new_slice_tasks += num_slices;
          }
          AppendSliceTasks(i, candidates, num_slices, slice_tasks);
        }
        parallel->RecordSlicing(sliced_units, new_slice_tasks);
      } else {
        AppendChunkTasks(
            tasks.size(), threads,
            [&](size_t i) {
              return plans != nullptr
                         ? 1.0 + task_plans[i]->estimated_candidates
                         : 1.0;
            },
            slice_tasks);
      }
      buffers.resize(slice_tasks.size());
      claimed.assign(slice_tasks.size(), 0);
      const int64_t match_start =
          parallel->timing_enabled() ? MonotonicNanos() : 0;
      parallel->pool().ParallelFor(slice_tasks.size(), [&](size_t i) {
        if (cancel != nullptr && cancel->fired()) return;
        size_t task_claimed = 0;
        for (size_t u = slice_tasks[i].begin; u < slice_tasks[i].end; ++u) {
          task_claimed += run_task(tasks[u], task_plans[u], buffers[i],
                                   slice_tasks[i].slice);
        }
        claimed[i] = task_claimed;
      });
      if (parallel->timing_enabled()) {
        parallel->RecordMatchNs(
            static_cast<uint64_t>(MonotonicNanos() - match_start));
      }
    }
    if (plans != nullptr) {
      size_t total_claimed = 0;
      for (size_t c : claimed) total_claimed += c;
      plans->AddActualRows(total_claimed);
    }
    const int64_t merge_start =
        parallel->timing_enabled() ? MonotonicNanos() : 0;
    for (auto& buffer : buffers) merge_deduped(buffer);
    if (parallel->timing_enabled()) {
      parallel->RecordMergeNs(
          static_cast<uint64_t>(MonotonicNanos() - merge_start));
    }
  } else {
    std::vector<Derivation> buffer;
    size_t total_claimed = 0;
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (cancel != nullptr && cancel->fired()) break;
      buffer.clear();
      total_claimed += run_task(tasks[i], task_plans[i], buffer);
      merge_deduped(buffer);
    }
    if (plans != nullptr) plans->AddActualRows(total_claimed);
  }
  AnalyzeDerivations(interp, result);
  return result;
}

size_t ApplyDerivationsTrackedAtoms(
    const std::vector<Derivation>& derivations, IInterpretation& interp,
    DeltaAtoms& next_delta) {
  next_delta.initial = false;
  next_delta.plus.clear();
  next_delta.minus.clear();
  size_t added = 0;
  for (const Derivation& d : derivations) {
    if (interp.AddMarked(d.action, d.atom, d.grounding)) {
      ++added;
      if (d.action == ActionKind::kInsert) {
        next_delta.plus.push_back(d.atom);
      } else {
        next_delta.minus.push_back(d.atom);
      }
    }
  }
  return added;
}

size_t ApplyDerivationsTracked(const std::vector<Derivation>& derivations,
                               IInterpretation& interp,
                               DeltaState& next_delta) {
  next_delta.initial = false;
  next_delta.plus_changed.clear();
  next_delta.minus_changed.clear();
  size_t added = 0;
  for (const Derivation& d : derivations) {
    if (interp.AddMarked(d.action, d.atom, d.grounding)) {
      ++added;
      if (d.action == ActionKind::kInsert) {
        next_delta.plus_changed.insert(d.atom.predicate());
      } else {
        next_delta.minus_changed.insert(d.atom.predicate());
      }
    }
  }
  return added;
}

}  // namespace park
