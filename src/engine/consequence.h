// The immediate consequence operator Γ(P,B) of paper §4.2.
//
// ComputeGamma enumerates every non-blocked rule grounding whose body is
// valid in I — i.e. exactly the marked atoms Γ(P,B)(I) would add — without
// mutating I. The Δ operator then either applies the derivations (the
// consistent case) or hands them to conflict construction (the
// inconsistent case).
//
// All three Γ evaluators optionally run on a thread pool (see
// ParallelGamma below). Parallel evaluation is an implementation detail,
// never a semantic one: matching is read-only (the storage layer's lazy
// index builds are hoisted out and the relations frozen for the section),
// every task writes into its own buffer, and the buffers are merged in
// task order — which is exactly the sequential enumeration order (rules
// in program order; (rule, literal, seed-atom) triples in nested loop
// order; candidate slices of one unit in ordinal order). The resulting
// derivation list, and hence every downstream artifact (traces,
// conflicts, provenance, the fixpoint itself), is bit-identical to the
// sequential engine's. docs/PARALLELISM.md spells out the argument.
//
// Task generation is two-level: a unit is a rule (ComputeGamma /
// ComputeGammaFiltered) or a (rule, Δ-seed) pair (ComputeGammaSemiNaive),
// and a unit whose first-literal candidate stream is large enough (see
// ParkOptions::min_slice_size) is split into [begin, end) candidate
// slices, each its own pool task — so a single skewed rule no longer
// serializes its whole section.

#ifndef PARK_ENGINE_CONSEQUENCE_H_
#define PARK_ENGINE_CONSEQUENCE_H_

#include <unordered_set>
#include <vector>

#include "engine/interpretation.h"
#include "engine/matcher.h"
#include "util/thread_pool.h"

namespace park {

class RuleDependencyGraph;  // engine/rule_graph.h

/// One firing: the grounding (r, θ), the head action it commands, and the
/// ground head atom.
struct Derivation {
  RuleGrounding grounding;
  ActionKind action = ActionKind::kInsert;
  GroundAtom atom;
};

/// The outcome of one Γ(P,B)(I) evaluation.
struct GammaResult {
  /// Every firable, non-blocked rule instance (including those whose head
  /// atom is already marked in I).
  std::vector<Derivation> derivations;

  /// True iff I ∪ {derived marks} contains no +a/-a pair.
  bool consistent = true;

  /// Number of derived marked atoms not already present in I. Zero (with
  /// `consistent`) means Γ(P,B)(I) = I: the fixpoint is reached.
  size_t newly_marked = 0;

  /// The atoms that would be marked both + and -, sorted and de-duplicated
  /// (non-empty iff !consistent).
  std::vector<GroundAtom> clashing_atoms;

  /// Number of rules whose bodies were actually matched (= program size
  /// for ComputeGamma; possibly fewer for ComputeGammaFiltered).
  size_t rules_evaluated = 0;

  // Scheduler counters (docs/SCHEDULER.md). `rules_considered` counts
  // rules this Γ call examined for affectedness: the whole program on the
  // scan paths, only the watcher hits with a RuleDependencyGraph, and 0
  // on a quick-exited empty schedule. `rules_skipped` is the complement
  // of the rules matched (program size - rules_evaluated).
  // `pipeline_stages` is the number of strata groups among the scheduled
  // rules — with a graph and a thread pool, the number of pool sections
  // the delta-filtered call dispatched; 0 on unscheduled calls. All three
  // are schedule properties, invariant across thread counts.
  size_t rules_considered = 0;
  size_t rules_skipped = 0;
  size_t pipeline_stages = 0;
};

/// Default for ParkOptions::min_slice_size / ParallelGamma: small enough
/// that a genuinely skewed rule (thousands of candidates) splits, large
/// enough that tiny rules stay one task and the per-unit counting pass
/// stays in the noise.
inline constexpr size_t kDefaultMinSliceSize = 256;

/// Shared state for parallel Γ evaluation: the worker pool plus the
/// per-program index-prewarm plan. One evaluation (a Park() call or a
/// ParkStepper) owns at most one and threads it through every
/// ComputeGamma* call; passing nullptr selects the sequential path.
class ParallelGamma {
 public:
  /// `num_threads` must be >= 2 (1 thread IS the sequential path; callers
  /// simply don't construct a ParallelGamma for it). The index
  /// requirements are planned once here, from `program`'s body plans.
  /// `min_slice_size` is the smallest first-literal candidate count one
  /// intra-rule slice may carry (0 behaves as 1).
  ParallelGamma(const Program& program, int num_threads,
                size_t min_slice_size = kDefaultMinSliceSize);

  int num_threads() const { return pool_.num_threads(); }
  ThreadPool& pool() { return pool_; }
  const IndexRequirements& requirements() const { return requirements_; }
  size_t min_slice_size() const { return min_slice_size_; }

  /// Intra-rule slicing counters, accumulated across sections by the
  /// coordinator (never from worker threads): how many units (rules or
  /// Δ-seeds) were split, and how many slice tasks the splits produced.
  uint64_t sliced_units() const { return sliced_units_; }
  uint64_t slice_tasks() const { return slice_tasks_; }
  void RecordSlicing(size_t units, size_t slices) {
    sliced_units_ += units;
    slice_tasks_ += slices;
  }

  /// Enables wall-clock instrumentation of the parallel sections (see
  /// ParkOptions::collect_timings): fan-out time vs. merge time, plus the
  /// pool's own busy clock. Off by default; when off the accessors
  /// return 0 and the sections read no clocks.
  void EnableTiming() {
    timing_enabled_ = true;
    pool_.set_collect_timing(true);
  }
  bool timing_enabled() const { return timing_enabled_; }
  /// Coordinator wall time inside pool fan-outs / merging the per-task
  /// buffers back into sequential order, across all sections so far.
  uint64_t match_ns() const { return match_ns_; }
  uint64_t merge_ns() const { return merge_ns_; }
  void RecordMatchNs(uint64_t ns) { match_ns_ += ns; }
  void RecordMergeNs(uint64_t ns) { merge_ns_ += ns; }

 private:
  IndexRequirements requirements_;
  size_t min_slice_size_;
  uint64_t sliced_units_ = 0;
  uint64_t slice_tasks_ = 0;
  bool timing_enabled_ = false;
  uint64_t match_ns_ = 0;
  uint64_t merge_ns_ = 0;
  ThreadPool pool_;
};

/// Evaluates Γ(P,B)(I) as a derivation list; does not modify `interp`
/// (with `parallel`, rule matching fans out over the pool).
///
/// With `plans`, matching runs through the cache's compiled plans
/// (ExecutePlan) instead of the per-call heuristic path, and the frozen
/// sections prewarm from the cache's accumulated requirements. The match
/// SET is identical either way; the enumeration ORDER (hence derivation
/// order) follows the cached plan's literal order, so the planner mode is
/// a replay-stable knob like the Γ mode — see docs/PLANNER.md. The cache's
/// plan/row counters are advanced by the coordinator only, in unit order,
/// so they are thread-count invariant.
///
/// `cancel` (here and on the other ComputeGamma* entry points) is the
/// run's cooperative CancellationToken, forwarded into every ExecutePlan
/// call and polled by every worker; nullptr disables governance. Once the
/// token fires the returned GammaResult is PARTIAL and must be discarded
/// — the evaluator checks the token after each Γ and converts its cause
/// into the run's error status. Derivations are charged to the token's
/// work budget and the per-task buffers to its memory budget as they
/// grow.
///
/// `exec` selects the plan executor (requires `plans`; the legacy
/// per-call path always runs tuple-at-a-time). In batch mode each Γ call
/// first compacts every relation's columnar view on the coordinator —
/// sequential or parallel alike, so the storage counters stay
/// thread-invariant — and the frozen sections skip the hash-index
/// prewarm (batch plans probe segments, not indexes). `exec_stats` (may
/// be null) accumulates the batch row counters across workers.
GammaResult ComputeGamma(const Program& program, const BlockedSet& blocked,
                         const IInterpretation& interp,
                         ParallelGamma* parallel = nullptr,
                         PlanCache* plans = nullptr,
                         CancellationToken* cancel = nullptr,
                         ExecMode exec = ExecMode::kTuple,
                         ExecStats* exec_stats = nullptr);

/// Applies `derivations` to `interp` (AddMarked + provenance). The caller
/// must have checked `consistent`. Returns the number of marked atoms that
/// were new.
size_t ApplyDerivations(const std::vector<Derivation>& derivations,
                        IInterpretation& interp);

// --- Delta-filtered (semi-naive style) evaluation ---
//
// Between two Γ applications of the same round, a rule can only produce a
// NEW derivation if some body literal gained satisfying atoms since the
// last step: positive and +event literals gain from new `+` marks of
// their predicate, -event and negated literals gain from new `-` marks
// (negation-by-absence only ever *loses* witnesses as I grows). Rules
// whose body predicates saw no relevant new marks are skipped entirely.
// The filtered result has exactly the same `newly_marked`, consistency
// verdict, and new derivations as the full Γ; it may omit re-derivations
// of already-present marks, so conflict construction (which needs maximal
// ins/del sides) recomputes a full Γ when a clash is detected.

/// Which predicates gained +/- marks in the previous Γ application.
/// `initial` forces a full evaluation (start of a round / after restart).
struct DeltaState {
  bool initial = true;
  std::unordered_set<PredicateId> plus_changed;
  std::unordered_set<PredicateId> minus_changed;

  void Reset() {
    initial = true;
    plus_changed.clear();
    minus_changed.clear();
  }
};

/// True if `rule` may produce a new derivation given `delta`.
bool RuleIsAffected(const Rule& rule, const DeltaState& delta);

/// Γ(P,B)(I) restricted to affected rules. `rules_evaluated` in the result
/// counts the rules actually matched.
///
/// `graph` (here and in ComputeGammaSemiNaive) is the program's optional
/// dependency analysis (engine/rule_graph.h). With it, the affected set
/// comes from the watcher index in O(|changed predicates|) instead of the
/// all-rules RuleIsAffected scan — the same set, in the same order, so
/// the derivation list is bit-identical — an empty schedule quick-exits
/// without touching the pool or the plan cache, and the parallel path
/// dispatches the affected rules stratum by stratum, prewarming each
/// stage's plans separately and merging the stage buffers back into
/// program order. nullptr keeps the legacy scan.
GammaResult ComputeGammaFiltered(const Program& program,
                                 const BlockedSet& blocked,
                                 const IInterpretation& interp,
                                 const DeltaState& delta,
                                 ParallelGamma* parallel = nullptr,
                                 PlanCache* plans = nullptr,
                                 CancellationToken* cancel = nullptr,
                                 ExecMode exec = ExecMode::kTuple,
                                 ExecStats* exec_stats = nullptr,
                                 const RuleDependencyGraph* graph = nullptr);

/// ApplyDerivations variant that also records, into `next_delta`, which
/// predicates gained new marks (for the next filtered step).
size_t ApplyDerivationsTracked(const std::vector<Derivation>& derivations,
                               IInterpretation& interp,
                               DeltaState& next_delta);

// --- Semi-naive evaluation (per-literal delta joins) ---
//
// Strictly stronger than delta filtering: instead of fully re-matching
// every affected rule, each new mark SEEDS the body literals it can
// satisfy and only the completions of those seeds are enumerated
// (ForEachBodyMatchSeeded). Every genuinely new match contains at least
// one literal that only a new mark satisfies — positive/+event literals
// gain witnesses from new `+` marks, -event literals from new `-` marks,
// and negated literals become valid only through new `-` marks (validity
// by absence can only be lost as I grows) — so seeding is complete.
// The result omits re-derivations of already-present marks, which is why
// the evaluator recomputes a full Γ before building (maximal) conflicts.

/// The actual atoms newly marked by the previous Γ application.
struct DeltaAtoms {
  bool initial = true;
  std::vector<GroundAtom> plus;
  std::vector<GroundAtom> minus;

  void Reset() {
    initial = true;
    plus.clear();
    minus.clear();
  }
};

/// Γ(P,B)(I) as the set of seed-completions of `delta`. With
/// `delta.initial`, identical to ComputeGamma. Derivations are
/// duplicate-free. With `parallel`, the (rule, seed) completions fan out
/// over the pool.
GammaResult ComputeGammaSemiNaive(const Program& program,
                                  const BlockedSet& blocked,
                                  const IInterpretation& interp,
                                  const DeltaAtoms& delta,
                                  ParallelGamma* parallel = nullptr,
                                  PlanCache* plans = nullptr,
                                  CancellationToken* cancel = nullptr,
                                  ExecMode exec = ExecMode::kTuple,
                                  ExecStats* exec_stats = nullptr,
                                  const RuleDependencyGraph* graph = nullptr);

/// ApplyDerivations variant recording the newly marked atoms themselves.
size_t ApplyDerivationsTrackedAtoms(
    const std::vector<Derivation>& derivations, IInterpretation& interp,
    DeltaAtoms& next_delta);

}  // namespace park

#endif  // PARK_ENGINE_CONSEQUENCE_H_
