#include "engine/rule_grounding.h"

namespace park {

std::string RuleGrounding::ToString(const Program& program,
                                    const SymbolTable& symbols) const {
  const Rule& rule = program.rule(rule_index_);
  std::string label = rule.name().empty()
                          ? "r#" + std::to_string(rule_index_)
                          : rule.name();
  std::string out = "(" + label;
  if (binding_.arity() > 0) {
    out += ", [";
    for (int i = 0; i < binding_.arity(); ++i) {
      if (i > 0) out += ", ";
      out += rule.variable_names()[static_cast<size_t>(i)];
      out += " <- ";
      out += binding_[i].ToString(symbols);
    }
    out += "]";
  }
  out += ")";
  return out;
}

}  // namespace park
