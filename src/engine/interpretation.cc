#include "engine/interpretation.h"

#include <algorithm>

#include "util/logging.h"

namespace park {

IInterpretation::IInterpretation(const Database* base)
    : base_(base), plus_(base->symbols()), minus_(base->symbols()) {
  PARK_CHECK(base != nullptr) << "IInterpretation requires a base database";
}

bool IInterpretation::IsValid(const GroundAtom& atom, LiteralKind kind) const {
  switch (kind) {
    case LiteralKind::kPositive:
      return base_->Contains(atom) || plus_.Contains(atom);
    case LiteralKind::kNegated:
      return minus_.Contains(atom) ||
             (!base_->Contains(atom) && !plus_.Contains(atom));
    case LiteralKind::kEventInsert:
      return plus_.Contains(atom);
    case LiteralKind::kEventDelete:
      return minus_.Contains(atom);
  }
  return false;
}

bool IInterpretation::IsValid(PredicateId predicate, const Value* args,
                              size_t n, LiteralKind kind) const {
  switch (kind) {
    case LiteralKind::kPositive:
      return base_->Contains(predicate, args, n) ||
             plus_.Contains(predicate, args, n);
    case LiteralKind::kNegated:
      return minus_.Contains(predicate, args, n) ||
             (!base_->Contains(predicate, args, n) &&
              !plus_.Contains(predicate, args, n));
    case LiteralKind::kEventInsert:
      return plus_.Contains(predicate, args, n);
    case LiteralKind::kEventDelete:
      return minus_.Contains(predicate, args, n);
  }
  return false;
}

bool IInterpretation::AddMarked(ActionKind action, const GroundAtom& atom,
                                const RuleGrounding& by) {
  Database& target = action == ActionKind::kInsert ? plus_ : minus_;
  const Database& opposite = action == ActionKind::kInsert ? minus_ : plus_;
  ProvenanceMap& provenance = action == ActionKind::kInsert
                                  ? plus_provenance_
                                  : minus_provenance_;
  bool added = target.Insert(atom);
  std::vector<RuleGrounding>& derivations = provenance[atom];
  if (std::find(derivations.begin(), derivations.end(), by) ==
      derivations.end()) {
    derivations.push_back(by);
  }
  if (added && opposite.Contains(atom)) ++inconsistent_count_;
  return added;
}

const std::vector<RuleGrounding>* IInterpretation::Provenance(
    ActionKind action, const GroundAtom& atom) const {
  const ProvenanceMap& provenance = action == ActionKind::kInsert
                                        ? plus_provenance_
                                        : minus_provenance_;
  auto it = provenance.find(atom);
  if (it == provenance.end()) return nullptr;
  return &it->second;
}

void IInterpretation::ClearMarks() {
  plus_ = Database(base_->symbols());
  minus_ = Database(base_->symbols());
  plus_provenance_.clear();
  minus_provenance_.clear();
  inconsistent_count_ = 0;
}

Database IInterpretation::Incorporate() const {
  PARK_CHECK(IsConsistent()) << "incorp on an inconsistent i-interpretation";
  Database result = base_->Clone();
  plus_.ForEach([&](const GroundAtom& atom) { result.Insert(atom); });
  minus_.ForEach([&](const GroundAtom& atom) { result.Erase(atom); });
  return result;
}

std::vector<std::string> IInterpretation::SortedLiteralStrings() const {
  std::vector<std::string> out;
  out.reserve(base_->size() + plus_.size() + minus_.size());
  const SymbolTable& symbols = *base_->symbols();

  std::vector<std::string> unmarked;
  base_->ForEach([&](const GroundAtom& atom) {
    unmarked.push_back(atom.ToString(symbols));
  });
  std::sort(unmarked.begin(), unmarked.end());

  std::vector<std::string> plus;
  plus_.ForEach([&](const GroundAtom& atom) {
    plus.push_back("+" + atom.ToString(symbols));
  });
  std::sort(plus.begin(), plus.end());

  std::vector<std::string> minus;
  minus_.ForEach([&](const GroundAtom& atom) {
    minus.push_back("-" + atom.ToString(symbols));
  });
  std::sort(minus.begin(), minus.end());

  out.insert(out.end(), unmarked.begin(), unmarked.end());
  out.insert(out.end(), plus.begin(), plus.end());
  out.insert(out.end(), minus.begin(), minus.end());
  return out;
}

std::string IInterpretation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const std::string& lit : SortedLiteralStrings()) {
    if (!first) out += ", ";
    out += lit;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace park
