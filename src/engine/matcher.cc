#include "engine/matcher.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "storage/relation.h"
#include "util/arena.h"
#include "util/cancellation.h"
#include "util/logging.h"

namespace park {
namespace {

/// Replan when a consulted store's row count moves past a factor of
/// kDriftFactor (with kDriftSlack absolute slack so tiny relations do not
/// trigger replan storms while growing 0 -> 1 -> 2...). See docs/PLANNER.md.
constexpr size_t kDriftFactor = 2;
constexpr size_t kDriftSlack = 8;

/// Below this many rows (summed over the stores a join step reads) a
/// sorted-merge join cannot beat per-binding probes — the batch sort and
/// per-distinct-key dictionary lookups dominate — so the compiled step
/// keeps JoinAlgo::kProbe. See docs/STORAGE.md for the crossover argument.
constexpr size_t kMergeJoinMinRows = 64;

bool IsBindingKind(LiteralKind kind) {
  return kind == LiteralKind::kPositive ||
         kind == LiteralKind::kEventInsert ||
         kind == LiteralKind::kEventDelete;
}

/// True if every variable of `atom` is in `bound`.
bool FullyBound(const AtomPattern& atom, const std::vector<bool>& bound) {
  for (const Term& t : atom.terms) {
    if (t.is_variable() && !bound[static_cast<size_t>(t.var_index())]) {
      return false;
    }
  }
  return true;
}

int CountBoundPositions(const AtomPattern& atom,
                        const std::vector<bool>& bound) {
  int n = 0;
  for (const Term& t : atom.terms) {
    if (t.is_constant() ||
        bound[static_cast<size_t>(t.var_index())]) {
      ++n;
    }
  }
  return n;
}

/// The stores a literal kind draws candidates from. kPositive enumerates
/// unmarked base atoms and +marked atoms; +event only plus; -event only
/// minus. Entries may be null (relation not created yet).
struct LiteralStores {
  const Relation* base = nullptr;
  const Relation* plus = nullptr;
  const Relation* minus = nullptr;
};

LiteralStores StoresFor(LiteralKind kind, PredicateId pred,
                        const IInterpretation& interp) {
  LiteralStores s;
  switch (kind) {
    case LiteralKind::kPositive:
      s.base = interp.base().GetRelation(pred);
      s.plus = interp.plus().GetRelation(pred);
      break;
    case LiteralKind::kEventInsert:
      s.plus = interp.plus().GetRelation(pred);
      break;
    case LiteralKind::kEventDelete:
      s.minus = interp.minus().GetRelation(pred);
      break;
    case LiteralKind::kNegated:
      break;  // never a generator
  }
  return s;
}

template <typename Fn>
void ForEachStore(const LiteralStores& stores, Fn fn) {
  if (stores.base != nullptr) fn(*stores.base);
  if (stores.plus != nullptr) fn(*stores.plus);
  if (stores.minus != nullptr) fn(*stores.minus);
}

/// Greedy heuristic literal ordering; when `pre_bound` >= 0 that literal
/// is treated as already evaluated (its variables bound, itself excluded).
/// This is the legacy static planner, still pinned by matcher_test.
std::vector<int> PlanBodyOrderImpl(const Rule& rule, int pre_bound) {
  const auto& body = rule.body();
  std::vector<int> order;
  order.reserve(body.size());
  std::vector<bool> scheduled(body.size(), false);
  std::vector<bool> bound(static_cast<size_t>(rule.num_variables()), false);
  size_t to_schedule = body.size();
  if (pre_bound >= 0) {
    scheduled[static_cast<size_t>(pre_bound)] = true;
    for (const Term& t : body[static_cast<size_t>(pre_bound)].atom.terms) {
      if (t.is_variable()) bound[static_cast<size_t>(t.var_index())] = true;
    }
    --to_schedule;
  }

  auto bind_vars = [&bound](const AtomPattern& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_variable()) bound[static_cast<size_t>(t.var_index())] = true;
    }
  };

  for (size_t n = 0; n < to_schedule; ++n) {
    // 1. Prefer any literal that is already fully bound: it is a constant-
    //    time filter and prunes the search space earliest.
    int chosen = -1;
    for (size_t i = 0; i < body.size(); ++i) {
      if (!scheduled[i] && FullyBound(body[i].atom, bound)) {
        chosen = static_cast<int>(i);
        break;
      }
    }
    // 2. Otherwise the binding literal with the most bound positions (uses
    //    the narrowest index); break ties by source order.
    if (chosen < 0) {
      int best_bound = -1;
      for (size_t i = 0; i < body.size(); ++i) {
        if (scheduled[i] || !IsBindingKind(body[i].kind)) continue;
        int b = CountBoundPositions(body[i].atom, bound);
        if (b > best_bound) {
          best_bound = b;
          chosen = static_cast<int>(i);
        }
      }
    }
    PARK_CHECK_GE(chosen, 0)
        << "no schedulable literal (unsafe rule slipped past validation)";
    scheduled[static_cast<size_t>(chosen)] = true;
    bind_vars(body[static_cast<size_t>(chosen)].atom);
    order.push_back(chosen);
  }
  return order;
}

/// Cost estimate for enumerating `lit` next, given the current bound set:
/// the size of its candidate stream, summed over the stores it reads.
/// With a bound position, an equality probe on column c visits about
/// rows / distinct(c) tuples per store; the probe column minimizing that
/// sum is returned alongside (ties to the lowest column, for determinism).
struct StreamEstimate {
  double rows = 0;
  int probe_column = -1;
};

StreamEstimate EstimateStream(const BodyLiteral& lit,
                              const std::vector<bool>& bound,
                              const IInterpretation& interp) {
  LiteralStores stores = StoresFor(lit.kind, lit.atom.predicate, interp);
  StreamEstimate best;
  bool have_bound_column = false;
  for (size_t i = 0; i < lit.atom.terms.size(); ++i) {
    const Term& t = lit.atom.terms[i];
    bool is_bound =
        t.is_constant() || bound[static_cast<size_t>(t.var_index())];
    if (!is_bound) continue;
    double col_rows = 0;
    ForEachStore(stores, [&](const Relation& rel) {
      col_rows += rel.stats().SelectivityRows(static_cast<int>(i));
    });
    if (!have_bound_column || col_rows < best.rows) {
      have_bound_column = true;
      best.rows = col_rows;
      best.probe_column = static_cast<int>(i);
    }
  }
  if (!have_bound_column) {
    ForEachStore(stores, [&](const Relation& rel) {
      best.rows += static_cast<double>(rel.size());
    });
  }
  return best;
}

/// Greedy cost-based ordering: filters first (same as the heuristic —
/// a fully bound literal is a constant-time check), then repeatedly the
/// binding literal with the smallest estimated candidate stream. Ties
/// break to source order, so for a fixed statistics snapshot the order is
/// a pure function of the rule.
std::vector<int> PlanBodyOrderCost(const Rule& rule, int pre_bound,
                                   const IInterpretation& interp) {
  const auto& body = rule.body();
  std::vector<int> order;
  order.reserve(body.size());
  std::vector<bool> scheduled(body.size(), false);
  std::vector<bool> bound(static_cast<size_t>(rule.num_variables()), false);
  size_t to_schedule = body.size();
  if (pre_bound >= 0) {
    scheduled[static_cast<size_t>(pre_bound)] = true;
    for (const Term& t : body[static_cast<size_t>(pre_bound)].atom.terms) {
      if (t.is_variable()) bound[static_cast<size_t>(t.var_index())] = true;
    }
    --to_schedule;
  }

  for (size_t n = 0; n < to_schedule; ++n) {
    int chosen = -1;
    for (size_t i = 0; i < body.size(); ++i) {
      if (!scheduled[i] && FullyBound(body[i].atom, bound)) {
        chosen = static_cast<int>(i);
        break;
      }
    }
    if (chosen < 0) {
      double best_rows = 0;
      for (size_t i = 0; i < body.size(); ++i) {
        if (scheduled[i] || !IsBindingKind(body[i].kind)) continue;
        double rows = EstimateStream(body[i], bound, interp).rows;
        if (chosen < 0 || rows < best_rows) {
          best_rows = rows;
          chosen = static_cast<int>(i);
        }
      }
    }
    PARK_CHECK_GE(chosen, 0)
        << "no schedulable literal (unsafe rule slipped past validation)";
    scheduled[static_cast<size_t>(chosen)] = true;
    for (const Term& t : body[static_cast<size_t>(chosen)].atom.terms) {
      if (t.is_variable()) bound[static_cast<size_t>(t.var_index())] = true;
    }
    order.push_back(chosen);
  }
  return order;
}

/// Records the row count of (`store`, `pred`) into the plan's drift
/// snapshot (deduplicated).
void SnapshotStore(uint8_t store, PredicateId pred, const Relation* rel,
                   CompiledPlan& plan) {
  for (const auto& entry : plan.stats_snapshot) {
    if (entry.store == store && entry.predicate == pred) return;
  }
  plan.stats_snapshot.push_back(CompiledPlan::StoreRows{
      store, pred, rel != nullptr ? rel->size() : 0});
}

// --- Flattened plan execution ---

/// Per-thread scratch for plan execution: the substitution frame, one
/// query pattern per step, per-step candidate cursors, and the arena the
/// candidate buffers live in. Reused across calls (Arena::Reset keeps its
/// chunks), so steady-state matching does not touch the heap. The rare
/// reentrant call (a match callback that matches again) falls back to a
/// heap-allocated scratch.
struct StepState {
  ArenaVec<const Tuple*> cands;
  size_t next = 0;
  Arena::Mark mark;
};

/// Pre-resolved stores for a filter step — the relations a fully bound
/// literal consults, fetched once per step instead of once per row.
/// IInterpretation::IsValid's per-call predicate-map lookups (two or
/// three hashtable finds per row) dominate tight filter loops; with the
/// relations in hand a filter row is one set probe in the common case.
struct FilterStores {
  const Relation* base = nullptr;
  const Relation* plus = nullptr;
  const Relation* minus = nullptr;
};

FilterStores ResolveFilterStores(const CompiledStep& st,
                                 const IInterpretation& interp) {
  FilterStores out;
  out.base = interp.base().GetRelation(st.predicate);
  out.plus = interp.plus().GetRelation(st.predicate);
  out.minus = interp.minus().GetRelation(st.predicate);
  return out;
}

/// IInterpretation::IsValid's truth table over pre-resolved stores.
bool FilterValid(const FilterStores& fs, LiteralKind kind, const Value* args,
                 size_t n) {
  auto has = [&](const Relation* r) {
    return r != nullptr && r->Contains(args, n);
  };
  switch (kind) {
    case LiteralKind::kPositive:
      return has(fs.base) || has(fs.plus);
    case LiteralKind::kNegated:
      return has(fs.minus) || (!has(fs.base) && !has(fs.plus));
    case LiteralKind::kEventInsert:
      return has(fs.plus);
    case LiteralKind::kEventDelete:
      return has(fs.minus);
  }
  return false;
}

struct MatchScratch {
  Arena arena;
  std::vector<Value> binding;
  std::vector<Value> filter_args;  // reused per filter evaluation
  // filter_stores[s]: lazily resolved stores for filter step s (the
  // `resolved` flag distinguishes "not yet fetched" from "no relations").
  struct ResolvedFilter {
    bool resolved = false;
    FilterStores stores;
  };
  std::vector<ResolvedFilter> filter_stores;
  std::vector<TuplePattern> patterns;
  std::vector<StepState> states;
  bool in_use = false;
};

MatchScratch& ThreadScratch() {
  thread_local MatchScratch scratch;
  return scratch;
}

/// Shared executor for seeded and unseeded plans (see ExecutePlan /
/// ExecutePlanSeeded). Returns the number of step-0 stream candidates the
/// slice claimed. `cancel` (may be null) is polled every kCheckStride
/// visited tuples — candidate materialization and the join loop both stop
/// early once it fires, so a deadline interrupts even one giant stream
/// within a bounded number of tuples.
size_t RunPlan(const CompiledPlan& plan, const Rule& rule,
               const IInterpretation& interp, const GroundAtom* seed_atom,
               CandidateSlice slice, FunctionRef<void(const Tuple&)> fn,
               CancellationToken* cancel) {
  MatchScratch* scratch_ptr = &ThreadScratch();
  std::unique_ptr<MatchScratch> fallback;
  if (scratch_ptr->in_use) {
    fallback = std::make_unique<MatchScratch>();
    scratch_ptr = fallback.get();
  }
  MatchScratch& scratch = *scratch_ptr;
  scratch.in_use = true;
  struct InUseGuard {
    bool& flag;
    ~InUseGuard() { flag = false; }
  } guard{scratch.in_use};

  const size_t nvars = static_cast<size_t>(rule.num_variables());
  if (scratch.binding.size() < nvars) scratch.binding.resize(nvars);

  if (plan.seed_index >= 0) {
    PARK_CHECK(seed_atom != nullptr) << "seeded plan without a seed atom";
    const AtomPattern& seed_pattern =
        rule.body()[static_cast<size_t>(plan.seed_index)].atom;
    if (seed_pattern.predicate != seed_atom->predicate()) return 0;
    for (size_t i = 0; i < plan.seed_slots.size(); ++i) {
      const CompiledStep::Slot& slot = plan.seed_slots[i];
      const Value& value = seed_atom->args()[static_cast<int>(i)];
      switch (slot.kind) {
        case CompiledStep::Slot::Kind::kConst:
          if (slot.constant != value) return 0;
          break;
        case CompiledStep::Slot::Kind::kFree:
          scratch.binding[static_cast<size_t>(slot.var)] = value;
          break;
        case CompiledStep::Slot::Kind::kBoundVar:  // repeated seed variable
          if (scratch.binding[static_cast<size_t>(slot.var)] != value) {
            return 0;
          }
          break;
      }
    }
  }

  auto emit = [&]() {
    Tuple result;
    for (size_t i = 0; i < nvars; ++i) result.Append(scratch.binding[i]);
    fn(result);
  };

  const size_t nsteps = plan.steps.size();
  if (nsteps == 0) {
    emit();
    return 0;
  }

  scratch.arena.Reset();
  if (scratch.states.size() < nsteps) scratch.states.resize(nsteps);
  if (scratch.patterns.size() < nsteps) scratch.patterns.resize(nsteps);
  scratch.filter_stores.assign(nsteps, {});

  const bool slicing = !slice.IsFull();
  size_t ordinal = 0;
  size_t claimed = 0;

  // Cooperative cancellation + memory accounting. `poll` trips at most
  // once per kCheckStride visited tuples; when it reports the token fired,
  // both materialization and the join loop bail out. Memory is charged as
  // the growth of this thread's scratch arena over the call's baseline
  // (retained chunks from earlier calls are already-paid-for memory, not
  // this run's growth); the scope is released on exit.
  const size_t arena_baseline = scratch.arena.bytes_reserved();
  CancellationToken::MemoryScope mem_scope;
  struct MemGuard {
    CancellationToken* cancel;
    CancellationToken::MemoryScope& scope;
    ~MemGuard() {
      if (cancel != nullptr) cancel->CloseScope(scope);
    }
  } mem_guard{cancel, mem_scope};
  bool interrupted = false;
  uint64_t poll_countdown = CancellationToken::kCheckStride;
  auto poll = [&]() -> bool {
    if (cancel == nullptr || interrupted) return interrupted;
    if (--poll_countdown != 0) return false;
    poll_countdown = CancellationToken::kCheckStride;
    size_t reserved = scratch.arena.bytes_reserved();
    cancel->UpdateScope(mem_scope,
                        reserved > arena_baseline ? reserved - arena_baseline
                                                  : 0);
    interrupted = cancel->Check();
    return interrupted;
  };

  // Fills step `s`'s query pattern from the current binding. Called once
  // per step entry — the bindings a pattern reads come from earlier steps
  // only, and stay fixed while the step iterates.
  auto fill_pattern = [&](const CompiledStep& st, size_t s) -> TuplePattern& {
    TuplePattern& pattern = scratch.patterns[s];
    pattern.resize(st.slots.size());
    for (size_t i = 0; i < st.slots.size(); ++i) {
      const CompiledStep::Slot& slot = st.slots[i];
      switch (slot.kind) {
        case CompiledStep::Slot::Kind::kConst:
          pattern[i] = slot.constant;
          break;
        case CompiledStep::Slot::Kind::kBoundVar:
          pattern[i] = scratch.binding[static_cast<size_t>(slot.var)];
          break;
        case CompiledStep::Slot::Kind::kFree:
          pattern[i] = std::nullopt;
          break;
      }
    }
    return pattern;
  };

  // Collects step `s`'s candidate tuples into an arena buffer. Step 0 is
  // the slicing gate: every stream candidate gets the next ordinal (BEFORE
  // the positive-literal base/plus dedup skip, so the stream count is a
  // property of the stores alone) and only in-slice ordinals are kept.
  auto materialize = [&](const CompiledStep& st, size_t s) {
    StepState& state = scratch.states[s];
    state.mark = scratch.arena.mark();
    state.cands = ArenaVec<const Tuple*>(&scratch.arena);
    state.next = 0;
    const TuplePattern& pattern = fill_pattern(st, s);
    const bool gate = s == 0;
    auto claim = [&]() -> bool {
      // A fired token stops materialization: remaining candidates are
      // dropped (the whole result is discarded by the caller anyway).
      if (poll()) return false;
      if (!gate) return true;
      size_t o = ordinal++;
      if (slicing && (o < slice.begin || o >= slice.end)) return false;
      ++claimed;
      return true;
    };
    const Relation* base = nullptr;
    switch (st.kind) {
      case LiteralKind::kPositive:
        // Valid sources: unmarked base atoms and +marked atoms. An atom in
        // both would be enumerated twice; skip base duplicates in the plus
        // scan (after the ordinal claim).
        base = interp.base().GetRelation(st.predicate);
        if (base != nullptr) {
          base->ForEachMatchingProbe(pattern, st.probe_column,
                                     [&](const Tuple& t) {
                                       if (!claim()) return;
                                       state.cands.push_back(&t);
                                     });
        }
        if (const Relation* plus = interp.plus().GetRelation(st.predicate)) {
          plus->ForEachMatchingProbe(
              pattern, st.probe_column, [&](const Tuple& t) {
                if (!claim()) return;
                if (base != nullptr && base->Contains(t)) return;
                state.cands.push_back(&t);
              });
        }
        break;
      case LiteralKind::kEventInsert:
        if (const Relation* plus = interp.plus().GetRelation(st.predicate)) {
          plus->ForEachMatchingProbe(pattern, st.probe_column,
                                     [&](const Tuple& t) {
                                       if (!claim()) return;
                                       state.cands.push_back(&t);
                                     });
        }
        break;
      case LiteralKind::kEventDelete:
        if (const Relation* minus =
                interp.minus().GetRelation(st.predicate)) {
          minus->ForEachMatchingProbe(pattern, st.probe_column,
                                      [&](const Tuple& t) {
                                        if (!claim()) return;
                                        state.cands.push_back(&t);
                                      });
        }
        break;
      case LiteralKind::kNegated:
        PARK_CHECK(false) << "unreachable: negated literal as generator";
    }
  };

  // Binds the step's free variables from `t`; false iff a repeated free
  // variable within the literal disagrees (the pattern already guaranteed
  // constants and earlier-bound variables).
  auto try_bind = [&](const CompiledStep& st, const Tuple& t) -> bool {
    for (const auto& [pos, var] : st.binds) {
      scratch.binding[static_cast<size_t>(var)] = t[pos];
    }
    for (const auto& [pos, var] : st.checks) {
      if (scratch.binding[static_cast<size_t>(var)] != t[pos]) return false;
    }
    return true;
  };

  // Grounds a fully bound literal (into a reused span — no per-candidate
  // Tuple allocation) and checks its validity in I through the step's
  // lazily resolved stores.
  auto filter_passes = [&](const CompiledStep& st, size_t step) -> bool {
    MatchScratch::ResolvedFilter& rf = scratch.filter_stores[step];
    if (!rf.resolved) {
      rf.stores = ResolveFilterStores(st, interp);
      rf.resolved = true;
    }
    scratch.filter_args.clear();
    for (const CompiledStep::Slot& slot : st.slots) {
      scratch.filter_args.push_back(
          slot.kind == CompiledStep::Slot::Kind::kConst
              ? slot.constant
              : scratch.binding[static_cast<size_t>(slot.var)]);
    }
    return FilterValid(rf.stores, st.kind, scratch.filter_args.data(),
                       scratch.filter_args.size());
  };

  // The flattened loop replacing per-literal recursive descent: walk the
  // compiled steps forward while candidates bind, backward when a step
  // exhausts. `entering` distinguishes the first visit of a step (evaluate
  // the filter / materialize the candidates) from a backtrack into it.
  int s = 0;
  bool entering = true;
  while (s >= 0) {
    if (poll()) break;
    const CompiledStep& st = plan.steps[static_cast<size_t>(s)];
    bool advanced = false;
    if (st.filter) {
      if (entering) advanced = filter_passes(st, static_cast<size_t>(s));
    } else {
      if (entering) materialize(st, static_cast<size_t>(s));
      StepState& state = scratch.states[static_cast<size_t>(s)];
      while (state.next < state.cands.size()) {
        const Tuple* t = state.cands[state.next++];
        if (try_bind(st, *t)) {
          advanced = true;
          break;
        }
      }
      // Exhausted: reclaim this step's candidate buffer (allocations are
      // properly nested by step, so the rewind frees exactly it).
      if (!advanced) scratch.arena.Rewind(state.mark);
    }
    if (advanced) {
      if (static_cast<size_t>(s) + 1 == nsteps) {
        emit();
        entering = false;  // continue with this step's next candidate
      } else {
        ++s;
        entering = true;
      }
    } else {
      --s;
      entering = false;
    }
  }
  return claimed;
}

// --- Batch-at-a-time execution (ExecMode::kBatch) ---
//
// The batch executor replaces the per-candidate backtracking walk with
// whole-batch transformations against the storage layer's columnar
// segments (storage/segment.h). A batch is a flat Value array of binding
// rows with stride nvars. Step 0 materializes its candidate stream from
// the probe column's sorted equal range — so a CandidateSlice intersects
// it by pure range arithmetic, with no per-tuple ordinal claiming — and
// every later generator step maps the batch through a probe or sorted-
// merge join chosen at compile time (CompiledStep::join). Joins emit in
// binding-major order with candidates in segment-row order per binding,
// which is exactly the depth-first order of the tuple executor over the
// same candidate sequences; only the per-step candidate order differs
// between the modes (sorted segment order here vs. hash-index order
// there), so the two modes are set-identical and each is bit-identical
// for a fixed configuration (docs/STORAGE.md).

/// The stores one generator step reads, in stream (claim) order, each
/// with the store to dedup against: a positive literal enumerates base
/// then plus, and a tuple present in both must be enumerated once, so
/// the plus entry skips tuples contained in base.
struct BatchStores {
  struct Entry {
    const Relation* rel = nullptr;
    const Relation* dedup = nullptr;  // skip candidates contained here
  };
  std::array<Entry, 3> entries;
  int count = 0;
};

BatchStores BatchStoresFor(const CompiledStep& st,
                           const IInterpretation& interp) {
  BatchStores out;
  LiteralStores stores = StoresFor(st.kind, st.predicate, interp);
  if (stores.base != nullptr) {
    out.entries[static_cast<size_t>(out.count++)] = {stores.base, nullptr};
  }
  if (stores.plus != nullptr) {
    out.entries[static_cast<size_t>(out.count++)] = {stores.plus, stores.base};
  }
  if (stores.minus != nullptr) {
    out.entries[static_cast<size_t>(out.count++)] = {stores.minus, nullptr};
  }
  return out;
}

/// Per-thread batch-execution scratch, reused across calls like
/// MatchScratch (with the same reentrancy fallback).
struct BatchScratch {
  std::vector<Value> cur;   // step-0 output (and the seed row), stride nvars
  std::vector<Value> pipe;  // current chunk's batch inside the pipeline
  std::vector<Value> next;  // batch the running step builds
  std::vector<Value> filter_args;  // reused per filter evaluation
  // merge join: probe ranges per distinct key, memoized per step for the
  // whole RunPlanBatch call (segments are stable while matching runs, so
  // a resolved range stays valid across pipeline chunks).
  struct MergeCache {
    std::vector<std::array<std::pair<uint32_t, uint32_t>, 3>> ranges;
    std::unordered_map<Value, uint32_t, ValueHash> memo;  // key -> ranges idx
  };
  std::vector<MergeCache> merge_cache;  // indexed by step
  bool in_use = false;
};

BatchScratch& ThreadBatchScratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

/// Batch counterpart of RunPlan; same contract (claimed count, cancel
/// semantics), plus local row counters flushed into `exec_stats` (may be
/// null) at the end. Relations touched must be columnar-compact when
/// frozen (the batch evaluator compacts at every Γ-section boundary);
/// unfrozen relations compact lazily inside Relation::Columnar().
size_t RunPlanBatch(const CompiledPlan& plan, const Rule& rule,
                    const IInterpretation& interp,
                    const GroundAtom* seed_atom, CandidateSlice slice,
                    FunctionRef<void(const Tuple&)> fn,
                    CancellationToken* cancel, ExecStats* exec_stats) {
  BatchScratch* scratch_ptr = &ThreadBatchScratch();
  std::unique_ptr<BatchScratch> fallback;
  if (scratch_ptr->in_use) {
    fallback = std::make_unique<BatchScratch>();
    scratch_ptr = fallback.get();
  }
  BatchScratch& scratch = *scratch_ptr;
  scratch.in_use = true;
  struct InUseGuard {
    bool& flag;
    ~InUseGuard() { flag = false; }
  } guard{scratch.in_use};

  const size_t nvars = static_cast<size_t>(rule.num_variables());
  scratch.cur.assign(nvars, Value());
  size_t nrows = 1;

  if (plan.seed_index >= 0) {
    PARK_CHECK(seed_atom != nullptr) << "seeded plan without a seed atom";
    const AtomPattern& seed_pattern =
        rule.body()[static_cast<size_t>(plan.seed_index)].atom;
    if (seed_pattern.predicate != seed_atom->predicate()) return 0;
    for (size_t i = 0; i < plan.seed_slots.size(); ++i) {
      const CompiledStep::Slot& slot = plan.seed_slots[i];
      const Value& value = seed_atom->args()[static_cast<int>(i)];
      switch (slot.kind) {
        case CompiledStep::Slot::Kind::kConst:
          if (slot.constant != value) return 0;
          break;
        case CompiledStep::Slot::Kind::kFree:
          scratch.cur[static_cast<size_t>(slot.var)] = value;
          break;
        case CompiledStep::Slot::Kind::kBoundVar:  // repeated seed variable
          if (scratch.cur[static_cast<size_t>(slot.var)] != value) return 0;
          break;
      }
    }
  }

  if (plan.steps.empty()) {
    Tuple result;
    for (size_t v = 0; v < nvars; ++v) result.Append(scratch.cur[v]);
    fn(result);
    return 0;
  }

  // Cooperative cancellation + memory accounting, mirroring RunPlan:
  // poll at most once per kCheckStride visited rows, charge the growth of
  // the batch buffers over this call's baseline.
  auto reserved_bytes = [&scratch]() {
    size_t bytes = (scratch.cur.capacity() + scratch.pipe.capacity() +
                    scratch.next.capacity()) *
                   sizeof(Value);
    for (const BatchScratch::MergeCache& cache : scratch.merge_cache) {
      bytes += cache.ranges.capacity() * sizeof(cache.ranges[0]) +
               cache.memo.bucket_count() * sizeof(void*);
    }
    return bytes;
  };
  const size_t mem_baseline = reserved_bytes();
  CancellationToken::MemoryScope mem_scope;
  struct MemGuard {
    CancellationToken* cancel;
    CancellationToken::MemoryScope& scope;
    ~MemGuard() {
      if (cancel != nullptr) cancel->CloseScope(scope);
    }
  } mem_guard{cancel, mem_scope};
  bool interrupted = false;
  uint64_t poll_countdown = CancellationToken::kCheckStride;
  auto poll = [&]() -> bool {
    if (cancel == nullptr || interrupted) return interrupted;
    if (--poll_countdown != 0) return false;
    poll_countdown = CancellationToken::kCheckStride;
    size_t reserved = reserved_bytes();
    cancel->UpdateScope(mem_scope, reserved > mem_baseline
                                       ? reserved - mem_baseline
                                       : 0);
    interrupted = cancel->Check();
    return interrupted;
  };

  size_t claimed = 0;
  size_t next_rows = 0;
  uint64_t batch_rows = 0;
  uint64_t probe_rows = 0;
  uint64_t merge_rows = 0;

  // Appends (binding row `brow` extended by candidate row `t`, a flat
  // Value[arity] span from the segment) to the next batch if the
  // candidate agrees with every pre-resolved slot. Constants and
  // earlier-bound variables are checked up front (the batch scan is a
  // probe-column superset, unlike the tuple executor's full-pattern index
  // probe), dedup filters a doubly-stored tuple via a span lookup (no
  // Tuple materialized), then the new row is appended with this
  // step's binds applied and intra-literal repeats verified against it
  // (pop on disagreement).
  // `skip_col` (< 0: none) marks a column already equality-matched by the
  // caller's equal-range probe, so its slot check would always pass.
  auto try_append = [&](const CompiledStep& st, const Value* t,
                        const Value* brow, const Relation* dedup,
                        int skip_col) {
    for (size_t j = 0; j < st.slots.size(); ++j) {
      if (static_cast<int>(j) == skip_col) continue;
      const CompiledStep::Slot& slot = st.slots[j];
      if (slot.kind == CompiledStep::Slot::Kind::kConst) {
        if (t[j] != slot.constant) return;
      } else if (slot.kind == CompiledStep::Slot::Kind::kBoundVar) {
        if (t[j] != brow[static_cast<size_t>(slot.var)]) {
          return;
        }
      }
    }
    if (dedup != nullptr && dedup->Contains(t, st.slots.size())) return;
    size_t base_off = scratch.next.size();
    scratch.next.insert(scratch.next.end(), brow, brow + nvars);
    Value* out = scratch.next.data() + base_off;
    for (const auto& [pos, var] : st.binds) {
      out[static_cast<size_t>(var)] = t[static_cast<size_t>(pos)];
    }
    for (const auto& [pos, var] : st.checks) {
      if (out[static_cast<size_t>(var)] != t[static_cast<size_t>(pos)]) {
        scratch.next.resize(base_off);
        return;
      }
    }
    ++next_rows;
  };

  auto probe_value = [&](const CompiledStep& st,
                         const Value* brow) -> const Value& {
    const CompiledStep::Slot& slot =
        st.slots[static_cast<size_t>(st.probe_column)];
    return slot.kind == CompiledStep::Slot::Kind::kConst
               ? slot.constant
               : brow[static_cast<size_t>(slot.var)];
  };

  // Step 0: the slicing gate. The candidate stream is the concatenation
  // of the stores' probe ranges (or whole segments when unprobed), in
  // store order — ordinals are positions in that stream, so intersecting
  // the slice is range arithmetic and `claimed` needs no per-tuple work.
  auto run_scan = [&](const CompiledStep& st) {
    BatchStores stores = BatchStoresFor(st, interp);
    const Value* brow = scratch.cur.data();
    const bool slicing = !slice.IsFull();
    size_t ordinal_base = 0;
    for (int i = 0; i < stores.count && !interrupted; ++i) {
      const BatchStores::Entry& entry =
          stores.entries[static_cast<size_t>(i)];
      Relation::ColumnarView view = entry.rel->Columnar();
      const Column* col = nullptr;
      uint32_t lo = 0;
      uint32_t hi = view.segment->num_rows();
      if (st.probe_column >= 0) {
        col = &view.segment->column(st.probe_column);
        std::pair<uint32_t, uint32_t> range =
            col->EqualRange(probe_value(st, brow));
        lo = range.first;
        hi = range.second;
      }
      const size_t n = hi - lo;
      size_t b = 0;
      size_t e = n;
      if (slicing) {
        b = slice.begin > ordinal_base
                ? std::min(slice.begin - ordinal_base, n)
                : 0;
        e = slice.end > ordinal_base
                ? std::min(slice.end - ordinal_base, n)
                : 0;
        if (e < b) e = b;
      }
      claimed += e - b;
      for (size_t p = b; p < e && !poll(); ++p) {
        uint32_t pos = static_cast<uint32_t>(lo + p);
        uint32_t row = col != nullptr ? col->RowAt(pos) : pos;
        try_append(st, view.segment->row(row), brow, entry.dedup,
                   col != nullptr ? st.probe_column : -1);
      }
      ordinal_base += n;
    }
  };

  // Probe join: per binding row, binary-search the probe column's equal
  // range in each store (full segment scan when unprobed).
  auto run_probe = [&](const CompiledStep& st, const Value* src,
                       size_t src_rows) {
    BatchStores stores = BatchStoresFor(st, interp);
    std::array<Relation::ColumnarView, 3> views;
    for (int i = 0; i < stores.count; ++i) {
      views[static_cast<size_t>(i)] =
          stores.entries[static_cast<size_t>(i)].rel->Columnar();
    }
    for (size_t r = 0; r < src_rows && !interrupted; ++r) {
      const Value* brow = src + r * nvars;
      for (int i = 0; i < stores.count; ++i) {
        const Relation::ColumnarView& view = views[static_cast<size_t>(i)];
        const Relation* dedup =
            stores.entries[static_cast<size_t>(i)].dedup;
        if (st.probe_column >= 0) {
          const Column& col = view.segment->column(st.probe_column);
          std::pair<uint32_t, uint32_t> range =
              col.EqualRange(probe_value(st, brow));
          for (uint32_t p = range.first; p < range.second && !poll(); ++p) {
            try_append(st, view.segment->row(col.RowAt(p)), brow, dedup,
                       st.probe_column);
          }
        } else {
          for (uint32_t row = 0;
               row < view.segment->num_rows() && !poll(); ++row) {
            try_append(st, view.segment->row(row), brow, dedup, -1);
          }
        }
      }
    }
  };

  // Sorted-merge join: the inner side is the segment itself, whose rows
  // sort by the probe column, so each DISTINCT key resolves to one
  // contiguous run via a dictionary binary search. The resolved runs are
  // memoized per batch (a last-key fast path catches clustered
  // duplicates, the memo table catches scattered ones), so duplicate-
  // heavy outer keys pay one search per distinct key instead of one per
  // binding row. Rows are emitted in the original binding-major order —
  // byte-identical output to run_probe.
  auto run_merge = [&](const CompiledStep& st, size_t step,
                       const Value* src, size_t src_rows) {
    BatchStores stores = BatchStoresFor(st, interp);
    std::array<Relation::ColumnarView, 3> views;
    for (int i = 0; i < stores.count; ++i) {
      views[static_cast<size_t>(i)] =
          stores.entries[static_cast<size_t>(i)].rel->Columnar();
    }
    BatchScratch::MergeCache& cache = scratch.merge_cache[step];
    const Value* last_key = nullptr;
    uint32_t last_idx = 0;
    for (size_t r = 0; r < src_rows && !interrupted; ++r) {
      const Value* brow = src + r * nvars;
      const Value& key = probe_value(st, brow);
      uint32_t idx;
      if (last_key != nullptr && key == *last_key) {
        idx = last_idx;
      } else {
        auto [it, inserted] = cache.memo.try_emplace(
            key, static_cast<uint32_t>(cache.ranges.size()));
        if (inserted) {
          std::array<std::pair<uint32_t, uint32_t>, 3> rg{};
          for (int i = 0; i < stores.count; ++i) {
            rg[static_cast<size_t>(i)] =
                views[static_cast<size_t>(i)]
                    .segment->column(st.probe_column)
                    .EqualRange(key);
          }
          cache.ranges.push_back(rg);
        }
        idx = it->second;
      }
      last_key = &key;
      last_idx = idx;
      for (int i = 0; i < stores.count; ++i) {
        const Relation::ColumnarView& view = views[static_cast<size_t>(i)];
        const Column& col = view.segment->column(st.probe_column);
        const Relation* dedup =
            stores.entries[static_cast<size_t>(i)].dedup;
        auto [lo, hi] = cache.ranges[idx][static_cast<size_t>(i)];
        for (uint32_t p = lo; p < hi && !poll(); ++p) {
          try_append(st, view.segment->row(col.RowAt(p)), brow, dedup,
                     st.probe_column);
        }
      }
    }
  };

  // Filter step: ground the literal per row (into a reused span — no
  // per-row Tuple allocation) and keep rows valid in I. Membership goes
  // through the segments' flat whole-row indexes instead of the
  // node-based tuple sets, block-at-a-time: a block is grounded and
  // hashed first (prefetching every probe slot), then resolved — so the
  // probe cache misses overlap instead of serializing. That overlap is
  // structural to batching; the tuple executor checks one candidate at a
  // time and eats the full miss latency per row.
  auto run_filter = [&](const CompiledStep& st, const Value* src,
                        size_t src_rows) {
    const FilterStores stores = ResolveFilterStores(st, interp);
    const Segment* segs[3] = {
        stores.base != nullptr ? stores.base->Columnar().segment : nullptr,
        stores.plus != nullptr ? stores.plus->Columnar().segment : nullptr,
        stores.minus != nullptr ? stores.minus->Columnar().segment
                                : nullptr};
    const size_t nargs = st.slots.size();
    constexpr size_t kBlock = 32;
    scratch.filter_args.resize(kBlock * nargs);
    std::array<size_t, kBlock> hashes;
    auto has = [&](const Segment* seg, const Value* args, size_t hash) {
      return seg != nullptr && seg->ContainsRow(args, nargs, hash);
    };
    for (size_t r0 = 0; r0 < src_rows && !interrupted; r0 += kBlock) {
      const size_t bn = std::min(kBlock, src_rows - r0);
      for (size_t i = 0; i < bn; ++i) {
        const Value* brow = src + (r0 + i) * nvars;
        Value* args = scratch.filter_args.data() + i * nargs;
        for (size_t j = 0; j < nargs; ++j) {
          const CompiledStep::Slot& slot = st.slots[j];
          args[j] = slot.kind == CompiledStep::Slot::Kind::kConst
                        ? slot.constant
                        : brow[static_cast<size_t>(slot.var)];
        }
        const size_t h = TupleHash{}(TupleSpan{args, nargs});
        hashes[i] = h;
        for (const Segment* seg : segs) {
          if (seg != nullptr) seg->PrefetchRow(h);
        }
      }
      for (size_t i = 0; i < bn && !poll(); ++i) {
        const Value* brow = src + (r0 + i) * nvars;
        const Value* args = scratch.filter_args.data() + i * nargs;
        const size_t h = hashes[i];
        bool pass = false;
        switch (st.kind) {
          case LiteralKind::kPositive:
            pass = has(segs[0], args, h) || has(segs[1], args, h);
            break;
          case LiteralKind::kNegated:
            pass = has(segs[2], args, h) ||
                   (!has(segs[0], args, h) && !has(segs[1], args, h));
            break;
          case LiteralKind::kEventInsert:
            pass = has(segs[1], args, h);
            break;
          case LiteralKind::kEventDelete:
            pass = has(segs[2], args, h);
            break;
        }
        if (pass) {
          scratch.next.insert(scratch.next.end(), brow, brow + nvars);
          ++next_rows;
        }
      }
    }
  };

  // Step 0 (the slicing gate) materializes its full output — `claimed`
  // is range arithmetic over global stream ordinals, so it cannot be
  // chunked — and everything downstream runs morsel-at-a-time: each
  // kChunk-row slice of the step-0 batch is pushed through the whole
  // remaining pipeline before the next slice starts. Joins fan out by
  // the duplicate factor per step, so full intermediate batches can be
  // orders of magnitude larger than their inputs; chunking keeps every
  // intermediate cache-resident instead of streaming hundreds of
  // megabytes through memory. Chunks run in step-0 order and each step
  // preserves row order, so the emission sequence is byte-identical to
  // the unchunked execution.
  scratch.merge_cache.resize(plan.steps.size());
  for (BatchScratch::MergeCache& cache : scratch.merge_cache) {
    cache.ranges.clear();
    cache.memo.clear();
  }

  {
    const CompiledStep& st = plan.steps[0];
    scratch.next.clear();
    next_rows = 0;
    if (st.filter) {
      run_filter(st, scratch.cur.data(), nrows);
    } else {
      run_scan(st);
      batch_rows += next_rows;
    }
    std::swap(scratch.cur, scratch.next);
  }
  const size_t total0 = next_rows;

  constexpr size_t kChunk = 256;
  for (size_t c0 = 0; c0 < total0 && !interrupted; c0 += kChunk) {
    const Value* src = scratch.cur.data() + c0 * nvars;
    size_t src_rows = std::min(kChunk, total0 - c0);
    for (size_t s = 1; s < plan.steps.size() && src_rows > 0 && !interrupted;
         ++s) {
      const CompiledStep& st = plan.steps[s];
      scratch.next.clear();
      next_rows = 0;
      if (st.filter) {
        run_filter(st, src, src_rows);
      } else if (st.join == JoinAlgo::kMerge && st.probe_column >= 0) {
        run_merge(st, s, src, src_rows);
        merge_rows += next_rows;
      } else {
        run_probe(st, src, src_rows);
        probe_rows += next_rows;
      }
      std::swap(scratch.pipe, scratch.next);
      src = scratch.pipe.data();
      src_rows = next_rows;
    }
    if (interrupted) break;
    for (size_t r = 0; r < src_rows && !poll(); ++r) {
      Tuple result;
      const Value* brow = src + r * nvars;
      for (size_t v = 0; v < nvars; ++v) result.Append(brow[v]);
      fn(result);
    }
  }

  if (exec_stats != nullptr) {
    exec_stats->batch_rows.fetch_add(batch_rows, std::memory_order_relaxed);
    exec_stats->probe_rows.fetch_add(probe_rows, std::memory_order_relaxed);
    exec_stats->merge_rows.fetch_add(merge_rows, std::memory_order_relaxed);
  }
  return claimed;
}

/// Batch-mode stream size of one generator step: the probe range (or
/// whole segment) length summed over the stores — the exact ordinal
/// count RunPlanBatch's step 0 partitions, at O(log rows) per store.
/// `binding` supplies kBoundVar probe slots (seeded plans only).
size_t CountStreamBatch(const CompiledStep& st, const IInterpretation& interp,
                        const std::vector<Value>* binding) {
  size_t total = 0;
  LiteralStores stores = StoresFor(st.kind, st.predicate, interp);
  ForEachStore(stores, [&](const Relation& rel) {
    Relation::ColumnarView view = rel.Columnar();
    if (st.probe_column < 0) {
      total += view.segment->num_rows();
      return;
    }
    const CompiledStep::Slot& slot =
        st.slots[static_cast<size_t>(st.probe_column)];
    const Value* v = nullptr;
    if (slot.kind == CompiledStep::Slot::Kind::kConst) {
      v = &slot.constant;
    } else {
      PARK_CHECK(binding != nullptr)
          << "unseeded plan with a pre-bound step-0 variable";
      v = &(*binding)[static_cast<size_t>(slot.var)];
    }
    std::pair<uint32_t, uint32_t> range =
        view.segment->column(st.probe_column).EqualRange(*v);
    total += range.second - range.first;
  });
  return total;
}

/// Stream size of one generator step under `pattern` (pre-dedup).
size_t CountStream(const CompiledStep& st, const IInterpretation& interp,
                   const TuplePattern& pattern) {
  size_t n = 0;
  auto count = [&n](const Tuple&) { ++n; };
  LiteralStores stores = StoresFor(st.kind, st.predicate, interp);
  ForEachStore(stores, [&](const Relation& rel) {
    rel.ForEachMatchingProbe(pattern, st.probe_column, count);
  });
  return n;
}

/// Fills the step-0 pattern for counting. `binding` supplies kBoundVar
/// slots (non-null only for seeded plans).
TuplePattern CountPattern(const CompiledStep& st,
                          const std::vector<Value>* binding) {
  TuplePattern pattern(st.slots.size());
  for (size_t i = 0; i < st.slots.size(); ++i) {
    const CompiledStep::Slot& slot = st.slots[i];
    switch (slot.kind) {
      case CompiledStep::Slot::Kind::kConst:
        pattern[i] = slot.constant;
        break;
      case CompiledStep::Slot::Kind::kBoundVar:
        PARK_CHECK(binding != nullptr)
            << "unseeded plan with a pre-bound step-0 variable";
        pattern[i] = (*binding)[static_cast<size_t>(slot.var)];
        break;
      case CompiledStep::Slot::Kind::kFree:
        pattern[i] = std::nullopt;
        break;
    }
  }
  return pattern;
}

PlanExplanation ExplainFromPlan(const CompiledPlan& plan, bool replan) {
  PlanExplanation out;
  out.rule_index = plan.rule_index;
  out.seed_index = plan.seed_index;
  out.mode = plan.mode;
  out.replan = replan;
  out.estimated_candidates = plan.estimated_candidates;
  out.steps.reserve(plan.steps.size());
  for (const CompiledStep& st : plan.steps) {
    out.steps.push_back(PlanExplanation::Step{st.literal_index, st.filter,
                                              st.probe_column,
                                              st.estimated_rows, st.join});
  }
  return out;
}

}  // namespace

PlanExplanation ExplainPlan(const CompiledPlan& plan, bool replan) {
  return ExplainFromPlan(plan, replan);
}

CompiledPlan CompilePlan(const Rule& rule, int seed_index, PlannerMode mode,
                         const IInterpretation* interp) {
  PARK_CHECK(mode == PlannerMode::kHeuristic || interp != nullptr)
      << "cost-based compilation needs an interpretation for statistics";
  CompiledPlan plan;
  plan.rule_index = rule.index();
  plan.seed_index = seed_index;
  plan.mode = mode;

  const auto& body = rule.body();
  std::vector<bool> bound(static_cast<size_t>(rule.num_variables()), false);

  // Seed binding program: one slot per seed-literal position. A repeated
  // variable's later occurrences become kBoundVar checks.
  if (seed_index >= 0) {
    const AtomPattern& seed = body[static_cast<size_t>(seed_index)].atom;
    plan.seed_slots.reserve(seed.terms.size());
    for (const Term& t : seed.terms) {
      CompiledStep::Slot slot;
      if (t.is_constant()) {
        slot.kind = CompiledStep::Slot::Kind::kConst;
        slot.constant = t.constant();
      } else {
        size_t var = static_cast<size_t>(t.var_index());
        slot.var = t.var_index();
        slot.kind = bound[var] ? CompiledStep::Slot::Kind::kBoundVar
                               : CompiledStep::Slot::Kind::kFree;
        bound[var] = true;
      }
      plan.seed_slots.push_back(slot);
    }
  }

  std::vector<int> order =
      mode == PlannerMode::kHeuristic
          ? PlanBodyOrderImpl(rule, seed_index)
          : PlanBodyOrderCost(rule, seed_index, *interp);

  plan.steps.reserve(order.size());
  bool have_generator = false;
  for (int literal_index : order) {
    const BodyLiteral& lit = body[static_cast<size_t>(literal_index)];
    CompiledStep step;
    step.literal_index = literal_index;
    step.kind = lit.kind;
    step.predicate = lit.atom.predicate;
    step.filter = FullyBound(lit.atom, bound);
    PARK_CHECK(step.filter || IsBindingKind(lit.kind))
        << "planner scheduled an unbound negated literal";

    step.slots.reserve(lit.atom.terms.size());
    for (size_t i = 0; i < lit.atom.terms.size(); ++i) {
      const Term& t = lit.atom.terms[i];
      CompiledStep::Slot slot;
      if (t.is_constant()) {
        slot.kind = CompiledStep::Slot::Kind::kConst;
        slot.constant = t.constant();
      } else {
        size_t var = static_cast<size_t>(t.var_index());
        slot.var = t.var_index();
        if (bound[var]) {
          slot.kind = CompiledStep::Slot::Kind::kBoundVar;
        } else {
          slot.kind = CompiledStep::Slot::Kind::kFree;
          // First occurrence binds; later occurrences within this literal
          // check (note `bound` is only updated after the slot loop).
          bool repeated = false;
          for (const auto& [pos, v] : step.binds) {
            (void)pos;
            if (v == t.var_index()) {
              repeated = true;
              break;
            }
          }
          if (repeated) {
            step.checks.emplace_back(static_cast<int>(i), t.var_index());
          } else {
            step.binds.emplace_back(static_cast<int>(i), t.var_index());
          }
        }
      }
      step.slots.push_back(slot);
    }

    if (!step.filter) {
      // Probe column: the heuristic probes the first bound position
      // (matching the storage layer's historical default); the cost
      // planner the most selective bound column per the statistics.
      if (mode == PlannerMode::kHeuristic) {
        for (size_t i = 0; i < step.slots.size(); ++i) {
          if (step.slots[i].kind != CompiledStep::Slot::Kind::kFree) {
            step.probe_column = static_cast<int>(i);
            break;
          }
        }
        if (interp != nullptr) {
          LiteralStores stores = StoresFor(step.kind, step.predicate, *interp);
          double rows = 0;
          ForEachStore(stores, [&](const Relation& rel) {
            rows += step.probe_column < 0
                        ? static_cast<double>(rel.size())
                        : rel.stats().SelectivityRows(step.probe_column);
          });
          step.estimated_rows = rows;
        }
      } else {
        StreamEstimate est = EstimateStream(lit, bound, *interp);
        step.probe_column = est.probe_column;
        step.estimated_rows = est.rows;
      }

      // Batch-mode join operator: a probed join step (not the plan's
      // first generator — that is the step-0 scan) over enough store
      // rows amortizes its per-distinct-key range resolution, so pick
      // sorted-merge; everything else keeps per-binding probes. Tuple
      // execution ignores this.
      if (have_generator && step.probe_column >= 0 && interp != nullptr) {
        LiteralStores stores = StoresFor(step.kind, step.predicate, *interp);
        size_t rows = 0;
        ForEachStore(stores, [&](const Relation& rel) { rows += rel.size(); });
        if (rows >= kMergeJoinMinRows) step.join = JoinAlgo::kMerge;
      }
      have_generator = true;
    }

    // The drift snapshot covers every store whose size the ordering can
    // depend on (all binding-kind literals, scheduled or not as
    // generators).
    if (interp != nullptr && IsBindingKind(lit.kind)) {
      LiteralStores stores = StoresFor(lit.kind, lit.atom.predicate, *interp);
      switch (lit.kind) {
        case LiteralKind::kPositive:
          SnapshotStore(0, lit.atom.predicate, stores.base, plan);
          SnapshotStore(1, lit.atom.predicate, stores.plus, plan);
          break;
        case LiteralKind::kEventInsert:
          SnapshotStore(1, lit.atom.predicate, stores.plus, plan);
          break;
        case LiteralKind::kEventDelete:
          SnapshotStore(2, lit.atom.predicate, stores.minus, plan);
          break;
        case LiteralKind::kNegated:
          break;
      }
    }

    for (const Term& t : lit.atom.terms) {
      if (t.is_variable()) bound[static_cast<size_t>(t.var_index())] = true;
    }
    plan.steps.push_back(std::move(step));
  }

  // Safety backstop: every variable must be bound by the seed or some step
  // before emission. The language's safety validation guarantees this;
  // check at compile time so execution can skip per-match checks.
  for (size_t v = 0; v < bound.size(); ++v) {
    PARK_CHECK(bound[v])
        << "variable '" << rule.variable_names()[v]
        << "' unbound at plan end (safety should prevent this)";
  }

  if (!plan.steps.empty() && !plan.steps[0].filter) {
    plan.estimated_candidates = plan.steps[0].estimated_rows;
  }
  return plan;
}

size_t ExecutePlan(const CompiledPlan& plan, const Rule& rule,
                   const IInterpretation& interp, CandidateSlice slice,
                   FunctionRef<void(const Tuple& binding)> fn,
                   CancellationToken* cancel, ExecMode exec,
                   ExecStats* exec_stats) {
  PARK_CHECK_EQ(plan.seed_index, -1) << "seeded plan passed to ExecutePlan";
  if (exec == ExecMode::kBatch) {
    return RunPlanBatch(plan, rule, interp, nullptr, slice, fn, cancel,
                        exec_stats);
  }
  return RunPlan(plan, rule, interp, nullptr, slice, fn, cancel);
}

size_t ExecutePlanSeeded(const CompiledPlan& plan, const Rule& rule,
                         const IInterpretation& interp,
                         const GroundAtom& seed_atom, CandidateSlice slice,
                         FunctionRef<void(const Tuple& binding)> fn,
                         CancellationToken* cancel, ExecMode exec,
                         ExecStats* exec_stats) {
  PARK_CHECK_GE(plan.seed_index, 0)
      << "unseeded plan passed to ExecutePlanSeeded";
  if (exec == ExecMode::kBatch) {
    return RunPlanBatch(plan, rule, interp, &seed_atom, slice, fn, cancel,
                        exec_stats);
  }
  return RunPlan(plan, rule, interp, &seed_atom, slice, fn, cancel);
}

size_t CountPlanCandidates(const CompiledPlan& plan,
                           const IInterpretation& interp, ExecMode exec) {
  if (plan.steps.empty() || plan.steps[0].filter) return 0;
  if (exec == ExecMode::kBatch) {
    return CountStreamBatch(plan.steps[0], interp, nullptr);
  }
  TuplePattern pattern = CountPattern(plan.steps[0], nullptr);
  return CountStream(plan.steps[0], interp, pattern);
}

size_t CountPlanCandidatesSeeded(const CompiledPlan& plan, const Rule& rule,
                                 const IInterpretation& interp,
                                 const GroundAtom& seed_atom,
                                 ExecMode exec) {
  PARK_CHECK_GE(plan.seed_index, 0) << "unseeded plan";
  if (plan.steps.empty() || plan.steps[0].filter) return 0;
  // Replay the seed binding program to resolve step-0 kBoundVar slots.
  const AtomPattern& seed_pattern =
      rule.body()[static_cast<size_t>(plan.seed_index)].atom;
  if (seed_pattern.predicate != seed_atom.predicate()) return 0;
  std::vector<Value> binding(static_cast<size_t>(rule.num_variables()));
  for (size_t i = 0; i < plan.seed_slots.size(); ++i) {
    const CompiledStep::Slot& slot = plan.seed_slots[i];
    const Value& value = seed_atom.args()[static_cast<int>(i)];
    switch (slot.kind) {
      case CompiledStep::Slot::Kind::kConst:
        if (slot.constant != value) return 0;
        break;
      case CompiledStep::Slot::Kind::kFree:
        binding[static_cast<size_t>(slot.var)] = value;
        break;
      case CompiledStep::Slot::Kind::kBoundVar:
        if (binding[static_cast<size_t>(slot.var)] != value) return 0;
        break;
    }
  }
  if (exec == ExecMode::kBatch) {
    return CountStreamBatch(plan.steps[0], interp, &binding);
  }
  TuplePattern pattern = CountPattern(plan.steps[0], &binding);
  return CountStream(plan.steps[0], interp, pattern);
}

std::vector<int> PlanBodyOrder(const Rule& rule) {
  return PlanBodyOrderImpl(rule, /*pre_bound=*/-1);
}

std::vector<int> PlanBodyOrderSeeded(const Rule& rule, int seed_index) {
  return PlanBodyOrderImpl(rule, seed_index);
}

void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      FunctionRef<void(const Tuple& binding)> fn) {
  CompiledPlan plan =
      CompilePlan(rule, -1, PlannerMode::kHeuristic, nullptr);
  ExecutePlan(plan, rule, interp, CandidateSlice{}, fn);
}

void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      CandidateSlice slice,
                      FunctionRef<void(const Tuple& binding)> fn,
                      CancellationToken* cancel) {
  CompiledPlan plan =
      CompilePlan(rule, -1, PlannerMode::kHeuristic, nullptr);
  ExecutePlan(plan, rule, interp, slice, fn, cancel);
}

size_t CountFirstLiteralCandidates(const Rule& rule,
                                   const IInterpretation& interp) {
  CompiledPlan plan =
      CompilePlan(rule, -1, PlannerMode::kHeuristic, nullptr);
  return CountPlanCandidates(plan, interp);
}

void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            FunctionRef<void(const Tuple&)> fn) {
  CompiledPlan plan =
      CompilePlan(rule, seed_index, PlannerMode::kHeuristic, nullptr);
  ExecutePlanSeeded(plan, rule, interp, seed_atom, CandidateSlice{}, fn);
}

void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            CandidateSlice slice,
                            FunctionRef<void(const Tuple&)> fn,
                            CancellationToken* cancel) {
  CompiledPlan plan =
      CompilePlan(rule, seed_index, PlannerMode::kHeuristic, nullptr);
  ExecutePlanSeeded(plan, rule, interp, seed_atom, slice, fn, cancel);
}

size_t CountFirstLiteralCandidatesSeeded(const Rule& rule,
                                         const IInterpretation& interp,
                                         int seed_index,
                                         const GroundAtom& seed_atom) {
  CompiledPlan plan =
      CompilePlan(rule, seed_index, PlannerMode::kHeuristic, nullptr);
  return CountPlanCandidatesSeeded(plan, rule, interp, seed_atom);
}

void AddPlanRequirements(const CompiledPlan& plan, IndexRequirements& out) {
  auto add = [](IndexRequirements::ColumnsByPredicate& columns,
                PredicateId pred, int column) {
    std::vector<int>& cols = columns[pred];
    if (std::find(cols.begin(), cols.end(), column) == cols.end()) {
      cols.push_back(column);
    }
  };
  for (const CompiledStep& step : plan.steps) {
    if (step.filter || step.probe_column < 0) continue;
    switch (step.kind) {
      case LiteralKind::kPositive:
        add(out.base, step.predicate, step.probe_column);
        add(out.plus, step.predicate, step.probe_column);
        break;
      case LiteralKind::kEventInsert:
        add(out.plus, step.predicate, step.probe_column);
        break;
      case LiteralKind::kEventDelete:
        add(out.minus, step.predicate, step.probe_column);
        break;
      case LiteralKind::kNegated:
        PARK_CHECK(false) << "negated literal scheduled unbound";
    }
  }
}

IndexRequirements CollectIndexRequirements(const Program& program) {
  IndexRequirements out;
  for (const Rule& rule : program.rules()) {
    AddPlanRequirements(
        CompilePlan(rule, -1, PlannerMode::kHeuristic, nullptr), out);
    // Every literal can be a delta seed under semi-naive evaluation
    // (positive/+event literals via new + marks, negated/-event via new
    // - marks), each inducing its own plan with the seed's variables
    // pre-bound.
    for (size_t s = 0; s < rule.body().size(); ++s) {
      AddPlanRequirements(CompilePlan(rule, static_cast<int>(s),
                                      PlannerMode::kHeuristic, nullptr),
                          out);
    }
  }
  return out;
}

PlanCache::PlanCache(const Program& program, PlannerMode mode)
    : program_(program), mode_(mode), plans_(program.size()) {
  for (size_t r = 0; r < program.size(); ++r) {
    plans_[r].resize(program.rules()[r].body().size() + 1);
  }
}

const CompiledPlan& PlanCache::Get(const Rule& rule, int seed_index,
                                   const IInterpretation& interp) {
  size_t r = static_cast<size_t>(rule.index());
  PARK_CHECK_LT(r, plans_.size()) << "rule outside the cache's program";
  auto& slot = plans_[r][static_cast<size_t>(seed_index + 1)];
  if (slot == nullptr) {
    return Install(slot, rule, seed_index, interp, /*replan=*/false);
  }
  // Heuristic plans do not depend on statistics, so they never go stale.
  if (mode_ == PlannerMode::kCostBased && Drifted(*slot, interp)) {
    return Install(slot, rule, seed_index, interp, /*replan=*/true);
  }
  ++cache_hits_;
  return *slot;
}

bool PlanCache::Drifted(const CompiledPlan& plan,
                        const IInterpretation& interp) const {
  for (const CompiledPlan::StoreRows& entry : plan.stats_snapshot) {
    const Database& db = entry.store == 0   ? interp.base()
                         : entry.store == 1 ? interp.plus()
                                            : interp.minus();
    const Relation* rel = db.GetRelation(entry.predicate);
    size_t now = rel != nullptr ? rel->size() : 0;
    if (now > kDriftFactor * entry.rows + kDriftSlack ||
        entry.rows > kDriftFactor * now + kDriftSlack) {
      return true;
    }
  }
  return false;
}

const CompiledPlan& PlanCache::Install(std::unique_ptr<CompiledPlan>& slot,
                                       const Rule& rule, int seed_index,
                                       const IInterpretation& interp,
                                       bool replan) {
  slot = std::make_unique<CompiledPlan>(
      CompilePlan(rule, seed_index, mode_, &interp));
  AddPlanRequirements(*slot, requirements_);
  ++plans_compiled_;
  if (replan) ++replans_;
  if (listener_) listener_(ExplainFromPlan(*slot, replan));
  return *slot;
}

uint64_t PlanCache::estimated_rows() const {
  return estimated_rows_ <= 0
             ? 0
             : static_cast<uint64_t>(std::llround(estimated_rows_));
}

std::string ExplainPlanLine(const PlanExplanation& explanation) {
  std::ostringstream out;
  out << "plan rule=" << explanation.rule_index;
  if (explanation.seed_index >= 0) {
    out << " seed=" << explanation.seed_index;
  }
  out << " mode="
      << (explanation.mode == PlannerMode::kCostBased ? "cost-based"
                                                      : "heuristic");
  if (explanation.replan) out << " (replan)";
  out << ":";
  if (explanation.steps.empty()) out << " <empty body>";
  for (size_t i = 0; i < explanation.steps.size(); ++i) {
    const PlanExplanation::Step& step = explanation.steps[i];
    if (i > 0) out << " ->";
    out << " lit" << step.literal_index;
    if (step.filter) {
      out << "[filter]";
    } else {
      out << "[";
      if (step.probe_column >= 0) {
        out << (step.join == JoinAlgo::kMerge ? "merge c" : "probe c")
            << step.probe_column;
      } else {
        out << "scan";
      }
      out << " ~" << static_cast<uint64_t>(std::llround(step.estimated_rows))
          << " rows]";
    }
  }
  return out.str();
}

}  // namespace park
