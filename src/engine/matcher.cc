#include "engine/matcher.h"

#include <algorithm>
#include <optional>

#include "util/logging.h"

namespace park {
namespace {

bool IsBindingKind(LiteralKind kind) {
  return kind == LiteralKind::kPositive ||
         kind == LiteralKind::kEventInsert ||
         kind == LiteralKind::kEventDelete;
}

/// True if every variable of `atom` is in `bound`.
bool FullyBound(const AtomPattern& atom, const std::vector<bool>& bound) {
  for (const Term& t : atom.terms) {
    if (t.is_variable() && !bound[static_cast<size_t>(t.var_index())]) {
      return false;
    }
  }
  return true;
}

int CountBoundPositions(const AtomPattern& atom,
                        const std::vector<bool>& bound) {
  int n = 0;
  for (const Term& t : atom.terms) {
    if (t.is_constant() ||
        bound[static_cast<size_t>(t.var_index())]) {
      ++n;
    }
  }
  return n;
}

/// Backtracking evaluator for one rule body, in planned order.
class BodyMatcher {
 public:
  BodyMatcher(const Rule& rule, const IInterpretation& interp,
              FunctionRef<void(const Tuple&)> fn,
              const std::vector<int>& order)
      : rule_(rule),
        interp_(interp),
        fn_(fn),
        order_(order),
        binding_(static_cast<size_t>(rule.num_variables())),
        bound_(static_cast<size_t>(rule.num_variables()), false),
        scratch_(order.size()) {
    // Per-literal pattern buffers, sized once here instead of a fresh
    // heap-backed TuplePattern per EnumerateCandidates call.
    for (size_t step = 0; step < order_.size(); ++step) {
      const AtomPattern& atom =
          rule_.body()[static_cast<size_t>(order_[step])].atom;
      scratch_[step].resize(atom.terms.size());
    }
  }

  void Run() { Extend(0); }

  /// Restricts enumeration to first-literal candidates with ordinals in
  /// `slice` (see CandidateSlice in matcher.h). Must be set before Run /
  /// RunSeeded. A full slice is a no-op.
  void SetSlice(CandidateSlice slice) {
    slicing_ = !slice.IsFull();
    slice_ = slice;
  }

  /// Pre-binds the variables of `seed_literal` against `seed_atom` (its
  /// validity is the caller's guarantee), then enumerates the remaining
  /// plan. Returns without calling the callback if constants or repeated
  /// variables disagree with the atom.
  void RunSeeded(const BodyLiteral& seed_literal,
                 const GroundAtom& seed_atom) {
    if (BindSeed(seed_literal, seed_atom)) Extend(0);
  }

  /// Binds the seed literal's variables from `seed_atom`; false means the
  /// atom disagrees with the literal's constants or repeated variables
  /// (no matches exist).
  bool BindSeed(const BodyLiteral& seed_literal,
                const GroundAtom& seed_atom) {
    const AtomPattern& pattern = seed_literal.atom;
    if (pattern.predicate != seed_atom.predicate()) return false;
    for (size_t i = 0; i < pattern.terms.size(); ++i) {
      const Term& term = pattern.terms[i];
      const Value& value = seed_atom.args()[static_cast<int>(i)];
      if (term.is_constant()) {
        if (term.constant() != value) return false;
        continue;
      }
      size_t var = static_cast<size_t>(term.var_index());
      if (bound_[var]) {
        if (binding_[var] != value) return false;  // repeated var mismatch
      } else {
        binding_[var] = value;
        bound_[var] = true;
      }
    }
    return true;
  }

  /// Size of the candidate stream the plan's first literal draws from in
  /// the current bound state (raw: the positive-literal base/plus dedup
  /// skip is applied per candidate at enumeration time, after ordinal
  /// assignment, so it does not affect the count). 0 means unsliceable.
  size_t CountSliceCandidates() {
    if (order_.empty()) return 0;
    const BodyLiteral& lit =
        rule_.body()[static_cast<size_t>(order_[0])];
    if (FullyBound(lit.atom, bound_) || !IsBindingKind(lit.kind)) return 0;
    const TuplePattern& pattern = FillPattern(lit.atom, 0);
    size_t n = 0;
    auto count = [&n](const Tuple&) { ++n; };
    PredicateId pred = lit.atom.predicate;
    switch (lit.kind) {
      case LiteralKind::kPositive: {
        if (const Relation* base = interp_.base().GetRelation(pred)) {
          base->ForEachMatching(pattern, count);
        }
        if (const Relation* plus = interp_.plus().GetRelation(pred)) {
          plus->ForEachMatching(pattern, count);
        }
        break;
      }
      case LiteralKind::kEventInsert: {
        if (const Relation* plus = interp_.plus().GetRelation(pred)) {
          plus->ForEachMatching(pattern, count);
        }
        break;
      }
      case LiteralKind::kEventDelete: {
        if (const Relation* minus = interp_.minus().GetRelation(pred)) {
          minus->ForEachMatching(pattern, count);
        }
        break;
      }
      case LiteralKind::kNegated:
        break;  // unreachable: !IsBindingKind handled above
    }
    return n;
  }

 private:
  /// Ordinal gate for intra-rule slicing: every candidate the first plan
  /// literal draws gets the next stream ordinal; only ordinals inside the
  /// slice are expanded. Later steps are never gated.
  bool ClaimCandidate(size_t step) {
    if (step != 0 || !slicing_) return true;
    size_t ordinal = ordinal_++;
    return ordinal >= slice_.begin && ordinal < slice_.end;
  }

  void Extend(size_t step) {
    if (step == order_.size()) {
      Emit();
      return;
    }
    const BodyLiteral& lit =
        rule_.body()[static_cast<size_t>(order_[step])];
    if (FullyBound(lit.atom, bound_)) {
      GroundAtom atom = GroundLiteral(lit.atom);
      if (interp_.IsValid(atom, lit.kind)) Extend(step + 1);
      return;
    }
    PARK_CHECK(IsBindingKind(lit.kind))
        << "planner scheduled an unbound negated literal";
    EnumerateCandidates(lit, step);
  }

  GroundAtom GroundLiteral(const AtomPattern& atom) const {
    Tuple args;
    for (const Term& t : atom.terms) {
      args.Append(t.is_constant()
                      ? t.constant()
                      : binding_[static_cast<size_t>(t.var_index())]);
    }
    return GroundAtom(atom.predicate, std::move(args));
  }

  /// Refreshes this step's scratch pattern from the current binding.
  const TuplePattern& FillPattern(const AtomPattern& atom, size_t step) {
    TuplePattern& pattern = scratch_[step];
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (t.is_constant()) {
        pattern[i] = t.constant();
      } else if (bound_[static_cast<size_t>(t.var_index())]) {
        pattern[i] = binding_[static_cast<size_t>(t.var_index())];
      } else {
        pattern[i] = std::nullopt;
      }
    }
    return pattern;
  }

  /// Tries to bind the unbound variables of `atom` against `t`; on success
  /// recurses, then undoes the new bindings. Repeated unbound variables
  /// within the literal are checked for equality here (the TuplePattern
  /// cannot express them).
  void TryTuple(const AtomPattern& atom, const Tuple& t, size_t step) {
    std::vector<int> newly_bound;
    bool ok = true;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& term = atom.terms[i];
      if (term.is_constant()) continue;  // pattern guaranteed the match
      size_t var = static_cast<size_t>(term.var_index());
      if (bound_[var]) {
        if (binding_[var] != t[static_cast<int>(i)]) {
          ok = false;
          break;
        }
      } else {
        binding_[var] = t[static_cast<int>(i)];
        bound_[var] = true;
        newly_bound.push_back(static_cast<int>(var));
      }
    }
    if (ok) Extend(step + 1);
    for (int var : newly_bound) bound_[static_cast<size_t>(var)] = false;
  }

  void EnumerateCandidates(const BodyLiteral& lit, size_t step) {
    const TuplePattern& pattern = FillPattern(lit.atom, step);
    PredicateId pred = lit.atom.predicate;
    switch (lit.kind) {
      case LiteralKind::kPositive: {
        // Valid sources: unmarked base atoms and +marked atoms. An atom in
        // both would be enumerated twice; skip base duplicates in the plus
        // scan. The slice ordinal is claimed BEFORE the dedup skip so the
        // stream count is a property of the stores alone.
        const Relation* base = interp_.base().GetRelation(pred);
        if (base != nullptr) {
          base->ForEachMatching(pattern, [&](const Tuple& t) {
            if (!ClaimCandidate(step)) return;
            TryTuple(lit.atom, t, step);
          });
        }
        const Relation* plus = interp_.plus().GetRelation(pred);
        if (plus != nullptr) {
          plus->ForEachMatching(pattern, [&](const Tuple& t) {
            if (!ClaimCandidate(step)) return;
            if (base != nullptr && base->Contains(t)) return;
            TryTuple(lit.atom, t, step);
          });
        }
        return;
      }
      case LiteralKind::kEventInsert: {
        const Relation* plus = interp_.plus().GetRelation(pred);
        if (plus != nullptr) {
          plus->ForEachMatching(pattern, [&](const Tuple& t) {
            if (!ClaimCandidate(step)) return;
            TryTuple(lit.atom, t, step);
          });
        }
        return;
      }
      case LiteralKind::kEventDelete: {
        const Relation* minus = interp_.minus().GetRelation(pred);
        if (minus != nullptr) {
          minus->ForEachMatching(pattern, [&](const Tuple& t) {
            if (!ClaimCandidate(step)) return;
            TryTuple(lit.atom, t, step);
          });
        }
        return;
      }
      case LiteralKind::kNegated:
        PARK_CHECK(false) << "unreachable: negated literal as generator";
    }
  }

  void Emit() {
    Tuple result;
    for (size_t i = 0; i < binding_.size(); ++i) {
      PARK_CHECK(bound_[i])
          << "variable '" << rule_.variable_names()[i]
          << "' unbound at match emission (safety should prevent this)";
      result.Append(binding_[i]);
    }
    fn_(result);
  }

  const Rule& rule_;
  const IInterpretation& interp_;
  FunctionRef<void(const Tuple&)> fn_;
  const std::vector<int>& order_;
  std::vector<Value> binding_;
  std::vector<bool> bound_;
  // scratch_[step] is the reusable query pattern for order_[step].
  std::vector<TuplePattern> scratch_;
  // Intra-rule slicing state (SetSlice / ClaimCandidate).
  bool slicing_ = false;
  CandidateSlice slice_;
  size_t ordinal_ = 0;
};

}  // namespace

namespace {

/// Greedy literal ordering; when `pre_bound` >= 0 that literal is treated
/// as already evaluated (its variables bound, itself excluded).
std::vector<int> PlanBodyOrderImpl(const Rule& rule, int pre_bound) {
  const auto& body = rule.body();
  std::vector<int> order;
  order.reserve(body.size());
  std::vector<bool> scheduled(body.size(), false);
  std::vector<bool> bound(static_cast<size_t>(rule.num_variables()), false);
  size_t to_schedule = body.size();
  if (pre_bound >= 0) {
    scheduled[static_cast<size_t>(pre_bound)] = true;
    for (const Term& t : body[static_cast<size_t>(pre_bound)].atom.terms) {
      if (t.is_variable()) bound[static_cast<size_t>(t.var_index())] = true;
    }
    --to_schedule;
  }

  auto bind_vars = [&bound](const AtomPattern& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_variable()) bound[static_cast<size_t>(t.var_index())] = true;
    }
  };

  for (size_t n = 0; n < to_schedule; ++n) {
    // 1. Prefer any literal that is already fully bound: it is a constant-
    //    time filter and prunes the search space earliest.
    int chosen = -1;
    for (size_t i = 0; i < body.size(); ++i) {
      if (!scheduled[i] && FullyBound(body[i].atom, bound)) {
        chosen = static_cast<int>(i);
        break;
      }
    }
    // 2. Otherwise the binding literal with the most bound positions (uses
    //    the narrowest index); break ties by source order.
    if (chosen < 0) {
      int best_bound = -1;
      for (size_t i = 0; i < body.size(); ++i) {
        if (scheduled[i] || !IsBindingKind(body[i].kind)) continue;
        int b = CountBoundPositions(body[i].atom, bound);
        if (b > best_bound) {
          best_bound = b;
          chosen = static_cast<int>(i);
        }
      }
    }
    PARK_CHECK_GE(chosen, 0)
        << "no schedulable literal (unsafe rule slipped past validation)";
    scheduled[static_cast<size_t>(chosen)] = true;
    bind_vars(body[static_cast<size_t>(chosen)].atom);
    order.push_back(chosen);
  }
  return order;
}

/// Appends `column` for `pred` into `columns` (deduplicated; a predicate
/// has at most `arity` distinct probe columns, so linear scan is fine).
void AddRequirement(IndexRequirements::ColumnsByPredicate& columns,
                    PredicateId pred, int column) {
  std::vector<int>& cols = columns[pred];
  if (std::find(cols.begin(), cols.end(), column) == cols.end()) {
    cols.push_back(column);
  }
}

/// Walks one plan exactly as BodyMatcher will, recording for every
/// generator literal the first bound pattern position — the column
/// ForEachMatching's index probe uses. Boundness of a pattern position at
/// a given plan step is static (constants, plus variables bound by
/// earlier literals of the plan), which is what makes the prewarm exact.
void CollectFromPlan(const Rule& rule, const std::vector<int>& order,
                     std::vector<bool> bound, IndexRequirements& out) {
  const auto& body = rule.body();
  for (int idx : order) {
    const BodyLiteral& lit = body[static_cast<size_t>(idx)];
    if (!FullyBound(lit.atom, bound)) {
      // This literal reaches EnumerateCandidates. Its pattern has at
      // least one unbound position (an unbound variable), so the
      // all-bound exact-match fast path does not apply; if it also has a
      // bound position, ForEachMatching probes that column's index.
      int first_bound = -1;
      for (size_t i = 0; i < lit.atom.terms.size(); ++i) {
        const Term& t = lit.atom.terms[i];
        if (t.is_constant() ||
            bound[static_cast<size_t>(t.var_index())]) {
          first_bound = static_cast<int>(i);
          break;
        }
      }
      if (first_bound >= 0) {
        switch (lit.kind) {
          case LiteralKind::kPositive:
            AddRequirement(out.base, lit.atom.predicate, first_bound);
            AddRequirement(out.plus, lit.atom.predicate, first_bound);
            break;
          case LiteralKind::kEventInsert:
            AddRequirement(out.plus, lit.atom.predicate, first_bound);
            break;
          case LiteralKind::kEventDelete:
            AddRequirement(out.minus, lit.atom.predicate, first_bound);
            break;
          case LiteralKind::kNegated:
            PARK_CHECK(false) << "negated literal scheduled unbound";
        }
      }
    }
    for (const Term& t : lit.atom.terms) {
      if (t.is_variable()) bound[static_cast<size_t>(t.var_index())] = true;
    }
  }
}

}  // namespace

std::vector<int> PlanBodyOrder(const Rule& rule) {
  return PlanBodyOrderImpl(rule, /*pre_bound=*/-1);
}

std::vector<int> PlanBodyOrderSeeded(const Rule& rule, int seed_index) {
  return PlanBodyOrderImpl(rule, seed_index);
}

void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      FunctionRef<void(const Tuple& binding)> fn) {
  std::vector<int> order = PlanBodyOrder(rule);
  BodyMatcher matcher(rule, interp, fn, order);
  matcher.Run();
}

void ForEachBodyMatch(const Rule& rule, const IInterpretation& interp,
                      CandidateSlice slice,
                      FunctionRef<void(const Tuple& binding)> fn) {
  std::vector<int> order = PlanBodyOrder(rule);
  BodyMatcher matcher(rule, interp, fn, order);
  matcher.SetSlice(slice);
  matcher.Run();
}

size_t CountFirstLiteralCandidates(const Rule& rule,
                                   const IInterpretation& interp) {
  std::vector<int> order = PlanBodyOrder(rule);
  auto noop = [](const Tuple&) {};
  BodyMatcher matcher(rule, interp, noop, order);
  return matcher.CountSliceCandidates();
}

void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            FunctionRef<void(const Tuple&)> fn) {
  std::vector<int> order = PlanBodyOrderSeeded(rule, seed_index);
  BodyMatcher matcher(rule, interp, fn, order);
  matcher.RunSeeded(rule.body()[static_cast<size_t>(seed_index)], seed_atom);
}

void ForEachBodyMatchSeeded(const Rule& rule, const IInterpretation& interp,
                            int seed_index, const GroundAtom& seed_atom,
                            CandidateSlice slice,
                            FunctionRef<void(const Tuple&)> fn) {
  std::vector<int> order = PlanBodyOrderSeeded(rule, seed_index);
  BodyMatcher matcher(rule, interp, fn, order);
  matcher.SetSlice(slice);
  matcher.RunSeeded(rule.body()[static_cast<size_t>(seed_index)], seed_atom);
}

size_t CountFirstLiteralCandidatesSeeded(const Rule& rule,
                                         const IInterpretation& interp,
                                         int seed_index,
                                         const GroundAtom& seed_atom) {
  std::vector<int> order = PlanBodyOrderSeeded(rule, seed_index);
  auto noop = [](const Tuple&) {};
  BodyMatcher matcher(rule, interp, noop, order);
  if (!matcher.BindSeed(rule.body()[static_cast<size_t>(seed_index)],
                        seed_atom)) {
    return 0;
  }
  return matcher.CountSliceCandidates();
}

IndexRequirements CollectIndexRequirements(const Program& program) {
  IndexRequirements out;
  for (const Rule& rule : program.rules()) {
    size_t num_vars = static_cast<size_t>(rule.num_variables());
    CollectFromPlan(rule, PlanBodyOrder(rule),
                    std::vector<bool>(num_vars, false), out);
    // Every literal can be a delta seed under semi-naive evaluation
    // (positive/+event literals via new + marks, negated/-event via new
    // - marks), each inducing its own plan with the seed's variables
    // pre-bound.
    for (size_t s = 0; s < rule.body().size(); ++s) {
      std::vector<bool> bound(num_vars, false);
      for (const Term& t : rule.body()[s].atom.terms) {
        if (t.is_variable()) bound[static_cast<size_t>(t.var_index())] = true;
      }
      CollectFromPlan(rule, PlanBodyOrderSeeded(rule, static_cast<int>(s)),
                      std::move(bound), out);
    }
  }
  return out;
}

}  // namespace park
