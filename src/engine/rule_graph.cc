#include "engine/rule_graph.h"

#include <algorithm>

namespace park {

RuleDependencyGraph::RuleDependencyGraph(const Program& program) {
  const size_t n = program.size();
  stratum_.assign(n, 0);

  // Watcher index: invert each body over the same polarity split
  // RuleIsAffected uses. Rules arrive in ascending index order, so each
  // watcher list stays sorted; the back() check dedupes repeated literals
  // of one predicate within a body.
  auto watch = [](WatcherIndex& index, PredicateId pred, int rule) {
    std::vector<int>& list = index[pred];
    if (list.empty() || list.back() != rule) list.push_back(rule);
  };
  for (size_t r = 0; r < n; ++r) {
    const Rule& rule = program.rule(r);
    for (const BodyLiteral& lit : rule.body()) {
      switch (lit.kind) {
        case LiteralKind::kPositive:
        case LiteralKind::kEventInsert:
          watch(plus_watchers_, lit.atom.predicate, static_cast<int>(r));
          break;
        case LiteralKind::kNegated:
        case LiteralKind::kEventDelete:
          watch(minus_watchers_, lit.atom.predicate, static_cast<int>(r));
          break;
      }
    }
  }

  // Feed edges: rule r's head mark wakes exactly the watchers of its
  // polarity — the same wake-up Schedule() performs at runtime, so the
  // static graph and the dynamic scheduler can never disagree.
  std::vector<std::vector<int>> adj(n);
  heads_.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    const RuleHead& head = program.rule(r).head();
    heads_.emplace_back(head.action, head.atom.predicate);
    const std::vector<int>& readers =
        head.action == ActionKind::kInsert
            ? Watchers(plus_watchers_, head.atom.predicate)
            : Watchers(minus_watchers_, head.atom.predicate);
    adj[r] = readers;  // already sorted + deduped
    num_edges_ += readers.size();
  }

  // Iterative Tarjan: components complete only after every component they
  // feed, so component ids descend along edges (comp[u] >= comp[v] for
  // u → v) and descending id order IS topological order.
  std::vector<int> comp(n, -1), low(n, 0), disc(n, -1);
  std::vector<int> stack;
  std::vector<char> on_stack(n, 0);
  struct Frame {
    int node;
    size_t next_edge;
  };
  std::vector<Frame> frames;
  int time = 0;
  int num_comps = 0;
  for (size_t root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    frames.push_back(Frame{static_cast<int>(root), 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      int v = f.node;
      if (f.next_edge == 0) {
        disc[v] = low[v] = time++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      while (f.next_edge < adj[v].size()) {
        int w = adj[v][f.next_edge++];
        if (disc[w] == -1) {
          frames.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], disc[w]);
      }
      if (descended) continue;
      if (low[v] == disc[v]) {
        for (;;) {
          int w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp[w] = num_comps;
          if (w == v) break;
        }
        ++num_comps;
      }
      frames.pop_back();
      if (!frames.empty()) {
        int parent = frames.back().node;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
  num_sccs_ = static_cast<size_t>(num_comps);

  // Longest feed path per component; rules inherit their component's
  // level. Descending component id = topological order (see above).
  std::vector<std::vector<int>> comp_nodes(num_sccs_);
  for (size_t r = 0; r < n; ++r) {
    comp_nodes[static_cast<size_t>(comp[r])].push_back(static_cast<int>(r));
  }
  std::vector<int> level(num_sccs_, 0);
  for (size_t cid = num_sccs_; cid-- > 0;) {
    for (int v : comp_nodes[cid]) {
      for (int w : adj[static_cast<size_t>(v)]) {
        size_t target = static_cast<size_t>(comp[w]);
        if (target == cid) continue;  // intra-SCC edge
        level[target] = std::max(level[target], level[cid] + 1);
      }
    }
  }
  int max_level = -1;
  for (size_t r = 0; r < n; ++r) {
    stratum_[r] = level[static_cast<size_t>(comp[r])];
    max_level = std::max(max_level, stratum_[r]);
  }
  num_strata_ = static_cast<size_t>(max_level + 1);
}

const std::vector<int>& RuleDependencyGraph::Watchers(
    const WatcherIndex& index, PredicateId predicate) const {
  auto it = index.find(predicate);
  return it == index.end() ? empty_ : it->second;
}

const std::vector<int>& RuleDependencyGraph::PlusWatchers(
    PredicateId predicate) const {
  return Watchers(plus_watchers_, predicate);
}

const std::vector<int>& RuleDependencyGraph::MinusWatchers(
    PredicateId predicate) const {
  return Watchers(minus_watchers_, predicate);
}

GammaSchedule RuleDependencyGraph::Schedule(const DeltaState& delta) const {
  GammaSchedule schedule;
  if (delta.initial) {
    schedule.rules.resize(size());
    for (size_t r = 0; r < size(); ++r) {
      schedule.rules[r] = static_cast<int>(r);
    }
  } else {
    // Union of the changed predicates' watcher lists. A rule watching
    // several changed predicates appears in several lists, so sort +
    // unique; the result is exactly {r : RuleIsAffected(r, delta)} in
    // program order, reached in O(Σ |watchers|) instead of O(|P|).
    for (PredicateId pred : delta.plus_changed) {
      const std::vector<int>& rules = PlusWatchers(pred);
      schedule.rules.insert(schedule.rules.end(), rules.begin(),
                            rules.end());
    }
    for (PredicateId pred : delta.minus_changed) {
      const std::vector<int>& rules = MinusWatchers(pred);
      schedule.rules.insert(schedule.rules.end(), rules.begin(),
                            rules.end());
    }
    std::sort(schedule.rules.begin(), schedule.rules.end());
    schedule.rules.erase(
        std::unique(schedule.rules.begin(), schedule.rules.end()),
        schedule.rules.end());
  }
  schedule.stages = StagesFor(schedule.rules);
  return schedule;
}

std::vector<int> RuleDependencyGraph::ConeRules(
    const std::vector<PredicateId>& plus_preds,
    const std::vector<PredicateId>& minus_preds) const {
  std::vector<char> in_cone(size(), 0);
  std::vector<int> frontier;
  auto wake = [&](const WatcherIndex& index, PredicateId pred) {
    for (int r : Watchers(index, pred)) {
      if (!in_cone[static_cast<size_t>(r)]) {
        in_cone[static_cast<size_t>(r)] = 1;
        frontier.push_back(r);
      }
    }
  };
  for (PredicateId pred : plus_preds) wake(plus_watchers_, pred);
  for (PredicateId pred : minus_preds) wake(minus_watchers_, pred);
  // BFS: a woken rule's head mark wakes that polarity's watchers, exactly
  // as the runtime scheduler would.
  for (size_t i = 0; i < frontier.size(); ++i) {
    const auto& [action, pred] = heads_[static_cast<size_t>(frontier[i])];
    wake(action == ActionKind::kInsert ? plus_watchers_ : minus_watchers_,
         pred);
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

std::vector<std::vector<int>> RuleDependencyGraph::StagesFor(
    const std::vector<int>& rules) const {
  std::vector<std::vector<int>> stages;
  if (rules.empty()) return stages;
  // Stable sort by stratum: stages ascend by stratum, and within a stage
  // the input's program order survives (the input is ascending).
  std::vector<int> ordered = rules;
  std::stable_sort(ordered.begin(), ordered.end(), [this](int a, int b) {
    return stratum(a) < stratum(b);
  });
  for (size_t i = 0; i < ordered.size(); ++i) {
    if (i == 0 || stratum(ordered[i]) != stratum(ordered[i - 1])) {
      stages.emplace_back();
    }
    stages.back().push_back(ordered[i]);
  }
  return stages;
}

}  // namespace park
