// Session: the thread-safe serving front-end of the library
// (docs/SERVING.md) — THE supported entry point for concurrent use.
//
// A Session owns an ActiveDatabase and fronts it with:
//
//   - Snapshot-isolated reads: Snapshot() pins the current committed
//     columnar generation; any number of readers query it lock-free and
//     wait-free while commits proceed (src/serve/snapshot.h).
//   - Group commit: concurrent Transaction::Commit() calls queue up; one
//     caller becomes the batch leader, folds every queued update set into
//     ONE PARK(D, P, U1 ∪ ... ∪ Uk) firing and ONE journal append +
//     fsync, and distributes per-transaction CommitReports (batch id and
//     position included). PARK's determinism (paper §3) makes the folded
//     firing equivalent to any serialization of compatible members; a
//     poisoned batch (the folded firing fails) falls back to committing
//     its members individually in arrival order, so no transaction's
//     failure can corrupt its batchmates.
//
// Example (threads share one session):
//   park::Session::Params params;
//   params.rules = "emp(X), !active(X), payroll(X, S) -> -payroll(X, S).";
//   auto session = park::Session::Open("/var/lib/park/payroll",
//                                      std::move(params)).value();
//   // writer threads:
//   auto tx = session->Begin();
//   tx.Insert("emp", {"jane"});
//   auto report = std::move(tx).Commit();   // may be batched
//   // reader threads:
//   auto snap = session->Snapshot();
//   auto hits = snap.Query("payroll(X, S)").value();

#ifndef PARK_SERVE_SESSION_H_
#define PARK_SERVE_SESSION_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eca/active_database.h"
#include "serve/snapshot.h"

namespace park {

/// Configuration for Session::Create/Open. The replay-stable knobs
/// inside `options` (policy, block_granularity, gamma_mode) must match
/// across Opens of the same directory, exactly as for
/// ActiveDatabase::Open; batching adds NO new replay-stable knobs — a
/// journal written with any max_group_size replays identically under any
/// other, because a batch is one ordinary (folded) journal record.
/// (Namespace-scope so `= {}` default arguments work; spelled
/// Session::Params in client code.)
struct SessionParams {
  /// Program text installed before recovery (may be empty).
  std::string rules;
  /// Symbol table to share; null creates a fresh one.
  std::shared_ptr<SymbolTable> symbols;
  /// Filesystem to use; null means Env::Default() (Open only).
  Env* env = nullptr;
  /// Durability of each batch's journal record (Open only).
  JournalSyncMode sync_mode = JournalSyncMode::kFsync;
  /// Full evaluation-options bundle (validated via Configure).
  ParkOptions options;
  /// Most transactions one group commit may fold. 1 disables batching
  /// (every commit pays its own firing and fsync — the baseline
  /// bench_serve compares against).
  size_t max_group_size = 64;
};

class Session : public CommitSink {
 public:
  using Params = SessionParams;

  /// In-memory session (no journal; Checkpoint unavailable).
  static Result<std::unique_ptr<Session>> Create(Params params = {});

  /// Durable session over ActiveDatabase::Open(dir): loads the snapshot,
  /// replays the journal (batch records replay as single folded commits,
  /// bit-identical to the original group firing), attaches the journal.
  static Result<std::unique_ptr<Session>> Open(const std::string& dir,
                                               Params params = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session() override;

  const std::shared_ptr<SymbolTable>& symbols() const {
    return db_.symbols();
  }

  // --- writes ---

  /// Starts a transaction bound to this session's commit pipeline.
  /// Thread-safe; any number of transactions may be in flight and
  /// Commit() concurrently.
  Transaction Begin();

  /// Runs the rules with NO user updates (ActiveDatabase::Stabilize),
  /// serialized with the commit pipeline.
  CommitResult Stabilize();

  /// Bulk-loads fact text WITHOUT firing rules, then republishes the
  /// read snapshot. Setup-time convenience; serialized with commits.
  Status LoadFacts(std::string_view facts_text);

  // --- reads ---

  /// Pins and returns the current committed state. O(#relations), never
  /// blocks behind an in-flight commit's evaluation (only behind the
  /// pointer swap that publishes one).
  park::Snapshot Snapshot();

  /// One-shot query against the current committed state (equivalent to
  /// Snapshot().Query(pattern_text) without the pin accounting).
  Result<QueryResult> Query(std::string_view pattern_text);

  // --- maintenance / introspection ---

  /// Checkpoints the underlying database (snapshot + journal truncation),
  /// serialized with the commit pipeline. Requires Open().
  Status Checkpoint();

  /// Sequence number of the newest durable transaction (0 if in-memory).
  uint64_t durable_seq() const;

  /// Live serving counters (group-commit + snapshot lifecycle); the
  /// park-stats-v1 "serving" block. Each committed transaction's report
  /// also carries these in CommitReport::stats.serving as of its batch.
  ParkStats::ServingCounters serving_stats() const;

  size_t max_group_size() const { return max_group_size_; }

  /// CommitSink implementation — Transaction::Commit() lands here; not
  /// meant to be called directly.
  CommitResult CommitThrough(UpdateSet updates) override;

 private:
  explicit Session(ActiveDatabase db, size_t max_group_size);

  /// One queued Transaction::Commit() call.
  struct PendingCommit {
    UpdateSet updates;
    std::unique_ptr<CommitResult> result;
    bool done = false;
  };

  /// Leader path: commits `batch` as one folded firing (or retries its
  /// members individually when poisoned) and fills every member's
  /// result. Takes commit_mutex_ internally.
  void RunBatch(std::vector<PendingCommit*>& batch);

  /// Rebuilds and publishes the pinned snapshot state from the current
  /// committed database. Caller holds commit_mutex_.
  void PublishSnapshotLocked();

  ActiveDatabase db_;
  const size_t max_group_size_;

  /// Serializes access to db_ (batch leaders, Checkpoint, LoadFacts).
  mutable std::mutex commit_mutex_;
  uint64_t batch_seq_ = 0;    // completed batches, 1-based ids
  uint64_t generation_ = 0;   // snapshot publishes
  ParkStats::ServingCounters batch_counters_;  // guarded by commit_mutex_

  /// Group-commit queue. commit_in_progress_ marks an active leader;
  /// followers wait on group_cv_ until their entry is done or leadership
  /// frees up.
  std::mutex queue_mutex_;
  std::condition_variable group_cv_;
  bool commit_in_progress_ = false;
  std::deque<PendingCommit*> queue_;

  /// Published read state; swapped under snapshot_mutex_ only.
  std::mutex snapshot_mutex_;
  std::shared_ptr<const serve_internal::SnapshotState> current_;

  /// Snapshot accounting shared with issued handles (outlives *this).
  std::shared_ptr<serve_internal::ServingShared> shared_;
};

}  // namespace park

#endif  // PARK_SERVE_SESSION_H_
