#include "serve/snapshot.h"

#include <algorithm>
#include <optional>

#include "core/observer.h"
#include "lang/parser.h"
#include "storage/ground_atom.h"

namespace park {

namespace serve_internal {

SnapshotTicket::~SnapshotTicket() {
  if (shared == nullptr) return;
  RunObserver* observer = nullptr;
  {
    std::lock_guard<std::mutex> lock(shared->mutex);
    --shared->snapshots_pinned;
    auto it = shared->pinned_generations.find(generation);
    if (it != shared->pinned_generations.end() && --it->second == 0) {
      shared->pinned_generations.erase(it);
    }
    observer = shared->observer;
  }
  // Notify outside the lock: the callback must not be able to deadlock
  // against a concurrent Snapshot() taking the accounting mutex.
  ObserverHook hook(observer);
  hook.Notify([&](RunObserver& o) { o.OnSnapshotRelease(journal_seq); });
}

}  // namespace serve_internal

size_t Snapshot::size() const {
  size_t total = 0;
  for (const auto& [pred, rel] : state_->relations) {
    (void)pred;
    total += rel.segment->num_rows();
  }
  return total;
}

bool Snapshot::Contains(const GroundAtom& atom) const {
  auto it = state_->relations.find(atom.predicate());
  if (it == state_->relations.end()) return false;
  if (atom.arity() != it->second.arity) return false;
  const std::vector<Value>& args = atom.args().values();
  return it->second.segment->ContainsRow(
      args.data(), args.size(), TupleHash{}(atom.args()));
}

namespace {

/// Mirror of lang/query.cc's BindRow over a flat segment row: binds the
/// pattern's variables against `row`, returning the projected tuple or
/// nullopt when a constant or repeated variable disagrees.
std::optional<Tuple> BindSegmentRow(const AtomPattern& atom,
                                    const Value* row, int num_variables,
                                    const std::vector<int>& projection) {
  std::vector<std::optional<Value>> binding(
      static_cast<size_t>(num_variables));
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    const Value& value = row[i];
    if (term.is_constant()) {
      if (term.constant() != value) return std::nullopt;
      continue;
    }
    auto& slot = binding[static_cast<size_t>(term.var_index())];
    if (slot.has_value()) {
      if (*slot != value) return std::nullopt;
    } else {
      slot = value;
    }
  }
  Tuple out;
  for (int var : projection) out.Append(*binding[static_cast<size_t>(var)]);
  return out;
}

}  // namespace

Result<QueryResult> Snapshot::Query(std::string_view pattern_text) const {
  PARK_ASSIGN_OR_RETURN(ParsedAtomPattern parsed,
                        ParseAtomPattern(pattern_text, state_->symbols));

  QueryResult result;
  std::vector<int> projection;
  for (size_t v = 0; v < parsed.variable_names.size(); ++v) {
    if (parsed.variable_names[v] != "_") {
      projection.push_back(static_cast<int>(v));
      result.variable_names.push_back(parsed.variable_names[v]);
    }
  }

  auto it = state_->relations.find(parsed.atom.predicate);
  if (it == state_->relations.end()) return result;  // never populated
  const Segment& segment = *it->second.segment;

  for (uint32_t r = 0; r < segment.num_rows(); ++r) {
    auto row = BindSegmentRow(parsed.atom, segment.row(r),
                              static_cast<int>(parsed.variable_names.size()),
                              projection);
    if (row.has_value()) result.bindings.push_back(std::move(*row));
  }
  // Segment rows are sorted, but the projection can reorder — sort and
  // dedup exactly like QueryDatabase so results are bit-identical.
  std::sort(result.bindings.begin(), result.bindings.end());
  result.bindings.erase(
      std::unique(result.bindings.begin(), result.bindings.end()),
      result.bindings.end());
  return result;
}

Result<bool> Snapshot::Matches(std::string_view pattern_text) const {
  PARK_ASSIGN_OR_RETURN(QueryResult result, Query(pattern_text));
  return !result.empty();
}

std::vector<std::string> Snapshot::SortedAtomStrings() const {
  const SymbolTable& symbols = *state_->symbols;
  std::vector<std::string> out;
  out.reserve(size());
  for (const auto& [pred, rel] : state_->relations) {
    const Segment& segment = *rel.segment;
    for (uint32_t r = 0; r < segment.num_rows(); ++r) {
      Tuple args;
      const Value* row = segment.row(r);
      for (int c = 0; c < rel.arity; ++c) args.Append(row[c]);
      out.push_back(GroundAtom(pred, std::move(args)).ToString(symbols));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Snapshot::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const std::string& atom : SortedAtomStrings()) {
    if (!first) out += ", ";
    first = false;
    out += atom;
  }
  out += "}";
  return out;
}

}  // namespace park
