// Snapshot: an immutable, refcounted, point-in-time view of a served
// database (docs/SERVING.md).
//
// A Snapshot pins the columnar segment generation that was current when
// Session::Snapshot() was called: every relation's immutable Segment is
// held by shared_ptr, so reads are lock-free and wait-free — no reader
// ever blocks a commit or takes the session's locks — and a later
// compaction defers reclamation of the pinned generation until the last
// Snapshot holding it drops. Because segments are self-contained (they
// copy row values out of the tuple set), a Snapshot stays fully readable
// after arbitrary later commits, after a Checkpoint, and even after the
// issuing Session has been destroyed.
//
// Consistency: a Snapshot observes exactly the state produced by some
// prefix of the committed transaction sequence — never a partially
// applied commit, never an uncommitted batch (oracle-checked in
// tests/serving_oracle_test.cc against a sequential replay).

#ifndef PARK_SERVE_SNAPSHOT_H_
#define PARK_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/query.h"
#include "storage/segment.h"
#include "storage/symbol_table.h"

namespace park {

class RunObserver;
class Session;

namespace serve_internal {

/// Accounting state shared between a Session and every Snapshot it
/// issued, so snapshots outliving the session can still record their
/// release. The observer pointer is nulled when the session dies.
struct ServingShared {
  std::mutex mutex;
  RunObserver* observer = nullptr;
  uint64_t snapshots_opened = 0;
  uint64_t snapshots_pinned = 0;
  /// generation -> live snapshots pinning it (distinct keys = retained
  /// segment generations).
  std::map<uint64_t, uint64_t> pinned_generations;
};

/// The immutable state one snapshot generation pins. Built by the
/// session under its commit lock, then shared read-only.
struct SnapshotState {
  uint64_t journal_seq = 0;  // newest durable txn folded in (0: no journal)
  uint64_t generation = 0;   // session-wide publish counter, 1-based
  std::shared_ptr<SymbolTable> symbols;
  struct PinnedRelation {
    int arity = 0;
    std::shared_ptr<const Segment> segment;
  };
  std::unordered_map<PredicateId, PinnedRelation> relations;
};

/// One issued Snapshot's refcount token: copies of a Snapshot share it,
/// and the last copy's destruction releases the pin (accounting + the
/// OnSnapshotRelease observer event).
struct SnapshotTicket {
  uint64_t journal_seq = 0;
  uint64_t generation = 0;
  std::shared_ptr<ServingShared> shared;
  ~SnapshotTicket();
};

}  // namespace serve_internal

/// Copyable handle; all copies read the same pinned state. Thread-safe:
/// any number of threads may query the same Snapshot concurrently.
class Snapshot {
 public:
  Snapshot() = default;  // empty handle; valid() is false

  bool valid() const { return state_ != nullptr; }

  /// Journal sequence number of the newest transaction this snapshot
  /// includes (0 for an in-memory session's pre-commit state).
  uint64_t journal_seq() const { return state_->journal_seq; }

  /// The session's publish counter when this snapshot was taken; two
  /// snapshots with equal generation pin the very same segments.
  uint64_t generation() const { return state_->generation; }

  const std::shared_ptr<SymbolTable>& symbols() const {
    return state_->symbols;
  }

  /// Number of atoms across all predicates.
  size_t size() const;
  bool empty() const { return size() == 0; }

  bool Contains(const GroundAtom& atom) const;

  /// Pattern query (lang/query.h semantics) against the pinned state:
  ///   snapshot.Query("payroll(X, S)")
  /// Same results as QueryDatabase against the database at this
  /// snapshot's commit boundary, bit-identical ordering included.
  Result<QueryResult> Query(std::string_view pattern_text) const;

  /// True iff at least one atom matches (`exists` query).
  Result<bool> Matches(std::string_view pattern_text) const;

  /// All atoms as sorted, rendered strings — deterministic; the oracle
  /// tests compare these against a sequential replay.
  std::vector<std::string> SortedAtomStrings() const;

  /// "{p(a), q(a, b)}" with atoms sorted by rendered text.
  std::string ToString() const;

 private:
  friend class Session;
  Snapshot(std::shared_ptr<const serve_internal::SnapshotState> state,
           std::shared_ptr<serve_internal::SnapshotTicket> ticket)
      : state_(std::move(state)), ticket_(std::move(ticket)) {}

  std::shared_ptr<const serve_internal::SnapshotState> state_;
  std::shared_ptr<serve_internal::SnapshotTicket> ticket_;
};

}  // namespace park

#endif  // PARK_SERVE_SNAPSHOT_H_
