#include "serve/session.h"

#include <utility>

#include "util/logging.h"

namespace park {

Session::Session(ActiveDatabase db, size_t max_group_size)
    : db_(std::move(db)),
      max_group_size_(max_group_size == 0 ? 1 : max_group_size),
      shared_(std::make_shared<serve_internal::ServingShared>()) {
  shared_->observer = db_.options().observer;
  std::lock_guard<std::mutex> lock(commit_mutex_);
  PublishSnapshotLocked();
}

Session::~Session() {
  // Snapshots may outlive the session; cut the observer loose so their
  // release accounting cannot call into freed memory.
  std::lock_guard<std::mutex> lock(shared_->mutex);
  shared_->observer = nullptr;
}

Result<std::unique_ptr<Session>> Session::Create(Params params) {
  ActiveDatabase db(params.symbols);
  if (!params.rules.empty()) {
    PARK_RETURN_IF_ERROR(
        db.LoadRules(params.rules).WithContext("installing rules"));
  }
  PARK_RETURN_IF_ERROR(
      db.Configure(std::move(params.options)).WithContext("Session::Create"));
  return std::unique_ptr<Session>(
      new Session(std::move(db), params.max_group_size));
}

Result<std::unique_ptr<Session>> Session::Open(const std::string& dir,
                                               Params params) {
  ActiveDatabase::OpenParams open;
  open.rules = std::move(params.rules);
  open.symbols = std::move(params.symbols);
  open.env = params.env;
  open.sync_mode = params.sync_mode;
  open.options = std::move(params.options);
  PARK_ASSIGN_OR_RETURN(ActiveDatabase db,
                        ActiveDatabase::Open(dir, std::move(open)));
  return std::unique_ptr<Session>(
      new Session(std::move(db), params.max_group_size));
}

Transaction Session::Begin() { return Transaction(this, db_.symbols()); }

CommitResult Session::Stabilize() {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  CommitResult result = db_.Stabilize();
  if (result.ok()) PublishSnapshotLocked();
  return result;
}

Status Session::LoadFacts(std::string_view facts_text) {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  PARK_RETURN_IF_ERROR(db_.LoadFacts(facts_text));
  PublishSnapshotLocked();
  return Status::OK();
}

Status Session::Checkpoint() {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  return db_.Checkpoint();
}

uint64_t Session::durable_seq() const {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  return db_.durable_seq();
}

park::Snapshot Session::Snapshot() {
  std::shared_ptr<const serve_internal::SnapshotState> state;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    state = current_;
  }
  auto ticket = std::make_shared<serve_internal::SnapshotTicket>();
  ticket->journal_seq = state->journal_seq;
  ticket->generation = state->generation;
  ticket->shared = shared_;
  RunObserver* observer = nullptr;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    ++shared_->snapshots_opened;
    ++shared_->snapshots_pinned;
    ++shared_->pinned_generations[state->generation];
    observer = shared_->observer;
  }
  ObserverHook hook(observer);
  hook.Notify([&](RunObserver& o) { o.OnSnapshotOpen(state->journal_seq); });
  return park::Snapshot(std::move(state), std::move(ticket));
}

Result<QueryResult> Session::Query(std::string_view pattern_text) {
  std::shared_ptr<const serve_internal::SnapshotState> state;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    state = current_;
  }
  return park::Snapshot(std::move(state), nullptr).Query(pattern_text);
}

ParkStats::ServingCounters Session::serving_stats() const {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  ParkStats::ServingCounters counters = batch_counters_;
  std::lock_guard<std::mutex> shared_lock(shared_->mutex);
  counters.snapshots_opened = shared_->snapshots_opened;
  counters.snapshots_pinned = shared_->snapshots_pinned;
  counters.segment_generations_retained = shared_->pinned_generations.size();
  return counters;
}

CommitResult Session::CommitThrough(UpdateSet updates) {
  PendingCommit request;
  request.updates = std::move(updates);

  std::unique_lock<std::mutex> queue_lock(queue_mutex_);
  queue_.push_back(&request);
  while (!request.done) {
    if (commit_in_progress_) {
      // A leader is running a batch; it marks our entry done (if drained)
      // and notifies when leadership frees up.
      group_cv_.wait(queue_lock);
      continue;
    }
    // Become the leader: drain up to max_group_size_ queued commits
    // (FIFO, so every earlier arrival folds in before ours) and run them
    // as one batch. If the queue outran the cap and our own entry was
    // not drained, loop and lead again.
    commit_in_progress_ = true;
    std::vector<PendingCommit*> batch;
    while (!queue_.empty() && batch.size() < max_group_size_) {
      batch.push_back(queue_.front());
      queue_.pop_front();
    }
    queue_lock.unlock();
    RunBatch(batch);
    queue_lock.lock();
    for (PendingCommit* member : batch) member->done = true;
    commit_in_progress_ = false;
    group_cv_.notify_all();
  }
  return std::move(*request.result);
}

void Session::RunBatch(std::vector<PendingCommit*>& batch) {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  const uint64_t batch_seq = ++batch_seq_;
  const size_t k = batch.size();

  bool committed_any = false;
  bool poisoned = false;
  uint64_t journal_seq = 0;

  if (k == 1) {
    CommitResult result = db_.CommitUpdates(batch[0]->updates, 1);
    if (result.ok()) {
      committed_any = true;
      journal_seq = result->journal_seq;
      result->batch_seq = batch_seq;
      batch_counters_.RecordBatch(1);
    }
    batch[0]->result = std::make_unique<CommitResult>(std::move(result));
  } else {
    // Fold U1 ∪ ... ∪ Uk: one deterministic firing, one journal record.
    // UpdateSet dedups, so overlapping members fold cleanly.
    UpdateSet folded;
    for (PendingCommit* member : batch) {
      for (const Update& update : member->updates.updates()) {
        folded.Add(update.action, update.atom);
      }
    }
    CommitResult result = db_.CommitUpdates(folded, k);
    if (result.ok()) {
      committed_any = true;
      journal_seq = result->journal_seq;
      batch_counters_.RecordBatch(k);
      for (size_t i = 0; i < k; ++i) {
        // Every member reports the whole batch's effect (the firing is
        // one PARK run) plus its own placement within the batch.
        CommitReport member_report = *result;
        member_report.batch_seq = batch_seq;
        member_report.batch_size = static_cast<uint32_t>(k);
        member_report.batch_position = static_cast<uint32_t>(i);
        batch[i]->result =
            std::make_unique<CommitResult>(std::move(member_report));
      }
    } else {
      // Poisoned batch: the folded firing failed (conflicting members,
      // a budget, ...). Fall back to committing members individually in
      // arrival order so one bad transaction cannot fail its batchmates;
      // each retry is its own firing and journal record.
      poisoned = true;
      ++batch_counters_.poisoned_batches;
      for (size_t i = 0; i < k; ++i) {
        CommitResult member_result = db_.CommitUpdates(batch[i]->updates, 1);
        ++batch_counters_.individual_retries;
        if (member_result.ok()) {
          committed_any = true;
          journal_seq = member_result->journal_seq;
          member_result->batch_seq = batch_seq;
          batch_counters_.RecordBatch(1);
        }
        batch[i]->result =
            std::make_unique<CommitResult>(std::move(member_result));
      }
    }
  }

  if (committed_any) PublishSnapshotLocked();

  // Stamp the serving counters (batch + snapshot lifecycle) into every
  // successful member's stats so one report renders a complete
  // park-stats-v1 document.
  {
    ParkStats::ServingCounters counters = batch_counters_;
    {
      std::lock_guard<std::mutex> shared_lock(shared_->mutex);
      counters.snapshots_opened = shared_->snapshots_opened;
      counters.snapshots_pinned = shared_->snapshots_pinned;
      counters.segment_generations_retained =
          shared_->pinned_generations.size();
    }
    for (PendingCommit* member : batch) {
      if (member->result != nullptr && member->result->ok()) {
        (*member->result)->stats.serving = counters;
      }
    }
  }

  ObserverHook hook(db_.options().observer);
  hook.Notify([&](RunObserver& o) {
    o.OnBatchCommit(BatchCommitInfo{batch_seq, k, journal_seq, poisoned});
  });
}

void Session::PublishSnapshotLocked() {
  const Database& database = db_.database();
  database.CompactColumnar();
  auto state = std::make_shared<serve_internal::SnapshotState>();
  state->journal_seq = db_.durable_seq();
  state->generation = ++generation_;
  state->symbols = db_.symbols();
  database.ForEachRelation([&](PredicateId pred, const Relation& rel) {
    state->relations.emplace(
        pred, serve_internal::SnapshotState::PinnedRelation{
                  rel.arity(), rel.SharedSegment()});
  });
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  current_ = std::move(state);
}

}  // namespace park
