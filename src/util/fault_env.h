// FaultInjectingEnv: an Env decorator that makes I/O fail on demand.
//
// Every mutating operation (open-for-write, append, flush, sync, close,
// rename, remove, truncate, mkdir) is numbered in program order. A
// FaultPlan picks one index and a failure kind:
//
//   kFailOp     — that one operation returns kInternal; later ops succeed
//                 (a transient fault the caller is expected to surface).
//   kShortWrite — if the operation is an Append, only a prefix of the
//                 data reaches the file before the error; later ops
//                 succeed (a disk-full / short-write fault).
//   kCrash      — the operation fails (an Append tears, persisting only a
//                 prefix) and EVERY subsequent operation fails too: the
//                 process is "dead" from that point on. Recovery is then
//                 exercised by re-reading the directory with a clean Env.
//
// Iterating kCrash over every index 0..op_count() simulates a crash at
// every syscall of a workload — the crash-point harness in
// tests/crash_point_test.cc.
//
// Independently of the one-shot FaultPlan, a TransientFaults config makes
// operations fail with kUnavailable — the retryable class (EAGAIN-style):
// per-syscall-class fail-the-first-N-calls-then-succeed counters, plus a
// seeded random mode where each operation fails with a fixed probability.
// A transient append persists NOTHING (the caller is expected to retry
// the whole payload), unlike the tearing one-shot kinds.

#ifndef PARK_UTIL_FAULT_ENV_H_
#define PARK_UTIL_FAULT_ENV_H_

#include <cstdint>

#include "util/env.h"

namespace park {

struct FaultPlan {
  enum class Kind { kFailOp, kShortWrite, kCrash };

  /// Index of the first faulty operation; -1 injects nothing (the env is
  /// then a pure pass-through that still counts operations).
  int64_t fault_at = -1;
  Kind kind = Kind::kCrash;
  /// For kShortWrite / kCrash: the fraction of an Append's payload that
  /// still reaches the file, in percent. 50 tears mid-record; 0 loses the
  /// write entirely; 100 persists it fully before "crashing".
  int torn_write_percent = 50;
};

/// Retryable-failure injection (kUnavailable), layered under the one-shot
/// FaultPlan: an operation the plan lets through may still fail
/// transiently. Deterministic given the same config and call sequence.
struct TransientFaults {
  /// Fail the first N calls of each class with kUnavailable, then succeed
  /// forever — the fail-N-times-then-succeed mode retry loops are tested
  /// against.
  int fail_appends = 0;
  int fail_flushes = 0;
  int fail_syncs = 0;
  int fail_opens = 0;
  /// Seeded random mode: every charged operation fails with
  /// `random_percent`% probability (0 disables), at most
  /// `random_max_failures` failures in total (0 = unlimited). The
  /// deterministic PRNG is seeded with `random_seed`.
  uint32_t random_seed = 0;
  int random_percent = 0;
  int random_max_failures = 0;
};

class FaultInjectingEnv final : public Env {
 public:
  /// Wraps `base` (not owned; typically Env::Default()).
  explicit FaultInjectingEnv(Env* base, FaultPlan plan = {});

  /// Installs (or replaces) the transient-failure config. Counters and
  /// the random stream restart from the new config.
  void set_transient(TransientFaults transient) {
    transient_ = transient;
    random_state_ = transient.random_seed;
    transient_injected_ = 0;
  }

  /// Mutating operations observed so far (faulted ones included).
  int64_t op_count() const { return op_count_; }
  /// True once a kCrash fault has fired; all later calls fail.
  bool crashed() const { return crashed_; }
  /// kUnavailable failures injected so far (both modes).
  int64_t transient_failures() const { return transient_injected_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& path) override;

 private:
  friend class FaultInjectingWritableFile;

  /// Charges one operation. Returns non-OK if this op must fail (and
  /// flips crashed_ for kCrash plans).
  Status ChargeOp(const char* op);
  /// Like ChargeOp but for appends: when the fault fires with a tearing
  /// kind, `*torn_bytes` is set to how many payload bytes to persist.
  Status ChargeAppend(size_t payload_size, size_t* torn_bytes);
  /// Transient layer for one operation of the given class. `counter` is
  /// the class's fail-N counter (null for classes with none). Returns
  /// kUnavailable if the operation must fail transiently.
  Status ChargeTransient(const char* op, int* counter);

  Env* base_;
  FaultPlan plan_;
  TransientFaults transient_;
  uint64_t random_state_ = 0;
  int64_t transient_injected_ = 0;
  int64_t op_count_ = 0;
  bool crashed_ = false;
};

}  // namespace park

#endif  // PARK_UTIL_FAULT_ENV_H_
