#include "util/arena.h"

#include <algorithm>

#include "util/logging.h"

namespace park {

Arena::Arena(size_t first_chunk_bytes)
    : next_chunk_bytes_(std::max<size_t>(first_chunk_bytes, 64)) {}

void* Arena::Alloc(size_t bytes, size_t align) {
  PARK_CHECK(align != 0 && (align & (align - 1)) == 0)
      << "arena alignment must be a power of two";
  uintptr_t p = reinterpret_cast<uintptr_t>(cursor_);
  uintptr_t aligned = (p + (align - 1)) & ~(static_cast<uintptr_t>(align) - 1);
  size_t padding = aligned - p;
  if (cursor_ == nullptr ||
      bytes + padding > static_cast<size_t>(limit_ - cursor_)) {
    // A fresh chunk is max_align_t-aligned, so no padding is needed.
    NextChunk(bytes);
    aligned = reinterpret_cast<uintptr_t>(cursor_);
    padding = 0;
  }
  cursor_ = reinterpret_cast<uint8_t*>(aligned) + bytes;
  bytes_used_ += bytes + padding;
  return reinterpret_cast<void*>(aligned);
}

void Arena::NextChunk(size_t bytes) {
  // Reuse an already-owned chunk if the next one fits (post-Reset path).
  size_t next = chunks_.empty() || cursor_ == nullptr ? 0 : active_chunk_ + 1;
  while (next < chunks_.size()) {
    if (chunks_[next].size >= bytes) {
      active_chunk_ = next;
      cursor_ = chunks_[next].data.get();
      limit_ = cursor_ + chunks_[next].size;
      return;
    }
    ++next;
  }
  size_t chunk_bytes = std::max(next_chunk_bytes_, bytes);
  next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
  Chunk chunk;
  chunk.data = std::make_unique<uint8_t[]>(chunk_bytes);
  chunk.size = chunk_bytes;
  bytes_reserved_ += chunk_bytes;
  chunks_.push_back(std::move(chunk));
  active_chunk_ = chunks_.size() - 1;
  cursor_ = chunks_.back().data.get();
  limit_ = cursor_ + chunk_bytes;
}

void Arena::Reset() {
  bytes_used_ = 0;
  if (chunks_.empty()) {
    cursor_ = limit_ = nullptr;
    return;
  }
  active_chunk_ = 0;
  cursor_ = chunks_[0].data.get();
  limit_ = cursor_ + chunks_[0].size;
}

}  // namespace park
