#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace park {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel SetMinLogLevel(LogLevel level) {
  return g_min_level.exchange(level);
}

LogLevel GetMinLogLevel() { return g_min_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), file_(file), line_(line), fatal_(fatal) {}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= g_min_level.load()) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), file_, line_,
                 stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace park
