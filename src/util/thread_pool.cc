#include "util/thread_pool.h"

#include "util/logging.h"
#include "util/metrics.h"

namespace park {

int ResolveNumThreads(int requested) {
  unsigned hw = std::thread::hardware_concurrency();
  int hardware = hw == 0 ? 1 : static_cast<int>(hw);
  if (requested <= 0) return hardware;
  int max_threads = 4 * hardware;
  if (requested > max_threads) {
    PARK_LOG(kWarning) << "num_threads=" << requested << " exceeds 4x "
                       << "hardware_concurrency (" << hardware
                       << "); clamping to " << max_threads;
    return max_threads;
  }
  return requested;
}

ThreadPool::ThreadPool(int num_threads) {
  PARK_CHECK_GE(num_threads, 1) << "a pool needs at least the caller";
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunSection(FunctionRef<void(size_t)> fn, size_t n,
                            size_t chunk) {
  while (true) {
    size_t begin = cursor_.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= n) return;
    size_t end = begin + chunk < n ? begin + chunk : n;
    for (size_t i = begin; i < end; ++i) fn(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    FunctionRef<void(size_t)>* fn = nullptr;
    size_t n = 0;
    size_t chunk = 1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      fn = const_cast<FunctionRef<void(size_t)>*>(section_fn_);
      n = section_n_;
      chunk = section_chunk_;
    }
    RunSection(*fn, n, chunk);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, FunctionRef<void(size_t)> fn,
                             size_t chunk) {
  if (chunk == 0) chunk = 1;
  if (n == 0) return;  // empty sections run (and count) nothing
  bool expected = false;
  PARK_CHECK(in_parallel_for_.compare_exchange_strong(expected, true))
      << "re-entrant ThreadPool::ParallelFor (a task body called back "
         "into its own pool; nested sections are not supported)";
  ++sections_run_;
  tasks_executed_ += n;
  if (n > max_section_tasks_) max_section_tasks_ = n;
  const int64_t start_ns = collect_timing_ ? MonotonicNanos() : 0;
  if (workers_.empty()) {
    RunSection(fn, n, chunk);
    if (collect_timing_) {
      busy_ns_ += static_cast<uint64_t>(MonotonicNanos() - start_ns);
    }
    in_parallel_for_.store(false);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    section_fn_ = &fn;
    section_n_ = n;
    section_chunk_ = chunk;
    cursor_.store(0, std::memory_order_relaxed);
    workers_pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  RunSection(fn, n, chunk);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_pending_ == 0; });
  section_fn_ = nullptr;
  if (collect_timing_) {
    busy_ns_ += static_cast<uint64_t>(MonotonicNanos() - start_ns);
  }
  in_parallel_for_.store(false);
}

}  // namespace park
