// Arena: a bump allocator for per-task scratch memory.
//
// The body matcher's compiled execution path (engine/matcher.cc) allocates
// a substitution frame plus one candidate buffer per generator step for
// every rule it matches — thousands of tiny, identically-shaped
// allocations per Γ step. An Arena turns each of those into a pointer
// bump: memory is carved from geometrically growing chunks, nothing is
// ever freed individually, and Reset() rewinds to empty while KEEPING the
// chunks, so steady-state matching performs zero heap allocation once the
// high-water mark is reached.
//
// Restrictions, by design:
//   - Alloc'd objects are never destroyed: only trivially destructible
//     types may live in an arena (enforced by AllocArray).
//   - Not thread-safe. Each worker thread owns its own Arena (the matcher
//     keeps one per thread in thread-local scratch).

#ifndef PARK_UTIL_ARENA_H_
#define PARK_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace park {

class Arena {
 public:
  /// `first_chunk_bytes` sizes the initial chunk; subsequent chunks double
  /// until kMaxChunkBytes.
  explicit Arena(size_t first_chunk_bytes = kDefaultChunkBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns nullptr; Alloc(0) returns a valid unique pointer.
  void* Alloc(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed array allocation. T must be trivially destructible (nothing in
  /// an arena is ever destroyed) — trivially copyable covers every matcher
  /// scratch type (Value, const Tuple*, int).
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Alloc(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, keeping every chunk for reuse. O(#chunks).
  void Reset();

  /// A position in the allocation stream. Allocations are properly nested
  /// in the matcher (a step's buffers are fully grown before the next
  /// step's begin), so rewinding to a mark reclaims everything allocated
  /// after it — the backtracking executor's per-step undo.
  struct Mark {
    size_t chunk = 0;
    uint8_t* cursor = nullptr;
    uint8_t* limit = nullptr;
    size_t used = 0;
  };
  Mark mark() const { return Mark{active_chunk_, cursor_, limit_, bytes_used_}; }
  void Rewind(Mark m) {
    active_chunk_ = m.chunk;
    cursor_ = m.cursor;
    limit_ = m.limit;
    bytes_used_ = m.used;
  }

  /// Bytes handed out since the last Reset (diagnostics).
  size_t bytes_used() const { return bytes_used_; }
  /// Bytes of chunk capacity currently owned (the high-water footprint).
  size_t bytes_reserved() const { return bytes_reserved_; }

  static constexpr size_t kDefaultChunkBytes = 16 * 1024;
  static constexpr size_t kMaxChunkBytes = 4 * 1024 * 1024;

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  /// Makes `cursor_`/`limit_` span a chunk with >= `bytes` free.
  void NextChunk(size_t bytes);

  std::vector<Chunk> chunks_;
  size_t active_chunk_ = 0;  // index into chunks_ the cursor points into
  uint8_t* cursor_ = nullptr;
  uint8_t* limit_ = nullptr;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  size_t next_chunk_bytes_;
};

/// A minimal growable array living entirely in an Arena: push_back doubles
/// into fresh arena storage and memcpy's (T must be trivially copyable).
/// Discarded wholesale by Arena::Reset — never destroyed. Used for the
/// matcher's candidate buffers, whose size is unknown until the candidate
/// scan finishes.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec grows by memcpy");

 public:
  /// A default-constructed ArenaVec is empty and must be assigned a real
  /// one before push_back (scratch slots are rebound to an arena per use).
  ArenaVec() : arena_(nullptr) {}
  explicit ArenaVec(Arena* arena) : arena_(arena) {}

  void push_back(T v) {
    if (size_ == capacity_) Grow();
    data_[size_++] = v;
  }

  void clear() { size_ = 0; }  // keeps capacity (arena storage)

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }

 private:
  void Grow() {
    size_t new_capacity = capacity_ == 0 ? 16 : capacity_ * 2;
    T* new_data = arena_->AllocArray<T>(new_capacity);
    if (size_ > 0) std::memcpy(new_data, data_, size_ * sizeof(T));
    data_ = new_data;
    capacity_ = new_capacity;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace park

#endif  // PARK_UTIL_ARENA_H_
