#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace park {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return std::nullopt;
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(value);
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatWithSeparators(int64_t n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += '_';
    out += *it;
    ++count;
  }
  if (n < 0) out += '-';
  return std::string(out.rbegin(), out.rend());
}

}  // namespace park
