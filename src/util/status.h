// Status and Result<T>: the error-handling vocabulary of the park library.
//
// The library does not use exceptions. Fallible operations return a
// `park::Status` (or a `park::Result<T>` when they also produce a value).
// Internal invariant violations use the PARK_CHECK macros from logging.h,
// which abort.

#ifndef PARK_UTIL_STATUS_H_
#define PARK_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace park {

/// Broad classification of an error. Mirrors the usual database-engine
/// taxonomy; `kOk` is the success sentinel.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // Malformed input from the caller (bad rule text, ...).
  kNotFound,          // A named entity (relation, rule) does not exist.
  kAlreadyExists,     // Attempt to redefine an existing entity.
  kFailedPrecondition,// Operation not valid in the current state.
  kOutOfRange,        // Index or arity out of range.
  kResourceExhausted, // A configured limit (e.g. max_steps) was exceeded.
  kInternal,          // Invariant violation that was recoverable.
  kUnimplemented,     // Feature intentionally not available.
  kAborted,           // Operation gave up (e.g. policy made no progress).
  kDataLoss,          // Unrecoverable corruption of persisted state.
  kCancelled,         // The caller asked for the operation to stop.
  kDeadlineExceeded,  // A wall-clock deadline expired mid-operation.
  kUnavailable,       // Transient failure; retrying may succeed.
};

/// Returns the canonical lower-case name of `code` ("ok", "invalid
/// argument", ...). Never returns an empty view.
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); carries a code and a human-readable message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and `message`. If `code` is `kOk` the
  /// message is dropped and the result is the OK status.
  Status(StatusCode code, std::string message);

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// separated by ": ". OK statuses are returned unchanged.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Factory helpers, one per error code.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status AbortedError(std::string message);
Status DataLossError(std::string message);
Status CancelledError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnavailableError(std::string message);

/// A value of type `T`, or the Status explaining why it is absent.
/// `Result` is movable; it is copyable iff `T` is.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value: success case.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from a non-OK status: error case. Constructing a
  /// Result from an OK status is an internal-error Result.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal,
                       "Result constructed from OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The status: OK() when a value is present.
  Status status() const { return ok() ? Status::OK() : status_; }

  /// Accessors. Must only be called when ok(); checked in debug builds via
  /// the standard library's optional assertions.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status from the current function.
/// Usage: PARK_RETURN_IF_ERROR(DoThing());
#define PARK_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::park::Status _park_status = (expr);           \
    if (!_park_status.ok()) return _park_status;    \
  } while (false)

/// Evaluates a Result<T> expression; on error returns the status, otherwise
/// moves the value into `lhs`. `lhs` must be a declaration or assignable.
/// Usage: PARK_ASSIGN_OR_RETURN(auto prog, ParseProgram(text));
#define PARK_ASSIGN_OR_RETURN(lhs, expr)                          \
  PARK_ASSIGN_OR_RETURN_IMPL_(                                    \
      PARK_STATUS_CONCAT_(_park_result, __LINE__), lhs, expr)

#define PARK_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#define PARK_STATUS_CONCAT_INNER_(a, b) a##b
#define PARK_STATUS_CONCAT_(a, b) PARK_STATUS_CONCAT_INNER_(a, b)

}  // namespace park

#endif  // PARK_UTIL_STATUS_H_
