#include "util/json.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace park {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Indent() {
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::Prepare() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value goes right after "key": on the same line
  }
  if (stack_.empty()) return;  // the root value
  PARK_CHECK(!stack_.back())
      << "JsonWriter: values inside an object need a Key() first";
  if (has_elements_.back()) out_ += ',';
  out_ += '\n';
  Indent();
  has_elements_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  Prepare();
  out_ += '{';
  stack_.push_back(true);
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  PARK_CHECK(!stack_.empty() && stack_.back())
      << "JsonWriter: EndObject without matching BeginObject";
  bool had_elements = has_elements_.back();
  stack_.pop_back();
  has_elements_.pop_back();
  if (had_elements) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Prepare();
  out_ += '[';
  stack_.push_back(false);
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  PARK_CHECK(!stack_.empty() && !stack_.back())
      << "JsonWriter: EndArray without matching BeginArray";
  bool had_elements = has_elements_.back();
  stack_.pop_back();
  has_elements_.pop_back();
  if (had_elements) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  PARK_CHECK(!stack_.empty() && stack_.back() && !pending_key_)
      << "JsonWriter: Key() is only valid directly inside an object";
  if (has_elements_.back()) out_ += ',';
  out_ += '\n';
  Indent();
  has_elements_.back() = true;
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Prepare();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Prepare();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  Prepare();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  Prepare();
  // JSON has no NaN/Inf; clamp to null rather than emit garbage.
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    out_ += StrFormat("%.6g", value);
  }
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Prepare();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Prepare();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  Prepare();
  out_ += json;
  return *this;
}

std::string JsonWriter::str() && {
  PARK_CHECK(stack_.empty())
      << "JsonWriter: document finished with unclosed containers";
  return std::move(out_);
}

}  // namespace park
