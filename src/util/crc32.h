// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
// journal records. Software table-driven implementation; fast enough that
// the checksum never shows up next to an fsync in a profile.

#ifndef PARK_UTIL_CRC32_H_
#define PARK_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace park {

/// Extends a running CRC with `data`. Start from kCrc32Init and finish
/// with Crc32Finish, or use the one-shot Crc32 below.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t crc, std::string_view data);
inline uint32_t Crc32Finish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

/// One-shot CRC-32 of `data`.
inline uint32_t Crc32(std::string_view data) {
  return Crc32Finish(Crc32Update(kCrc32Init, data));
}

}  // namespace park

#endif  // PARK_UTIL_CRC32_H_
