// JsonWriter: a minimal append-only JSON emitter.
//
// The observability layer (ParkStats::ToJson, MetricsRegistry::ToJson,
// the bench binaries) emits machine-readable JSON that external tooling
// parses (tools/check_stats_schema.py, the CI schema gate), so the
// emission must be structurally correct — balanced braces, quoted keys,
// escaped strings, no trailing commas — which hand-rolled StrFormat
// concatenation cannot guarantee. JsonWriter tracks nesting and comma
// state so call sites only state the shape:
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("steps").UInt(stats.gamma_steps);
//   w.Key("cases").BeginArray();
//   for (...) { w.BeginObject(); ... w.EndObject(); }
//   w.EndArray();
//   w.EndObject();
//   std::string json = std::move(w).str();
//
// Not a parser, not streaming, no pretty-printing knobs beyond a fixed
// two-space indent: just enough for the repo's export formats.

#ifndef PARK_UTIL_JSON_H_
#define PARK_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace park {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \uXXXX.
std::string JsonEscape(std::string_view text);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; the next call must emit its value.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices `json` in verbatim as one value — for embedding an already
  /// rendered document (e.g. ParkStats::ToJson inside a bench envelope).
  /// The caller vouches that `json` is itself well-formed.
  JsonWriter& RawValue(std::string_view json);

  /// Finishes and returns the document. All containers must be closed.
  std::string str() &&;

 private:
  /// Emits the separator/indent owed before a new value or key.
  void Prepare();
  void Indent();

  std::string out_;
  /// One entry per open container: true for objects, false for arrays.
  std::vector<bool> stack_;
  /// Whether the current container already holds an element.
  std::vector<bool> has_elements_;
  /// A Key() was just written; the next value follows on the same line.
  bool pending_key_ = false;
};

}  // namespace park

#endif  // PARK_UTIL_JSON_H_
