#include "util/metrics.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "util/json.h"

namespace park {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MetricsRegistry::Counter* MetricsRegistry::GetCounter(
    std::string_view name) {
  std::string key(name);
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return it->second;
  counters_.push_back(Counter{key, 0});
  Counter* slot = &counters_.back();
  counter_index_.emplace(std::move(key), slot);
  return slot;
}

MetricsRegistry::Timer* MetricsRegistry::GetTimer(std::string_view name) {
  std::string key(name);
  auto it = timer_index_.find(key);
  if (it != timer_index_.end()) return it->second;
  timers_.push_back(Timer{key, 0, 0});
  Timer* slot = &timers_.back();
  timer_index_.emplace(std::move(key), slot);
  return slot;
}

void MetricsRegistry::Reset() {
  for (Counter& c : counters_) c.value = 0;
  for (Timer& t : timers_) {
    t.count = 0;
    t.total_ns = 0;
  }
}

std::string MetricsRegistry::ToJson() const {
  std::vector<const Counter*> counters;
  counters.reserve(counters_.size());
  for (const Counter& c : counters_) counters.push_back(&c);
  std::sort(counters.begin(), counters.end(),
            [](const Counter* a, const Counter* b) {
              return a->name < b->name;
            });
  std::vector<const Timer*> timers;
  timers.reserve(timers_.size());
  for (const Timer& t : timers_) timers.push_back(&t);
  std::sort(timers.begin(), timers.end(),
            [](const Timer* a, const Timer* b) { return a->name < b->name; });

  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const Counter* c : counters) w.Key(c->name).UInt(c->value);
  w.EndObject();
  w.Key("timers").BeginObject();
  for (const Timer* t : timers) {
    w.Key(t->name).BeginObject();
    w.Key("count").UInt(t->count);
    w.Key("total_ns").UInt(t->total_ns);
    w.Key("mean_ns").UInt(t->mean_ns());
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).str();
}

}  // namespace park
