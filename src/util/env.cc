#include "util/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace park {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  // Classify: a missing file is kNotFound; momentary conditions the
  // caller may retry (interrupted syscall, resource busy, would-block)
  // are kUnavailable; everything else is permanent damage, kInternal.
  Status (*make)(std::string) = InternalError;
  if (err == ENOENT) {
    make = NotFoundError;
  } else if (err == EINTR || err == EAGAIN || err == EWOULDBLOCK ||
             err == EBUSY) {
    make = UnavailableError;
  }
  return make(StrFormat("%s %s: %s", op, path.c_str(),
                        std::strerror(err)));
}

/// Unbuffered fd-backed writable file. Unbuffered (no stdio layer) so a
/// fault-injecting wrapper sees every byte exactly once and a torn write
/// lands exactly where the wrapper put it.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return FailedPreconditionError("file is closed");
    while (!data.empty()) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  Status Flush() override {
    // Writes go straight to the OS; nothing is buffered here.
    if (fd_ < 0) return FailedPreconditionError("file is closed");
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return FailedPreconditionError("file is closed");
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    flags |= (mode == WriteMode::kTruncate) ? O_TRUNC : O_APPEND;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(path, fd));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string contents;
    char buffer[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buffer, sizeof buffer);
      if (n < 0) {
        if (errno == EINTR) continue;
        // Read failures on an open file are damage, never "missing".
        Status status = InternalError(StrFormat(
            "read %s: %s", path.c_str(), std::strerror(errno)));
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      contents.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return contents;
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat", path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from,
                    const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return InternalError(StrFormat("rename %s -> %s: %s", from.c_str(),
                                     to.c_str(), std::strerror(errno)));
    }
    return SyncParentDir(to);
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return InternalError(StrFormat("remove %s: %s", path.c_str(),
                                     std::strerror(errno)));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", path, errno);
    }
    return Status::OK();
  }

 private:
  static Status SyncParentDir(const std::string& path) {
    size_t slash = path.find_last_of('/');
    std::string dir = (slash == std::string::npos)
                          ? std::string(".")
                          : path.substr(0, slash == 0 ? 1 : slash);
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open dir", dir, errno);
    Status status;
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync dir", dir, errno);
    ::close(fd);
    return status;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Status AtomicWriteFile(Env* env, const std::string& contents,
                       const std::string& path, bool sync) {
  const std::string temp_path = path + ".tmp";
  PARK_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> file,
      env->NewWritableFile(temp_path, Env::WriteMode::kTruncate));
  PARK_RETURN_IF_ERROR(file->Append(contents));
  if (sync) PARK_RETURN_IF_ERROR(file->Sync());
  PARK_RETURN_IF_ERROR(file->Close());
  return env->RenameFile(temp_path, path);
}

}  // namespace park
