// CancellationToken: cooperative run governance for the evaluator.
//
// One token is shared by every thread of one PARK run. It aggregates four
// independent trip conditions — an external cancel request, a wall-clock
// deadline, a memory budget, and a work (derivation) budget — into a
// single sticky "fired" state with a cause. Workers poll `Check()` at a
// bounded stride (every few hundred tuples) and abandon their slice as
// soon as the token fires; the evaluator then converts the cause into a
// Status (`kCancelled` / `kDeadlineExceeded` / `kResourceExhausted`).
//
// The token never frees or owns anything: memory accounting is
// cooperative. A worker opens a MemoryScope, periodically reports how
// many bytes its scratch structures currently hold, and closes the scope
// when its unit of work ends; the token tracks the sum across threads and
// fires when the configured limit is crossed. Overshoot is bounded by the
// polling stride times the per-tuple cost, not by the input size.
//
// All methods are thread-safe. Firing is sticky and monotone: the first
// cause to trip wins; later trips are ignored.

#ifndef PARK_UTIL_CANCELLATION_H_
#define PARK_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace park {

class CancellationToken {
 public:
  /// Why the token fired. `kNone` means it has not fired.
  enum class Cause : int {
    kNone = 0,
    kCancelled,  // RequestCancel() (directly or via a chained parent)
    kDeadline,   // the wall-clock deadline expired
    kMemory,     // the memory budget was exceeded
    kWork,       // the work/derivation budget was exceeded
  };

  /// How often workers should poll `Check()`: once per this many tuples
  /// visited. Bounds both the deadline latency and the budget overshoot.
  static constexpr uint64_t kCheckStride = 512;

  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arms the wall-clock deadline. Call before the run starts.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  /// Arms the memory budget (total bytes across all scopes). 0 disables.
  void SetMemoryLimit(size_t max_bytes) {
    memory_limit_.store(max_bytes, std::memory_order_relaxed);
  }
  /// Arms the work budget (ChargeWork units, e.g. derivations). 0 disables.
  void SetWorkLimit(uint64_t max_units) {
    work_limit_.store(max_units, std::memory_order_relaxed);
  }
  /// Chains an upstream cancel source: if `parent` has fired (for any
  /// cause), this token fires with kCancelled at the next Check(). The
  /// parent must outlive this token. Pass nullptr to unchain.
  void ChainParent(const CancellationToken* parent) { parent_ = parent; }

  /// Trips the token with kCancelled. Safe from any thread, including
  /// ones outside the run (the external-cancel entry point).
  void RequestCancel() { Fire(Cause::kCancelled); }

  /// Polls every trip condition (parent, deadline). Returns true iff the
  /// token has fired. Cheap when no deadline is armed; one clock read
  /// otherwise. Budgets fire at charge time, not here.
  bool Check() {
    if (fired()) return true;
    if (parent_ != nullptr && parent_->fired()) {
      Fire(Cause::kCancelled);
      return true;
    }
    int64_t deadline_ns = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline_ns != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline_ns) {
      Fire(Cause::kDeadline);
      return true;
    }
    return false;
  }

  /// Sticky fired state; no clock read. What workers spin on.
  bool fired() const {
    return cause_.load(std::memory_order_relaxed) !=
           static_cast<int>(Cause::kNone);
  }
  Cause cause() const {
    return static_cast<Cause>(cause_.load(std::memory_order_relaxed));
  }

  /// One worker's share of the memory budget. Open implicitly by value
  /// initialization; report with UpdateScope; release with CloseScope.
  struct MemoryScope {
    size_t charged = 0;
  };

  /// Reports that the structures covered by `scope` now hold `now_bytes`
  /// bytes. Adjusts the global tally by the delta (both directions — a
  /// rewound arena credits back) and fires kMemory if the limit is
  /// crossed. Returns true iff the token has fired (any cause).
  bool UpdateScope(MemoryScope& scope, size_t now_bytes);
  /// Returns the scope's bytes to the budget. Idempotent.
  void CloseScope(MemoryScope& scope);

  /// Charges `units` of work (derivations). Fires kWork past the limit.
  /// Returns true iff the token has fired (any cause).
  bool ChargeWork(uint64_t units);

  /// Bytes currently charged across all open scopes / the high-water mark.
  size_t bytes_in_use() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  size_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t work_charged() const {
    return work_.load(std::memory_order_relaxed);
  }

  /// The fired cause as a Status; OK if the token has not fired.
  Status ToStatus() const;

 private:
  /// First cause wins; later calls are no-ops.
  void Fire(Cause cause) {
    int expected = static_cast<int>(Cause::kNone);
    cause_.compare_exchange_strong(expected, static_cast<int>(cause),
                                   std::memory_order_relaxed);
  }

  std::atomic<int> cause_{static_cast<int>(Cause::kNone)};
  std::atomic<int64_t> deadline_ns_{0};
  std::atomic<size_t> memory_limit_{0};
  std::atomic<uint64_t> work_limit_{0};
  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> peak_bytes_{0};
  std::atomic<uint64_t> work_{0};
  const CancellationToken* parent_ = nullptr;
};

}  // namespace park

#endif  // PARK_UTIL_CANCELLATION_H_
