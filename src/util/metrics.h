// MetricsRegistry: named monotonic counters and phase timers for the
// observability layer (docs/OBSERVABILITY.md).
//
// Design constraints, in order:
//   1. Near-zero overhead when disabled. The hot paths (the Γ loop, the
//      commit pipeline) touch metrics through pre-resolved handles —
//      plain pointers to the counter/timer slots — so the per-event cost
//      is one add. Timers additionally gate their clock reads on the
//      registry's enabled flag: a disabled ScopedPhaseTimer is two
//      branches and no clock call.
//   2. Stable handles. Slots live in a deque; registering more metrics
//      never invalidates previously handed-out pointers.
//   3. One export format. ToJson() renders {"counters": {...},
//      "timers": {...}} with timers reporting count/total_ns/mean_ns,
//      the same shape tools/check_stats_schema.py validates.
//
// Thread model: registration and export are coordinator-only; Counter::
// Add and PhaseTimer recording are NOT internally synchronized. The PARK
// evaluators are single-coordinator by construction (workers fill
// per-task buffers, the coordinator merges), so all metric writes happen
// on the coordinating thread. A registry shared across threads needs
// external ordering, exactly like ParkStats itself.

#ifndef PARK_UTIL_METRICS_H_
#define PARK_UTIL_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace park {

/// Monotonic wall clock, nanoseconds since an arbitrary epoch.
int64_t MonotonicNanos();

class MetricsRegistry {
 public:
  struct Counter {
    std::string name;
    uint64_t value = 0;

    void Add(uint64_t delta = 1) { value += delta; }
  };

  struct Timer {
    std::string name;
    uint64_t count = 0;
    uint64_t total_ns = 0;

    void Record(uint64_t ns) {
      ++count;
      total_ns += ns;
    }
    uint64_t mean_ns() const { return count == 0 ? 0 : total_ns / count; }
  };

  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// When disabled, counters still count (an add is cheaper than a
  /// branch-and-skip would be worth) but timers skip their clock reads.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Finds or registers a counter/timer. The returned handle stays valid
  /// for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Timer* GetTimer(std::string_view name);

  /// Zeroes every value; registrations (and handles) survive.
  void Reset();

  size_t num_counters() const { return counters_.size(); }
  size_t num_timers() const { return timers_.size(); }

  /// {"counters": {name: value, ...},
  ///  "timers": {name: {"count": c, "total_ns": t, "mean_ns": m}, ...}}
  /// Names are sorted so the export is deterministic.
  std::string ToJson() const;

 private:
  bool enabled_;
  std::deque<Counter> counters_;
  std::deque<Timer> timers_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Timer*> timer_index_;
};

/// RAII phase timer. Null-safe: with a null timer (or one whose registry
/// is disabled, when the caller resolved the handle conditionally), both
/// the constructor and destructor reduce to a pointer test.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(MetricsRegistry::Timer* timer)
      : timer_(timer), start_ns_(timer ? MonotonicNanos() : 0) {}

  ~ScopedPhaseTimer() {
    if (timer_ != nullptr) {
      timer_->Record(static_cast<uint64_t>(MonotonicNanos() - start_ns_));
    }
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  MetricsRegistry::Timer* timer_;
  int64_t start_ns_;
};

}  // namespace park

#endif  // PARK_UTIL_METRICS_H_
