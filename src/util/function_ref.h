// FunctionRef: a non-owning, trivially copyable reference to a callable —
// two words (object pointer + trampoline), no heap, no virtual dispatch.
//
// The engine's hot path invokes a callback once per candidate tuple; with
// std::function each level of the callback chain costs a type-erased heap
// object and an indirect call through it. FunctionRef keeps the single
// indirect call but removes the allocation and the double indirection, and
// lets the compiler inline the trampoline when the callee is visible.
//
// Lifetime rule: a FunctionRef must not outlive the callable it was built
// from. All uses in this codebase pass it down a synchronous call chain,
// which is exactly the safe pattern.

#ifndef PARK_UTIL_FUNCTION_REF_H_
#define PARK_UTIL_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace park {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites keep passing lambdas unchanged.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace park

#endif  // PARK_UTIL_FUNCTION_REF_H_
