#include "util/cancellation.h"

namespace park {

bool CancellationToken::UpdateScope(MemoryScope& scope, size_t now_bytes) {
  if (now_bytes != scope.charged) {
    size_t total;
    if (now_bytes > scope.charged) {
      total = bytes_.fetch_add(now_bytes - scope.charged,
                               std::memory_order_relaxed) +
              (now_bytes - scope.charged);
      // Track the high-water mark; racing updates can only undershoot,
      // which is acceptable for a diagnostic counter.
      size_t peak = peak_bytes_.load(std::memory_order_relaxed);
      while (total > peak &&
             !peak_bytes_.compare_exchange_weak(peak, total,
                                                std::memory_order_relaxed)) {
      }
    } else {
      total = bytes_.fetch_sub(scope.charged - now_bytes,
                               std::memory_order_relaxed) -
              (scope.charged - now_bytes);
    }
    scope.charged = now_bytes;
    size_t limit = memory_limit_.load(std::memory_order_relaxed);
    if (limit != 0 && total > limit) Fire(Cause::kMemory);
  }
  return fired();
}

void CancellationToken::CloseScope(MemoryScope& scope) {
  if (scope.charged != 0) {
    bytes_.fetch_sub(scope.charged, std::memory_order_relaxed);
    scope.charged = 0;
  }
}

bool CancellationToken::ChargeWork(uint64_t units) {
  uint64_t total = work_.fetch_add(units, std::memory_order_relaxed) + units;
  uint64_t limit = work_limit_.load(std::memory_order_relaxed);
  if (limit != 0 && total > limit) Fire(Cause::kWork);
  return fired();
}

Status CancellationToken::ToStatus() const {
  switch (cause()) {
    case Cause::kNone:
      return Status::OK();
    case Cause::kCancelled:
      return CancelledError("evaluation cancelled by caller");
    case Cause::kDeadline:
      return DeadlineExceededError("evaluation deadline exceeded");
    case Cause::kMemory:
      return ResourceExhaustedError(
          "evaluation exceeded max_memory_bytes budget");
    case Cause::kWork:
      return ResourceExhaustedError(
          "evaluation exceeded max_derivations budget");
  }
  return InternalError("cancellation token in impossible state");
}

}  // namespace park
