// Small string helpers shared across the library: splitting, joining,
// trimming, numeric parsing, and printf-style formatting into std::string.

#ifndef PARK_UTIL_STRING_UTIL_H_
#define PARK_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace park {

/// Splits `text` on `sep`. Adjacent separators yield empty fields; an empty
/// input yields a single empty field (like most split implementations).
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns `text` with ASCII whitespace removed from both ends.
std::string_view Trim(std::string_view text);

/// Returns true if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a base-10 signed integer; rejects trailing garbage and overflow.
std::optional<int64_t> ParseInt64(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders `n` with thousands separators ("1_234_567") for bench tables.
std::string FormatWithSeparators(int64_t n);

}  // namespace park

#endif  // PARK_UTIL_STRING_UTIL_H_
