// Env: the pluggable filesystem boundary of the park library.
//
// Every byte the library persists (journal appends, snapshot writes,
// checkpoint renames) flows through an Env, so durability code can be
// exercised against a FaultInjectingEnv (fault_env.h) that fails, tears,
// or "crashes" at an arbitrary I/O operation — the foundation of the
// crash-point recovery tests.
//
// Env::Default() is a process-wide POSIX implementation. Error mapping
// is part of the contract: a missing file is kNotFound; momentary
// conditions (EINTR, EAGAIN, EBUSY) are kUnavailable so callers may
// retry; everything else (permissions, EISDIR, short reads) is
// kInternal, so callers can treat "fresh file", "try again", and
// "damaged file" differently.

#ifndef PARK_UTIL_ENV_H_
#define PARK_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace park {

/// A sequential write handle. Append goes to a user-space buffer or the
/// OS page cache; Flush pushes to the OS; Sync makes the bytes durable
/// (fsync). Close implies Flush. Destruction closes silently — callers
/// that care about the final flush must Close() explicitly.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Filesystem primitives. All paths are as the OS sees them; no
/// interpretation happens here.
class Env {
 public:
  enum class WriteMode {
    kTruncate,  // start from an empty file
    kAppend,    // keep existing contents, write at the end
  };

  virtual ~Env() = default;

  /// Opens `path` for writing. Creates the file if absent.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) = 0;

  /// Reads the whole file. kNotFound iff the file does not exist
  /// (ENOENT); any other failure — permission denied, path is a
  /// directory, read error — is kInternal.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Returns the file's size in bytes; kNotFound if it does not exist.
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Atomically replaces `to` with `from`, then fsyncs the parent
  /// directory of `to` so the rename itself is durable.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Removes `path`. Removing a file that does not exist is OK (the
  /// desired postcondition already holds).
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (used to drop a torn journal tail).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Creates `path` as a directory; an already-existing directory is OK.
  virtual Status CreateDir(const std::string& path) = 0;

  /// The POSIX Env. Never null; do not delete.
  static Env* Default();
};

/// Writes `contents` to `path` atomically: writes `path + ".tmp"`,
/// optionally fsyncs it, then renames it over `path`. With `sync` set the
/// data survives a crash at any point (the old or the new contents are
/// visible, never a mix).
Status AtomicWriteFile(Env* env, const std::string& contents,
                       const std::string& path, bool sync);

}  // namespace park

#endif  // PARK_UTIL_ENV_H_
