#include "util/fault_env.h"

#include <string_view>
#include <utility>

#include "util/string_util.h"

namespace park {

/// Wraps a base WritableFile so appends/flushes/syncs/closes are charged
/// against the owning env's fault plan.
class FaultInjectingWritableFile final : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingEnv* env,
                             std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override;
  Status Flush() override;
  Status Sync() override;
  Status Close() override;

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base, FaultPlan plan)
    : base_(base), plan_(plan) {}

Status FaultInjectingEnv::ChargeTransient(const char* op, int* counter) {
  if (counter != nullptr && *counter > 0) {
    --*counter;
    ++transient_injected_;
    return UnavailableError(
        StrFormat("injected transient fault (%s)", op));
  }
  if (transient_.random_percent > 0 &&
      (transient_.random_max_failures == 0 ||
       transient_injected_ < transient_.random_max_failures)) {
    // Deterministic LCG (MMIX constants); high bits for the draw.
    random_state_ =
        random_state_ * 6364136223846793005ull + 1442695040888963407ull;
    if (static_cast<int>((random_state_ >> 33) % 100) <
        transient_.random_percent) {
      ++transient_injected_;
      return UnavailableError(
          StrFormat("injected random transient fault (%s)", op));
    }
  }
  return Status::OK();
}

Status FaultInjectingEnv::ChargeOp(const char* op) {
  if (crashed_) {
    return InternalError(
        StrFormat("injected crash: %s after simulated process death", op));
  }
  const int64_t index = op_count_++;
  if (index == plan_.fault_at) {
    if (plan_.kind == FaultPlan::Kind::kCrash) crashed_ = true;
    return InternalError(
        StrFormat("injected fault at I/O op #%lld (%s)",
                  static_cast<long long>(index), op));
  }
  int* counter = nullptr;
  if (std::string_view(op) == "flush") counter = &transient_.fail_flushes;
  else if (std::string_view(op) == "sync") counter = &transient_.fail_syncs;
  else if (std::string_view(op) == "open") counter = &transient_.fail_opens;
  return ChargeTransient(op, counter);
}

Status FaultInjectingEnv::ChargeAppend(size_t payload_size,
                                       size_t* torn_bytes) {
  *torn_bytes = 0;
  if (crashed_) {
    return InternalError(
        "injected crash: append after simulated process death");
  }
  const int64_t index = op_count_++;
  if (index != plan_.fault_at) {
    // A transient append persists nothing: the caller retries the whole
    // payload, exactly like a write that returned EAGAIN.
    PARK_RETURN_IF_ERROR(
        ChargeTransient("append", &transient_.fail_appends));
    *torn_bytes = payload_size;
    return Status::OK();
  }
  if (plan_.kind == FaultPlan::Kind::kCrash) crashed_ = true;
  if (plan_.kind != FaultPlan::Kind::kFailOp) {
    *torn_bytes = payload_size *
                  static_cast<size_t>(plan_.torn_write_percent) / 100;
  }
  return InternalError(
      StrFormat("injected fault at I/O op #%lld (append, %zu/%zu bytes "
                "persisted)",
                static_cast<long long>(index), *torn_bytes, payload_size));
}

Status FaultInjectingWritableFile::Append(std::string_view data) {
  size_t torn_bytes = 0;
  Status status = env_->ChargeAppend(data.size(), &torn_bytes);
  if (status.ok()) return base_->Append(data);
  if (torn_bytes > 0) {
    // Persist the torn prefix, then report the failure. A real torn
    // write leaves the prefix on disk; recovery must cope with it.
    base_->Append(data.substr(0, torn_bytes));
    base_->Flush();
  }
  return status;
}

Status FaultInjectingWritableFile::Flush() {
  PARK_RETURN_IF_ERROR(env_->ChargeOp("flush"));
  return base_->Flush();
}

Status FaultInjectingWritableFile::Sync() {
  PARK_RETURN_IF_ERROR(env_->ChargeOp("sync"));
  return base_->Sync();
}

Status FaultInjectingWritableFile::Close() {
  PARK_RETURN_IF_ERROR(env_->ChargeOp("close"));
  return base_->Close();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, WriteMode mode) {
  PARK_RETURN_IF_ERROR(ChargeOp("open"));
  PARK_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                        base_->NewWritableFile(path, mode));
  return std::unique_ptr<WritableFile>(
      new FaultInjectingWritableFile(this, std::move(base)));
}

Result<std::string> FaultInjectingEnv::ReadFileToString(
    const std::string& path) {
  // Reads are not charged (crash consistency is about writes), but a
  // crashed process cannot read either.
  if (crashed_) {
    return InternalError(
        "injected crash: read after simulated process death");
  }
  return base_->ReadFileToString(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return !crashed_ && base_->FileExists(path);
}

Result<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  if (crashed_) {
    return InternalError(
        "injected crash: stat after simulated process death");
  }
  return base_->FileSize(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  PARK_RETURN_IF_ERROR(ChargeOp("rename"));
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  PARK_RETURN_IF_ERROR(ChargeOp("remove"));
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  PARK_RETURN_IF_ERROR(ChargeOp("truncate"));
  return base_->TruncateFile(path, size);
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  PARK_RETURN_IF_ERROR(ChargeOp("mkdir"));
  return base_->CreateDir(path);
}

}  // namespace park
