// Minimal leveled logging and CHECK macros.
//
// PARK_CHECK(cond) aborts with a message when `cond` is false; it is used
// for internal invariants only, never for validating user input (user input
// errors are reported via park::Status).

#ifndef PARK_UTIL_LOGGING_H_
#define PARK_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace park {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Collects a message via operator<< and emits it on destruction.
/// If `fatal` is set, destruction aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the minimum level that is actually emitted (default: kWarning, so
/// library code is silent in normal operation). Returns the previous level.
LogLevel SetMinLogLevel(LogLevel level);

/// Returns the current minimum emitted level.
LogLevel GetMinLogLevel();

#define PARK_LOG(level)                                        \
  ::park::internal_logging::LogMessage(::park::LogLevel::level, \
                                       __FILE__, __LINE__)

#define PARK_CHECK(cond)                                                   \
  if (cond) {                                                              \
  } else /* NOLINT */                                                      \
    ::park::internal_logging::LogMessage(::park::LogLevel::kError,         \
                                         __FILE__, __LINE__, /*fatal=*/true) \
        << "Check failed: " #cond " "

#define PARK_CHECK_EQ(a, b) PARK_CHECK((a) == (b))
#define PARK_CHECK_NE(a, b) PARK_CHECK((a) != (b))
#define PARK_CHECK_LT(a, b) PARK_CHECK((a) < (b))
#define PARK_CHECK_LE(a, b) PARK_CHECK((a) <= (b))
#define PARK_CHECK_GT(a, b) PARK_CHECK((a) > (b))
#define PARK_CHECK_GE(a, b) PARK_CHECK((a) >= (b))

}  // namespace park

#endif  // PARK_UTIL_LOGGING_H_
