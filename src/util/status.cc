#include "util/status.h"

namespace park {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kDataLoss:
      return "data loss";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) : code_(code) {
  if (code_ != StatusCode::kOk) message_ = std::move(message);
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string combined(context);
  combined += ": ";
  combined += message_;
  return Status(code_, std::move(combined));
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status AbortedError(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

}  // namespace park
