#include "util/crc32.h"

#include <array>

namespace park {

namespace {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeCrc32Table();

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace park
