// Deterministic random number generation for tests, policies, and workload
// generators. A thin SplitMix64-seeded xoshiro256** engine with convenience
// samplers; deterministic across platforms (unlike std::default_random_engine
// distributions).

#ifndef PARK_UTIL_RANDOM_H_
#define PARK_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace park {

/// A small, fast, reproducible PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0xda3e39cb94b95bdbULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the result is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace park

#endif  // PARK_UTIL_RANDOM_H_
