#include "util/random.h"

namespace park {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  uint64_t result = RotL(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling over the top of the range to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

}  // namespace park
