// Hash combining utilities used by the storage layer's hash tables.

#ifndef PARK_UTIL_HASH_H_
#define PARK_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace park {

/// Mixes `value` into `seed` (boost-style combine with a 64-bit constant).
inline size_t HashCombine(size_t seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Hashes a trivially-hashable value with std::hash and combines.
template <typename T>
size_t HashCombineValue(size_t seed, const T& value) {
  return HashCombine(seed, std::hash<T>{}(value));
}

}  // namespace park

#endif  // PARK_UTIL_HASH_H_
