// ThreadPool: a fixed-size worker pool with a blocking parallel-for.
//
// Built for the Γ evaluator's fan-out: one coordinator thread repeatedly
// issues ParallelFor over a task list (rules, or (rule, seed) pairs),
// workers pull chunks of indexes off a shared atomic cursor, and the call
// returns only when every index has been processed. The pool threads are
// created once and parked on a condition variable between sections, so a
// fixpoint computation with thousands of Γ steps pays thread-spawn cost
// exactly once.
//
// Concurrency contract: only one thread may call ParallelFor at a time
// (the PARK evaluators are single-coordinator by construction). The task
// body must not call back into the same pool — the Γ evaluator flattens
// its two-level (unit, slice) work into ONE task list per section
// precisely so sections never nest; ParallelFor enforces this with a
// PARK_CHECK against re-entry.

#ifndef PARK_UTIL_THREAD_POOL_H_
#define PARK_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "util/function_ref.h"

namespace park {

/// Resolves a user-facing thread-count knob: 0 means "one per hardware
/// thread" (at least 1); positive values are taken literally up to a cap
/// of 4x the hardware concurrency — oversubscribing beyond that only adds
/// scheduler pressure, so larger requests are clamped with a logged
/// warning instead of spawning thousands of workers. Negative values
/// behave like 0.
int ResolveNumThreads(int requested);

class ThreadPool {
 public:
  /// Creates a pool that runs tasks on `num_threads` threads total: the
  /// caller of ParallelFor participates, so `num_threads - 1` workers are
  /// spawned. `num_threads` must be >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads participating in ParallelFor (workers + caller).
  int num_threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Invokes `fn(i)` exactly once for every i in [0, n), distributed over
  /// the pool in chunks of `chunk` consecutive indexes, and blocks until
  /// all invocations have returned. `fn` must be safe to call from
  /// multiple threads concurrently, and must not call ParallelFor on this
  /// pool again (checked: re-entry aborts instead of deadlocking).
  void ParallelFor(size_t n, FunctionRef<void(size_t)> fn,
                   size_t chunk = 1);

  /// Cumulative number of indexes processed by ParallelFor calls and the
  /// number of non-empty (n > 0) sections run — the evaluator surfaces
  /// these in ParkStats. Sections that fan out no work count nothing.
  uint64_t tasks_executed() const { return tasks_executed_; }
  uint64_t sections_run() const { return sections_run_; }

  /// Largest single section (peak queue depth) so far. Tracked always:
  /// one compare per section.
  size_t max_section_tasks() const { return max_section_tasks_; }

  /// When enabled, ParallelFor accumulates its wall time (two clock reads
  /// per section — the observability layer's pool-busy / mean-task-latency
  /// metrics). Off by default; flip only from the coordinator thread
  /// between sections.
  void set_collect_timing(bool collect) { collect_timing_ = collect; }
  uint64_t busy_ns() const { return busy_ns_; }
  /// Mean wall time a section spent per task while timing was enabled —
  /// an upper bound on mean task latency (workers may idle at the tail).
  uint64_t mean_task_latency_ns() const {
    return tasks_executed_ == 0 ? 0 : busy_ns_ / tasks_executed_;
  }

 private:
  void WorkerLoop();
  /// Pulls chunks off the shared cursor until the current section is
  /// exhausted.
  void RunSection(FunctionRef<void(size_t)> fn, size_t n, size_t chunk);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new section
  std::condition_variable done_cv_;  // coordinator waits for completion
  bool stop_ = false;

  // Current section, guarded by mu_ except for the atomic cursor. The
  // FunctionRef is copied by value into each worker before running; it
  // stays valid because ParallelFor blocks until workers_pending_ drains.
  uint64_t generation_ = 0;
  const FunctionRef<void(size_t)>* section_fn_ = nullptr;
  size_t section_n_ = 0;
  size_t section_chunk_ = 1;
  int workers_pending_ = 0;
  std::atomic<size_t> cursor_{0};
  // Re-entrancy guard for ParallelFor (atomic: a worker task calling back
  // in would race a plain flag before it aborted).
  std::atomic<bool> in_parallel_for_{false};

  uint64_t tasks_executed_ = 0;
  uint64_t sections_run_ = 0;
  size_t max_section_tasks_ = 0;
  bool collect_timing_ = false;
  uint64_t busy_ns_ = 0;
};

}  // namespace park

#endif  // PARK_UTIL_THREAD_POOL_H_
