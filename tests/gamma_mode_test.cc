// Equivalence of the two Γ evaluation modes: delta-filtered evaluation is
// an optimization, never a semantic change. Every scenario must produce
// the identical database, blocked set, restart count, and trace under
// both modes, while the filtered mode performs at most as many rule-body
// matchings.

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/conflict_gen.h"
#include "workload/graph_gen.h"
#include "workload/payroll_gen.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

struct ModeOutcome {
  std::string database;
  std::vector<std::string> blocked;
  size_t restarts;
  size_t gamma_steps;
  size_t rule_evaluations;
  std::vector<std::vector<std::string>> history;
};

ModeOutcome RunMode(const Program& program, const Database& db,
                    GammaMode mode, PolicyPtr policy = nullptr) {
  ParkOptions options;
  options.gamma_mode = mode;
  options.policy = std::move(policy);
  options.trace_level = TraceLevel::kFull;
  auto result = Park(program, db, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  return ModeOutcome{result->database.ToString(),
                     result->blocked,
                     result->stats.restarts,
                     result->stats.gamma_steps,
                     result->stats.rule_evaluations,
                     result->trace.InterpretationHistory()};
}

void ExpectModesAgree(const Program& program, const Database& db,
                      PolicyPtr policy = nullptr) {
  ModeOutcome naive = RunMode(program, db, GammaMode::kNaive, policy);
  for (GammaMode mode :
       {GammaMode::kDeltaFiltered, GammaMode::kSemiNaive}) {
    SCOPED_TRACE(mode == GammaMode::kDeltaFiltered ? "delta-filtered"
                                                   : "semi-naive");
    ModeOutcome other = RunMode(program, db, mode, policy);
    EXPECT_EQ(naive.database, other.database);
    EXPECT_EQ(naive.blocked, other.blocked);
    EXPECT_EQ(naive.restarts, other.restarts);
    EXPECT_EQ(naive.gamma_steps, other.gamma_steps);
    EXPECT_EQ(naive.history, other.history);
    // Delta modes save rule-body matchings, except that each clash forces
    // one full-Γ recompute (for maximal conflict sides) of at most |P|
    // rules.
    EXPECT_LE(other.rule_evaluations,
              naive.rule_evaluations + other.restarts * program.size());
  }
}

TEST(GammaModeTest, PaperExamplesAgree) {
  const char* programs[] = {
      "r1: p -> +q. r2: p -> -a. r3: q -> +a.",
      "r1: p -> +q. r2: p -> -a. r3: q -> +a. r4: !a -> +r. r5: a -> +s.",
      "r1: p -> +q. r2: p -> -q. r3: q -> +a. r4: q -> -a. r5: p -> +a.",
      "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
      "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
  };
  const char* facts[] = {"p.", "p.", "p.", "p.", "a."};
  for (int i = 0; i < 5; ++i) {
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(programs[i], symbols);
    Database db = MustParseDatabase(facts[i], symbols);
    ExpectModesAgree(program, db);
  }
}

TEST(GammaModeTest, RecursiveClosureAgrees) {
  Workload w =
      MakeTransitiveClosureWorkload(GraphShape::kRandom, 12, 30, 3);
  ExpectModesAgree(w.program, w.database);
}

TEST(GammaModeTest, SemiNaiveAvoidsRederivationOnClosure) {
  // On a deep path closure, naive and delta-filtered Γ re-derive every
  // known path at every step; semi-naive only extends the frontier. The
  // derivation counts differ drastically while the results agree.
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(
      "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
      symbols);
  std::string facts;
  for (int i = 0; i < 24; ++i) {
    facts += StrFormat("edge(%d, %d). ", i, i + 1);
  }
  Database db = MustParseDatabase(facts, symbols);
  ModeOutcome filtered = RunMode(program, db, GammaMode::kDeltaFiltered);
  ModeOutcome semi = RunMode(program, db, GammaMode::kSemiNaive);
  EXPECT_EQ(filtered.database, semi.database);
  EXPECT_EQ(filtered.gamma_steps, semi.gamma_steps);
}

TEST(GammaModeTest, FilteredSkipsRulesOnClosure) {
  // On a deep path closure with extra never-firing rules, filtering must
  // actually save work, not just tie.
  auto symbols = MakeSymbolTable();
  std::string rules =
      "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).";
  for (int i = 0; i < 20; ++i) {
    rules += StrFormat(" never%d(X) -> +dead%d(X).", i, i);
  }
  Program program = MustParseProgram(rules, symbols);
  std::string facts;
  for (int i = 0; i < 16; ++i) {
    facts += StrFormat("edge(%d, %d). ", i, i + 1);
  }
  Database db = MustParseDatabase(facts, symbols);
  ModeOutcome naive = RunMode(program, db, GammaMode::kNaive);
  ModeOutcome filtered = RunMode(program, db, GammaMode::kDeltaFiltered);
  EXPECT_EQ(naive.database, filtered.database);
  EXPECT_LT(filtered.rule_evaluations, naive.rule_evaluations / 2);
}

TEST(GammaModeTest, ConflictWorkloadsAgree) {
  for (double fraction : {0.0, 0.3, 1.0}) {
    Workload w = MakeConflictPairsWorkload(25, fraction, 77);
    ExpectModesAgree(w.program, w.database);
  }
}

TEST(GammaModeTest, RestartChainAgrees) {
  Workload w = MakeRestartChainWorkload(20, 4);
  ExpectModesAgree(w.program, w.database);
}

TEST(GammaModeTest, GraphPolicyWorkloadAgrees) {
  Workload w = MakeIrreflexiveGraphWorkload(4);
  ExpectModesAgree(w.program, w.database, MakeIrreflexiveGraphPolicy());
}

TEST(GammaModeTest, PayrollEcaAgrees) {
  PayrollParams params;
  params.num_employees = 60;
  params.inactive_fraction = 0.2;
  params.num_deactivations = 6;
  params.seed = 5;
  Workload w = MakePayrollWorkload(params);
  auto extended = ProgramWithUpdates(w.program, w.updates.updates());
  ASSERT_TRUE(extended.ok());
  ExpectModesAgree(*extended, w.database);
}

class GammaModeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GammaModeRandomTest, RandomProgramsAgree) {
  Rng rng(GetParam());
  std::string rules;
  std::string facts;
  auto atom = [](int i) { return "a" + std::to_string(i); };
  for (int i = 0; i < 10; ++i) {
    if (rng.Bernoulli(0.4)) facts += atom(i) + ". ";
  }
  for (int r = 0; r < 20; ++r) {
    int len = static_cast<int>(rng.UniformInt(1, 3));
    for (int b = 0; b < len; ++b) {
      if (b > 0) rules += ", ";
      if (rng.Bernoulli(0.3)) rules += "!";
      rules += atom(static_cast<int>(rng.UniformInt(0, 9)));
    }
    rules += rng.Bernoulli(0.5) ? " -> +" : " -> -";
    rules += atom(static_cast<int>(rng.UniformInt(0, 9)));
    rules += ".\n";
  }
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(rules, symbols);
  Database db = MustParseDatabase(facts, symbols);
  ExpectModesAgree(program, db);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GammaModeRandomTest,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace park
