// RuleGrounding identity/rendering and the logging control surface that the
// rest of the engine relies on for diagnostics.

#include "engine/rule_grounding.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "util/logging.h"

namespace park {
namespace {

class GroundingTest : public ::testing::Test {
 protected:
  GroundingTest() : symbols_(MakeSymbolTable()) {}

  Program MustProgram(std::string_view text) {
    auto program = ParseProgram(text, symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program.ok() ? std::move(program).value()
                        : Program(MakeSymbolTable());
  }

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(GroundingTest, EqualityAndHashing) {
  SymbolId a = symbols_->InternSymbol("a");
  SymbolId b = symbols_->InternSymbol("b");
  RuleGrounding g1(0, Tuple{Value::Symbol(a)});
  RuleGrounding g2(0, Tuple{Value::Symbol(a)});
  RuleGrounding g3(0, Tuple{Value::Symbol(b)});
  RuleGrounding g4(1, Tuple{Value::Symbol(a)});
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(g1.Hash(), g2.Hash());
  EXPECT_NE(g1, g3);
  EXPECT_NE(g1, g4);
  EXPECT_LT(g1, g4);  // rule index dominates
  EXPECT_LT(g1, g3);  // then binding
}

TEST_F(GroundingTest, BlockedSetMembership) {
  SymbolId a = symbols_->InternSymbol("a");
  BlockedSet blocked;
  EXPECT_TRUE(blocked.insert(RuleGrounding(2, Tuple{Value::Symbol(a)})).second);
  EXPECT_FALSE(
      blocked.insert(RuleGrounding(2, Tuple{Value::Symbol(a)})).second);
  EXPECT_TRUE(blocked.contains(RuleGrounding(2, Tuple{Value::Symbol(a)})));
  EXPECT_FALSE(blocked.contains(RuleGrounding(3, Tuple{Value::Symbol(a)})));
}

TEST_F(GroundingTest, RenderingUsesLabelsAndVariableNames) {
  Program program = MustProgram(
      "named: p(X, Y) -> +q(X, Y). p(A, B) -> +r(A, B).");
  SymbolId a = symbols_->InternSymbol("a");
  SymbolId b = symbols_->InternSymbol("b");
  Tuple binding{Value::Symbol(a), Value::Symbol(b)};
  EXPECT_EQ(RuleGrounding(0, binding).ToString(program, *symbols_),
            "(named, [X <- a, Y <- b])");
  // Unlabeled rules render by program position.
  EXPECT_EQ(RuleGrounding(1, binding).ToString(program, *symbols_),
            "(r#1, [A <- a, B <- b])");
}

TEST_F(GroundingTest, PropositionalRendering) {
  Program program = MustProgram("r1: p -> +q.");
  EXPECT_EQ(RuleGrounding(0, Tuple{}).ToString(program, *symbols_), "(r1)");
}

TEST(LoggingTest, MinLevelRoundTrip) {
  LogLevel original = GetMinLogLevel();
  LogLevel previous = SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(GetMinLogLevel(), LogLevel::kError);
  SetMinLogLevel(original);
  EXPECT_EQ(GetMinLogLevel(), original);
}

TEST(LoggingTest, ChecksPassSilently) {
  PARK_CHECK(true) << "never evaluated";
  PARK_CHECK_EQ(1, 1);
  PARK_CHECK_NE(1, 2);
  PARK_CHECK_LT(1, 2);
  PARK_CHECK_LE(1, 1);
  PARK_CHECK_GT(2, 1);
  PARK_CHECK_GE(2, 2);
}

TEST(LoggingDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(PARK_CHECK(false) << "boom", "Check failed: false boom");
  EXPECT_DEATH(PARK_CHECK_EQ(1, 2), "Check failed");
}

}  // namespace
}  // namespace park
