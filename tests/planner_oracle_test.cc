// Planner oracle: the planner mode (heuristic vs cost-based) and the
// thread count are replay-stable knobs, never semantic ones. Sweeping
// threads {1, 2, 4} × Γ modes × planner modes over representative
// workloads must give identical final databases, blocked sets, and
// restart/step counters; repeating a fixed configuration must be
// bit-identical (traces and provenance included); and the planner
// counters must not depend on the thread count.

#include <gtest/gtest.h>

#include "core/stepper.h"
#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/conflict_gen.h"
#include "workload/graph_gen.h"
#include "workload/payroll_gen.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

struct RunOutcome {
  std::string database;
  std::vector<std::string> blocked;
  size_t restarts = 0;
  size_t gamma_steps = 0;
  size_t rule_evaluations = 0;
  std::vector<std::vector<std::string>> history;
  std::vector<std::string> provenance;
};

RunOutcome RunConfig(const Program& program, const Database& db,
                     GammaMode mode, PlannerMode planner, int num_threads,
                     ParkStats* stats_out = nullptr,
                     ExecMode exec = ExecMode::kTuple) {
  ParkOptions options;
  options.gamma_mode = mode;
  options.planner_mode = planner;
  options.num_threads = num_threads;
  options.exec_mode = exec;
  options.trace_level = TraceLevel::kFull;
  options.record_provenance = true;
  auto result = Park(program, db, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  if (stats_out != nullptr) *stats_out = result->stats;
  RunOutcome outcome;
  outcome.database = result->database.ToString();
  outcome.blocked = result->blocked;
  outcome.restarts = result->stats.restarts;
  outcome.gamma_steps = result->stats.gamma_steps;
  outcome.rule_evaluations = result->stats.rule_evaluations;
  outcome.history = result->trace.InterpretationHistory();
  for (const AtomProvenance& p : result->provenance) {
    outcome.provenance.push_back(p.atom + " <- " + Join(p.derived_by, ", "));
  }
  return outcome;
}

const char* ModeName(GammaMode mode) {
  switch (mode) {
    case GammaMode::kNaive: return "naive";
    case GammaMode::kDeltaFiltered: return "delta-filtered";
    case GammaMode::kSemiNaive: return "semi-naive";
  }
  return "?";
}

/// The full sweep: for each Γ mode, the heuristic single-thread run is
/// the oracle; every (planner, threads) cell must reproduce its database,
/// blocked set, and counters. Trace history and provenance are rendered
/// from sorted structures, so they too are planner-invariant.
void ExpectSweepAgrees(const Program& program, const Database& db) {
  for (GammaMode mode : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                         GammaMode::kSemiNaive}) {
    SCOPED_TRACE(ModeName(mode));
    RunOutcome oracle =
        RunConfig(program, db, mode, PlannerMode::kHeuristic, 1);
    for (PlannerMode planner :
         {PlannerMode::kHeuristic, PlannerMode::kCostBased}) {
      for (int threads : {1, 2, 4}) {
        SCOPED_TRACE(StrFormat(
            "planner=%s threads=%d",
            planner == PlannerMode::kHeuristic ? "heuristic" : "cost",
            threads));
        RunOutcome run = RunConfig(program, db, mode, planner, threads);
        EXPECT_EQ(oracle.database, run.database);
        EXPECT_EQ(oracle.blocked, run.blocked);
        EXPECT_EQ(oracle.restarts, run.restarts);
        EXPECT_EQ(oracle.gamma_steps, run.gamma_steps);
        EXPECT_EQ(oracle.rule_evaluations, run.rule_evaluations);
        EXPECT_EQ(oracle.history, run.history);
        EXPECT_EQ(oracle.provenance, run.provenance);
      }
    }
  }
}

TEST(PlannerOracleTest, PaperExamplesAgree) {
  const char* programs[] = {
      "r1: p -> +q. r2: p -> -a. r3: q -> +a.",
      "r1: p -> +q. r2: p -> -q. r3: q -> +a. r4: q -> -a. r5: p -> +a.",
  };
  const char* facts[] = {"p.", "p."};
  for (int i = 0; i < 2; ++i) {
    SCOPED_TRACE(programs[i]);
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(programs[i], symbols);
    Database db = MustParseDatabase(facts[i], symbols);
    ExpectSweepAgrees(program, db);
  }
}

TEST(PlannerOracleTest, RecursiveClosureAgrees) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom, 14, 40, 3);
  ExpectSweepAgrees(w.program, w.database);
}

TEST(PlannerOracleTest, ConflictWorkloadAgrees) {
  Workload w = MakeConflictPairsWorkload(25, 0.3, 77);
  ExpectSweepAgrees(w.program, w.database);
}

TEST(PlannerOracleTest, PayrollEcaAgrees) {
  PayrollParams params;
  params.num_employees = 40;
  params.inactive_fraction = 0.2;
  params.num_deactivations = 4;
  params.seed = 5;
  Workload w = MakePayrollWorkload(params);
  auto extended = ProgramWithUpdates(w.program, w.updates.updates());
  ASSERT_TRUE(extended.ok());
  ExpectSweepAgrees(*extended, w.database);
}

TEST(PlannerOracleTest, SkewedJoinAgrees) {
  // The case cost-based planning exists for: one tiny literal next to a
  // large scan. The sweep proves reordering never changes the result.
  auto symbols = MakeSymbolTable();
  std::string facts = "sel(c0). ";
  Rng rng(17);
  for (int i = 0; i < 150; ++i) {
    facts += StrFormat("big(x%d, c%d). ", i,
                       static_cast<int>(rng.UniformInt(0, 5)));
  }
  Program program = MustParseProgram(
      "skew: big(X, Y), sel(Y) -> +out(X).\n"
      "chain: out(X), big(X, Y) -> +hit(Y).\n",
      symbols);
  Database db = MustParseDatabase(facts, symbols);
  ExpectSweepAgrees(program, db);
}

TEST(PlannerOracleTest, FixedConfigurationIsBitIdentical) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom, 12, 30, 9);
  for (PlannerMode planner :
       {PlannerMode::kHeuristic, PlannerMode::kCostBased}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(StrFormat(
          "planner=%s threads=%d",
          planner == PlannerMode::kHeuristic ? "heuristic" : "cost",
          threads));
      ParkStats first_stats;
      ParkStats second_stats;
      RunOutcome first = RunConfig(w.program, w.database, GammaMode::kNaive,
                                   planner, threads, &first_stats);
      RunOutcome second = RunConfig(w.program, w.database, GammaMode::kNaive,
                                    planner, threads, &second_stats);
      EXPECT_EQ(first.database, second.database);
      EXPECT_EQ(first.blocked, second.blocked);
      EXPECT_EQ(first.history, second.history);
      EXPECT_EQ(first.provenance, second.provenance);
      EXPECT_EQ(first_stats.plans_compiled, second_stats.plans_compiled);
      EXPECT_EQ(first_stats.plan_cache_hits, second_stats.plan_cache_hits);
      EXPECT_EQ(first_stats.plan_replans, second_stats.plan_replans);
      EXPECT_EQ(first_stats.planner_estimated_rows,
                second_stats.planner_estimated_rows);
      EXPECT_EQ(first_stats.planner_actual_rows,
                second_stats.planner_actual_rows);
    }
  }
}

TEST(PlannerOracleTest, PlannerCountersAreThreadInvariant) {
  // The coordinator fetches plans in unit order on both the sequential
  // and parallel paths, and actual-rows is a sum over a disjoint slice
  // partition — so every planner counter must be independent of the
  // thread count.
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom, 14, 40, 3);
  for (GammaMode mode : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                         GammaMode::kSemiNaive}) {
    SCOPED_TRACE(ModeName(mode));
    ParkStats base;
    RunConfig(w.program, w.database, mode, PlannerMode::kCostBased, 1,
              &base);
    EXPECT_GT(base.plans_compiled, 0u);
    EXPECT_GT(base.planner_actual_rows, 0u);
    for (int threads : {2, 4}) {
      SCOPED_TRACE(threads);
      ParkStats stats;
      RunConfig(w.program, w.database, mode, PlannerMode::kCostBased,
                threads, &stats);
      EXPECT_EQ(stats.plans_compiled, base.plans_compiled);
      EXPECT_EQ(stats.plan_cache_hits, base.plan_cache_hits);
      EXPECT_EQ(stats.plan_replans, base.plan_replans);
      EXPECT_EQ(stats.planner_estimated_rows, base.planner_estimated_rows);
      EXPECT_EQ(stats.planner_actual_rows, base.planner_actual_rows);
    }
  }
}

TEST(PlannerOracleTest, SteppedEvaluationMatchesBatch) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom, 12, 30, 9);
  for (PlannerMode planner :
       {PlannerMode::kHeuristic, PlannerMode::kCostBased}) {
    SCOPED_TRACE(planner == PlannerMode::kHeuristic ? "heuristic" : "cost");
    ParkOptions options;
    options.planner_mode = planner;
    auto batch = Park(w.program, w.database, options);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ParkStepper stepper(w.program, w.database, options);
    auto stepped = stepper.Finish();
    ASSERT_TRUE(stepped.ok()) << stepped.status().ToString();
    EXPECT_EQ(batch->database.ToString(), stepped->ToString());
    EXPECT_EQ(batch->stats.plans_compiled, stepper.stats().plans_compiled);
    EXPECT_EQ(batch->stats.planner_actual_rows,
              stepper.stats().planner_actual_rows);
  }
}

// --- Batch execution oracle (see ParkOptions::exec_mode) ---
//
// The executor mode is a third replay-stable knob: batch-at-a-time
// execution over columnar segments (sorted-merge joins included) must
// reproduce the tuple executor's results exactly.

/// For each Γ mode, the tuple single-thread run is the oracle; every
/// (planner, threads) batch cell must reproduce its database, blocked
/// set, counters, trace history, and provenance.
void ExpectExecSweepAgrees(const Program& program, const Database& db) {
  for (GammaMode mode : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                         GammaMode::kSemiNaive}) {
    SCOPED_TRACE(ModeName(mode));
    RunOutcome oracle =
        RunConfig(program, db, mode, PlannerMode::kHeuristic, 1);
    for (PlannerMode planner :
         {PlannerMode::kHeuristic, PlannerMode::kCostBased}) {
      for (int threads : {1, 2, 4, 8}) {
        SCOPED_TRACE(StrFormat(
            "exec=batch planner=%s threads=%d",
            planner == PlannerMode::kHeuristic ? "heuristic" : "cost",
            threads));
        RunOutcome run = RunConfig(program, db, mode, planner, threads,
                                   nullptr, ExecMode::kBatch);
        EXPECT_EQ(oracle.database, run.database);
        EXPECT_EQ(oracle.blocked, run.blocked);
        EXPECT_EQ(oracle.restarts, run.restarts);
        EXPECT_EQ(oracle.gamma_steps, run.gamma_steps);
        EXPECT_EQ(oracle.rule_evaluations, run.rule_evaluations);
        EXPECT_EQ(oracle.history, run.history);
        EXPECT_EQ(oracle.provenance, run.provenance);
      }
    }
  }
}

TEST(PlannerOracleTest, BatchExecClosureAgrees) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom, 14, 40, 3);
  ExpectExecSweepAgrees(w.program, w.database);
}

TEST(PlannerOracleTest, BatchExecConflictWorkloadAgrees) {
  Workload w = MakeConflictPairsWorkload(25, 0.3, 77);
  ExpectExecSweepAgrees(w.program, w.database);
}

TEST(PlannerOracleTest, BatchExecPayrollEcaAgrees) {
  PayrollParams params;
  params.num_employees = 40;
  params.inactive_fraction = 0.2;
  params.num_deactivations = 4;
  params.seed = 5;
  Workload w = MakePayrollWorkload(params);
  auto extended = ProgramWithUpdates(w.program, w.updates.updates());
  ASSERT_TRUE(extended.ok());
  ExpectExecSweepAgrees(*extended, w.database);
}

TEST(PlannerOracleTest, BatchExecSkewedJoinAgrees) {
  // Enough rows that the planner picks sorted-merge joins for the later
  // literals (kMergeJoinMinRows), so the merge path itself is swept.
  auto symbols = MakeSymbolTable();
  std::string facts = "sel(c0). sel(c1). ";
  Rng rng(17);
  for (int i = 0; i < 150; ++i) {
    facts += StrFormat("big(x%d, c%d). ", i,
                       static_cast<int>(rng.UniformInt(0, 5)));
  }
  Program program = MustParseProgram(
      "skew: big(X, Y), sel(Y) -> +out(X).\n"
      "chain: out(X), big(X, Y) -> +hit(Y).\n",
      symbols);
  Database db = MustParseDatabase(facts, symbols);
  ExpectExecSweepAgrees(program, db);
}

TEST(PlannerOracleTest, BatchFixedConfigurationIsBitIdentical) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom, 12, 30, 9);
  for (PlannerMode planner :
       {PlannerMode::kHeuristic, PlannerMode::kCostBased}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(StrFormat(
          "exec=batch planner=%s threads=%d",
          planner == PlannerMode::kHeuristic ? "heuristic" : "cost",
          threads));
      ParkStats first_stats;
      ParkStats second_stats;
      RunOutcome first =
          RunConfig(w.program, w.database, GammaMode::kNaive, planner,
                    threads, &first_stats, ExecMode::kBatch);
      RunOutcome second =
          RunConfig(w.program, w.database, GammaMode::kNaive, planner,
                    threads, &second_stats, ExecMode::kBatch);
      EXPECT_EQ(first.database, second.database);
      EXPECT_EQ(first.blocked, second.blocked);
      EXPECT_EQ(first.history, second.history);
      EXPECT_EQ(first.provenance, second.provenance);
      EXPECT_EQ(first_stats.exec_batch_rows, second_stats.exec_batch_rows);
      EXPECT_EQ(first_stats.exec_probe_rows, second_stats.exec_probe_rows);
      EXPECT_EQ(first_stats.exec_merge_rows, second_stats.exec_merge_rows);
      EXPECT_EQ(first_stats.storage_compactions,
                second_stats.storage_compactions);
      EXPECT_EQ(first_stats.storage_segment_rows,
                second_stats.storage_segment_rows);
      EXPECT_EQ(first_stats.storage_dict_entries,
                second_stats.storage_dict_entries);
    }
  }
}

TEST(PlannerOracleTest, BatchCountersAreThreadInvariant) {
  // Compaction runs on the coordinator at every Γ step and the exec row
  // counters are sums over a disjoint partition of the same stream, so
  // the storage and exec stats must be independent of the thread count.
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom, 14, 40, 3);
  for (GammaMode mode : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                         GammaMode::kSemiNaive}) {
    SCOPED_TRACE(ModeName(mode));
    ParkStats base;
    RunConfig(w.program, w.database, mode, PlannerMode::kCostBased, 1, &base,
              ExecMode::kBatch);
    EXPECT_GT(base.exec_batch_rows, 0u);
    EXPECT_GT(base.storage_compactions, 0u);
    EXPECT_GT(base.storage_dict_entries, 0u);
    for (int threads : {2, 4}) {
      SCOPED_TRACE(threads);
      ParkStats stats;
      RunConfig(w.program, w.database, mode, PlannerMode::kCostBased,
                threads, &stats, ExecMode::kBatch);
      EXPECT_EQ(stats.exec_batch_rows, base.exec_batch_rows);
      EXPECT_EQ(stats.exec_probe_rows, base.exec_probe_rows);
      EXPECT_EQ(stats.exec_merge_rows, base.exec_merge_rows);
      EXPECT_EQ(stats.storage_compactions, base.storage_compactions);
      EXPECT_EQ(stats.storage_segment_rows, base.storage_segment_rows);
      EXPECT_EQ(stats.storage_dict_entries, base.storage_dict_entries);
    }
  }
}

TEST(PlannerOracleTest, RandomRelationalProgramsAgree) {
  for (uint64_t seed = 400; seed < 406; ++seed) {
    SCOPED_TRACE(seed);
    Rng rng(seed);
    std::string rules;
    std::string facts;
    auto pred = [](int i) { return "p" + std::to_string(i); };
    auto constant = [](int i) { return "c" + std::to_string(i); };
    // Deliberately skewed relation sizes so the two planners pick
    // different literal orders.
    for (int p = 0; p < 4; ++p) {
      int rows = p == 0 ? 40 : 4;
      for (int n = 0; n < rows; ++n) {
        facts += StrFormat(
            "%s(%s, %s). ", pred(p).c_str(),
            constant(static_cast<int>(rng.UniformInt(0, 7))).c_str(),
            constant(static_cast<int>(rng.UniformInt(0, 7))).c_str());
      }
    }
    for (int r = 0; r < 8; ++r) {
      int p1 = static_cast<int>(rng.UniformInt(0, 3));
      int p2 = static_cast<int>(rng.UniformInt(0, 3));
      int head = static_cast<int>(rng.UniformInt(0, 3));
      rules += StrFormat("%s(X, Y), %s(Y, Z) -> %s%s(X, Z).\n",
                         pred(p1).c_str(), pred(p2).c_str(),
                         rng.Bernoulli(0.7) ? "+" : "-", pred(head).c_str());
    }
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(rules, symbols);
    Database db = MustParseDatabase(facts, symbols);
    ExpectSweepAgrees(program, db);
  }
}

}  // namespace
}  // namespace park
