// ParkStepper: step-by-step Δ transitions agree with the batch evaluator.

#include "core/stepper.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/conflict_gen.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

TEST(StepperTest, WalksTheSection5Example) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(
      "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
      symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkStepper stepper(program, db);

  // Step 1: Γ adds +a, +q.
  auto s1 = stepper.Step();
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->kind, StepOutcome::Kind::kGamma);
  EXPECT_EQ(s1->new_marks, 2u);
  EXPECT_EQ(stepper.interpretation().ToString(), "{p, +a, +q}");

  // Step 2: the q conflict; r2 blocked, restart.
  auto s2 = stepper.Step();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->kind, StepOutcome::Kind::kResolution);
  EXPECT_EQ(s2->newly_blocked, 1u);
  ASSERT_EQ(s2->conflicts.size(), 1u);
  EXPECT_NE(s2->conflicts[0].find("q:"), std::string::npos);
  EXPECT_EQ(stepper.interpretation().ToString(), "{p}");

  // Continue to completion.
  auto final_db = stepper.Finish();
  ASSERT_TRUE(final_db.ok());
  EXPECT_EQ(final_db->ToString(), "{a, b, p}");
  EXPECT_TRUE(stepper.done());
  EXPECT_EQ(stepper.stats().restarts, 2u);
}

TEST(StepperTest, StepAfterFixpointIsFixpoint) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +q.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkStepper stepper(program, db);
  ASSERT_TRUE(stepper.Step().ok());   // gamma
  auto fix = stepper.Step();          // fixpoint
  ASSERT_TRUE(fix.ok());
  EXPECT_EQ(fix->kind, StepOutcome::Kind::kFixpoint);
  EXPECT_TRUE(stepper.done());
  auto again = stepper.Step();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->kind, StepOutcome::Kind::kFixpoint);
}

TEST(StepperTest, SnapshotsGrowPerTheorem41) {
  Workload w = MakeConflictPairsWorkload(20, 0.4, 7);
  ParkStepper stepper(w.program, w.database);
  BiStructureSnapshot previous = stepper.Snapshot();
  while (!stepper.done()) {
    ASSERT_TRUE(stepper.Step().ok());
    BiStructureSnapshot current = stepper.Snapshot();
    EXPECT_TRUE(BiStructureLeq(previous, current));
    previous = current;
  }
}

TEST(StepperTest, FinishAgreesWithBatchEvaluator) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::string rules;
    std::string facts;
    auto atom = [](int i) { return "a" + std::to_string(i); };
    for (int i = 0; i < 8; ++i) {
      if (rng.Bernoulli(0.5)) facts += atom(i) + ". ";
    }
    for (int r = 0; r < 14; ++r) {
      rules += atom(static_cast<int>(rng.UniformInt(0, 7)));
      rules += rng.Bernoulli(0.5) ? " -> +" : " -> -";
      rules += atom(static_cast<int>(rng.UniformInt(0, 7)));
      rules += ".\n";
    }
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(rules, symbols);
    Database db = MustParseDatabase(facts, symbols);

    auto batch = Park(program, db);
    ASSERT_TRUE(batch.ok());
    ParkStepper stepper(program, db);
    auto stepped = stepper.Finish();
    ASSERT_TRUE(stepped.ok());
    EXPECT_TRUE(batch->database.SameAtoms(*stepped))
        << "trial " << trial << ": " << batch->database.ToString()
        << " vs " << stepped->ToString();
    EXPECT_EQ(batch->stats.restarts, stepper.stats().restarts);
    EXPECT_EQ(batch->stats.gamma_steps, stepper.stats().gamma_steps);
  }
}

TEST(StepperTest, ErrorsMatchBatchSemantics) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +a. p -> -a.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.policy = MakeSpecificityPolicy();  // abstains on this tie
  ParkStepper stepper(program, db, options);
  auto outcome = stepper.Step();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kAborted);
}

TEST(StepperTest, MaxStepsGuard) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("a0 -> +a1. a1 -> +a2. a2 -> +a3.",
                                     symbols);
  Database db = MustParseDatabase("a0.", symbols);
  ParkOptions options;
  options.max_steps = 2;
  ParkStepper stepper(program, db, options);
  ASSERT_TRUE(stepper.Step().ok());
  ASSERT_TRUE(stepper.Step().ok());
  auto third = stepper.Step();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
}

TEST(StepperTest, DeadlineIsCheckedAgainstConstructionTime) {
  // The budget covers the whole stepped evaluation, so sleeping past it
  // between construction and the first Step() already exhausts it.
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +a.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.deadline_ms = 1;
  ParkStepper stepper(program, db, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto step = stepper.Step();
  ASSERT_FALSE(step.ok());
  EXPECT_EQ(step.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(step.status().ToString().find("deadline"),
            std::string::npos);
}

}  // namespace
}  // namespace park
