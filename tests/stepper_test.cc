// ParkStepper: step-by-step Δ transitions agree with the batch evaluator.

#include "core/stepper.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/conflict_gen.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

TEST(StepperTest, WalksTheSection5Example) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(
      "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
      symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkStepper stepper(program, db);

  // Step 1: Γ adds +a, +q.
  auto s1 = stepper.Step();
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->kind, StepOutcome::Kind::kGamma);
  EXPECT_EQ(s1->new_marks, 2u);
  EXPECT_EQ(stepper.interpretation().ToString(), "{p, +a, +q}");

  // Step 2: the q conflict; r2 blocked, restart.
  auto s2 = stepper.Step();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->kind, StepOutcome::Kind::kResolution);
  EXPECT_EQ(s2->newly_blocked, 1u);
  ASSERT_EQ(s2->conflicts.size(), 1u);
  EXPECT_NE(s2->conflicts[0].find("q:"), std::string::npos);
  EXPECT_EQ(stepper.interpretation().ToString(), "{p}");

  // Continue to completion.
  auto final_db = stepper.Finish();
  ASSERT_TRUE(final_db.ok());
  EXPECT_EQ(final_db->ToString(), "{a, b, p}");
  EXPECT_TRUE(stepper.done());
  EXPECT_EQ(stepper.stats().restarts, 2u);
}

TEST(StepperTest, StepAfterFixpointIsFixpoint) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +q.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkStepper stepper(program, db);
  ASSERT_TRUE(stepper.Step().ok());   // gamma
  auto fix = stepper.Step();          // fixpoint
  ASSERT_TRUE(fix.ok());
  EXPECT_EQ(fix->kind, StepOutcome::Kind::kFixpoint);
  EXPECT_TRUE(stepper.done());
  auto again = stepper.Step();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->kind, StepOutcome::Kind::kFixpoint);
}

TEST(StepperTest, SnapshotsGrowPerTheorem41) {
  Workload w = MakeConflictPairsWorkload(20, 0.4, 7);
  ParkStepper stepper(w.program, w.database);
  BiStructureSnapshot previous = stepper.Snapshot();
  while (!stepper.done()) {
    ASSERT_TRUE(stepper.Step().ok());
    BiStructureSnapshot current = stepper.Snapshot();
    EXPECT_TRUE(BiStructureLeq(previous, current));
    previous = current;
  }
}

TEST(StepperTest, FinishAgreesWithBatchEvaluator) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::string rules;
    std::string facts;
    auto atom = [](int i) { return "a" + std::to_string(i); };
    for (int i = 0; i < 8; ++i) {
      if (rng.Bernoulli(0.5)) facts += atom(i) + ". ";
    }
    for (int r = 0; r < 14; ++r) {
      rules += atom(static_cast<int>(rng.UniformInt(0, 7)));
      rules += rng.Bernoulli(0.5) ? " -> +" : " -> -";
      rules += atom(static_cast<int>(rng.UniformInt(0, 7)));
      rules += ".\n";
    }
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(rules, symbols);
    Database db = MustParseDatabase(facts, symbols);

    auto batch = Park(program, db);
    ASSERT_TRUE(batch.ok());
    ParkStepper stepper(program, db);
    auto stepped = stepper.Finish();
    ASSERT_TRUE(stepped.ok());
    EXPECT_TRUE(batch->database.SameAtoms(*stepped))
        << "trial " << trial << ": " << batch->database.ToString()
        << " vs " << stepped->ToString();
    EXPECT_EQ(batch->stats.restarts, stepper.stats().restarts);
    EXPECT_EQ(batch->stats.gamma_steps, stepper.stats().gamma_steps);
  }
}

TEST(StepperTest, EmptyWatchedDeltaQuickExits) {
  // The last Γ step of any terminating chain has a delta nobody watches
  // (the chain tip appears in no rule body). With the dependency
  // scheduler that step is an O(1) no-op: the watcher lookup comes back
  // empty and Γ returns before scanning, matching, or touching the plan
  // cache — pinned here via sched_rules_considered, which must not grow
  // on the quick-exited step.
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(
      "r1: a0 -> +a1. r2: a1 -> +a2. r3: a2 -> +a3.", symbols);
  Database db = MustParseDatabase("a0.", symbols);
  ParkOptions options;
  options.gamma_mode = GammaMode::kDeltaFiltered;
  options.scheduler_mode = SchedulerMode::kDependency;
  ParkStepper stepper(program, db, options);
  std::vector<size_t> considered;
  while (!stepper.done()) {
    ASSERT_TRUE(stepper.Step().ok());
    considered.push_back(stepper.stats().sched_rules_considered);
  }
  ASSERT_GE(considered.size(), 2u);
  EXPECT_EQ(considered.back(), considered[considered.size() - 2])
      << "fixpoint-detecting step must consider zero rules";
  // Every step still skipped the rest of the program.
  EXPECT_GT(stepper.stats().sched_rules_skipped, 0u);

  // Contrast: with the scheduler off, the same step scans the whole
  // program to discover that nothing is affected.
  options.scheduler_mode = SchedulerMode::kOff;
  ParkStepper scanning(program, db, options);
  std::vector<size_t> scanned;
  while (!scanning.done()) {
    ASSERT_TRUE(scanning.Step().ok());
    scanned.push_back(scanning.stats().sched_rules_considered);
  }
  ASSERT_GE(scanned.size(), 2u);
  EXPECT_EQ(scanned.back(), scanned[scanned.size() - 2] + program.size());
  // Same fixpoint, same step count, either way.
  EXPECT_EQ(stepper.stats().gamma_steps, scanning.stats().gamma_steps);
}

TEST(StepperTest, ErrorsMatchBatchSemantics) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +a. p -> -a.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.policy = MakeSpecificityPolicy();  // abstains on this tie
  ParkStepper stepper(program, db, options);
  auto outcome = stepper.Step();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kAborted);
}

TEST(StepperTest, MaxStepsGuard) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("a0 -> +a1. a1 -> +a2. a2 -> +a3.",
                                     symbols);
  Database db = MustParseDatabase("a0.", symbols);
  ParkOptions options;
  options.max_steps = 2;
  ParkStepper stepper(program, db, options);
  ASSERT_TRUE(stepper.Step().ok());
  ASSERT_TRUE(stepper.Step().ok());
  auto third = stepper.Step();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
}

TEST(StepperTest, DeadlineIsCheckedAgainstConstructionTime) {
  // The budget covers the whole stepped evaluation, so sleeping past it
  // between construction and the first Step() already exhausts it.
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +a.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.deadline_ms = 1;
  ParkStepper stepper(program, db, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto step = stepper.Step();
  ASSERT_FALSE(step.ok());
  EXPECT_EQ(step.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(step.status().ToString().find("deadline"),
            std::string::npos);
}

}  // namespace
}  // namespace park
