// General behavior of the PARK evaluator beyond the paper's worked
// examples: fixpoint behavior, recursion, options, error paths, statistics.

#include "test_util.h"

namespace park {
namespace {

using ::park::testing_util::MustPark;
using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;
using ::park::testing_util::ParkToString;

TEST(ParkSemanticsTest, EmptyProgramIsIdentity) {
  EXPECT_EQ(ParkToString("", "p(a). q(b)."), "{p(a), q(b)}");
}

TEST(ParkSemanticsTest, EmptyDatabaseEmptyProgram) {
  EXPECT_EQ(ParkToString("", ""), "{}");
}

TEST(ParkSemanticsTest, RulesWithUnsatisfiedBodiesDoNothing) {
  EXPECT_EQ(ParkToString("missing(X) -> +q(X).", "p(a)."), "{p(a)}");
}

TEST(ParkSemanticsTest, SimpleInsertAndDelete) {
  EXPECT_EQ(ParkToString("p(X) -> +q(X). r(X) -> -p(X).",
                         "p(a). r(a)."),
            "{q(a), r(a)}");
}

TEST(ParkSemanticsTest, DeletingAbsentAtomIsNoop) {
  EXPECT_EQ(ParkToString("p -> -ghost.", "p."), "{p}");
}

TEST(ParkSemanticsTest, InsertingPresentAtomIsNoop) {
  EXPECT_EQ(ParkToString("p -> +p.", "p."), "{p}");
}

TEST(ParkSemanticsTest, TransitiveClosureRecursion) {
  ParkResult result = MustPark(
      "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
      "edge(a, b). edge(b, c). edge(c, d).");
  EXPECT_EQ(result.database.ToString(),
            "{edge(a, b), edge(b, c), edge(c, d), path(a, b), path(a, c), "
            "path(a, d), path(b, c), path(b, d), path(c, d)}");
  // Depth-3 path needs 3 strict Γ growth steps plus the closing check.
  EXPECT_EQ(result.stats.gamma_steps, 3u);
  EXPECT_EQ(result.stats.restarts, 0u);
}

TEST(ParkSemanticsTest, CyclicClosureTerminates) {
  ParkResult result = MustPark(
      "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
      "edge(a, b). edge(b, a).");
  // All four ordered pairs are paths.
  EXPECT_EQ(result.database.ToString(),
            "{edge(a, b), edge(b, a), path(a, a), path(a, b), path(b, a), "
            "path(b, b)}");
}

TEST(ParkSemanticsTest, NegationAsFailure) {
  EXPECT_EQ(ParkToString("emp(X), !active(X) -> -emp(X).",
                         "emp(a). emp(b). active(a)."),
            "{active(a), emp(a)}");
}

TEST(ParkSemanticsTest, StatsArepopulated) {
  ParkResult result = MustPark("p -> +a. p -> -a.", "p.");
  EXPECT_EQ(result.stats.restarts, 1u);
  EXPECT_EQ(result.stats.conflicts_resolved, 1u);
  EXPECT_EQ(result.stats.policy_invocations, 1u);
  EXPECT_EQ(result.stats.blocked_instances, 1u);
}

TEST(ParkSemanticsTest, MaxStepsGuard) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(
      "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
      symbols);
  std::string facts;
  for (int i = 0; i < 50; ++i) {
    facts += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").";
  }
  Database db = MustParseDatabase(facts, symbols);
  ParkOptions options;
  options.max_steps = 3;
  auto result = Park(program, db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParkSemanticsTest, AbstainingTopLevelPolicyAborts) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +a. p -> -a.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.policy = MakeSpecificityPolicy();  // ties on this conflict
  auto result = Park(program, db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_NE(result.status().message().find("abstained"), std::string::npos);
}

TEST(ParkSemanticsTest, PolicyErrorPropagates) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +a. p -> -a.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.policy = MakeLambdaPolicy(
      "failing", [](const PolicyContext&, const Conflict&) -> Result<Vote> {
        return InternalError("oracle offline");
      });
  auto result = Park(program, db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ParkSemanticsTest, InputDatabaseIsNotMutated) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p(X) -> -p(X). p(X) -> +q(X).",
                                     symbols);
  Database db = MustParseDatabase("p(a).", symbols);
  auto result = Park(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(db.ToString(), "{p(a)}");
  EXPECT_EQ(result->database.ToString(), "{q(a)}");
}

TEST(ParkSemanticsTest, DefaultPolicyIsInertia) {
  // x ∈ D: the default policy must keep it.
  EXPECT_EQ(ParkToString("p -> +x. p -> -x.", "p. x."), "{p, x}");
  // x ∉ D: the default policy must drop it.
  EXPECT_EQ(ParkToString("p -> +x. p -> -x.", "p."), "{p}");
}

TEST(ParkSemanticsTest, FirstConflictGranularityResolvesOneAtATime) {
  constexpr char kTwoConflicts[] = R"(
    p -> +x. p -> -x.
    p -> +y. p -> -y.
  )";
  ParkOptions all;
  ParkResult all_result = MustPark(kTwoConflicts, "p.", all);
  EXPECT_EQ(all_result.stats.restarts, 1u);
  EXPECT_EQ(all_result.stats.conflicts_resolved, 2u);

  ParkOptions one;
  one.block_granularity = BlockGranularity::kFirstConflictOnly;
  ParkResult one_result = MustPark(kTwoConflicts, "p.", one);
  EXPECT_EQ(one_result.stats.restarts, 2u);
  EXPECT_EQ(one_result.stats.conflicts_resolved, 2u);
  // Same final database either way.
  EXPECT_TRUE(all_result.database.SameAtoms(one_result.database));
}

TEST(ParkSemanticsTest, BlockGranularityCanAffectBlockedSetSizeOnly) {
  // The §4.2 remark: blocking all conflicts may block instances
  // "unnecessarily". With first-conflict granularity on the graph
  // example, later rounds may find some conflicts already gone.
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(R"(
    r1: p(X), p(Y) -> +q(X, Y).
    r2: q(X, X) -> -q(X, X).
  )", symbols);
  Database db = MustParseDatabase("p(a). p(b).", symbols);

  ParkOptions all;
  all.policy = MakeAlwaysDeletePolicy();
  auto all_result = Park(program, db, all);
  ASSERT_TRUE(all_result.ok());

  ParkOptions one;
  one.policy = MakeAlwaysDeletePolicy();
  one.block_granularity = BlockGranularity::kFirstConflictOnly;
  auto one_result = Park(program, db, one);
  ASSERT_TRUE(one_result.ok());

  EXPECT_TRUE(all_result->database.SameAtoms(one_result->database));
  EXPECT_LE(one_result->stats.blocked_instances,
            all_result->stats.blocked_instances);
}

TEST(ParkSemanticsTest, TraceLevelsControlDetail) {
  ParkOptions none;
  EXPECT_TRUE(MustPark("p -> +q.", "p.", none).trace.events().empty());

  ParkOptions summary;
  summary.trace_level = TraceLevel::kSummary;
  ParkResult s = MustPark("p -> +a. p -> -a.", "p.", summary);
  EXPECT_FALSE(s.trace.events().empty());
  EXPECT_TRUE(s.trace.InterpretationHistory().empty());  // no snapshots

  ParkOptions full;
  full.trace_level = TraceLevel::kFull;
  ParkResult f = MustPark("p -> +a. p -> -a.", "p.", full);
  EXPECT_FALSE(f.trace.InterpretationHistory().empty());
  EXPECT_FALSE(f.trace.ToString().empty());
}

TEST(ParkSemanticsTest, SeedRulesSurviveRestarts) {
  // A transaction update must re-fire after a conflict restart (the whole
  // point of modeling U as rules, §4.3).
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +a. p -> -a. p -> +keep.",
                                     symbols);
  Database db = MustParseDatabase("p.", symbols);
  std::vector<Update> updates{
      {ActionKind::kInsert, ParseGroundAtom("u", symbols).value()}};
  auto result = Park(db, program, updates);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->database.ToString(), "{keep, p, u}");
  EXPECT_EQ(result->stats.restarts, 1u);
}

TEST(ParkSemanticsTest, ConflictBetweenUpdateAndRule) {
  // §4.3: "Conflicts may not only occur between rules but also between
  // transaction updates and rules." Inertia decides per atom status in D.
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> -u.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  std::vector<Update> updates{
      {ActionKind::kInsert, ParseGroundAtom("u", symbols).value()}};
  auto result = Park(db, program, updates);
  ASSERT_TRUE(result.ok());
  // u ∉ D: inertia sides with the deleting rule; the update is overwritten
  // (the paper explicitly allows a transaction's update to be overwritten).
  EXPECT_EQ(result->database.ToString(), "{p}");
}

TEST(ParkSemanticsTest, UpdatesCanWinConflictsUnderPriority) {
  // The same scenario, but a policy that prefers the seed rule: the
  // "transaction updates cannot be overwritten" convention the paper says
  // can be coded into the conflict resolution policy.
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> -u.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  std::vector<Update> updates{
      {ActionKind::kInsert, ParseGroundAtom("u", symbols).value()}};
  ParkOptions options;
  // Seed rules are appended after all program rules, so the default
  // position-based priority makes them win ties of the base program.
  options.policy = MakeRulePriorityPolicy();
  auto result = Park(db, program, updates, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->database.ToString(), "{p, u}");
}

TEST(ParkSemanticsTest, MultipleIndependentConflictsAllResolved) {
  constexpr char kProgram[] = R"(
    p -> +a. p -> -a.
    p -> +b. q -> -b.
    q -> +c. q -> -c.
  )";
  ParkResult result = MustPark(kProgram, "p. q. b.");
  // Inertia: a ∉ D drops, b ∈ D stays, c ∉ D drops.
  EXPECT_EQ(result.database.ToString(), "{b, p, q}");
  EXPECT_EQ(result.stats.conflicts_resolved, 3u);
}

TEST(ParkSemanticsTest, ProvenanceExplainsResultAtoms) {
  ParkOptions options;
  options.record_provenance = true;
  ParkResult result = MustPark(
      "r1: p -> +q. r2: q -> +r. r3: p -> -gone.", "p. gone.", options);
  ASSERT_EQ(result.provenance.size(), 3u);
  EXPECT_EQ(result.provenance[0].atom, "+q");
  EXPECT_EQ(result.provenance[0].derived_by,
            (std::vector<std::string>{"(r1)"}));
  EXPECT_EQ(result.provenance[1].atom, "+r");
  EXPECT_EQ(result.provenance[1].derived_by,
            (std::vector<std::string>{"(r2)"}));
  EXPECT_EQ(result.provenance[2].atom, "-gone");
  EXPECT_EQ(result.provenance[2].derived_by,
            (std::vector<std::string>{"(r3)"}));
}

TEST(ParkSemanticsTest, ProvenanceListsEveryDeriver) {
  ParkOptions options;
  options.record_provenance = true;
  ParkResult result =
      MustPark("r1: p -> +q. r2: s -> +q.", "p. s.", options);
  ASSERT_EQ(result.provenance.size(), 1u);
  EXPECT_EQ(result.provenance[0].derived_by,
            (std::vector<std::string>{"(r1)", "(r2)"}));
}

TEST(ParkSemanticsTest, ProvenanceOffByDefault) {
  ParkResult result = MustPark("p -> +q.", "p.");
  EXPECT_TRUE(result.provenance.empty());
}

TEST(ParkSemanticsTest, ProgramAndDatabaseMustShareSymbols) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +q.", symbols);
  Database other_db(MakeSymbolTable());
  EXPECT_DEATH((void)Park(program, other_db),
               "must share a symbol table");
}

}  // namespace
}  // namespace park
