#include "engine/consequence.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace park {
namespace {

class ConsequenceTest : public ::testing::Test {
 protected:
  ConsequenceTest() : symbols_(MakeSymbolTable()) {}

  Program MustProgram(std::string_view text) {
    auto program = ParseProgram(text, symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program.ok() ? std::move(program).value()
                        : Program(MakeSymbolTable());
  }

  Database MustDb(std::string_view facts) {
    return ParseDatabase(facts, symbols_).value();
  }

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(ConsequenceTest, DerivationsFromValidBodies) {
  Program program = MustProgram("p -> +q. p -> -a. q -> +b.");
  Database db = MustDb("p.");
  IInterpretation interp(&db);
  BlockedSet blocked;
  GammaResult gamma = ComputeGamma(program, blocked, interp);
  EXPECT_TRUE(gamma.consistent);
  EXPECT_EQ(gamma.derivations.size(), 2u);  // q not valid yet
  EXPECT_EQ(gamma.newly_marked, 2u);
}

TEST_F(ConsequenceTest, BlockedInstancesDoNotFire) {
  Program program = MustProgram("p -> +q.");
  Database db = MustDb("p.");
  IInterpretation interp(&db);
  BlockedSet blocked{RuleGrounding(0, Tuple{})};
  GammaResult gamma = ComputeGamma(program, blocked, interp);
  EXPECT_TRUE(gamma.derivations.empty());
  EXPECT_EQ(gamma.newly_marked, 0u);
}

TEST_F(ConsequenceTest, InconsistencyWithinOneStep) {
  Program program = MustProgram("p -> +q. p -> -q.");
  Database db = MustDb("p.");
  IInterpretation interp(&db);
  GammaResult gamma = ComputeGamma(program, {}, interp);
  EXPECT_FALSE(gamma.consistent);
  ASSERT_EQ(gamma.clashing_atoms.size(), 1u);
  EXPECT_EQ(gamma.clashing_atoms[0].ToString(*symbols_), "q");
}

TEST_F(ConsequenceTest, InconsistencyAgainstExistingMark) {
  Program program = MustProgram("p -> -q.");
  Database db = MustDb("p.");
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("q", symbols_).value(),
                   RuleGrounding(7, Tuple{}));
  GammaResult gamma = ComputeGamma(program, {}, interp);
  EXPECT_FALSE(gamma.consistent);
  ASSERT_EQ(gamma.clashing_atoms.size(), 1u);
}

TEST_F(ConsequenceTest, RederivationIsNotNew) {
  Program program = MustProgram("p -> +q.");
  Database db = MustDb("p.");
  IInterpretation interp(&db);
  GammaResult first = ComputeGamma(program, {}, interp);
  ApplyDerivations(first.derivations, interp);
  GammaResult second = ComputeGamma(program, {}, interp);
  EXPECT_EQ(second.derivations.size(), 1u);  // still fires
  EXPECT_EQ(second.newly_marked, 0u);        // but derives nothing new
}

TEST_F(ConsequenceTest, ApplyDerivationsCountsNewMarks) {
  Program program = MustProgram("p -> +q. p -> +q.");  // two rules, one atom
  Database db = MustDb("p.");
  IInterpretation interp(&db);
  GammaResult gamma = ComputeGamma(program, {}, interp);
  EXPECT_EQ(gamma.derivations.size(), 2u);
  EXPECT_EQ(gamma.newly_marked, 1u);
  EXPECT_EQ(ApplyDerivations(gamma.derivations, interp), 1u);
  // Provenance keeps both groundings.
  const auto* prov = interp.Provenance(
      ActionKind::kInsert, ParseGroundAtom("q", symbols_).value());
  ASSERT_NE(prov, nullptr);
  EXPECT_EQ(prov->size(), 2u);
}

TEST_F(ConsequenceTest, FirstOrderGroundingsCarryBindings) {
  Program program = MustProgram("p(X) -> +q(X).");
  Database db = MustDb("p(a). p(b).");
  IInterpretation interp(&db);
  GammaResult gamma = ComputeGamma(program, {}, interp);
  ASSERT_EQ(gamma.derivations.size(), 2u);
  for (const Derivation& d : gamma.derivations) {
    EXPECT_EQ(d.grounding.rule_index(), 0);
    EXPECT_EQ(d.grounding.binding().arity(), 1);
    EXPECT_EQ(d.atom.args()[0], d.grounding.binding()[0]);
  }
}

TEST_F(ConsequenceTest, BlockingOneGroundingKeepsOthers) {
  Program program = MustProgram("p(X) -> +q(X).");
  Database db = MustDb("p(a). p(b).");
  IInterpretation interp(&db);
  SymbolId a = symbols_->InternSymbol("a");
  BlockedSet blocked{RuleGrounding(0, Tuple{Value::Symbol(a)})};
  GammaResult gamma = ComputeGamma(program, blocked, interp);
  ASSERT_EQ(gamma.derivations.size(), 1u);
  EXPECT_EQ(gamma.derivations[0].atom.ToString(*symbols_), "q(b)");
}

TEST_F(ConsequenceTest, ClashingAtomsSortedAndUnique) {
  Program program = MustProgram(R"(
    p -> +x. p -> -x. p -> +x.
    p -> +a. p -> -a.
  )");
  Database db = MustDb("p.");
  IInterpretation interp(&db);
  GammaResult gamma = ComputeGamma(program, {}, interp);
  ASSERT_EQ(gamma.clashing_atoms.size(), 2u);
  EXPECT_LT(gamma.clashing_atoms[0], gamma.clashing_atoms[1]);
}

}  // namespace
}  // namespace park
