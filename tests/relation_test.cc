#include "storage/relation.h"

#include <gtest/gtest.h>

#include <set>

namespace park {
namespace {

Tuple T2(int64_t a, int64_t b) { return Tuple{Value::Int(a), Value::Int(b)}; }

TEST(RelationTest, InsertContainsErase) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(T2(1, 2)));
  EXPECT_FALSE(rel.Insert(T2(1, 2)));  // duplicate
  EXPECT_TRUE(rel.Contains(T2(1, 2)));
  EXPECT_FALSE(rel.Contains(T2(2, 1)));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Erase(T2(1, 2)));
  EXPECT_FALSE(rel.Erase(T2(1, 2)));
  EXPECT_TRUE(rel.empty());
}

TEST(RelationTest, ForEachVisitsAll) {
  Relation rel(2);
  for (int i = 0; i < 10; ++i) rel.Insert(T2(i, i * i));
  int count = 0;
  rel.ForEach([&](const Tuple& t) {
    EXPECT_EQ(t[1].int_value(), t[0].int_value() * t[0].int_value());
    ++count;
  });
  EXPECT_EQ(count, 10);
}

TEST(RelationTest, MatchingUnbound) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(3, 4));
  int count = 0;
  rel.ForEachMatching({std::nullopt, std::nullopt},
                      [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(RelationTest, MatchingFirstColumnBound) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.Insert(T2(1, 3));
  rel.Insert(T2(2, 3));
  std::set<int64_t> seconds;
  rel.ForEachMatching({Value::Int(1), std::nullopt}, [&](const Tuple& t) {
    seconds.insert(t[1].int_value());
  });
  EXPECT_EQ(seconds, (std::set<int64_t>{2, 3}));
}

TEST(RelationTest, MatchingSecondColumnBound) {
  Relation rel(2);
  rel.Insert(T2(1, 3));
  rel.Insert(T2(2, 3));
  rel.Insert(T2(2, 4));
  int count = 0;
  rel.ForEachMatching({std::nullopt, Value::Int(3)},
                      [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(RelationTest, MatchingAllBoundIsExactLookup) {
  Relation rel(2);
  rel.Insert(T2(5, 6));
  int count = 0;
  rel.ForEachMatching({Value::Int(5), Value::Int(6)},
                      [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 1);
  rel.ForEachMatching({Value::Int(5), Value::Int(7)},
                      [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 1);  // no extra hit
}

TEST(RelationTest, IndexStaysCoherentAcrossMutation) {
  Relation rel(2);
  rel.Insert(T2(1, 1));
  // Force index creation on column 0.
  int count = 0;
  rel.ForEachMatching({Value::Int(1), std::nullopt},
                      [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 1);
  // Mutate after the index exists; the index must track it.
  rel.Insert(T2(1, 2));
  rel.Erase(T2(1, 1));
  count = 0;
  rel.ForEachMatching({Value::Int(1), std::nullopt}, [&](const Tuple& t) {
    EXPECT_EQ(t[1].int_value(), 2);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(RelationTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert(Tuple{}));
  EXPECT_FALSE(rel.Insert(Tuple{}));
  EXPECT_TRUE(rel.Contains(Tuple{}));
  int count = 0;
  rel.ForEachMatching({}, [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(RelationTest, CloneIsDeepAndIndexFree) {
  Relation rel(1);
  rel.Insert(Tuple{Value::Int(1)});
  Relation copy = rel.Clone();
  copy.Insert(Tuple{Value::Int(2)});
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
}

TEST(RelationTest, SortedTuples) {
  Relation rel(1);
  rel.Insert(Tuple{Value::Int(3)});
  rel.Insert(Tuple{Value::Int(1)});
  rel.Insert(Tuple{Value::Int(2)});
  std::vector<Tuple> sorted = rel.SortedTuples();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0][0].int_value(), 1);
  EXPECT_EQ(sorted[2][0].int_value(), 3);
}

TEST(RelationTest, LargeMatchViaIndex) {
  Relation rel(2);
  for (int i = 0; i < 1000; ++i) rel.Insert(T2(i % 10, i));
  int count = 0;
  rel.ForEachMatching({Value::Int(7), std::nullopt},
                      [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 100);
}

TEST(RelationTest, PrewarmedIndexServesMatchesWhileFrozen) {
  Relation rel(2);
  for (int i = 0; i < 20; ++i) rel.Insert(T2(i % 4, i));
  rel.BuildIndex(0);
  EXPECT_TRUE(rel.HasIndex(0));
  EXPECT_FALSE(rel.HasIndex(1));
  rel.FreezeIndexes();
  EXPECT_TRUE(rel.frozen());
  // Matching on the prewarmed column is fine while frozen.
  int count = 0;
  rel.ForEachMatching({Value::Int(3), std::nullopt},
                      [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 5);
  // Fully-bound and fully-unbound scans never need an index.
  count = 0;
  rel.ForEachMatching({Value::Int(1), Value::Int(1)},
                      [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 1);
  count = 0;
  rel.ForEach([&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 20);
  rel.ThawIndexes();
  EXPECT_FALSE(rel.frozen());
}

TEST(RelationDeathTest, LazyIndexBuildWhileFrozenDies) {
  // The parallel Γ path relies on this check: a missed prewarm must abort
  // loudly rather than race on a lazily-built index.
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.FreezeIndexes();
  EXPECT_DEATH(rel.ForEachMatching({std::nullopt, Value::Int(2)},
                                   [](const Tuple&) {}),
               "frozen");
}

TEST(RelationDeathTest, MutationWhileFrozenDies) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.FreezeIndexes();
  EXPECT_DEATH(rel.Insert(T2(3, 4)), "frozen");
  EXPECT_DEATH(rel.Erase(T2(1, 2)), "frozen");
}

TEST(RelationDeathTest, ExplicitBuildWhileFrozenDies) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.FreezeIndexes();
  EXPECT_DEATH(rel.BuildIndex(0), "frozen");
}

TEST(RelationTest, ThawReenablesLazyBuildsAndMutation) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.FreezeIndexes();
  rel.ThawIndexes();
  rel.Insert(T2(1, 3));
  int count = 0;
  rel.ForEachMatching({Value::Int(1), std::nullopt},
                      [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace park
