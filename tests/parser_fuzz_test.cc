// Robustness: the parser must never crash or hang on arbitrary input —
// every malformed input yields a Status. Deterministic pseudo-fuzz over
// random byte strings, random token soups, and mutations of valid
// programs.

#include <gtest/gtest.h>

#include <string>

#include "lang/parser.h"
#include "util/random.h"

namespace park {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    size_t length = rng.Uniform(120);
    std::string input;
    input.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      input += static_cast<char>(rng.Uniform(96) + 32);  // printable ASCII
    }
    auto symbols = MakeSymbolTable();
    auto program = ParseProgram(input, symbols);
    auto db = ParseDatabase(input, symbols);
    auto atom = ParseGroundAtom(input, symbols);
    // No assertion on success — only that we got here without crashing
    // and that failures carry messages.
    if (!program.ok()) {
      EXPECT_FALSE(program.status().message().empty());
    }
    if (!db.ok()) {
      EXPECT_FALSE(db.status().message().empty());
    }
    (void)atom;
  }
}

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kTokens[] = {
      "p",  "q(",  ")",  "X",  ",",  ".",  "->", "+",   "-",  "!",
      "[",  "]",   "=",  "42", ":",  "_",  "\"s\"", "not", "prio",
      "r1", "(",   "-7",
  };
  Rng rng(GetParam() ^ 0x9999);
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    size_t tokens = rng.Uniform(40);
    for (size_t i = 0; i < tokens; ++i) {
      input += kTokens[rng.Uniform(std::size(kTokens))];
      input += " ";
    }
    auto symbols = MakeSymbolTable();
    (void)ParseProgram(input, symbols);
    (void)ParseDatabase(input, symbols);
  }
}

TEST_P(ParserFuzzTest, MutatedValidProgramsNeverCrash) {
  constexpr char kValid[] =
      "r1 [prio=2]: emp(X), !active(X), payroll(X, S) -> -payroll(X, S). "
      "audit: -payroll(X, S) -> +audit(X). "
      "-> +seed(a, 1, \"x\").";
  Rng rng(GetParam() ^ 0x4444);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = kValid;
    int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(input.size());
      switch (rng.Uniform(3)) {
        case 0:  // flip a character
          input[pos] = static_cast<char>(rng.Uniform(96) + 32);
          break;
        case 1:  // delete a character
          input.erase(pos, 1);
          break;
        default:  // duplicate a chunk
          input.insert(pos, input.substr(pos, rng.Uniform(8)));
          break;
      }
    }
    auto symbols = MakeSymbolTable();
    auto program = ParseProgram(input, symbols);
    if (program.ok()) {
      // If the mutation stayed syntactically valid, the result must be a
      // well-formed program (all rules safe — AddRule enforced it).
      for (const Rule& rule : program->rules()) {
        EXPECT_GE(rule.index(), 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(ParserEdgeCaseTest, DeepNestingAndLongInputs) {
  auto symbols = MakeSymbolTable();
  // A very long but valid program.
  std::string big;
  for (int i = 0; i < 2000; ++i) {
    big += "p" + std::to_string(i) + " -> +q" + std::to_string(i) + ".\n";
  }
  auto program = ParseProgram(big, symbols);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->size(), 2000u);

  // An atom with many arguments.
  std::string wide = "w(";
  for (int i = 0; i < 500; ++i) {
    if (i > 0) wide += ", ";
    wide += "c" + std::to_string(i);
  }
  wide += ")";
  auto atom = ParseGroundAtom(wide, symbols);
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->arity(), 500);
}

TEST(ParserEdgeCaseTest, UnterminatedConstructs) {
  auto symbols = MakeSymbolTable();
  EXPECT_FALSE(ParseProgram("p -> +q", symbols).ok());
  EXPECT_FALSE(ParseProgram("p(", symbols).ok());
  EXPECT_FALSE(ParseProgram("p(a", symbols).ok());
  EXPECT_FALSE(ParseProgram("p(a,", symbols).ok());
  EXPECT_FALSE(ParseProgram("lab [prio=", symbols).ok());
  EXPECT_FALSE(ParseProgram("lab [prio=1", symbols).ok());
  EXPECT_FALSE(ParseProgram("\"open string", symbols).ok());
  EXPECT_FALSE(ParseProgram("p -> ", symbols).ok());
  EXPECT_FALSE(ParseProgram("-> +", symbols).ok());
}

TEST(ParserEdgeCaseTest, CommentOnlyAndWhitespaceOnlyInputs) {
  auto symbols = MakeSymbolTable();
  EXPECT_EQ(ParseProgram("# nothing here\n% or here\n// either", symbols)
                ->size(),
            0u);
  EXPECT_EQ(ParseDatabase("\n\t  \n", symbols)->size(), 0u);
}

}  // namespace
}  // namespace park
