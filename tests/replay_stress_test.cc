// End-to-end durability property: after any sequence of random
// transactions against an ActiveDatabase with a journal attached,
// replaying the journal into a fresh instance reproduces the exact final
// state — the determinism of PARK (paper §3) made operational.

#include <gtest/gtest.h>

#include <cstdio>

#include "park/park.h"
#include "util/random.h"
#include "util/string_util.h"

namespace park {
namespace {

constexpr char kRules[] = R"(
  # Users and sessions with cascading rules and one conflict pair.
  on_join [src=1]:  +user(U) -> +online(U).
  on_part [src=1]:  -user(U), online(U) -> -online(U).
  on_part2 [src=1]: -user(U), session(U, S) -> -session(U, S).
  # Moderation tug-of-war resolved by priority.
  ban [prio=10]:    banned(U), online(U) -> -online(U).
  greet [prio=1]:   user(U) -> +online(U).
)";

PolicyPtr MakeTestPolicy() {
  return MakeCompositePolicy(
      {MakeRulePriorityPolicy(), MakeInertiaPolicy()});
}

class ReplayStressTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void TearDown() override {
    if (!journal_path_.empty()) std::remove(journal_path_.c_str());
  }
  std::string journal_path_;
};

TEST_P(ReplayStressTest, JournalReplayReproducesState) {
  journal_path_ = ::testing::TempDir() + "park_replay_" +
                  std::to_string(GetParam());
  std::remove(journal_path_.c_str());

  Rng rng(GetParam());
  std::string final_state;
  size_t committed = 0;
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    {
      ParkOptions options;
      options.policy = MakeTestPolicy();
      ASSERT_TRUE(db.Configure(std::move(options)).ok());
    }
    ASSERT_TRUE(db.AttachJournal(journal_path_).ok());

    for (int t = 0; t < 40; ++t) {
      Transaction tx = db.Begin();
      int ops = 1 + static_cast<int>(rng.Uniform(4));
      for (int o = 0; o < ops; ++o) {
        std::string user = "u" + std::to_string(rng.Uniform(6));
        switch (rng.Uniform(5)) {
          case 0:
            tx.Insert("user", {user});
            break;
          case 1:
            tx.Delete("user", {user});
            break;
          case 2:
            tx.Insert("session", {user, StrFormat("s%d", t)});
            break;
          case 3:
            tx.Insert("banned", {user});
            break;
          default:
            tx.Delete("banned", {user});
            break;
        }
      }
      auto report = std::move(tx).Commit();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ++committed;
    }
    final_state = db.database().ToString();
  }

  // Crash. New process: same rules + policy, empty database, replay.
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    {
      ParkOptions options;
      options.policy = MakeTestPolicy();
      ASSERT_TRUE(db.Configure(std::move(options)).ok());
    }
    ASSERT_TRUE(db.RecoverFromJournal(journal_path_).ok());
    EXPECT_EQ(db.database().ToString(), final_state);
  }

  // The journal holds exactly the committed records.
  auto records =
      TransactionJournal::ReadAll(journal_path_, MakeSymbolTable());
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), committed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayStressTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace park
