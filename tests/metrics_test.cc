#include "util/metrics.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "util/json.h"

namespace park {
namespace {

TEST(MetricsRegistryTest, GetCounterFindsOrRegisters) {
  MetricsRegistry registry;
  MetricsRegistry::Counter* a = registry.GetCounter("park.a");
  EXPECT_EQ(a->value, 0u);
  a->Add();
  a->Add(41);
  EXPECT_EQ(a->value, 42u);
  // Same name, same slot.
  EXPECT_EQ(registry.GetCounter("park.a"), a);
  EXPECT_EQ(registry.num_counters(), 1u);
}

TEST(MetricsRegistryTest, HandlesSurviveFurtherRegistration) {
  MetricsRegistry registry;
  MetricsRegistry::Counter* first = registry.GetCounter("first");
  // Force enough registrations that a vector-backed store would have
  // reallocated under the first handle.
  for (int i = 0; i < 1000; ++i) {
    registry.GetCounter("c" + std::to_string(i));
  }
  first->Add(7);
  EXPECT_EQ(registry.GetCounter("first")->value, 7u);
  EXPECT_EQ(registry.num_counters(), 1001u);
}

TEST(MetricsRegistryTest, TimerRecordsAndAverages) {
  MetricsRegistry registry;
  MetricsRegistry::Timer* t = registry.GetTimer("park.phase");
  EXPECT_EQ(t->mean_ns(), 0u);  // no division by zero
  t->Record(100);
  t->Record(300);
  EXPECT_EQ(t->count, 2u);
  EXPECT_EQ(t->total_ns, 400u);
  EXPECT_EQ(t->mean_ns(), 200u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  MetricsRegistry::Counter* c = registry.GetCounter("c");
  MetricsRegistry::Timer* t = registry.GetTimer("t");
  c->Add(5);
  t->Record(5);
  registry.Reset();
  EXPECT_EQ(c->value, 0u);
  EXPECT_EQ(t->count, 0u);
  EXPECT_EQ(t->total_ns, 0u);
  EXPECT_EQ(registry.GetCounter("c"), c);
}

TEST(MetricsRegistryTest, ToJsonSortsNamesAndReportsTimers) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetTimer("t")->Record(10);
  std::string json = registry.ToJson();
  // alpha sorts before zeta regardless of registration order.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"mean_ns\": 10"), std::string::npos);
}

TEST(ScopedPhaseTimerTest, RecordsOneSample) {
  MetricsRegistry registry;
  MetricsRegistry::Timer* t = registry.GetTimer("scoped");
  { ScopedPhaseTimer timer(t); }
  EXPECT_EQ(t->count, 1u);
}

TEST(ScopedPhaseTimerTest, NullTimerIsSafe) {
  // The disabled-metrics idiom: callers resolve the handle conditionally
  // and pass null; construction and destruction must be no-ops.
  ScopedPhaseTimer timer(nullptr);
}

TEST(MonotonicNanosTest, IsMonotonic) {
  int64_t a = MonotonicNanos();
  int64_t b = MonotonicNanos();
  EXPECT_LE(a, b);
}

// --- JsonWriter (the substrate every ToJson rides on) ---

TEST(JsonWriterTest, NestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("n").Int(-3);
  w.Key("u").UInt(7);
  w.Key("s").String("hi");
  w.Key("list").BeginArray();
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  std::string json = std::move(w).str();
  EXPECT_EQ(json,
            "{\n  \"n\": -3,\n  \"u\": 7,\n  \"s\": \"hi\",\n"
            "  \"list\": [\n    true,\n    null\n  ]\n}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a\"b\\c\nd");
  w.EndObject();
  std::string json = std::move(w).str();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoubleBecomesNull) {
  JsonWriter w;
  w.BeginObject();
  w.Key("d").Double(std::numeric_limits<double>::infinity());
  w.EndObject();
  EXPECT_NE(std::move(w).str().find("null"), std::string::npos);
}

TEST(JsonEscapeTest, ControlCharacters) {
  EXPECT_EQ(JsonEscape("\x01"), "\\u0001");
  EXPECT_EQ(JsonEscape("\t"), "\\t");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

}  // namespace
}  // namespace park
