// The transactional ActiveDatabase facade.

#include "eca/active_database.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace park {
namespace {

TEST(ActiveDatabaseTest, LoadRulesAndFacts) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("r1: p(X) -> +q(X).").ok());
  ASSERT_TRUE(db.LoadFacts("p(a). p(b).").ok());
  EXPECT_EQ(db.program().size(), 1u);
  EXPECT_EQ(db.database().size(), 2u);
  // LoadFacts is a bulk load: rules have not fired yet.
  EXPECT_EQ(db.database().ToString(), "{p(a), p(b)}");
}

TEST(ActiveDatabaseTest, StabilizeRunsRulesWithoutUpdates) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("p(X) -> +q(X).").ok());
  ASSERT_TRUE(db.LoadFacts("p(a).").ok());
  auto report = db.Stabilize();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(db.database().ToString(), "{p(a), q(a)}");
  ASSERT_EQ(report->inserted.size(), 1u);
  EXPECT_EQ(report->inserted[0].ToString(*db.symbols()), "q(a)");
  EXPECT_TRUE(report->deleted.empty());
}

TEST(ActiveDatabaseTest, TransactionCommitFiresRules) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules(R"(
    cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
  )").ok());
  ASSERT_TRUE(db.LoadFacts(
      "emp(jo). active(jo). payroll(jo, 5000).").ok());

  Transaction tx = db.Begin();
  tx.Delete("active", {"jo"});
  auto report = std::move(tx).Commit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(db.database().ToString(), "{emp(jo)}");
  EXPECT_EQ(report->deleted.size(), 2u);  // active(jo) and payroll(jo, _)
}

TEST(ActiveDatabaseTest, TransactionStagesParsedUpdates) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadFacts("p(a).").ok());
  Transaction tx = db.Begin();
  ASSERT_TRUE(tx.Stage("+q(b)").ok());
  ASSERT_TRUE(tx.Stage("-p(a)").ok());
  EXPECT_FALSE(tx.Stage("nonsense").ok());
  EXPECT_EQ(tx.pending().size(), 2u);
  auto report = std::move(tx).Commit();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(db.database().ToString(), "{q(b)}");
}

TEST(ActiveDatabaseTest, ApplyConvenience) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("+p(X) -> +echo(X).").ok());
  auto symbols = db.symbols();
  auto report =
      db.Apply(ActionKind::kInsert, ParseGroundAtom("p(a)", symbols).value());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(db.database().ToString(), "{echo(a), p(a)}");
}

TEST(ActiveDatabaseTest, CommitReportCountsConflicts) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("+x -> -y. +x -> +y.").ok());
  auto symbols = db.symbols();
  Transaction tx = db.Begin();
  tx.Insert(ParseGroundAtom("x", symbols).value());
  auto report = std::move(tx).Commit();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stats.restarts, 1u);
  EXPECT_EQ(report->stats.conflicts_resolved, 1u);
}

TEST(ActiveDatabaseTest, FailedCommitLeavesDatabaseUntouched) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("p -> +a. p -> -a.").ok());
  ASSERT_TRUE(db.LoadFacts("p.").ok());
  // An abstaining policy makes the commit fail...
  {
    ParkOptions options;
    options.policy = MakeLambdaPolicy(
        "abstain", [](const PolicyContext&, const Conflict&) -> Result<Vote> {
          return Vote::kAbstain;
        });
    ASSERT_TRUE(db.Configure(std::move(options)).ok());
  }
  auto report = db.Stabilize();
  EXPECT_FALSE(report.ok());
  // ... and the stored database is unchanged.
  EXPECT_EQ(db.database().ToString(), "{p}");
  // The failure detail also rides on the result itself.
  ASSERT_TRUE(report.failure().has_value());
  EXPECT_EQ(report.failure()->stage, CommitFailure::Stage::kEvaluate);
  // Switching to a complete policy, the same commit succeeds.
  {
    ParkOptions options;
    options.policy = MakeInertiaPolicy();
    ASSERT_TRUE(db.Configure(std::move(options)).ok());
  }
  EXPECT_TRUE(db.Stabilize().ok());
}

TEST(ActiveDatabaseTest, PolicyAndOptionsAreConfigurable) {
  ActiveDatabase db;
  {
    ParkOptions options;
    options.policy = MakeAlwaysInsertPolicy();
    options.block_granularity = BlockGranularity::kFirstConflictOnly;
    ASSERT_TRUE(db.Configure(std::move(options)).ok());
  }
  db.SetTraceLevel(TraceLevel::kFull);
  ASSERT_TRUE(db.LoadRules("p -> +a. p -> -a.").ok());
  ASSERT_TRUE(db.LoadFacts("p.").ok());
  auto report = db.Stabilize();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(db.database().ToString(), "{a, p}");  // insert won
  EXPECT_FALSE(report->trace.InterpretationHistory().empty());
}

TEST(ActiveDatabaseTest, SequentialTransactions) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules(R"(
    +emp(X) -> +active(X).
    -emp(X), payroll(X, S) -> -payroll(X, S).
  )").ok());
  {
    Transaction tx = db.Begin();
    tx.Insert("emp", {"a"});
    ASSERT_TRUE(std::move(tx).Commit().ok());
  }
  EXPECT_EQ(db.database().ToString(), "{active(a), emp(a)}");
  {
    Transaction tx = db.Begin();
    tx.Insert("payroll", {"a", "x"});
    ASSERT_TRUE(std::move(tx).Commit().ok());
  }
  {
    Transaction tx = db.Begin();
    tx.Delete("emp", {"a"});
    ASSERT_TRUE(std::move(tx).Commit().ok());
  }
  // The deletion event cascaded to payroll; active remains (no rule).
  EXPECT_EQ(db.database().ToString(), "{active(a)}");
}

TEST(ActiveDatabaseTest, AddRuleProgrammatically) {
  ActiveDatabase db;
  auto rule = RuleBuilder(db.symbols())
                  .Name("r")
                  .When("p", {"X"})
                  .Insert("q", {"X"})
                  .Build();
  ASSERT_TRUE(rule.ok());
  ASSERT_TRUE(db.AddRule(std::move(rule).value()).ok());
  ASSERT_TRUE(db.LoadFacts("p(a).").ok());
  ASSERT_TRUE(db.Stabilize().ok());
  EXPECT_TRUE(db.Contains(ParseGroundAtom("q(a)", db.symbols()).value()));
}

TEST(ActiveDatabaseTest, LoadRulesRejectsDuplicateLabelAcrossCalls) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("r: p -> +q.").ok());
  EXPECT_FALSE(db.LoadRules("r: q -> +p.").ok());
}

TEST(ActiveDatabaseTest, ExternalSymbolTableIsShared) {
  auto symbols = MakeSymbolTable();
  ActiveDatabase db(symbols);
  EXPECT_EQ(db.symbols(), symbols);
}

}  // namespace
}  // namespace park
