// Parallel-vs-sequential oracle: Γ evaluation on a thread pool is an
// implementation detail, never a semantic one. For every workload — paper
// examples, recursive closures, conflict-heavy generators, ECA payroll,
// and randomly generated programs — running with threads ∈ {2, 4} must
// reproduce the sequential run exactly: final database, full trace,
// blocked set, restart/step counters, and provenance, under all three
// Γ modes. Any lazy index build attempted inside a frozen parallel
// section aborts the process, so a green run here also certifies the
// index prewarm pass (exercised further in relation_test).

#include <gtest/gtest.h>

#include "core/stepper.h"
#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/conflict_gen.h"
#include "workload/graph_gen.h"
#include "workload/payroll_gen.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

struct RunOutcome {
  std::string database;
  std::vector<std::string> blocked;
  size_t restarts = 0;
  size_t gamma_steps = 0;
  size_t rule_evaluations = 0;
  std::vector<std::vector<std::string>> history;
  std::vector<std::string> provenance;
};

RunOutcome RunWithThreads(const Program& program, const Database& db,
                          GammaMode mode, int num_threads,
                          PolicyPtr policy = nullptr,
                          size_t min_slice_size = kDefaultMinSliceSize,
                          ParkStats* stats_out = nullptr) {
  ParkOptions options;
  options.gamma_mode = mode;
  options.policy = std::move(policy);
  options.trace_level = TraceLevel::kFull;
  options.record_provenance = true;
  options.num_threads = num_threads;
  options.min_slice_size = min_slice_size;
  auto result = Park(program, db, options);
  if (result.ok() && stats_out != nullptr) *stats_out = result->stats;
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  RunOutcome outcome;
  outcome.database = result->database.ToString();
  outcome.blocked = result->blocked;
  outcome.restarts = result->stats.restarts;
  outcome.gamma_steps = result->stats.gamma_steps;
  outcome.rule_evaluations = result->stats.rule_evaluations;
  outcome.history = result->trace.InterpretationHistory();
  for (const AtomProvenance& p : result->provenance) {
    outcome.provenance.push_back(p.atom + " <- " +
                                 Join(p.derived_by, ", "));
  }
  return outcome;
}

const char* ModeName(GammaMode mode) {
  switch (mode) {
    case GammaMode::kNaive: return "naive";
    case GammaMode::kDeltaFiltered: return "delta-filtered";
    case GammaMode::kSemiNaive: return "semi-naive";
  }
  return "?";
}

void ExpectThreadCountsAgree(const Program& program, const Database& db,
                             PolicyPtr policy = nullptr) {
  for (GammaMode mode : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                         GammaMode::kSemiNaive}) {
    SCOPED_TRACE(ModeName(mode));
    RunOutcome sequential = RunWithThreads(program, db, mode, 1, policy);
    for (int threads : {2, 4}) {
      SCOPED_TRACE(StrFormat("threads=%d", threads));
      RunOutcome parallel =
          RunWithThreads(program, db, mode, threads, policy);
      EXPECT_EQ(sequential.database, parallel.database);
      EXPECT_EQ(sequential.blocked, parallel.blocked);
      EXPECT_EQ(sequential.restarts, parallel.restarts);
      EXPECT_EQ(sequential.gamma_steps, parallel.gamma_steps);
      EXPECT_EQ(sequential.rule_evaluations, parallel.rule_evaluations);
      EXPECT_EQ(sequential.history, parallel.history);
      EXPECT_EQ(sequential.provenance, parallel.provenance);
    }
  }
}

TEST(ParallelOracleTest, PaperExamplesAgree) {
  const char* programs[] = {
      "r1: p -> +q. r2: p -> -a. r3: q -> +a.",
      "r1: p -> +q. r2: p -> -a. r3: q -> +a. r4: !a -> +r. r5: a -> +s.",
      "r1: p -> +q. r2: p -> -q. r3: q -> +a. r4: q -> -a. r5: p -> +a.",
      "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
      "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
  };
  const char* facts[] = {"p.", "p.", "p.", "p.", "a."};
  for (int i = 0; i < 5; ++i) {
    SCOPED_TRACE(programs[i]);
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(programs[i], symbols);
    Database db = MustParseDatabase(facts[i], symbols);
    ExpectThreadCountsAgree(program, db);
  }
}

TEST(ParallelOracleTest, RecursiveClosureAgrees) {
  Workload w =
      MakeTransitiveClosureWorkload(GraphShape::kRandom, 14, 40, 3);
  ExpectThreadCountsAgree(w.program, w.database);
}

TEST(ParallelOracleTest, ConflictWorkloadsAgree) {
  for (double fraction : {0.0, 0.3, 1.0}) {
    SCOPED_TRACE(fraction);
    Workload w = MakeConflictPairsWorkload(25, fraction, 77);
    ExpectThreadCountsAgree(w.program, w.database);
  }
}

TEST(ParallelOracleTest, RestartChainAgrees) {
  Workload w = MakeRestartChainWorkload(16, 4);
  ExpectThreadCountsAgree(w.program, w.database);
}

TEST(ParallelOracleTest, GraphPolicyWorkloadAgrees) {
  Workload w = MakeIrreflexiveGraphWorkload(4);
  ExpectThreadCountsAgree(w.program, w.database,
                          MakeIrreflexiveGraphPolicy());
}

TEST(ParallelOracleTest, PayrollEcaAgrees) {
  PayrollParams params;
  params.num_employees = 60;
  params.inactive_fraction = 0.2;
  params.num_deactivations = 6;
  params.seed = 5;
  Workload w = MakePayrollWorkload(params);
  auto extended = ProgramWithUpdates(w.program, w.updates.updates());
  ASSERT_TRUE(extended.ok());
  ExpectThreadCountsAgree(*extended, w.database);
}

TEST(ParallelOracleTest, SteppedEvaluationAgrees) {
  // The stepper drives the same Δ transitions one at a time; its parallel
  // path must match both the sequential stepper and the batch evaluator.
  Workload w =
      MakeTransitiveClosureWorkload(GraphShape::kRandom, 12, 30, 9);
  ParkOptions sequential_options;
  sequential_options.num_threads = 1;
  ParkStepper sequential(w.program, w.database, sequential_options);
  auto sequential_db = sequential.Finish();
  ASSERT_TRUE(sequential_db.ok()) << sequential_db.status().ToString();
  for (int threads : {2, 4}) {
    SCOPED_TRACE(threads);
    ParkOptions options;
    options.num_threads = threads;
    ParkStepper stepper(w.program, w.database, options);
    auto parallel_db = stepper.Finish();
    ASSERT_TRUE(parallel_db.ok()) << parallel_db.status().ToString();
    EXPECT_EQ(sequential_db->ToString(), parallel_db->ToString());
    EXPECT_EQ(sequential.stats().gamma_steps, stepper.stats().gamma_steps);
    EXPECT_EQ(stepper.stats().num_threads, static_cast<size_t>(threads));
    EXPECT_GT(stepper.stats().parallel_sections, 0u);
  }
}

TEST(ParallelOracleTest, ParallelStatsAreReported) {
  Workload w =
      MakeTransitiveClosureWorkload(GraphShape::kRandom, 10, 24, 1);
  ParkOptions options;
  options.num_threads = 4;
  auto result = Park(w.program, w.database, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.num_threads, 4u);
  EXPECT_GT(result->stats.parallel_sections, 0u);
  EXPECT_GT(result->stats.parallel_tasks, 0u);
  // Sequential runs report the no-pool defaults.
  auto sequential = Park(w.program, w.database);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(sequential->stats.num_threads, 1u);
  EXPECT_EQ(sequential->stats.parallel_sections, 0u);
}

// --- Intra-rule slicing oracle ---
//
// A skewed program: ONE join rule dominates the candidate space (every
// `edge` tuple seeds it) next to a couple of tiny rules, so intra-rule
// slicing is what parallelizes the section. Swept over min_slice_size
// (1 = finest slicing, 7 = odd uneven partitions, default = tuned) and
// thread counts; every combination must be bit-identical to the
// sequential run in databases, traces, blocked sets, and provenance.

Workload MakeSkewedJoinWorkload() {
  auto symbols = MakeSymbolTable();
  std::string facts;
  // A dense-ish random digraph: ~3 out-edges per node over 40 nodes.
  Rng rng(91);
  for (int n = 0; n < 40; ++n) {
    for (int e = 0; e < 3; ++e) {
      facts += StrFormat("edge(n%d, n%d). ", n,
                         static_cast<int>(rng.UniformInt(0, 39)));
    }
  }
  facts += "flag. ";
  Workload w(symbols);
  w.program = MustParseProgram(
      // The skewed rule: first literal scans every edge tuple.
      "big: edge(X, Y), edge(Y, Z) -> +hop(X, Z).\n"
      // Tiny satellites, including a conflict so restarts are exercised.
      "t1: flag -> +mark.\n"
      "t2: mark -> -flag.\n"
      "t3: edge(X, X) -> -hop(X, X).\n",
      symbols);
  w.database = MustParseDatabase(facts, symbols);
  return w;
}

TEST(ParallelOracleTest, SkewedRuleSlicingAgrees) {
  Workload w = MakeSkewedJoinWorkload();
  for (GammaMode mode : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                         GammaMode::kSemiNaive}) {
    SCOPED_TRACE(ModeName(mode));
    RunOutcome sequential = RunWithThreads(w.program, w.database, mode, 1);
    for (size_t min_slice_size : {size_t{1}, size_t{7},
                                  kDefaultMinSliceSize}) {
      for (int threads : {1, 2, 4}) {
        SCOPED_TRACE(StrFormat("threads=%d min_slice_size=%zu", threads,
                               min_slice_size));
        RunOutcome sliced = RunWithThreads(w.program, w.database, mode,
                                           threads, nullptr,
                                           min_slice_size);
        EXPECT_EQ(sequential.database, sliced.database);
        EXPECT_EQ(sequential.blocked, sliced.blocked);
        EXPECT_EQ(sequential.restarts, sliced.restarts);
        EXPECT_EQ(sequential.gamma_steps, sliced.gamma_steps);
        EXPECT_EQ(sequential.rule_evaluations, sliced.rule_evaluations);
        EXPECT_EQ(sequential.history, sliced.history);
        EXPECT_EQ(sequential.provenance, sliced.provenance);
      }
    }
  }
}

TEST(ParallelOracleTest, SkewedRuleActuallySlices) {
  // With fine slicing, the dominant rule must split: more slice tasks
  // than rule evaluations in at least one section, surfaced in ParkStats.
  Workload w = MakeSkewedJoinWorkload();
  ParkStats stats;
  RunWithThreads(w.program, w.database, GammaMode::kNaive, 4, nullptr,
                 /*min_slice_size=*/1, &stats);
  EXPECT_GT(stats.parallel_sliced_units, 0u);
  EXPECT_GT(stats.parallel_slices, stats.parallel_sliced_units);
  // Slice tasks inflate the pool task count past the units evaluated.
  EXPECT_GT(stats.parallel_tasks, stats.rule_evaluations);
  // Conservative default: a tiny workload with a large min_slice_size
  // must NOT slice.
  ParkStats unsliced;
  RunWithThreads(w.program, w.database, GammaMode::kNaive, 4, nullptr,
                 /*min_slice_size=*/100000, &unsliced);
  EXPECT_EQ(unsliced.parallel_sliced_units, 0u);
  EXPECT_EQ(unsliced.parallel_slices, 0u);
}

TEST(ParallelOracleTest, SingleRuleProgramFansOut) {
  // Pre-slicing, a one-rule program never used the pool at all; now its
  // candidate space is what gets split.
  auto symbols = MakeSymbolTable();
  std::string facts;
  for (int i = 0; i < 64; ++i) {
    facts += StrFormat("p(c%d, c%d). ", i, (i * 7) % 64);
  }
  Program program =
      MustParseProgram("r: p(X, Y), p(Y, Z) -> +q(X, Z).", symbols);
  Database db = MustParseDatabase(facts, symbols);
  ExpectThreadCountsAgree(program, db);
  ParkStats stats;
  RunWithThreads(program, db, GammaMode::kNaive, 2, nullptr,
                 /*min_slice_size=*/1, &stats);
  EXPECT_GT(stats.parallel_sections, 0u);
  EXPECT_GT(stats.parallel_slices, 0u);
}

// Random programs in the style of gamma_mode_test: propositional rules
// with negation, dense enough to produce conflicts and restarts.
class ParallelOracleRandomTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ParallelOracleRandomTest, RandomProgramsAgree) {
  Rng rng(GetParam());
  std::string rules;
  std::string facts;
  auto atom = [](int i) { return "a" + std::to_string(i); };
  for (int i = 0; i < 10; ++i) {
    if (rng.Bernoulli(0.4)) facts += atom(i) + ". ";
  }
  for (int r = 0; r < 20; ++r) {
    int len = static_cast<int>(rng.UniformInt(1, 3));
    for (int b = 0; b < len; ++b) {
      if (b > 0) rules += ", ";
      if (rng.Bernoulli(0.3)) rules += "!";
      rules += atom(static_cast<int>(rng.UniformInt(0, 9)));
    }
    rules += rng.Bernoulli(0.5) ? " -> +" : " -> -";
    rules += atom(static_cast<int>(rng.UniformInt(0, 9)));
    rules += ".\n";
  }
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(rules, symbols);
  Database db = MustParseDatabase(facts, symbols);
  ExpectThreadCountsAgree(program, db);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelOracleRandomTest,
                         ::testing::Range<uint64_t>(200, 215));

// Relational random programs: binary predicates with shared variables so
// the matcher actually uses (and must prewarm) column indexes.
class ParallelOracleRelationalTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelOracleRelationalTest, RandomRelationalProgramsAgree) {
  Rng rng(GetParam());
  std::string rules;
  std::string facts;
  auto pred = [](int i) { return "p" + std::to_string(i); };
  auto constant = [](int i) { return "c" + std::to_string(i); };
  for (int p = 0; p < 4; ++p) {
    for (int n = 0; n < 12; ++n) {
      facts += StrFormat("%s(%s, %s). ", pred(p).c_str(),
                         constant(static_cast<int>(rng.UniformInt(0, 5)))
                             .c_str(),
                         constant(static_cast<int>(rng.UniformInt(0, 5)))
                             .c_str());
    }
  }
  for (int r = 0; r < 8; ++r) {
    int p1 = static_cast<int>(rng.UniformInt(0, 3));
    int p2 = static_cast<int>(rng.UniformInt(0, 3));
    int head = static_cast<int>(rng.UniformInt(0, 3));
    rules += StrFormat("%s(X, Y), %s(Y, Z) -> %s%s(X, Z).\n",
                       pred(p1).c_str(), pred(p2).c_str(),
                       rng.Bernoulli(0.7) ? "+" : "-", pred(head).c_str());
  }
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(rules, symbols);
  Database db = MustParseDatabase(facts, symbols);
  ExpectThreadCountsAgree(program, db);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelOracleRelationalTest,
                         ::testing::Range<uint64_t>(300, 310));

}  // namespace
}  // namespace park
