// Whole-stack integration: one scenario driving every subsystem together —
// parsing with all annotations, ECA transactions, conflict resolution with
// a composite policy, tracing, provenance, queries, analysis, snapshots,
// and journal recovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "park/park.h"

namespace park {
namespace {

constexpr char kInventoryRules[] = R"(
  # Stock management for a small warehouse.
  # Reordering: low stock triggers a purchase order...
  reorder [src=1]:  stock(I, 0), !on_order(I) -> +on_order(I).
  # ...and receiving goods clears it.
  received [src=1]: +stock(I, 100), on_order(I) -> -on_order(I).

  # Quality control: recalled items must not be sellable...
  recall [prio=10, src=2]:  recalled(I), sellable(I) -> -sellable(I).
  # ...but the sales team keeps marking stocked items sellable.
  sales [prio=1, src=3]:    stock(I, 100) -> +sellable(I).

  # Audit every de-listing event.
  audit: -sellable(I) -> +delisted(I).
)";

class IntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : created_) std::remove(path.c_str());
  }

  std::string TempPath(const std::string& name) {
    std::string path = ::testing::TempDir() + "park_integration_" + name;
    created_.push_back(path);
    return path;
  }

  std::vector<std::string> created_;
};

TEST_F(IntegrationTest, WarehouseLifecycle) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules(kInventoryRules).ok());
  ASSERT_TRUE(db.LoadFacts(R"(
    stock(widget, 100). sellable(widget).
    stock(gizmo, 0).
    stock(doohickey, 100). sellable(doohickey). recalled(doohickey).
  )").ok());

  // The recall rule outranks sales; resolve their fight by priority.
  {
    ParkOptions options;
    options.policy = MakeCompositePolicy(
        {MakeRulePriorityPolicy(), MakeInertiaPolicy()});
    options.trace_level = TraceLevel::kSummary;
    ASSERT_TRUE(db.Configure(std::move(options)).ok());
  }

  // Static analysis sees both tug-of-wars: on_order (reorder/received)
  // and sellable (recall/sales).
  ProgramAnalysis analysis = AnalyzeProgram(db.program());
  std::vector<std::string> conflict_preds;
  for (PredicateId pred : analysis.potentially_conflicting_predicates) {
    conflict_preds.push_back(db.symbols()->PredicateName(pred));
  }
  std::sort(conflict_preds.begin(), conflict_preds.end());
  EXPECT_EQ(conflict_preds,
            (std::vector<std::string>{"on_order", "sellable"}));
  EXPECT_TRUE(analysis.uses_events);

  // Stabilize: gizmo (stock 0) goes on order; doohickey is de-listed and
  // audited despite `sales` re-asserting it (priority 10 beats 1).
  auto report = db.Stabilize();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->stats.conflicts_resolved, 1u);
  EXPECT_TRUE(DatabaseMatches(db.database(), "on_order(gizmo)",
                              db.symbols()).value());
  EXPECT_FALSE(DatabaseMatches(db.database(), "sellable(doohickey)",
                               db.symbols()).value());
  EXPECT_TRUE(DatabaseMatches(db.database(), "delisted(doohickey)",
                              db.symbols()).value());
  // widget untouched.
  EXPECT_TRUE(DatabaseMatches(db.database(), "sellable(widget)",
                              db.symbols()).value());

  // Journal from here on; receive the gizmo shipment transactionally.
  std::string journal_path = TempPath("journal");
  ASSERT_TRUE(db.AttachJournal(journal_path).ok());
  {
    Transaction tx = db.Begin();
    tx.Delete("stock", {"gizmo", "0"});
    tx.Insert("stock", {"gizmo", "100"});
    auto commit = std::move(tx).Commit();
    ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  }
  // The +stock event cleared the order and sales made it sellable.
  EXPECT_FALSE(DatabaseMatches(db.database(), "on_order(gizmo)",
                               db.symbols()).value());
  EXPECT_TRUE(DatabaseMatches(db.database(), "sellable(gizmo)",
                              db.symbols()).value());

  // Snapshot, then crash-recover into a fresh instance: snapshot state
  // only (the journal is replayed on top of the PRE-journal state, so
  // here we recover from the stabilized snapshot instead).
  std::string snapshot_path = TempPath("snapshot");
  ASSERT_TRUE(db.SaveSnapshot(snapshot_path).ok());
  std::string expected = db.database().ToString();

  ActiveDatabase recovered;
  ASSERT_TRUE(recovered.LoadRules(kInventoryRules).ok());
  {
    ParkOptions options;
    options.policy = MakeCompositePolicy(
        {MakeRulePriorityPolicy(), MakeInertiaPolicy()});
    ASSERT_TRUE(recovered.Configure(std::move(options)).ok());
  }
  ASSERT_TRUE(recovered.LoadSnapshot(snapshot_path).ok());
  EXPECT_EQ(recovered.database().ToString(), expected);

  // Query the audit trail through the pattern API.
  auto delisted =
      QueryDatabase(recovered.database(), "delisted(I)", recovered.symbols());
  ASSERT_TRUE(delisted.ok());
  EXPECT_EQ(delisted->ToStrings(*recovered.symbols()),
            (std::vector<std::string>{"I=doohickey"}));
}

TEST_F(IntegrationTest, SourceReliabilityOverridesPriority) {
  // Same warehouse, but resolution by source trust: QC (src=2) outranks
  // sales (src=3) regardless of rule priorities.
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules(kInventoryRules).ok());
  ASSERT_TRUE(db.LoadFacts(
      "stock(doohickey, 100). sellable(doohickey). recalled(doohickey).")
                  .ok());
  {
    ParkOptions options;
    options.policy = MakeCompositePolicy(
        {MakeSourceReliabilityPolicy({{2, 100}, {3, 10}, {1, 50}}),
         MakeInertiaPolicy()});
    ASSERT_TRUE(db.Configure(std::move(options)).ok());
  }
  ASSERT_TRUE(db.Stabilize().ok());
  EXPECT_FALSE(DatabaseMatches(db.database(), "sellable(doohickey)",
                               db.symbols()).value());

  // Flip the trust table: sales wins, the item stays sellable.
  ActiveDatabase db2;
  ASSERT_TRUE(db2.LoadRules(kInventoryRules).ok());
  ASSERT_TRUE(db2.LoadFacts(
      "stock(doohickey, 100). sellable(doohickey). recalled(doohickey).")
                  .ok());
  {
    ParkOptions options;
    options.policy = MakeCompositePolicy(
        {MakeSourceReliabilityPolicy({{2, 10}, {3, 100}, {1, 50}}),
         MakeInertiaPolicy()});
    ASSERT_TRUE(db2.Configure(std::move(options)).ok());
  }
  ASSERT_TRUE(db2.Stabilize().ok());
  EXPECT_TRUE(DatabaseMatches(db2.database(), "sellable(doohickey)",
                              db2.symbols()).value());
}

TEST_F(IntegrationTest, ProgramRoundTripsThroughDisk) {
  auto symbols = MakeSymbolTable();
  auto program = ParseProgram(kInventoryRules, symbols);
  ASSERT_TRUE(program.ok());
  std::string path = TempPath("rules");
  ASSERT_TRUE(WriteProgramFile(*program, path).ok());
  auto reloaded = ReadProgramFile(path, MakeSymbolTable());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(ProgramToString(*reloaded), ProgramToString(*program));
  // Annotations survive the round trip.
  EXPECT_EQ(reloaded->rule(2).priority(), 10);
  EXPECT_EQ(reloaded->rule(2).source(), 2);
}

}  // namespace
}  // namespace park
