#include "core/observer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/park_evaluator.h"
#include "core/stepper.h"
#include "eca/active_database.h"
#include "lang/parser.h"
#include "util/string_util.h"

namespace park {
namespace {

// §5 program: forces two restarts under inertia, so a run exercises every
// loop event (gamma, conflict round, policy decision, restart, fixpoint).
constexpr char kSection5[] =
    "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.";

struct Fixture {
  std::shared_ptr<SymbolTable> symbols = MakeSymbolTable();
  Program program;
  Database db;

  Fixture()
      : program(ParseProgram(kSection5, symbols).value()),
        db(ParseDatabase("p.", symbols).value()) {}
};

/// Records every event as one line, for ordering assertions.
class EventLog : public RunObserver {
 public:
  void OnRunStart(const RunStartInfo& info) override {
    events.push_back(StrFormat("run_start rules=%zu threads=%d mode=%s",
                               info.num_rules, info.num_threads,
                               info.gamma_mode));
  }
  void OnStepStart(int step) override {
    events.push_back(StrFormat("step %d", step));
  }
  void OnGammaSection(const GammaSectionInfo& info) override {
    events.push_back(StrFormat("gamma step=%d consistent=%d", info.step,
                               info.consistent ? 1 : 0));
  }
  void OnPolicyDecision(const Conflict&, Vote vote) override {
    events.push_back(StrFormat(
        "policy %s", vote == Vote::kInsert ? "insert" : "delete"));
  }
  void OnConflictRound(const ConflictRoundInfo& info) override {
    events.push_back(StrFormat("conflict_round restart=%zu conflicts=%zu",
                               info.restart, info.conflicts));
  }
  void OnRestart(size_t restart) override {
    events.push_back(StrFormat("restart %zu", restart));
  }
  void OnFixpoint(int step) override {
    events.push_back(StrFormat("fixpoint %d", step));
  }
  void OnRunEnd(const ParkStats& stats) override {
    events.push_back(StrFormat("run_end restarts=%zu", stats.restarts));
  }
  void OnCommitStart(size_t updates) override {
    events.push_back(StrFormat("commit_start %zu", updates));
  }
  void OnCommitEnd(const CommitEndInfo& info) override {
    events.push_back(StrFormat("commit_end ins=%zu del=%zu seq=%llu",
                               info.inserted, info.deleted,
                               static_cast<unsigned long long>(
                                   info.journal_seq)));
  }
  void OnJournalAppend(uint64_t seq) override {
    events.push_back(StrFormat(
        "journal %llu", static_cast<unsigned long long>(seq)));
  }
  void OnCheckpoint(uint64_t seq) override {
    events.push_back(StrFormat(
        "checkpoint %llu", static_cast<unsigned long long>(seq)));
  }

  bool Has(const std::string& prefix) const {
    return IndexOf(prefix) >= 0;
  }
  int IndexOf(const std::string& prefix) const {
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].rfind(prefix, 0) == 0) return static_cast<int>(i);
    }
    return -1;
  }

  std::vector<std::string> events;
};

TEST(ObserverTest, ParkFiresEventsInStructuralOrder) {
  Fixture f;
  EventLog log;
  ParkOptions options;
  options.observer = &log;
  auto result = Park(f.program, f.db, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_FALSE(log.events.empty());
  // The envelope: run_start first, run_end last, fixpoint just before.
  EXPECT_EQ(log.events.front().rfind("run_start", 0), 0u) << log.events[0];
  EXPECT_EQ(log.events.back().rfind("run_end", 0), 0u);
  EXPECT_EQ(log.events[log.events.size() - 2].rfind("fixpoint", 0), 0u);
  // §5 under inertia restarts twice; the loop events must all be present
  // and ordered: a conflict's policy decisions precede its round event,
  // which precedes the restart.
  EXPECT_TRUE(log.Has("restart 1"));
  EXPECT_TRUE(log.Has("restart 2"));
  EXPECT_LT(log.IndexOf("policy"), log.IndexOf("conflict_round"));
  EXPECT_LT(log.IndexOf("conflict_round"), log.IndexOf("restart 1"));
  // Every gamma event carries its step; the first is step 0.
  EXPECT_TRUE(log.Has("gamma step=0"));
  // run_start reports the resolved configuration.
  EXPECT_EQ(log.events[0],
            "run_start rules=5 threads=1 mode=delta_filtered");
}

TEST(ObserverTest, StepperFiresSameEventSkeleton) {
  Fixture f;
  EventLog batch_log;
  ParkOptions options;
  options.observer = &batch_log;
  ASSERT_TRUE(Park(f.program, f.db, options).ok());

  EventLog step_log;
  ParkOptions step_options;
  step_options.observer = &step_log;
  ParkStepper stepper(f.program, f.db, step_options);
  ASSERT_TRUE(stepper.Finish().ok());
  // The stepper is the same Δ loop exposed incrementally: identical
  // event sequence, event for event.
  EXPECT_EQ(step_log.events, batch_log.events);
}

class ThrowingObserver : public RunObserver {
 public:
  void OnGammaSection(const GammaSectionInfo&) override {
    ++calls;
    throw std::runtime_error("observer bug");
  }
  int calls = 0;
};

TEST(ObserverTest, ThrowingObserverIsDetachedAndResultUnchanged) {
  Fixture f;
  auto plain = Park(f.program, f.db, ParkOptions());
  ASSERT_TRUE(plain.ok());

  ThrowingObserver thrower;
  ParkOptions options;
  options.observer = &thrower;
  auto observed = Park(f.program, f.db, options);
  ASSERT_TRUE(observed.ok()) << observed.status().ToString();
  // Thrown once, detached, never called again.
  EXPECT_EQ(thrower.calls, 1);
  // The evaluation result is exactly the unobserved one.
  EXPECT_EQ(observed->database.ToString(), plain->database.ToString());
  EXPECT_EQ(observed->stats.gamma_steps, plain->stats.gamma_steps);
  EXPECT_EQ(observed->stats.restarts, plain->stats.restarts);
  EXPECT_EQ(observed->blocked, plain->blocked);
}

TEST(ObserverTest, TracingObserverRendersEveryLoopEvent) {
  Fixture f;
  std::ostringstream out;
  TracingObserver tracer(out, f.symbols.get());
  ParkOptions options;
  options.observer = &tracer;
  ASSERT_TRUE(Park(f.program, f.db, options).ok());
  std::string text = out.str();
  EXPECT_NE(text.find("run start"), std::string::npos);
  EXPECT_NE(text.find("gamma"), std::string::npos);
  EXPECT_NE(text.find("select"), std::string::npos);
  EXPECT_NE(text.find("restart"), std::string::npos);
  EXPECT_NE(text.find("fixpoint"), std::string::npos);
  // With a symbol table the conflict atom is rendered by name.
  EXPECT_NE(text.find("q"), std::string::npos);
}

TEST(ObserverTest, MetricsObserverAggregatesCounters) {
  Fixture f;
  MetricsRegistry registry;
  MetricsObserver metrics(&registry);
  ParkOptions options;
  options.observer = &metrics;
  auto result = Park(f.program, f.db, options);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(registry.GetCounter("park.runs")->value, 1u);
  EXPECT_EQ(registry.GetCounter("park.fixpoints")->value, 1u);
  EXPECT_EQ(registry.GetCounter("park.restarts")->value,
            result->stats.restarts);
  EXPECT_EQ(registry.GetCounter("park.conflicts")->value,
            result->stats.conflicts_resolved);
  EXPECT_GT(registry.GetCounter("park.steps")->value, 0u);
  EXPECT_GT(registry.GetCounter("park.derivations")->value, 0u);
  // The run timer recorded one sample (registry enabled by default).
  EXPECT_EQ(registry.GetTimer("park.run")->count, 1u);

  // A second run keeps aggregating into the same registry.
  ASSERT_TRUE(Park(f.program, f.db, options).ok());
  EXPECT_EQ(registry.GetCounter("park.runs")->value, 2u);
  EXPECT_EQ(registry.GetTimer("park.run")->count, 2u);
}

TEST(ObserverTest, CommitPipelineEventsIncludeJournalAndCheckpoint) {
  const std::string dir = ::testing::TempDir() + "park_observer_commit";
  std::filesystem::remove_all(dir);
  EventLog log;
  ActiveDatabase::OpenParams params;
  params.rules = "r1: p(X) -> +q(X).";
  params.sync_mode = JournalSyncMode::kFlush;
  params.options.observer = &log;
  auto db = ActiveDatabase::Open(dir, params);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto tx = db->Begin();
  tx.Insert("p", {"a"});
  auto report = std::move(tx).Commit();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->journal_seq, 1u);

  ASSERT_TRUE(db->Checkpoint().ok());

  // commit_start opens the pipeline, run events nest inside, the journal
  // append precedes commit_end, and the checkpoint is last.
  int commit_start = log.IndexOf("commit_start 1");
  int run_start = log.IndexOf("run_start");
  int journal = log.IndexOf("journal 1");
  int commit_end = log.IndexOf("commit_end");
  int checkpoint = log.IndexOf("checkpoint 1");
  ASSERT_GE(commit_start, 0);
  ASSERT_GE(run_start, 0);
  ASSERT_GE(journal, 0);
  ASSERT_GE(commit_end, 0);
  ASSERT_GE(checkpoint, 0);
  EXPECT_LT(commit_start, run_start);
  EXPECT_LT(run_start, journal);
  EXPECT_LT(journal, commit_end);
  EXPECT_LT(commit_end, checkpoint);
  EXPECT_EQ(log.events[commit_end], "commit_end ins=2 del=0 seq=1");
}

TEST(ObserverTest, CommitReportCarriesTimings) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("r1: p(X) -> +q(X).").ok());
  auto tx = db.Begin();
  tx.Insert("p", {"a"});
  auto report = std::move(tx).Commit();
  ASSERT_TRUE(report.ok());
  // Commit timings are always collected; total covers the phases.
  EXPECT_GT(report->timings.total_ns, 0u);
  EXPECT_GT(report->timings.evaluate_ns, 0u);
  EXPECT_GE(report->timings.total_ns,
            report->timings.evaluate_ns + report->timings.apply_ns);
  // No journal attached: no journal time, no sequence number.
  EXPECT_EQ(report->timings.journal_ns, 0u);
  EXPECT_EQ(report->journal_seq, 0u);
}

TEST(ObserverTest, ThrowingObserverDoesNotPoisonCommit) {
  ThrowingObserver thrower;
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules(kSection5).ok());
  ASSERT_TRUE(db.LoadFacts("p.").ok());
  ParkOptions options;
  options.observer = &thrower;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  auto report = db.Stabilize();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The bi-structure landed in the normal §5 state despite the throw.
  EXPECT_EQ(db.database().ToString(), "{a, b, p}");
  EXPECT_EQ(report->stats.restarts, 2u);
  EXPECT_EQ(thrower.calls, 1);
}

}  // namespace
}  // namespace park
