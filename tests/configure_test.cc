// ActiveDatabase::Configure and ValidateOptions: the single validated
// entry point for evaluation options, the deprecated setters that remain
// as thin wrappers, and the commit-time backstop that catches options
// smuggled in around validation.

#include <gtest/gtest.h>

#include <filesystem>
#include <utility>

#include "core/park_evaluator.h"
#include "eca/active_database.h"

namespace park {
namespace {

TEST(ValidateOptionsTest, DefaultOptionsAreValid) {
  EXPECT_TRUE(ValidateOptions(ParkOptions()).ok());
}

TEST(ValidateOptionsTest, RejectsNegativeThreads) {
  ParkOptions options;
  options.num_threads = -1;
  Status status = ValidateOptions(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("num_threads"), std::string::npos);
}

TEST(ValidateOptionsTest, RejectsZeroSliceSize) {
  ParkOptions options;
  options.min_slice_size = 0;
  Status status = ValidateOptions(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("min_slice_size"), std::string::npos);
}

TEST(ValidateOptionsTest, RejectsZeroMaxSteps) {
  ParkOptions options;
  options.max_steps = 0;
  EXPECT_EQ(ValidateOptions(options).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateOptionsTest, RejectsNegativeDeadline) {
  ParkOptions options;
  options.deadline_ms = -5;
  EXPECT_EQ(ValidateOptions(options).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateOptionsTest, AcceptsFreeKnobExtremes) {
  ParkOptions options;
  options.num_threads = 0;  // hardware concurrency
  options.min_slice_size = 1;
  options.deadline_ms = 0;  // no deadline
  EXPECT_TRUE(ValidateOptions(options).ok());
}

TEST(ConfigureTest, InstallsValidatedBundle) {
  ActiveDatabase db;
  ParkOptions options;
  options.num_threads = 2;
  options.min_slice_size = 64;
  options.gamma_mode = GammaMode::kSemiNaive;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  EXPECT_EQ(db.options().num_threads, 2);
  EXPECT_EQ(db.options().min_slice_size, 64u);
  EXPECT_EQ(db.options().gamma_mode, GammaMode::kSemiNaive);
}

TEST(ConfigureTest, RejectionLeavesPreviousOptionsUntouched) {
  ActiveDatabase db;
  ParkOptions good;
  good.num_threads = 3;
  ASSERT_TRUE(db.Configure(std::move(good)).ok());

  ParkOptions bad;
  bad.num_threads = -7;
  Status status = db.Configure(std::move(bad));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.options().num_threads, 3);
}

TEST(ConfigureTest, SurvivingDeprecatedSettersStillWork) {
  // SetPolicy/SetBlockGranularity/SetNumThreads/SetMinSliceSize are gone
  // (use Configure); only SetTraceLevel and mutable_options() survive.
  ActiveDatabase db;
  db.SetTraceLevel(TraceLevel::kFull);
  EXPECT_EQ(db.options().trace_level, TraceLevel::kFull);
}

TEST(ConfigureTest, MutableOptionsBypassIsCaughtAtCommit) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("r1: p(X) -> +q(X).").ok());
  // mutable_options() skips validation by construction; the commit-time
  // backstop must refuse to evaluate with the invalid bundle...
  db.mutable_options().num_threads = -1;
  auto tx = db.Begin();
  tx.Insert("p", {"a"});
  auto report = std::move(tx).Commit();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  // ...and refuse atomically: nothing was evaluated or stored.
  EXPECT_EQ(db.database().size(), 0u);

  // Repairing the options un-wedges the database.
  db.mutable_options().num_threads = 1;
  auto tx2 = db.Begin();
  tx2.Insert("p", {"a"});
  EXPECT_TRUE(std::move(tx2).Commit().ok());
  EXPECT_EQ(db.database().size(), 2u);
}

TEST(ConfigureTest, OpenValidatesOptionsBundle) {
  const std::string dir = ::testing::TempDir() + "park_configure_open";
  ActiveDatabase::OpenParams params;
  params.options.num_threads = -2;
  auto db = ActiveDatabase::Open(dir, std::move(params));
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigureTest, OpenParamsOptionsReachTheDatabase) {
  const std::string dir = ::testing::TempDir() + "park_configure_open_ok";
  std::filesystem::remove_all(dir);
  ActiveDatabase::OpenParams params;
  params.rules = "r1: p(X) -> +q(X).";
  params.sync_mode = JournalSyncMode::kNone;
  params.options.num_threads = 2;
  params.options.gamma_mode = GammaMode::kSemiNaive;
  auto db = ActiveDatabase::Open(dir, std::move(params));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->options().num_threads, 2);
  EXPECT_EQ(db->options().gamma_mode, GammaMode::kSemiNaive);
}

TEST(ConfigureTest, LegacyOpenPolicyOverridesOptionsPolicy) {
  const std::string dir = ::testing::TempDir() + "park_configure_policy";
  std::filesystem::remove_all(dir);
  ActiveDatabase::OpenParams params;
  params.sync_mode = JournalSyncMode::kNone;
  params.policy = MakeAlwaysInsertPolicy();       // deprecated field...
  params.options.policy = MakeAlwaysDeletePolicy();  // ...wins over this
  auto db = ActiveDatabase::Open(dir, std::move(params));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_NE(db->options().policy, nullptr);
  EXPECT_EQ(db->options().policy->name(), "always-insert");
}

}  // namespace
}  // namespace park
