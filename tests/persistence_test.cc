// Persistence: file round trips for databases and programs, the
// transaction journal, and ActiveDatabase crash recovery.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "park/park.h"

namespace park {
namespace {

/// Unique-ish temp path per test; removed on fixture teardown.
class PersistenceTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    std::string path = ::testing::TempDir() + "park_" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                       "_" + name;
    created_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : created_) {
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }
  }

  std::vector<std::string> created_;
};

TEST_F(PersistenceTest, DatabaseRoundTrip) {
  auto symbols = MakeSymbolTable();
  Database db = ParseDatabase(
      "p(a). q(a, 7). r. name(x, \"J. \\\"Q\\\" Doe\").", symbols).value();
  std::string path = TempPath("db.facts");
  ASSERT_TRUE(WriteDatabaseFile(db, path).ok());

  auto loaded = ReadDatabaseFile(path, symbols);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(db.SameAtoms(*loaded));
}

TEST_F(PersistenceTest, DatabaseLoadIntoFreshSymbolTable) {
  auto symbols = MakeSymbolTable();
  Database db = ParseDatabase("p(alpha). q(beta).", symbols).value();
  std::string path = TempPath("db.facts");
  ASSERT_TRUE(WriteDatabaseFile(db, path).ok());
  // A different process would have a different symbol table.
  auto fresh = ReadDatabaseFile(path, MakeSymbolTable());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->ToString(), db.ToString());
}

TEST_F(PersistenceTest, ProgramRoundTrip) {
  auto symbols = MakeSymbolTable();
  Program program = ParseProgram(R"(
    r1 [prio=3]: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
    -payroll(X, S) -> +audit(X, S).
    -> +seed(a).
  )", symbols).value();
  std::string path = TempPath("prog.rules");
  ASSERT_TRUE(WriteProgramFile(program, path).ok());

  auto loaded = ReadProgramFile(path, MakeSymbolTable());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(ProgramToString(*loaded), ProgramToString(program));
}

TEST_F(PersistenceTest, ReadMissingFileIsNotFound) {
  auto status = ReadDatabaseFile("/nonexistent/park.facts",
                                 MakeSymbolTable()).status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(PersistenceTest, JournalAppendAndReadAll) {
  auto symbols = MakeSymbolTable();
  std::string path = TempPath("journal");
  {
    auto journal = TransactionJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    UpdateSet tx1;
    ASSERT_TRUE(tx1.AddParsed("+q(b)", symbols).ok());
    ASSERT_TRUE(tx1.AddParsed("-p(a)", symbols).ok());
    ASSERT_TRUE(journal->Append(tx1, *symbols).ok());
    UpdateSet tx2;
    ASSERT_TRUE(tx2.AddParsed("+r(c)", symbols).ok());
    ASSERT_TRUE(journal->Append(tx2, *symbols).ok());
  }
  auto records = TransactionJournal::ReadAll(path, symbols);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].ToString(*symbols), "{+q(b), -p(a)}");
  EXPECT_EQ((*records)[1].ToString(*symbols), "{+r(c)}");
}

TEST_F(PersistenceTest, JournalMissingFileIsEmpty) {
  auto records =
      TransactionJournal::ReadAll(TempPath("never_created"),
                                  MakeSymbolTable());
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(PersistenceTest, JournalTornTailIsIgnored) {
  auto symbols = MakeSymbolTable();
  std::string path = TempPath("journal");
  {
    std::ofstream out(path);
    out << "begin\n+a(1)\ncommit\n"
        << "begin\n+b(2)\n";  // crash before commit
  }
  auto records = TransactionJournal::ReadAll(path, symbols);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].ToString(*symbols), "{+a(1)}");
}

TEST_F(PersistenceTest, JournalTornRecordFollowedByBeginIsDropped) {
  auto symbols = MakeSymbolTable();
  std::string path = TempPath("journal");
  {
    std::ofstream out(path);
    out << "begin\n+a(1)\nbegin\n+b(2)\ncommit\n";
  }
  auto records = TransactionJournal::ReadAll(path, symbols);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].ToString(*symbols), "{+b(2)}");
}

TEST_F(PersistenceTest, JournalMalformedUpdateIsAnError) {
  std::string path = TempPath("journal");
  {
    std::ofstream out(path);
    out << "begin\nnot_an_update\ncommit\n";
  }
  auto records = TransactionJournal::ReadAll(path, MakeSymbolTable());
  EXPECT_FALSE(records.ok());
}

TEST_F(PersistenceTest, JournalLineOutsideRecordIsAnError) {
  std::string path = TempPath("journal");
  {
    std::ofstream out(path);
    out << "+a(1)\n";
  }
  auto records = TransactionJournal::ReadAll(path, MakeSymbolTable());
  EXPECT_FALSE(records.ok());
}

constexpr char kRules[] = R"(
  cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
  onboard: +emp(X) -> +active(X).
)";

TEST_F(PersistenceTest, ActiveDatabaseJournalRecovery) {
  std::string journal_path = TempPath("journal");
  std::string final_state;

  {
    // "Process 1": attach a journal and run some transactions.
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.AttachJournal(journal_path).ok());
    EXPECT_TRUE(db.has_journal());

    Transaction tx1 = db.Begin();
    tx1.Insert("emp", {"ada"});
    tx1.Insert("payroll", {"ada", "x"});
    ASSERT_TRUE(std::move(tx1).Commit().ok());

    Transaction tx2 = db.Begin();
    tx2.Insert("emp", {"bob"});
    ASSERT_TRUE(std::move(tx2).Commit().ok());

    Transaction tx3 = db.Begin();
    tx3.Delete("active", {"bob"});
    ASSERT_TRUE(std::move(tx3).Commit().ok());

    final_state = db.database().ToString();
  }
  {
    // "Process 2": fresh instance, same rules, replay the journal.
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.RecoverFromJournal(journal_path).ok());
    EXPECT_EQ(db.database().ToString(), final_state);
    // And keep journaling from here.
    ASSERT_TRUE(db.AttachJournal(journal_path).ok());
    Transaction tx = db.Begin();
    tx.Insert("emp", {"eve"});
    ASSERT_TRUE(std::move(tx).Commit().ok());
  }
  {
    // "Process 3": the journal now has four records.
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.RecoverFromJournal(journal_path).ok());
    EXPECT_TRUE(db.Contains(
        ParseGroundAtom("active(eve)", db.symbols()).value()));
    EXPECT_NE(db.database().ToString(), final_state);
  }
}

TEST_F(PersistenceTest, RecoverAfterAttachFails) {
  ActiveDatabase db;
  ASSERT_TRUE(db.AttachJournal(TempPath("journal")).ok());
  EXPECT_EQ(db.RecoverFromJournal(TempPath("journal")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.AttachJournal(TempPath("other")).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, SnapshotSaveAndLoad) {
  std::string snapshot_path = TempPath("snapshot.facts");
  std::string state;
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.LoadFacts("emp(a). active(a). payroll(a, 100).").ok());
    ASSERT_TRUE(db.Stabilize().ok());
    ASSERT_TRUE(db.SaveSnapshot(snapshot_path).ok());
    state = db.database().ToString();
  }
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.LoadSnapshot(snapshot_path).ok());
    EXPECT_EQ(db.database().ToString(), state);
  }
}

TEST_F(PersistenceTest, SnapshotPlusJournalWorkflow) {
  std::string snapshot_path = TempPath("snapshot.facts");
  std::string journal_path = TempPath("journal");
  std::string state_after_tx;
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.LoadFacts("emp(a). active(a).").ok());
    ASSERT_TRUE(db.SaveSnapshot(snapshot_path).ok());
    ASSERT_TRUE(db.AttachJournal(journal_path).ok());
    Transaction tx = db.Begin();
    tx.Insert("emp", {"b"});
    ASSERT_TRUE(std::move(tx).Commit().ok());
    state_after_tx = db.database().ToString();
  }
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.LoadSnapshot(snapshot_path).ok());
    ASSERT_TRUE(db.RecoverFromJournal(journal_path).ok());
    EXPECT_EQ(db.database().ToString(), state_after_tx);
  }
}

}  // namespace
}  // namespace park
