// Persistence: file round trips for databases and programs, the
// transaction journal, and ActiveDatabase crash recovery.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "park/park.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace park {
namespace {

/// Unique-ish temp path per test; removed on fixture teardown.
class PersistenceTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    std::string path = ::testing::TempDir() + "park_" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                       "_" + name;
    created_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : created_) {
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }
  }

  std::vector<std::string> created_;
};

TEST_F(PersistenceTest, DatabaseRoundTrip) {
  auto symbols = MakeSymbolTable();
  Database db = ParseDatabase(
      "p(a). q(a, 7). r. name(x, \"J. \\\"Q\\\" Doe\").", symbols).value();
  std::string path = TempPath("db.facts");
  ASSERT_TRUE(WriteDatabaseFile(db, path).ok());

  auto loaded = ReadDatabaseFile(path, symbols);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(db.SameAtoms(*loaded));
}

TEST_F(PersistenceTest, DatabaseLoadIntoFreshSymbolTable) {
  auto symbols = MakeSymbolTable();
  Database db = ParseDatabase("p(alpha). q(beta).", symbols).value();
  std::string path = TempPath("db.facts");
  ASSERT_TRUE(WriteDatabaseFile(db, path).ok());
  // A different process would have a different symbol table.
  auto fresh = ReadDatabaseFile(path, MakeSymbolTable());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->ToString(), db.ToString());
}

TEST_F(PersistenceTest, ProgramRoundTrip) {
  auto symbols = MakeSymbolTable();
  Program program = ParseProgram(R"(
    r1 [prio=3]: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
    -payroll(X, S) -> +audit(X, S).
    -> +seed(a).
  )", symbols).value();
  std::string path = TempPath("prog.rules");
  ASSERT_TRUE(WriteProgramFile(program, path).ok());

  auto loaded = ReadProgramFile(path, MakeSymbolTable());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(ProgramToString(*loaded), ProgramToString(program));
}

TEST_F(PersistenceTest, ReadMissingFileIsNotFound) {
  auto status = ReadDatabaseFile("/nonexistent/park.facts",
                                 MakeSymbolTable()).status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(PersistenceTest, JournalAppendAndReadAll) {
  auto symbols = MakeSymbolTable();
  std::string path = TempPath("journal");
  {
    auto journal = TransactionJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    UpdateSet tx1;
    ASSERT_TRUE(tx1.AddParsed("+q(b)", symbols).ok());
    ASSERT_TRUE(tx1.AddParsed("-p(a)", symbols).ok());
    ASSERT_TRUE(journal->Append(tx1, *symbols).ok());
    UpdateSet tx2;
    ASSERT_TRUE(tx2.AddParsed("+r(c)", symbols).ok());
    ASSERT_TRUE(journal->Append(tx2, *symbols).ok());
  }
  auto records = TransactionJournal::ReadAll(path, symbols);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].ToString(*symbols), "{+q(b), -p(a)}");
  EXPECT_EQ((*records)[1].ToString(*symbols), "{+r(c)}");
}

TEST_F(PersistenceTest, JournalMissingFileIsEmpty) {
  auto records =
      TransactionJournal::ReadAll(TempPath("never_created"),
                                  MakeSymbolTable());
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

// Renders one journal record in the on-disk format with a correct CRC
// footer (mirrors TransactionJournal::Append; kept in sync by the
// round-trip tests).
std::string MakeRecord(uint64_t seq,
                       const std::vector<std::string>& update_lines) {
  std::string payload = std::to_string(seq) + "\n";
  for (const std::string& line : update_lines) payload += line + "\n";
  std::string record = "begin " + std::to_string(seq) + "\n";
  for (const std::string& line : update_lines) record += line + "\n";
  record += "commit " + std::to_string(seq) + " " +
            StrFormat("crc=%08x", Crc32(payload)) + "\n";
  return record;
}

TEST_F(PersistenceTest, JournalTornTailIsIgnored) {
  auto symbols = MakeSymbolTable();
  std::string path = TempPath("journal");
  {
    std::ofstream out(path);
    out << MakeRecord(1, {"+a(1)"})
        << "begin 2\n+b(2)\n";  // crash before the commit footer
  }
  auto records = TransactionJournal::ReadAll(path, symbols);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].ToString(*symbols), "{+a(1)}");
}

TEST_F(PersistenceTest, JournalTornRecordFollowedByValidOneIsDataLoss) {
  // A torn record in the MIDDLE of the journal means committed bytes
  // vanished; recovery must refuse rather than silently skip it.
  auto symbols = MakeSymbolTable();
  std::string path = TempPath("journal");
  {
    std::ofstream out(path);
    out << "begin 1\n+a(1)\n" << MakeRecord(2, {"+b(2)"});
  }
  auto records = TransactionJournal::ReadAll(path, symbols);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kDataLoss);
}

TEST_F(PersistenceTest, JournalMalformedUpdateIsAnError) {
  // The CRC is valid, so the bytes are what the writer wrote — a
  // non-update line inside a committed record is a real error, not
  // damage to be skipped.
  std::string path = TempPath("journal");
  {
    std::ofstream out(path);
    out << MakeRecord(1, {"not_an_update"});
  }
  auto records = TransactionJournal::ReadAll(path, MakeSymbolTable());
  EXPECT_FALSE(records.ok());
}

TEST_F(PersistenceTest, JournalLineOutsideRecordIsAnError) {
  std::string path = TempPath("journal");
  {
    std::ofstream out(path);
    out << "+a(1)\n";
  }
  auto records = TransactionJournal::ReadAll(path, MakeSymbolTable());
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kDataLoss);
}

constexpr char kRules[] = R"(
  cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
  onboard: +emp(X) -> +active(X).
)";

TEST_F(PersistenceTest, ActiveDatabaseJournalRecovery) {
  std::string journal_path = TempPath("journal");
  std::string final_state;

  {
    // "Process 1": attach a journal and run some transactions.
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.AttachJournal(journal_path).ok());
    EXPECT_TRUE(db.has_journal());

    Transaction tx1 = db.Begin();
    tx1.Insert("emp", {"ada"});
    tx1.Insert("payroll", {"ada", "x"});
    ASSERT_TRUE(std::move(tx1).Commit().ok());

    Transaction tx2 = db.Begin();
    tx2.Insert("emp", {"bob"});
    ASSERT_TRUE(std::move(tx2).Commit().ok());

    Transaction tx3 = db.Begin();
    tx3.Delete("active", {"bob"});
    ASSERT_TRUE(std::move(tx3).Commit().ok());

    final_state = db.database().ToString();
  }
  {
    // "Process 2": fresh instance, same rules, replay the journal.
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.RecoverFromJournal(journal_path).ok());
    EXPECT_EQ(db.database().ToString(), final_state);
    // And keep journaling from here.
    ASSERT_TRUE(db.AttachJournal(journal_path).ok());
    Transaction tx = db.Begin();
    tx.Insert("emp", {"eve"});
    ASSERT_TRUE(std::move(tx).Commit().ok());
  }
  {
    // "Process 3": the journal now has four records.
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.RecoverFromJournal(journal_path).ok());
    EXPECT_TRUE(db.Contains(
        ParseGroundAtom("active(eve)", db.symbols()).value()));
    EXPECT_NE(db.database().ToString(), final_state);
  }
}

TEST_F(PersistenceTest, RecoverAfterAttachFails) {
  ActiveDatabase db;
  ASSERT_TRUE(db.AttachJournal(TempPath("journal")).ok());
  EXPECT_EQ(db.RecoverFromJournal(TempPath("journal")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.AttachJournal(TempPath("other")).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, SnapshotSaveAndLoad) {
  std::string snapshot_path = TempPath("snapshot.facts");
  std::string state;
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.LoadFacts("emp(a). active(a). payroll(a, 100).").ok());
    ASSERT_TRUE(db.Stabilize().ok());
    ASSERT_TRUE(db.SaveSnapshot(snapshot_path).ok());
    state = db.database().ToString();
  }
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.LoadSnapshot(snapshot_path).ok());
    EXPECT_EQ(db.database().ToString(), state);
  }
}

TEST_F(PersistenceTest, SnapshotPlusJournalWorkflow) {
  std::string snapshot_path = TempPath("snapshot.facts");
  std::string journal_path = TempPath("journal");
  std::string state_after_tx;
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.LoadFacts("emp(a). active(a).").ok());
    ASSERT_TRUE(db.SaveSnapshot(snapshot_path).ok());
    ASSERT_TRUE(db.AttachJournal(journal_path).ok());
    Transaction tx = db.Begin();
    tx.Insert("emp", {"b"});
    ASSERT_TRUE(std::move(tx).Commit().ok());
    state_after_tx = db.database().ToString();
  }
  {
    ActiveDatabase db;
    ASSERT_TRUE(db.LoadRules(kRules).ok());
    ASSERT_TRUE(db.LoadSnapshot(snapshot_path).ok());
    ASSERT_TRUE(db.RecoverFromJournal(journal_path).ok());
    EXPECT_EQ(db.database().ToString(), state_after_tx);
  }
}

}  // namespace
}  // namespace park
