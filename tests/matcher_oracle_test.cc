// Oracle test for the body matcher: ForEachBodyMatch must return exactly
// the substitutions a brute-force enumeration over the active domain
// accepts, for random rules, random databases, and random marked atoms.
// This pins down the trickiest module (join planning, index usage,
// repeated variables, negation ordering, event literals) against a
// definition-level implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine/matcher.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "util/random.h"
#include "util/string_util.h"

namespace park {
namespace {

constexpr int kNumConstants = 4;  // c0..c3
constexpr int kNumPredicates = 3; // q0/1, q1/2, q2/1

std::string ConstName(int i) { return "c" + std::to_string(i); }

/// Builds a random safe rule as text; retries until it parses safely.
std::string RandomRuleText(Rng& rng) {
  static const char* kVars[] = {"X", "Y", "Z"};
  auto term = [&](bool allow_var) {
    if (allow_var && rng.Bernoulli(0.6)) {
      return std::string(kVars[rng.Uniform(3)]);
    }
    return ConstName(static_cast<int>(rng.Uniform(kNumConstants)));
  };
  auto atom = [&](bool allow_var) {
    int pred = static_cast<int>(rng.Uniform(kNumPredicates));
    int arity = pred == 1 ? 2 : 1;
    std::string out = "q" + std::to_string(pred) + "(";
    for (int i = 0; i < arity; ++i) {
      if (i > 0) out += ", ";
      out += term(allow_var);
    }
    out += ")";
    return out;
  };
  int body_len = 1 + static_cast<int>(rng.Uniform(3));
  std::string text;
  for (int i = 0; i < body_len; ++i) {
    if (i > 0) text += ", ";
    switch (rng.Uniform(5)) {
      case 0:
        text += "!";
        break;
      case 1:
        text += "+";
        break;
      case 2:
        text += "-";
        break;
      default:
        break;
    }
    text += atom(true);
  }
  text += " -> +" + atom(true) + ".";
  return text;
}

/// Definition-level match enumeration: every assignment of the rule's
/// variables over the constant domain, accepted iff all literals valid.
std::set<std::string> OracleMatches(const Rule& rule,
                                    const IInterpretation& interp,
                                    const std::vector<Value>& domain,
                                    const SymbolTable& symbols) {
  std::set<std::string> accepted;
  int vars = rule.num_variables();
  std::vector<size_t> choice(static_cast<size_t>(vars), 0);
  while (true) {
    std::vector<Value> binding;
    binding.reserve(static_cast<size_t>(vars));
    for (int v = 0; v < vars; ++v) {
      binding.push_back(domain[choice[static_cast<size_t>(v)]]);
    }
    bool valid = true;
    for (const BodyLiteral& lit : rule.body()) {
      if (!interp.IsValid(lit.atom.Ground(binding), lit.kind)) {
        valid = false;
        break;
      }
    }
    if (valid) {
      std::string key;
      for (const Value& v : binding) key += v.ToString(symbols) + ",";
      accepted.insert(key);
    }
    // Odometer increment.
    int pos = 0;
    while (pos < vars) {
      if (++choice[static_cast<size_t>(pos)] < domain.size()) break;
      choice[static_cast<size_t>(pos)] = 0;
      ++pos;
    }
    if (vars == 0 || pos == vars) break;
  }
  return accepted;
}

class MatcherOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherOracleTest, MatcherAgreesWithBruteForce) {
  Rng rng(GetParam());
  auto symbols = MakeSymbolTable();

  // Constant domain, interned up front.
  std::vector<Value> domain;
  for (int i = 0; i < kNumConstants; ++i) {
    domain.push_back(Value::Symbol(symbols->InternSymbol(ConstName(i))));
  }
  // Predeclare predicates so random facts and rules agree on arity.
  PredicateId preds[kNumPredicates] = {
      symbols->InternPredicate("q0", 1), symbols->InternPredicate("q1", 2),
      symbols->InternPredicate("q2", 1)};

  for (int scenario = 0; scenario < 30; ++scenario) {
    // Random base facts.
    Database db(symbols);
    for (int p = 0; p < kNumPredicates; ++p) {
      int arity = p == 1 ? 2 : 1;
      int facts = static_cast<int>(rng.Uniform(6));
      for (int f = 0; f < facts; ++f) {
        Tuple t;
        for (int i = 0; i < arity; ++i) {
          t.Append(domain[rng.Uniform(kNumConstants)]);
        }
        db.Insert(GroundAtom(preds[p], std::move(t)));
      }
    }
    // Random marked atoms (events / pending deletions).
    IInterpretation interp(&db);
    RuleGrounding dummy(0, Tuple{});
    for (int m = 0; m < 4; ++m) {
      int p = static_cast<int>(rng.Uniform(kNumPredicates));
      int arity = p == 1 ? 2 : 1;
      Tuple t;
      for (int i = 0; i < arity; ++i) {
        t.Append(domain[rng.Uniform(kNumConstants)]);
      }
      interp.AddMarked(
          rng.Bernoulli(0.5) ? ActionKind::kInsert : ActionKind::kDelete,
          GroundAtom(preds[p], std::move(t)), dummy);
    }

    // Random safe rule.
    Rule rule;
    for (int attempt = 0;; ++attempt) {
      auto parsed = ParseRule(RandomRuleText(rng), symbols);
      if (parsed.ok()) {
        rule = std::move(parsed).value();
        break;
      }
      ASSERT_LT(attempt, 200) << "cannot generate a safe random rule";
    }

    std::set<std::string> matcher;
    ForEachBodyMatch(rule, interp, [&](const Tuple& binding) {
      std::string key;
      for (const Value& v : binding.values()) {
        key += v.ToString(*symbols) + ",";
      }
      bool inserted = matcher.insert(key).second;
      EXPECT_TRUE(inserted) << "duplicate binding from matcher: " << key;
    });

    std::set<std::string> oracle =
        OracleMatches(rule, interp, domain, *symbols);
    EXPECT_EQ(matcher, oracle)
        << "rule: " << RuleToString(rule, *symbols) << "\n  db: "
        << db.ToString() << "\n  interp: " << interp.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherOracleTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace park
