#include "core/conflict.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace park {
namespace {

class ConflictTest : public ::testing::Test {
 protected:
  ConflictTest() : symbols_(MakeSymbolTable()) {}

  Program MustProgram(std::string_view text) {
    auto program = ParseProgram(text, symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program.ok() ? std::move(program).value()
                        : Program(MakeSymbolTable());
  }

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(ConflictTest, PaperExampleTwoSidedConflict) {
  // The §4.2 illustration: P = {r1: p(x) -> +q(x), r2: p(x) -> -q(x)},
  // I = {p(a)} gives conflicts(P, I) =
  // {(q(a), {(r1, [x <- a])}, {(r2, [x <- a])})}.
  Program program = MustProgram("r1: p(X) -> +q(X). r2: p(X) -> -q(X).");
  Database db = ParseDatabase("p(a).", symbols_).value();
  IInterpretation interp(&db);
  GammaResult gamma = ComputeGamma(program, {}, interp);
  ASSERT_FALSE(gamma.consistent);
  std::vector<Conflict> conflicts = BuildConflicts(gamma, interp);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].atom.ToString(*symbols_), "q(a)");
  ASSERT_EQ(conflicts[0].inserters.size(), 1u);
  ASSERT_EQ(conflicts[0].deleters.size(), 1u);
  EXPECT_EQ(conflicts[0].inserters[0].rule_index(), 0);
  EXPECT_EQ(conflicts[0].deleters[0].rule_index(), 1);
  EXPECT_EQ(conflicts[0].ToString(program, *symbols_),
            "q(a): ins={(r1, [X <- a])} del={(r2, [X <- a])}");
}

TEST_F(ConflictTest, MaximalityAllGroundingsIncluded) {
  // Three inserters and two deleters for the same atom: the conflict
  // triple must contain them all (the paper requires maximal triples).
  Program program = MustProgram(R"(
    a -> +x. b -> +x. c -> +x.
    a -> -x. b -> -x.
  )");
  Database db = ParseDatabase("a. b. c.", symbols_).value();
  IInterpretation interp(&db);
  GammaResult gamma = ComputeGamma(program, {}, interp);
  std::vector<Conflict> conflicts = BuildConflicts(gamma, interp);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].inserters.size(), 3u);
  EXPECT_EQ(conflicts[0].deleters.size(), 2u);
}

TEST_F(ConflictTest, ProvenanceCompletesStaleSide) {
  // +x entered I earlier (rule 0); now only -x is derivable. The conflict
  // must still have a non-empty insert side, via provenance.
  Program program = MustProgram("p -> -x.");
  Database db = ParseDatabase("p.", symbols_).value();
  IInterpretation interp(&db);
  RuleGrounding stale(/*rule_index=*/99, Tuple{});
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("x", symbols_).value(), stale);
  GammaResult gamma = ComputeGamma(program, {}, interp);
  ASSERT_FALSE(gamma.consistent);
  std::vector<Conflict> conflicts = BuildConflicts(gamma, interp);
  ASSERT_EQ(conflicts.size(), 1u);
  ASSERT_EQ(conflicts[0].inserters.size(), 1u);
  EXPECT_EQ(conflicts[0].inserters[0].rule_index(), 99);
  ASSERT_EQ(conflicts[0].deleters.size(), 1u);
  EXPECT_EQ(conflicts[0].deleters[0].rule_index(), 0);
}

TEST_F(ConflictTest, CurrentAndProvenanceSidesDeduplicate) {
  // The same grounding appears both as a current derivation and in the
  // provenance of the existing mark; it must be listed once.
  Program program = MustProgram("p -> +x. q -> -x.");
  Database db = ParseDatabase("p. q.", symbols_).value();
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("x", symbols_).value(),
                   RuleGrounding(0, Tuple{}));
  GammaResult gamma = ComputeGamma(program, {}, interp);
  std::vector<Conflict> conflicts = BuildConflicts(gamma, interp);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].inserters.size(), 1u);
}

TEST_F(ConflictTest, ConflictsSortedByAtom) {
  Program program = MustProgram(R"(
    p -> +z. p -> -z.
    p -> +m. p -> -m.
    p -> +a. p -> -a.
  )");
  Database db = ParseDatabase("p.", symbols_).value();
  IInterpretation interp(&db);
  GammaResult gamma = ComputeGamma(program, {}, interp);
  std::vector<Conflict> conflicts = BuildConflicts(gamma, interp);
  ASSERT_EQ(conflicts.size(), 3u);
  EXPECT_LT(conflicts[0].atom, conflicts[1].atom);
  EXPECT_LT(conflicts[1].atom, conflicts[2].atom);
}

TEST_F(ConflictTest, NoConflictNoTriples) {
  Program program = MustProgram("p -> +x. p -> +y.");
  Database db = ParseDatabase("p.", symbols_).value();
  IInterpretation interp(&db);
  GammaResult gamma = ComputeGamma(program, {}, interp);
  EXPECT_TRUE(gamma.consistent);
  EXPECT_TRUE(BuildConflicts(gamma, interp).empty());
}

}  // namespace
}  // namespace park
