#include "lang/analyzer.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace park {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() : symbols_(MakeSymbolTable()) {}

  Program MustProgram(std::string_view text) {
    auto program = ParseProgram(text, symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program.ok() ? std::move(program).value()
                        : Program(MakeSymbolTable());
  }

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(AnalyzerTest, SafetyAcceptsBoundRules) {
  EXPECT_TRUE(ParseRule("p(X, Y), q(Y) -> +r(X).", symbols_).ok());
  EXPECT_TRUE(ParseRule("p(X), !q(X) -> -p(X).", symbols_).ok());
  EXPECT_TRUE(ParseRule("+e(X), p(X) -> +f(X).", symbols_).ok());
  EXPECT_TRUE(ParseRule("-> +seed(a).", symbols_).ok());
  // Constants everywhere: trivially safe.
  EXPECT_TRUE(ParseRule("p(a) -> +q(b).", symbols_).ok());
}

TEST_F(AnalyzerTest, SafetyRejectsFreeHeadVariable) {
  auto r = ParseRule("p(X) -> +q(Y).", symbols_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("'Y'"), std::string::npos);
}

TEST_F(AnalyzerTest, SafetyRejectsHeadVariableOnlyInNegation) {
  // Y occurs in the body, but only under negation: still unsafe.
  EXPECT_FALSE(ParseRule("p(X), !q(Y) -> +r(Y).", symbols_).ok());
}

TEST_F(AnalyzerTest, SafetyRejectsNegationOnlyVariable) {
  EXPECT_FALSE(ParseRule("p(X), !q(X, Y) -> +r(X).", symbols_).ok());
}

TEST_F(AnalyzerTest, SafetyErrorNamesTheRule) {
  auto program = ParseProgram("good: p(X) -> +q(X). bad: p(X) -> +q(Z).",
                              symbols_);
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("bad"), std::string::npos);
}

TEST_F(AnalyzerTest, PotentiallyConflictingPredicates) {
  Program program = MustProgram(R"(
    a -> +p. b -> -p.
    a -> +q.
    a -> -r.
  )");
  ProgramAnalysis analysis = AnalyzeProgram(program);
  ASSERT_EQ(analysis.potentially_conflicting_predicates.size(), 1u);
  EXPECT_EQ(symbols_->PredicateName(
                analysis.potentially_conflicting_predicates[0]),
            "p");
}

TEST_F(AnalyzerTest, InsertersAndDeleters) {
  Program program = MustProgram("a -> +p. b -> +p. c -> -p.");
  ProgramAnalysis analysis = AnalyzeProgram(program);
  PredicateId p = *symbols_->FindPredicate("p", 0);
  EXPECT_EQ(analysis.inserters[p], (std::vector<int>{0, 1}));
  EXPECT_EQ(analysis.deleters[p], (std::vector<int>{2}));
}

TEST_F(AnalyzerTest, RecursionDetection) {
  EXPECT_FALSE(AnalyzeProgram(MustProgram("a -> +b. b -> +c.")).is_recursive);
  EXPECT_TRUE(AnalyzeProgram(MustProgram("a -> +a.")).is_recursive);
  EXPECT_TRUE(
      AnalyzeProgram(MustProgram("a -> +b. b -> +c. c -> +a."))
          .is_recursive);
  // The canonical recursive program: transitive closure.
  EXPECT_TRUE(AnalyzeProgram(MustProgram(R"(
    edge(X, Y) -> +path(X, Y).
    path(X, Y), edge(Y, Z) -> +path(X, Z).
  )")).is_recursive);
}

TEST_F(AnalyzerTest, EventUsage) {
  EXPECT_FALSE(AnalyzeProgram(MustProgram("p -> +q.")).uses_events);
  EXPECT_TRUE(
      AnalyzeProgram(MustProgram("+p(X) -> +q(X).")).uses_events);
  EXPECT_TRUE(
      AnalyzeProgram(MustProgram("-p(X) -> +q(X).")).uses_events);
}

TEST_F(AnalyzerTest, MaxRuleVariables) {
  Program program = MustProgram(R"(
    p(X) -> +q(X).
    p(X), q(Y), r(Z) -> +s(X, Y, Z).
  )");
  EXPECT_EQ(AnalyzeProgram(program).max_rule_variables, 3);
}

TEST_F(AnalyzerTest, HeadsMayConflictVariableVsVariable) {
  Program p = MustProgram("p(X) -> +q(X). r(Y) -> -q(Y).");
  EXPECT_TRUE(HeadsMayConflict(p.rule(0), p.rule(1)));
}

TEST_F(AnalyzerTest, HeadsMayConflictConstantClash) {
  Program p = MustProgram("s(X) -> +q(a). s(X) -> -q(b).");
  EXPECT_FALSE(HeadsMayConflict(p.rule(0), p.rule(1)));
}

TEST_F(AnalyzerTest, HeadsMayConflictConstantVsVariable) {
  Program p = MustProgram("s(X) -> +q(a). s(Y) -> -q(Y).");
  EXPECT_TRUE(HeadsMayConflict(p.rule(0), p.rule(1)));
}

TEST_F(AnalyzerTest, HeadsMayConflictRepeatedVariables) {
  // +q(X, X) unifies with -q(Y, Z) (take Y = Z) ...
  Program p1 = MustProgram("s(X) -> +q(X, X). s(Y), t(Z) -> -q(Y, Z).");
  EXPECT_TRUE(HeadsMayConflict(p1.rule(0), p1.rule(1)));
  // ... but +q(X, X) does not unify with -q(a, b).
  Program p2 = MustProgram("s(X) -> +q(X, X). s(Y) -> -q(a, b).");
  EXPECT_FALSE(HeadsMayConflict(p2.rule(0), p2.rule(1)));
}

TEST_F(AnalyzerTest, HeadsMayConflictTransitiveConstantClash) {
  // +q(X, X, a) vs -q(Y, b, Y): X=Y, X=b, Y=a -> clash through the chain.
  Program p = MustProgram(
      "s(X) -> +q(X, X, a). s(Y) -> -q(Y, b, Y).");
  EXPECT_FALSE(HeadsMayConflict(p.rule(0), p.rule(1)));
}

TEST_F(AnalyzerTest, HeadsMayConflictDifferentPredicates) {
  Program p = MustProgram("s(X) -> +q(X). s(X) -> -r(X).");
  EXPECT_FALSE(HeadsMayConflict(p.rule(0), p.rule(1)));
}

TEST_F(AnalyzerTest, ConflictingRulePairsRefinePredicateLevel) {
  Program p = MustProgram(R"(
    a(X) -> +q(a).
    b(X) -> +q(X).
    c(X) -> -q(b).
  )");
  ProgramAnalysis analysis = AnalyzeProgram(p);
  // Predicate-level: q is potentially conflicting.
  ASSERT_EQ(analysis.potentially_conflicting_predicates.size(), 1u);
  // Rule-level: only rule 1 (+q(X)) can actually meet rule 2 (-q(b));
  // rule 0's +q(a) never can.
  EXPECT_EQ(analysis.potentially_conflicting_rule_pairs,
            (std::vector<std::pair<int, int>>{{1, 2}}));
}

TEST_F(AnalyzerTest, NoPairsWhenHeadsAreDisjoint) {
  Program p = MustProgram("a -> +q(x). b -> -q(y).");
  ProgramAnalysis analysis = AnalyzeProgram(p);
  EXPECT_EQ(analysis.potentially_conflicting_predicates.size(), 1u);
  EXPECT_TRUE(analysis.potentially_conflicting_rule_pairs.empty());
}

TEST_F(AnalyzerTest, EmptyProgram) {
  Program program(symbols_);
  ProgramAnalysis analysis = AnalyzeProgram(program);
  EXPECT_TRUE(analysis.potentially_conflicting_predicates.empty());
  EXPECT_FALSE(analysis.is_recursive);
  EXPECT_FALSE(analysis.uses_events);
  EXPECT_EQ(analysis.max_rule_variables, 0);
}

}  // namespace
}  // namespace park
