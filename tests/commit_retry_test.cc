// The fault-tolerant commit pipeline: transient (kUnavailable) I/O
// failures are retried with capped exponential backoff inside
// TransactionJournal::Append; when retries are exhausted the
// ActiveDatabase rolls its in-place diff back — the commit either applied
// (and is durable) or left the database untouched, and the handle stays
// usable either way. Also covers observers that throw mid-pipeline.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "park/park.h"
#include "util/env.h"
#include "util/fault_env.h"

namespace park {
namespace {

class CommitRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "park_commit_retry_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

UpdateSet OneInsert(const std::shared_ptr<SymbolTable>& symbols,
                    const std::string& value) {
  UpdateSet updates;
  EXPECT_TRUE(updates.AddParsed("+p(" + value + ")", symbols).ok());
  return updates;
}

// --- FaultInjectingEnv transient modes ------------------------------------

TEST_F(CommitRetryTest, TransientAppendsFailNTimesThenSucceed) {
  FaultInjectingEnv env(Env::Default());
  TransientFaults transient;
  transient.fail_appends = 2;
  env.set_transient(transient);

  auto file = env.NewWritableFile(Path("f"), Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->Append("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ((*file)->Append("x").code(), StatusCode::kUnavailable);
  EXPECT_TRUE((*file)->Append("x").ok());
  EXPECT_EQ(env.transient_failures(), 2);
  ASSERT_TRUE((*file)->Close().ok());
  // The two failed appends persisted nothing.
  auto contents = env.ReadFileToString(Path("f"));
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "x");
}

TEST_F(CommitRetryTest, SeededRandomModeIsDeterministic) {
  auto run = [&](const std::string& name) {
    FaultInjectingEnv env(Env::Default());
    auto file = env.NewWritableFile(Path(name), Env::WriteMode::kTruncate);
    EXPECT_TRUE(file.ok());
    TransientFaults transient;
    transient.random_seed = 42;
    transient.random_percent = 50;
    env.set_transient(transient);
    std::string outcomes;
    for (int i = 0; i < 32; ++i) {
      outcomes += (*file)->Append("x").ok() ? '.' : 'U';
    }
    return outcomes;
  };
  const std::string first = run("a");
  EXPECT_EQ(first, run("b"));
  EXPECT_NE(first.find('U'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(CommitRetryTest, RandomModeRespectsFailureCap) {
  FaultInjectingEnv env(Env::Default());
  auto file = env.NewWritableFile(Path("f"), Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  TransientFaults transient;
  transient.random_seed = 7;
  transient.random_percent = 100;
  transient.random_max_failures = 3;
  env.set_transient(transient);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!(*file)->Append("x").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);
}

// --- TransactionJournal retry loop ----------------------------------------

TEST_F(CommitRetryTest, AppendRetriesTransientFailuresAndSucceeds) {
  FaultInjectingEnv env(Env::Default());
  TransientFaults transient;
  transient.fail_appends = 2;
  env.set_transient(transient);

  JournalOptions options;
  options.env = &env;
  options.max_retries = 3;
  auto symbols = MakeSymbolTable();
  auto journal = TransactionJournal::Open(Path("j.log"), options);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  ASSERT_TRUE(journal->Append(OneInsert(symbols, "a"), *symbols).ok());
  EXPECT_EQ(journal->last_append_attempts(), 3);
  EXPECT_EQ(journal->io_attempts(), 3u);
  EXPECT_EQ(journal->io_retries(), 2u);
  EXPECT_EQ(journal->retries_exhausted(), 0u);
  EXPECT_EQ(journal->last_seq(), 1u);

  // Exactly one clean record on disk.
  auto records = TransactionJournal::ReadRecords(Path("j.log"), symbols);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].seq, 1u);
}

TEST_F(CommitRetryTest, TransientSyncFailureLeavesNoDuplicateRecord) {
  // The append lands, the fsync fails transiently: the retry must first
  // heal the file back to its durable prefix, or the record would appear
  // twice after the successful retry.
  FaultInjectingEnv env(Env::Default());
  TransientFaults transient;
  transient.fail_syncs = 1;
  env.set_transient(transient);

  JournalOptions options;
  options.env = &env;
  options.sync_mode = JournalSyncMode::kFsync;
  options.max_retries = 2;
  auto symbols = MakeSymbolTable();
  auto journal = TransactionJournal::Open(Path("j.log"), options);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  ASSERT_TRUE(journal->Append(OneInsert(symbols, "a"), *symbols).ok());
  EXPECT_EQ(journal->last_append_attempts(), 2);

  auto records = TransactionJournal::ReadRecords(Path("j.log"), symbols);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
}

TEST_F(CommitRetryTest, ExhaustedRetriesFailButJournalStaysUsable) {
  FaultInjectingEnv env(Env::Default());
  TransientFaults transient;
  transient.fail_appends = 10;
  env.set_transient(transient);

  JournalOptions options;
  options.env = &env;
  options.max_retries = 2;
  auto symbols = MakeSymbolTable();
  auto journal = TransactionJournal::Open(Path("j.log"), options);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  Status failed = journal->Append(OneInsert(symbols, "a"), *symbols);
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(journal->last_append_attempts(), 3);  // 1 try + 2 retries
  EXPECT_EQ(journal->retries_exhausted(), 1u);
  EXPECT_EQ(journal->last_seq(), 0u);  // nothing committed

  // No reopen needed: once the faults clear, the SAME handle appends the
  // SAME sequence number.
  env.set_transient(TransientFaults{});
  ASSERT_TRUE(journal->Append(OneInsert(symbols, "b"), *symbols).ok());
  EXPECT_EQ(journal->last_seq(), 1u);
  auto records = TransactionJournal::ReadRecords(Path("j.log"), symbols);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].seq, 1u);
}

TEST_F(CommitRetryTest, PermanentFailuresAreNotRetried) {
  // A one-shot kFailOp fault is kInternal — the permanent class; the
  // retry loop must give up immediately.
  FaultPlan plan;
  plan.fault_at = 1;  // op 0 is the Open's own open; op 1 is the append
  plan.kind = FaultPlan::Kind::kFailOp;
  FaultInjectingEnv env(Env::Default(), plan);

  JournalOptions options;
  options.env = &env;
  options.max_retries = 5;
  auto symbols = MakeSymbolTable();
  auto journal = TransactionJournal::Open(Path("j.log"), options);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  Status failed = journal->Append(OneInsert(symbols, "a"), *symbols);
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  EXPECT_EQ(journal->last_append_attempts(), 1);
  EXPECT_EQ(journal->io_retries(), 0u);
}

TEST_F(CommitRetryTest, BackoffDoublesAndAccumulates) {
  FaultInjectingEnv env(Env::Default());
  TransientFaults transient;
  transient.fail_appends = 2;
  env.set_transient(transient);

  JournalOptions options;
  options.env = &env;
  options.max_retries = 3;
  options.backoff_ms = 1;
  auto symbols = MakeSymbolTable();
  auto journal = TransactionJournal::Open(Path("j.log"), options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append(OneInsert(symbols, "a"), *symbols).ok());
  EXPECT_EQ(journal->backoff_ms_total(), 1u + 2u);  // 1ms then 2ms
}

// --- ActiveDatabase: applied-exactly-or-untouched -------------------------

TEST_F(CommitRetryTest, ExhaustedJournalRetriesRollTheCommitBack) {
  FaultInjectingEnv env(Env::Default());

  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("p(X) -> +q(X).").ok());
  ParkOptions options;
  options.io_max_retries = 1;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  JournalOptions journal_options;
  journal_options.env = &env;
  ASSERT_TRUE(db.AttachJournal(Path("j.log"), journal_options).ok());

  // A committed baseline transaction, then permanent-looking transients.
  ASSERT_TRUE(std::move(db.Begin().Insert("p", {"a"})).Commit().ok());
  const std::string before = db.database().ToString();

  TransientFaults transient;
  transient.fail_appends = 10;
  env.set_transient(transient);
  auto failed = std::move(db.Begin().Insert("p", {"b"})).Commit();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  // Rolled back exactly: evaluation inserted p(b) AND the rule's q(b),
  // and both are gone again.
  EXPECT_EQ(db.database().ToString(), before);
  // The failure detail rides on the CommitResult itself.
  ASSERT_TRUE(failed.failure().has_value());
  EXPECT_EQ(failed.failure()->stage, CommitFailure::Stage::kJournal);
  EXPECT_EQ(failed.failure()->journal_attempts, 2);
  EXPECT_TRUE(failed.failure()->rolled_back);

  // The database needs no reopen: the same handle commits once the
  // transient condition clears, and the durable history matches memory.
  env.set_transient(TransientFaults{});
  auto report = std::move(db.Begin().Insert("p", {"b"})).Commit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->stats.io_attempts, 0u);

  auto records =
      TransactionJournal::ReadRecords(Path("j.log"), db.symbols());
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);  // the two successful commits only
}

TEST_F(CommitRetryTest, RetriedCommitSucceedsTransparently) {
  FaultInjectingEnv env(Env::Default());

  ActiveDatabase db;
  ParkOptions options;
  options.io_max_retries = 3;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  JournalOptions journal_options;
  journal_options.env = &env;
  ASSERT_TRUE(db.AttachJournal(Path("j.log"), journal_options).ok());

  TransientFaults transient;
  transient.fail_appends = 2;
  env.set_transient(transient);
  auto report = std::move(db.Begin().Insert("p", {"a"})).Commit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->journal_seq, 1u);
  EXPECT_EQ(report->stats.io_retries, 2u);
  auto atom = ParseGroundAtom("p(a)", db.symbols());
  ASSERT_TRUE(atom.ok());
  EXPECT_TRUE(db.Contains(*atom));
}

// --- observers that throw mid-pipeline ------------------------------------

class ThrowingObserver : public RunObserver {
 public:
  explicit ThrowingObserver(bool throw_on_start, bool throw_on_append)
      : throw_on_start_(throw_on_start), throw_on_append_(throw_on_append) {}

  void OnCommitStart(size_t) override {
    if (throw_on_start_) throw std::runtime_error("observer tantrum");
  }
  void OnJournalAppend(uint64_t seq) override {
    appends_seen_ = seq;
    if (throw_on_append_) throw std::runtime_error("observer tantrum");
  }

  uint64_t appends_seen() const { return appends_seen_; }

 private:
  bool throw_on_start_;
  bool throw_on_append_;
  uint64_t appends_seen_ = 0;
};

TEST_F(CommitRetryTest, ObserverThrowingOnCommitStartDuringRetries) {
  FaultInjectingEnv env(Env::Default());
  ThrowingObserver observer(/*throw_on_start=*/true,
                            /*throw_on_append=*/false);

  ActiveDatabase db;
  ParkOptions options;
  options.io_max_retries = 3;
  options.observer = &observer;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  JournalOptions journal_options;
  journal_options.env = &env;
  ASSERT_TRUE(db.AttachJournal(Path("j.log"), journal_options).ok());

  TransientFaults transient;
  transient.fail_appends = 2;
  env.set_transient(transient);
  auto report = std::move(db.Begin().Insert("p", {"a"})).Commit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Applied exactly once, durable exactly once.
  auto records =
      TransactionJournal::ReadRecords(Path("j.log"), db.symbols());
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

TEST_F(CommitRetryTest, ObserverThrowingOnJournalAppendAfterRollback) {
  FaultInjectingEnv env(Env::Default());
  ThrowingObserver observer(/*throw_on_start=*/false,
                            /*throw_on_append=*/true);

  ActiveDatabase db;
  ParkOptions options;
  options.io_max_retries = 1;
  options.observer = &observer;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  JournalOptions journal_options;
  journal_options.env = &env;
  ASSERT_TRUE(db.AttachJournal(Path("j.log"), journal_options).ok());

  const std::string before = db.database().ToString();
  TransientFaults transient;
  transient.fail_appends = 10;
  env.set_transient(transient);
  auto failed = std::move(db.Begin().Insert("p", {"a"})).Commit();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(db.database().ToString(), before);  // untouched
  EXPECT_EQ(observer.appends_seen(), 0u);       // append never succeeded

  // Clear faults; the throwing observer must not break the next commit.
  env.set_transient(TransientFaults{});
  auto report = std::move(db.Begin().Insert("p", {"a"})).Commit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(observer.appends_seen(), 1u);
}

}  // namespace
}  // namespace park
