// Shared helpers for the PARK test suites.

#ifndef PARK_TESTS_TEST_UTIL_H_
#define PARK_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "park/park.h"

namespace park {
namespace testing_util {

/// Parses `text` as a program over `symbols`, failing the test on error.
inline Program MustParseProgram(std::string_view text,
                                std::shared_ptr<SymbolTable> symbols) {
  auto result = ParseProgram(text, std::move(symbols));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return Program(MakeSymbolTable());
  return std::move(result).value();
}

/// Parses `text` as facts over `symbols`, failing the test on error.
inline Database MustParseDatabase(std::string_view text,
                                  std::shared_ptr<SymbolTable> symbols) {
  auto result = ParseDatabase(text, std::move(symbols));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return Database(MakeSymbolTable());
  return std::move(result).value();
}

/// Runs PARK(P, D) from textual program/facts; failing the test on any
/// error. Returns the full ParkResult.
inline ParkResult MustPark(std::string_view program_text,
                           std::string_view facts_text,
                           ParkOptions options = {}) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(program_text, symbols);
  Database db = MustParseDatabase(facts_text, symbols);
  if (program.symbols() != symbols || db.symbols() != symbols) {
    // A parse failure was already reported; return an inert result.
    return ParkResult{Database(MakeSymbolTable()), {}, Trace{}, {}, {}};
  }
  auto result = Park(program, db, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) {
    return ParkResult{Database(MakeSymbolTable()), {}, Trace{}, {}, {}};
  }
  return std::move(result).value();
}

/// Runs PARK(P, D) and returns the result database rendered as
/// "{atom, atom, ...}".
inline std::string ParkToString(std::string_view program_text,
                                std::string_view facts_text,
                                ParkOptions options = {}) {
  return MustPark(program_text, facts_text, std::move(options))
      .database.ToString();
}

}  // namespace testing_util
}  // namespace park

#endif  // PARK_TESTS_TEST_UTIL_H_
