// The Trace event log and bi-structure snapshots/ordering.

#include "core/trace.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace park {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest()
      : symbols_(MakeSymbolTable()),
        db_(ParseDatabase("p.", symbols_).value()) {}

  std::shared_ptr<SymbolTable> symbols_;
  Database db_;
};

TEST_F(TraceTest, NoneLevelRecordsNothing) {
  Trace trace(TraceLevel::kNone);
  IInterpretation interp(&db_);
  trace.RecordInitial(interp, 0);
  trace.RecordGammaStep(interp, 1);
  trace.RecordConflict({"c"}, 1);
  trace.RecordResolution({"r"}, 1);
  trace.RecordRestart(1);
  trace.RecordFixpoint(interp, 1);
  EXPECT_TRUE(trace.events().empty());
  EXPECT_TRUE(trace.ToString().empty());
}

TEST_F(TraceTest, SummaryLevelSkipsSnapshots) {
  Trace trace(TraceLevel::kSummary);
  IInterpretation interp(&db_);
  trace.RecordInitial(interp, 0);
  trace.RecordGammaStep(interp, 1);  // full-only: dropped
  trace.RecordInconsistentStep({"p", "+a", "-a"}, 2);  // full-only: dropped
  trace.RecordConflict({"conflict on a"}, 2);
  trace.RecordRestart(2);
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_TRUE(trace.events()[0].interpretation.empty());
  EXPECT_TRUE(trace.InterpretationHistory().empty());
}

TEST_F(TraceTest, FullLevelKeepsEverything) {
  Trace trace(TraceLevel::kFull);
  IInterpretation interp(&db_);
  trace.RecordInitial(interp, 0);
  trace.RecordGammaStep(interp, 1);
  trace.RecordInconsistentStep({"p", "+a", "-a"}, 2);
  trace.RecordFixpoint(interp, 2);
  auto history = trace.InterpretationHistory();
  ASSERT_EQ(history.size(), 2u);  // gamma + inconsistent, not initial
  EXPECT_EQ(history[0], (std::vector<std::string>{"p"}));
  EXPECT_EQ(history[1], (std::vector<std::string>{"p", "+a", "-a"}));
  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("initial"), std::string::npos);
  EXPECT_NE(rendered.find("gamma"), std::string::npos);
  EXPECT_NE(rendered.find("clash"), std::string::npos);
  EXPECT_NE(rendered.find("fixpoint"), std::string::npos);
}

TEST_F(TraceTest, EventKindNames) {
  EXPECT_STREQ(TraceEventKindName(TraceEvent::Kind::kInitial), "initial");
  EXPECT_STREQ(TraceEventKindName(TraceEvent::Kind::kGammaStep), "gamma");
  EXPECT_STREQ(TraceEventKindName(TraceEvent::Kind::kInconsistent),
               "clash");
  EXPECT_STREQ(TraceEventKindName(TraceEvent::Kind::kConflict), "conflict");
  EXPECT_STREQ(TraceEventKindName(TraceEvent::Kind::kResolution),
               "resolution");
  EXPECT_STREQ(TraceEventKindName(TraceEvent::Kind::kRestart), "restart");
  EXPECT_STREQ(TraceEventKindName(TraceEvent::Kind::kFixpoint), "fixpoint");
}

class BiStructureTest : public ::testing::Test {
 protected:
  BiStructureSnapshot Make(std::vector<std::string> blocked,
                           std::vector<std::string> interp) {
    return BiStructureSnapshot{std::move(blocked), std::move(interp)};
  }
};

TEST_F(BiStructureTest, LeqIsReflexive) {
  auto a = Make({"(r1)"}, {"p", "+q"});
  EXPECT_TRUE(BiStructureLeq(a, a));
}

TEST_F(BiStructureTest, EqualBlockedComparesInterpretations) {
  auto small = Make({"(r1)"}, {"p"});
  auto large = Make({"(r1)"}, {"p", "+q"});
  EXPECT_TRUE(BiStructureLeq(small, large));
  EXPECT_FALSE(BiStructureLeq(large, small));
}

TEST_F(BiStructureTest, BlockedGrowthDominatesInterpretation) {
  // B ⊂ B' makes A ⊑ A' even when the interpretation SHRINKS — exactly
  // the restart situation.
  auto before = Make({"(r1)"}, {"p", "+q", "+r"});
  auto after_restart = Make({"(r1)", "(r2)"}, {"p"});
  EXPECT_TRUE(BiStructureLeq(before, after_restart));
  EXPECT_FALSE(BiStructureLeq(after_restart, before));
}

TEST_F(BiStructureTest, IncomparableBlockedSets) {
  auto a = Make({"(r1)"}, {"p"});
  auto b = Make({"(r2)"}, {"p"});
  EXPECT_FALSE(BiStructureLeq(a, b));
  EXPECT_FALSE(BiStructureLeq(b, a));
}

TEST_F(BiStructureTest, NonSubsetInterpretationsIncomparable) {
  auto a = Make({}, {"p", "+q"});
  auto b = Make({}, {"p", "+r"});
  EXPECT_FALSE(BiStructureLeq(a, b));
  EXPECT_FALSE(BiStructureLeq(b, a));
}

TEST_F(BiStructureTest, SnapshotRendering) {
  auto snapshot = Make({"(r1)"}, {"p", "+q"});
  EXPECT_EQ(snapshot.ToString(), "<{(r1)}, {p, +q}>");
}

TEST_F(BiStructureTest, SnapshotFromLiveState) {
  auto symbols = MakeSymbolTable();
  auto program =
      ParseProgram("r1: p -> +q.", symbols);
  ASSERT_TRUE(program.ok());
  Database db = ParseDatabase("p.", symbols).value();
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("q", symbols).value(),
                   RuleGrounding(0, Tuple{}));
  BlockedSet blocked{RuleGrounding(0, Tuple{})};
  BiStructureSnapshot snapshot =
      SnapshotBiStructure(blocked, interp, *program);
  EXPECT_EQ(snapshot.ToString(), "<{(r1)}, {p, +q}>");
}

}  // namespace
}  // namespace park
