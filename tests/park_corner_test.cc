// Corner cases of the semantics, including the two documented completions
// of the paper's definitions (DESIGN.md §2) and adversarial policies.

#include <chrono>
#include <thread>

#include "test_util.h"

namespace park {
namespace {

using ::park::testing_util::MustPark;
using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;
using ::park::testing_util::ParkToString;

TEST(ParkCornerTest, StaleDerivationConflict) {
  // DESIGN.md §2 completion #2. Validity is non-monotone: r1 fires at step
  // 1 (b is absent), r2 asserts +b at step 1 which invalidates r1's body,
  // and r3 derives -a at step 2 — clashing with the +a whose deriving body
  // is no longer valid. The literal §4.2 conflicts() has an empty ins side
  // here; provenance completion blocks r1 and the computation converges.
  constexpr char kProgram[] = R"(
    r1: !b -> +a.
    r2: p -> +b.
    r3: +b -> -a.
  )";
  ParkResult result = MustPark(kProgram, "p.");
  // Inertia: a ∉ D, the deletion side wins, r1 is blocked.
  EXPECT_EQ(result.database.ToString(), "{b, p}");
  EXPECT_EQ(result.blocked, (std::vector<std::string>{"(r1)"}));
  EXPECT_EQ(result.stats.restarts, 1u);
}

TEST(ParkCornerTest, StaleDerivationConflictInsertWins) {
  // Same shape, but the policy sides with the stale insertion: r3 is
  // blocked and `a` survives.
  constexpr char kProgram[] = R"(
    r1: !b -> +a.
    r2: p -> +b.
    r3: +b -> -a.
  )";
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kProgram, symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.policy = MakeAlwaysInsertPolicy();
  auto result = Park(program, db, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->database.ToString(), "{a, b, p}");
  EXPECT_EQ(result->blocked, (std::vector<std::string>{"(r3)"}));
}

TEST(ParkCornerTest, CyclicPolicyDecisionsAbortInsteadOfLooping) {
  // A policy that flip-flops between rounds: round 0 blocks the deleter,
  // round 1 blocks the inserter, after which re-resolving the same
  // conflict adds nothing new — the evaluator must fail with kAborted
  // rather than loop. (With both sides blocked the conflict cannot recur,
  // so force re-blocking by alternating on two conflicts.)
  constexpr char kProgram[] = R"(
    p -> +x. p -> -x.
  )";
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kProgram, symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  // Votes insert: blocks deleter. Then the conflict is gone (one side
  // blocked) — so this converges. To hit the no-progress guard we need a
  // policy whose blocked set additions are empty: always pick the side
  // that is already blocked. Simulate with a stateful lambda that blocks
  // the deleter twice in a row while the inserter keeps firing — not
  // constructible through the public evaluator, so instead assert the
  // flip-flop case converges (progress is guaranteed by construction).
  int calls = 0;
  options.policy = MakeLambdaPolicy(
      "flipflop",
      [&calls](const PolicyContext&, const Conflict&) -> Result<Vote> {
        return (calls++ % 2 == 0) ? Vote::kInsert : Vote::kDelete;
      });
  auto result = Park(program, db, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->database.ToString(), "{p, x}");
}

TEST(ParkCornerTest, SelfConflictingRulePair) {
  // A rule whose head deletes what another inserts for the SAME grounding
  // of the same body atom; both sides are single instances.
  ParkResult result = MustPark("p(X) -> +p(X). p(X) -> -p(X).", "p(a).");
  // Inertia keeps p(a) (present in D).
  EXPECT_EQ(result.database.ToString(), "{p(a)}");
}

TEST(ParkCornerTest, ConflictOnDatabaseAtom) {
  // The conflicting atom is already in D; deletion side wins under
  // always-delete and the atom disappears.
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +d. p -> -d.", symbols);
  Database db = MustParseDatabase("p. d.", symbols);
  ParkOptions options;
  options.policy = MakeAlwaysDeletePolicy();
  auto result = Park(program, db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->database.ToString(), "{p}");
}

TEST(ParkCornerTest, ChainOfConflictsEachRoundBlocksOne) {
  // Conflicts that only become visible after earlier ones are resolved.
  constexpr char kProgram[] = R"(
    p -> +a1. p -> -a1.
    a1 -> +a2. a1 -> -a2.
    a2 -> +a3. a2 -> -a3.
  )";
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kProgram, symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.policy = MakeAlwaysInsertPolicy();
  auto result = Park(program, db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->database.ToString(), "{a1, a2, a3, p}");
  EXPECT_EQ(result->stats.restarts, 3u);
}

TEST(ParkCornerTest, EventLiteralNeverMatchesBaseAtoms) {
  // +s(X) must not trigger on the unmarked s(a) already in D.
  EXPECT_EQ(ParkToString("+s(X) -> +fired(X).", "s(a)."), "{s(a)}");
}

TEST(ParkCornerTest, EventDeleteTriggersCascade) {
  // -payroll(...) events cascade to audit even though the atom is gone
  // from the final state.
  constexpr char kProgram[] = R"(
    emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
    -payroll(X, S) -> +audit(X).
  )";
  EXPECT_EQ(ParkToString(kProgram, "emp(a). payroll(a, 100)."),
            "{audit(a), emp(a)}");
}

TEST(ParkCornerTest, ZeroAryAndHighArityMix) {
  EXPECT_EQ(
      ParkToString("go, t(A, B, C, D) -> +u(D, C, B, A).",
                   "go. t(1, 2, 3, 4)."),
      "{go, t(1, 2, 3, 4), u(4, 3, 2, 1)}");
}

TEST(ParkCornerTest, StringConstantsRoundTrip) {
  EXPECT_EQ(ParkToString("person(X, \"on leave\") -> +away(X).",
                         "person(jo, \"on leave\"). person(al, \"here\")."),
            "{away(jo), person(al, \"here\"), person(jo, \"on leave\")}");
}

TEST(ParkCornerTest, DeleteThenInsertDistinctAtomsNoConflict) {
  // +a and -b are not a conflict even when derived in the same step.
  ParkResult result = MustPark("p -> +a. p -> -b.", "p. b.");
  EXPECT_EQ(result.database.ToString(), "{a, p}");
  EXPECT_EQ(result.stats.restarts, 0u);
}

TEST(ParkCornerTest, NegationSeesPendingDeletion) {
  // ¬b is valid when -b is pending even though b ∈ I° — §4.2 clause (1).
  constexpr char kProgram[] = R"(
    p -> -b.
    !b -> +saw_not_b.
  )";
  ParkResult result = MustPark(kProgram, "p. b.");
  EXPECT_EQ(result.database.ToString(), "{p, saw_not_b}");
}

TEST(ParkCornerTest, WideConflictManyInstancesBlockedAtOnce) {
  // One conflict whose losing side has many groundings.
  constexpr char kProgram[] = R"(
    src(X) -> +t.
    kill -> -t.
  )";
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kProgram, symbols);
  std::string facts = "kill.";
  for (int i = 0; i < 20; ++i) {
    facts += " src(s" + std::to_string(i) + ").";
  }
  Database db = MustParseDatabase(facts, symbols);
  ParkOptions options;
  options.policy = MakeAlwaysDeletePolicy();
  auto result = Park(program, db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->database.Contains(
      ParseGroundAtom("t", symbols).value()));
  // All 20 inserter groundings blocked in one resolution.
  EXPECT_EQ(result->stats.blocked_instances, 20u);
  EXPECT_EQ(result->stats.conflicts_resolved, 1u);
}

TEST(ParkCornerTest, ResultIsAFixpointRerunningChangesNothing) {
  // PARK(P, PARK(P, D)) = PARK(P, D) for inertia on these programs: the
  // result state is stable under re-running the rules.
  const char* programs[] = {
      "p -> +q. q -> +r.",
      "p -> +a. p -> -a.",
      "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
  };
  const char* facts[] = {"p.", "p.", "edge(a, b). edge(b, c)."};
  for (int i = 0; i < 3; ++i) {
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(programs[i], symbols);
    Database db = MustParseDatabase(facts[i], symbols);
    auto once = Park(program, db);
    ASSERT_TRUE(once.ok());
    auto twice = Park(program, once->database);
    ASSERT_TRUE(twice.ok());
    EXPECT_TRUE(once->database.SameAtoms(twice->database))
        << "program " << i << ": " << once->database.ToString() << " vs "
        << twice->database.ToString();
  }
}

TEST(ParkCornerTest, DeadlineExceededIsResourceExhausted) {
  // The wall-clock budget is checked once per Γ step, so a policy that
  // burns 20ms resolving the first conflict guarantees the next step
  // finds the 1ms budget spent — deterministic without a slow workload.
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +x. p -> -x.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.deadline_ms = 1;
  options.policy = MakeLambdaPolicy(
      "sleepy", [](const PolicyContext&, const Conflict&) -> Result<Vote> {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return Vote::kInsert;
      });
  auto result = Park(program, db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().ToString().find("deadline"),
            std::string::npos);
}

TEST(ParkCornerTest, GenerousDeadlineDoesNotInterfere) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram("p -> +x. p -> -x.", symbols);
  Database db = MustParseDatabase("p.", symbols);
  ParkOptions options;
  options.deadline_ms = 600000;
  auto result = Park(program, db, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->database.ToString(), "{p}");  // inertia: x ∉ D
}

}  // namespace
}  // namespace park
