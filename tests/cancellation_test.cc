// Run governance: the CancellationToken itself, and its plumbing through
// Park() / ParkStepper — a deadline that fires INSIDE one huge Γ step
// (the regression this subsystem exists for), external cancellation,
// memory budgets, and derivation budgets. The fault-free oracle sweeps in
// parallel_oracle_test.cc guarantee ungoverned runs are unaffected.

#include <chrono>
#include <string>
#include <thread>

#include "test_util.h"
#include "util/cancellation.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

// --- CancellationToken unit tests ----------------------------------------

TEST(CancellationTokenTest, StartsUnfired) {
  CancellationToken token;
  EXPECT_FALSE(token.Check());
  EXPECT_FALSE(token.fired());
  EXPECT_EQ(token.cause(), CancellationToken::Cause::kNone);
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST(CancellationTokenTest, RequestCancelIsSticky) {
  CancellationToken token;
  token.RequestCancel();
  EXPECT_TRUE(token.fired());
  EXPECT_EQ(token.cause(), CancellationToken::Cause::kCancelled);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
  // First cause wins: a later deadline trip must not overwrite it.
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(token.Check());
  EXPECT_EQ(token.cause(), CancellationToken::Cause::kCancelled);
}

TEST(CancellationTokenTest, DeadlineFiresOnCheck) {
  CancellationToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(token.Check());
  EXPECT_EQ(token.cause(), CancellationToken::Cause::kDeadline);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTokenTest, FutureDeadlineDoesNotFire) {
  CancellationToken token;
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::hours(1));
  EXPECT_FALSE(token.Check());
}

TEST(CancellationTokenTest, ParentChainPropagatesAsCancelled) {
  CancellationToken parent;
  CancellationToken child;
  child.ChainParent(&parent);
  EXPECT_FALSE(child.Check());
  parent.RequestCancel();
  EXPECT_TRUE(child.Check());
  EXPECT_EQ(child.cause(), CancellationToken::Cause::kCancelled);
}

TEST(CancellationTokenTest, MemoryScopeChargesAndFires) {
  CancellationToken token;
  token.SetMemoryLimit(1000);
  CancellationToken::MemoryScope a, b;
  EXPECT_FALSE(token.UpdateScope(a, 400));
  EXPECT_FALSE(token.UpdateScope(b, 500));
  EXPECT_EQ(token.bytes_in_use(), 900u);
  // Shrinking credits back.
  EXPECT_FALSE(token.UpdateScope(a, 100));
  EXPECT_EQ(token.bytes_in_use(), 600u);
  EXPECT_EQ(token.peak_bytes(), 900u);
  // Crossing the limit fires kMemory.
  EXPECT_TRUE(token.UpdateScope(b, 1000));
  EXPECT_EQ(token.cause(), CancellationToken::Cause::kMemory);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kResourceExhausted);
  token.CloseScope(a);
  token.CloseScope(b);
  EXPECT_EQ(token.bytes_in_use(), 0u);
  // CloseScope is idempotent.
  token.CloseScope(a);
  EXPECT_EQ(token.bytes_in_use(), 0u);
}

TEST(CancellationTokenTest, WorkBudgetFires) {
  CancellationToken token;
  token.SetWorkLimit(10);
  EXPECT_FALSE(token.ChargeWork(10));
  EXPECT_TRUE(token.ChargeWork(1));
  EXPECT_EQ(token.cause(), CancellationToken::Cause::kWork);
  EXPECT_EQ(token.work_charged(), 11u);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kResourceExhausted);
}

// --- Park() plumbing ------------------------------------------------------

/// A program whose FIRST Γ step enumerates |e|^3 candidate tuples — the
/// giant-candidate-stream shape that used to run to completion before the
/// between-steps deadline check could fire.
struct GiantStep {
  std::shared_ptr<SymbolTable> symbols = MakeSymbolTable();
  Program program;
  Database db;

  explicit GiantStep(int n)
      : program(MustParseProgram("e(X), e(Y), e(Z) -> +t(X, Y, Z).",
                                 symbols)),
        db([&] {
          std::string facts;
          for (int i = 0; i < n; ++i) {
            facts += "e(v" + std::to_string(i) + "). ";
          }
          return MustParseDatabase(facts, symbols);
        }()) {}
};

TEST(ParkCancellationTest, DeadlineFiresInsideOneGammaStep) {
  for (int threads : {1, 4}) {
    GiantStep giant(200);  // 8M groundings: far beyond a 5ms budget
    ParkOptions options;
    options.num_threads = threads;
    options.deadline_ms = 5;
    const auto start = std::chrono::steady_clock::now();
    auto result = Park(giant.program, giant.db, options);
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << "threads=" << threads << ": " << result.status().ToString();
    // Cooperative polling every kCheckStride tuples means the run stops
    // in milliseconds, not after the full 8M-tuple enumeration.
    EXPECT_LT(elapsed.count(), 10) << "threads=" << threads;
  }
}

TEST(ParkCancellationTest, PreCancelledTokenStopsTheRun) {
  for (int threads : {1, 4}) {
    GiantStep giant(60);
    CancellationToken external;
    external.RequestCancel();
    ParkOptions options;
    options.num_threads = threads;
    options.cancel = &external;
    auto result = Park(giant.program, giant.db, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << "threads=" << threads;
  }
}

TEST(ParkCancellationTest, ConcurrentCancelFromAnotherThread) {
  GiantStep giant(200);
  CancellationToken external;
  ParkOptions options;
  options.num_threads = 4;
  options.cancel = &external;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    external.RequestCancel();
  });
  auto result = Park(giant.program, giant.db, options);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(ParkCancellationTest, DerivationBudgetFires) {
  for (int threads : {1, 4}) {
    GiantStep giant(40);  // 64k groundings
    ParkOptions options;
    options.num_threads = threads;
    options.max_derivations = 100;
    auto result = Park(giant.program, giant.db, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << "threads=" << threads;
    EXPECT_NE(result.status().ToString().find("max_derivations"),
              std::string::npos);
  }
}

TEST(ParkCancellationTest, MemoryBudgetFires) {
  for (int threads : {1, 4}) {
    GiantStep giant(60);  // 216k groundings, megabytes of derivations
    ParkOptions options;
    options.num_threads = threads;
    options.max_memory_bytes = 16 * 1024;
    auto result = Park(giant.program, giant.db, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << "threads=" << threads;
    EXPECT_NE(result.status().ToString().find("max_memory_bytes"),
              std::string::npos);
  }
}

TEST(ParkCancellationTest, GenerousBudgetsLeaveResultIdentical) {
  GiantStep small(8);
  auto plain = Park(small.program, small.db, ParkOptions{});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  ParkOptions governed;
  governed.deadline_ms = 600000;
  governed.max_memory_bytes = 1ull << 32;
  governed.max_derivations = 1ull << 40;
  auto result = Park(small.program, small.db, governed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->database.ToString(), plain->database.ToString());
  // Resource accounting surfaces in the stats.
  EXPECT_EQ(result->stats.memory_limit_bytes, governed.max_memory_bytes);
  EXPECT_EQ(result->stats.derivation_limit, governed.max_derivations);
  EXPECT_GT(result->stats.derivations_charged, 0u);
  EXPECT_GT(result->stats.peak_memory_bytes, 0u);
}

TEST(ParkCancellationTest, ValidateOptionsRejectsNegativeIoKnobs) {
  ParkOptions options;
  options.io_max_retries = -1;
  EXPECT_EQ(ValidateOptions(options).code(), StatusCode::kInvalidArgument);
  ParkOptions backoff;
  backoff.io_backoff_ms = -1;
  EXPECT_EQ(ValidateOptions(backoff).code(), StatusCode::kInvalidArgument);
}

// --- ParkStepper plumbing -------------------------------------------------

TEST(StepperCancellationTest, DeadlineFiresInsideOneGammaStep) {
  GiantStep giant(200);
  ParkOptions options;
  options.deadline_ms = 5;
  ParkStepper stepper(giant.program, giant.db, options);
  auto step = stepper.Step();
  ASSERT_FALSE(step.ok());
  EXPECT_EQ(step.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(StepperCancellationTest, WorkBudgetFires) {
  GiantStep giant(40);
  ParkOptions options;
  options.max_derivations = 100;
  ParkStepper stepper(giant.program, giant.db, options);
  auto step = stepper.Step();
  ASSERT_FALSE(step.ok());
  EXPECT_EQ(step.status().code(), StatusCode::kResourceExhausted);
}

// --- ActiveDatabase: governed commits leave the database untouched --------

TEST(CommitCancellationTest, DeadlineFailedCommitLeavesDatabaseUntouched) {
  // The giant cross join is gated on `watch`, which only the FAILING
  // transaction inserts — so the recovery commit below stays fast.
  ActiveDatabase db;
  ASSERT_TRUE(
      db.LoadRules("watch, e(X), e(Y), e(Z) -> +t(X, Y, Z).").ok());
  std::string facts;
  for (int i = 0; i < 200; ++i) facts += "e(v" + std::to_string(i) + "). ";
  ASSERT_TRUE(db.LoadFacts(facts).ok());
  const std::string before = db.database().ToString();

  ParkOptions options;
  options.deadline_ms = 5;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  auto report = std::move(db.Begin().Insert("watch", {})).Commit();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(db.database().ToString(), before);
  ASSERT_TRUE(report.failure().has_value());
  EXPECT_EQ(report.failure()->stage, CommitFailure::Stage::kEvaluate);
  EXPECT_TRUE(report.failure()->rolled_back);

  // The database stays usable: lifting the deadline commits normally.
  ASSERT_TRUE(db.Configure(ParkOptions{}).ok());
  auto retry = std::move(db.Begin().Insert("q", {"ok"})).Commit();
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(retry.failure().has_value());
}

}  // namespace
}  // namespace park
