// Crash-point recovery harness: runs a scripted durable workload
// (Open → commit → commit → Checkpoint → commit) against a
// FaultInjectingEnv that simulates a process crash at I/O operation k —
// for EVERY k the workload performs — then recovers the directory with a
// healthy Env and asserts the recovered instance is exactly a committed
// prefix of the history.
//
// The acceptance band per crash point is [acked, attempted]:
//   - with JournalSyncMode::kFsync every ACKED commit is durable, so the
//     recovered state must contain at least the acked prefix;
//   - the commit in flight at the crash may ALSO survive (its record was
//     fully written but the ack never reached the caller — e.g. the crash
//     hit the fsync after a complete write, or tore at 100%), so exactly
//     one more commit is allowed, never fewer and never a partial one.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "park/park.h"
#include "util/fault_env.h"

namespace park {
namespace {

constexpr char kRules[] = R"(
  onboard: +emp(X) -> +active(X).
  cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
)";

ActiveDatabase::OpenParams Params(Env* env) {
  ActiveDatabase::OpenParams params;
  params.rules = kRules;
  params.env = env;
  params.sync_mode = JournalSyncMode::kFsync;
  return params;
}

constexpr int kCommits = 3;
/// The checkpoint runs after this many commits have been acked.
constexpr int kCheckpointAfter = 2;

/// Commit number `step` (0-based) of the scripted history.
Status ScriptedCommit(ActiveDatabase& db, int step) {
  Transaction tx = db.Begin();
  switch (step) {
    case 0:
      tx.Insert("emp", {"ada"});
      tx.Insert("payroll", {"ada", "x"});
      break;
    case 1:
      tx.Insert("emp", {"bob"});
      break;
    case 2:
      tx.Delete("active", {"ada"});  // cleanup fires: -payroll(ada, x)
      break;
    default:
      return InvalidArgumentError("no such step");
  }
  return std::move(tx).Commit().status();
}

struct WorkloadRun {
  /// Commits acknowledged (Commit returned OK) before the first failure.
  int acked = 0;
  /// acked, plus one if a commit was in flight when the failure hit.
  int attempted = 0;
};

/// Runs the scripted workload through `env`, stopping at the first
/// failure the way a crashing process would.
WorkloadRun RunWorkload(Env* env, const std::string& dir) {
  WorkloadRun run;
  auto db = ActiveDatabase::Open(dir, Params(env));
  if (!db.ok()) return run;
  for (int step = 0; step < kCommits; ++step) {
    run.attempted = step + 1;
    if (!ScriptedCommit(*db, step).ok()) return run;
    run.acked = step + 1;
    if (step + 1 == kCheckpointAfter && !db->Checkpoint().ok()) return run;
  }
  return run;
}

/// states[k] = the instance after the first k commits, from a fault-free
/// reference run (the checkpoint never changes the logical state).
std::vector<std::string> ReferenceStates(const std::string& dir) {
  std::vector<std::string> states;
  auto db = ActiveDatabase::Open(dir, Params(Env::Default()));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  states.push_back(db->database().ToString());
  for (int step = 0; step < kCommits; ++step) {
    EXPECT_TRUE(ScriptedCommit(*db, step).ok());
    std::string before_checkpoint = db->database().ToString();
    if (step + 1 == kCheckpointAfter) {
      EXPECT_TRUE(db->Checkpoint().ok());
      EXPECT_EQ(db->database().ToString(), before_checkpoint);
    }
    states.push_back(db->database().ToString());
  }
  return states;
}

class CrashPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "park_crash_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string Dir(const std::string& name) const {
    return base_ + "/" + name;
  }

  std::string base_;
};

TEST_F(CrashPointTest, RecoveryIsExactAtEveryIoOperation) {
  const std::vector<std::string> expected = ReferenceStates(Dir("reference"));
  ASSERT_EQ(expected.size(), static_cast<size_t>(kCommits) + 1);

  // Count the workload's I/O operations with a pass-through fault env.
  int64_t total_ops = 0;
  {
    FaultInjectingEnv counter(Env::Default());
    WorkloadRun run = RunWorkload(&counter, Dir("count"));
    ASSERT_EQ(run.acked, kCommits);
    ASSERT_FALSE(counter.crashed());
    total_ops = counter.op_count();
  }
  ASSERT_GT(total_ops, 10) << "workload too small to be interesting";

  for (int64_t crash_at = 0; crash_at < total_ops; ++crash_at) {
    SCOPED_TRACE("crash at I/O op " + std::to_string(crash_at));
    const std::string dir = Dir("crash_" + std::to_string(crash_at));

    FaultPlan plan;
    plan.fault_at = crash_at;
    plan.kind = FaultPlan::Kind::kCrash;
    // Cycle the tear point so appends die empty, mid-record, and fully
    // written (the record-complete-but-unacked case).
    plan.torn_write_percent = static_cast<int>(crash_at % 3) * 50;
    FaultInjectingEnv fault_env(Env::Default(), plan);
    WorkloadRun run = RunWorkload(&fault_env, dir);
    ASSERT_TRUE(fault_env.crashed());
    ASSERT_LE(run.acked, run.attempted);

    // Recover with a healthy filesystem, as a restarted process would.
    auto recovered = ActiveDatabase::Open(dir, Params(Env::Default()));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const std::string state = recovered->database().ToString();
    const bool acked_prefix = state == expected[run.acked];
    const bool inflight_prefix =
        run.attempted > run.acked && state == expected[run.attempted];
    EXPECT_TRUE(acked_prefix || inflight_prefix)
        << "recovered \"" << state << "\" after " << run.acked
        << " acked / " << run.attempted << " attempted commit(s); wanted \""
        << expected[run.acked] << "\""
        << (run.attempted > run.acked
                ? " or \"" + expected[run.attempted] + "\""
                : "");

    // The recovered database must be fully usable: one more durable
    // commit, with the rules firing.
    Transaction tx = recovered->Begin();
    tx.Insert("emp", {"eve"});
    auto report = std::move(tx).Commit();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(recovered->Contains(
        ParseGroundAtom("active(eve)", recovered->symbols()).value()));
  }
}

TEST_F(CrashPointTest, CrashDuringRecoveryIsItselfRecoverable) {
  // Crash the workload mid-flight, then crash the RECOVERY at every one
  // of ITS I/O operations; a final healthy recovery must still land on a
  // committed prefix. Recovery mutates the directory (torn-tail
  // truncation, debris sweeping), so each round restores the original
  // post-crash directory image first.
  const std::vector<std::string> expected = ReferenceStates(Dir("reference"));

  int64_t total_ops = 0;
  {
    FaultInjectingEnv counter(Env::Default());
    RunWorkload(&counter, Dir("count"));
    total_ops = counter.op_count();
  }

  const std::string dir = Dir("db");
  FaultPlan plan;
  plan.fault_at = total_ops / 2;  // mid-workload, after some commits
  plan.kind = FaultPlan::Kind::kCrash;
  plan.torn_write_percent = 50;
  FaultInjectingEnv fault_env(Env::Default(), plan);
  const WorkloadRun run = RunWorkload(&fault_env, dir);
  ASSERT_TRUE(fault_env.crashed());

  const std::string backup = Dir("backup");
  std::filesystem::copy(dir, backup);
  auto restore = [&] {
    std::filesystem::remove_all(dir);
    std::filesystem::copy(backup, dir);
  };

  // Recovery's own op count, measured on a copy of the crashed image.
  int64_t recovery_ops = 0;
  {
    restore();
    FaultInjectingEnv counter(Env::Default());
    auto db = ActiveDatabase::Open(dir, Params(&counter));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    recovery_ops = counter.op_count();
  }
  ASSERT_GT(recovery_ops, 0);

  for (int64_t crash_at = 0; crash_at < recovery_ops; ++crash_at) {
    SCOPED_TRACE("recovery crash at I/O op " + std::to_string(crash_at));
    restore();
    FaultPlan recovery_plan;
    recovery_plan.fault_at = crash_at;
    recovery_plan.kind = FaultPlan::Kind::kCrash;
    recovery_plan.torn_write_percent = 50;
    FaultInjectingEnv crashing(Env::Default(), recovery_plan);
    // The interrupted recovery may fail or (if the crash only hit its
    // final ops) succeed; either way the on-disk image must still
    // recover cleanly afterwards.
    auto interrupted = ActiveDatabase::Open(dir, Params(&crashing));

    auto recovered = ActiveDatabase::Open(dir, Params(Env::Default()));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const std::string state = recovered->database().ToString();
    EXPECT_TRUE(state == expected[run.acked] ||
                (run.attempted > run.acked &&
                 state == expected[run.attempted]))
        << "recovered \"" << state << "\"";
  }
}

}  // namespace
}  // namespace park
