// The two baselines (claim C4 and the §4.1 strawman): where they agree
// with PARK and where — by design — they diverge.

#include "test_util.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : symbols_(MakeSymbolTable()) {}

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(BaselineTest, InflationaryOnPositiveDatalog) {
  Program program = MustParseProgram(
      "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
      symbols_);
  Database db = MustParseDatabase("edge(a, b). edge(b, c).", symbols_);
  auto result = InflationaryFixpoint(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->consistent);
  EXPECT_EQ(result->database.ToString(),
            "{edge(a, b), edge(b, c), path(a, b), path(a, c), path(b, c)}");
  // Two productive Γ applications: base arcs, then the composed arc.
  EXPECT_EQ(result->steps, 2u);
}

TEST_F(BaselineTest, InflationaryWithDeletionsButNoConflict) {
  Program program = MustParseProgram("p -> -q. p -> +r.", symbols_);
  Database db = MustParseDatabase("p. q.", symbols_);
  auto result = InflationaryFixpoint(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->consistent);
  EXPECT_EQ(result->database.ToString(), "{p, r}");
}

TEST_F(BaselineTest, InflationaryFlagsInconsistency) {
  Program program = MustParseProgram("p -> +a. p -> -a.", symbols_);
  Database db = MustParseDatabase("p.", symbols_);
  auto result = InflationaryFixpoint(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->consistent);
  // The database is left untouched when the fixpoint is inconsistent.
  EXPECT_EQ(result->database.ToString(), "{p}");
  EXPECT_EQ(result->final_literals,
            (std::vector<std::string>{"p", "+a", "-a"}));
}

TEST_F(BaselineTest, InflationaryInflationaryNegationSemantics) {
  // Inflationary negation: !q is evaluated against the CURRENT stage, so
  // firing order matters and is stage-wise, exactly as in [6].
  Program program = MustParseProgram("!q -> +r. p -> +q.", symbols_);
  Database db = MustParseDatabase("p.", symbols_);
  auto result = InflationaryFixpoint(program, db);
  ASSERT_TRUE(result.ok());
  // Stage 1 evaluates both bodies against D: !q holds, so +r is derived
  // alongside +q; the inflationary semantics never retracts it.
  EXPECT_EQ(result->database.ToString(), "{p, q, r}");
}

TEST_F(BaselineTest, InflationaryMaxStepsGuard) {
  Program program = MustParseProgram(
      "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
      symbols_);
  std::string facts;
  for (int i = 0; i < 30; ++i) {
    facts += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").";
  }
  Database db = MustParseDatabase(facts, symbols_);
  auto result = InflationaryFixpoint(program, db, /*max_steps=*/2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BaselineTest, NaiveCancelMatchesParkWhenConflictFree) {
  Program program = MustParseProgram("p -> +q. q -> +r.", symbols_);
  Database db = MustParseDatabase("p.", symbols_);
  auto naive = NaiveCancelSemantics(program, db);
  ASSERT_TRUE(naive.ok());
  auto park = Park(program, db);
  ASSERT_TRUE(park.ok());
  EXPECT_TRUE(naive->database.SameAtoms(park->database));
  EXPECT_EQ(naive->cancelled_pairs, 0u);
}

TEST_F(BaselineTest, NaiveCancelKeepsStaleConsequences) {
  // §4.1 P2: the naive semantics keeps `s` (derived from the cancelled
  // +a) while PARK correctly drops it. This is THE motivating divergence.
  Program program = MustParseProgram(R"(
    p -> +q. p -> -a. q -> +a. !a -> +r. a -> +s.
  )", symbols_);
  Database db = MustParseDatabase("p.", symbols_);
  auto naive = NaiveCancelSemantics(program, db);
  ASSERT_TRUE(naive.ok());
  auto park = Park(program, db);
  ASSERT_TRUE(park.ok());
  EXPECT_EQ(naive->database.ToString(), "{p, q, r, s}");
  EXPECT_EQ(park->database.ToString(), "{p, q, r}");
  EXPECT_FALSE(naive->database.SameAtoms(park->database));
}

TEST_F(BaselineTest, NaiveCancelLosesFalseConflictVictims) {
  // §4.1 P3: the naive semantics cancels the FALSE conflict on `a` and
  // loses the legitimate +a from rule 5.
  Program program = MustParseProgram(R"(
    p -> +q. p -> -q. q -> +a. q -> -a. p -> +a.
  )", symbols_);
  Database db = MustParseDatabase("p.", symbols_);
  auto naive = NaiveCancelSemantics(program, db);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->database.ToString(), "{p}");
  auto park = Park(program, db);
  ASSERT_TRUE(park.ok());
  EXPECT_EQ(park->database.ToString(), "{a, p}");
}

TEST_F(BaselineTest, NaiveCancelCountsPairs) {
  Program program = MustParseProgram(R"(
    p -> +x. p -> -x.
    p -> +y. p -> -y.
    p -> +z.
  )", symbols_);
  Database db = MustParseDatabase("p.", symbols_);
  auto naive = NaiveCancelSemantics(program, db);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->cancelled_pairs, 2u);
  EXPECT_EQ(naive->database.ToString(), "{p, z}");
}

TEST_F(BaselineTest, UnblockedFixpointExposesInterpretation) {
  Program program = MustParseProgram("p -> +q. q -> -p.", symbols_);
  Database db = MustParseDatabase("p.", symbols_);
  size_t steps = 0;
  auto interp = UnblockedFixpoint(program, db, 100, &steps);
  ASSERT_TRUE(interp.ok());
  EXPECT_EQ(steps, 2u);
  EXPECT_TRUE(interp->HasPlus(ParseGroundAtom("q", symbols_).value()));
  EXPECT_TRUE(interp->HasMinus(ParseGroundAtom("p", symbols_).value()));
  EXPECT_TRUE(interp->IsConsistent());
}

}  // namespace
}  // namespace park
