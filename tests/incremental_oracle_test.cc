// Incremental-maintenance oracle: MaintenanceMode::kIncremental is a
// performance knob, never a semantic one. For randomized multi-commit
// sequences, every commit's report (inserted/deleted diff) and the final
// stored instance must be bit-identical between maintenance on and off,
// across Γ modes × exec modes × thread counts — whether a commit was
// served by the seeded closure or fell back to the full evaluator.
// Eligibility gates, Invalidate() hooks, durable replay, and Session
// group commits are exercised too (docs/INCREMENTAL.md).

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "eca/active_database.h"
#include "serve/session.h"
#include "test_util.h"
#include "util/string_util.h"

namespace park {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

/// One commit of a script: textual "+p(a)" / "-q(b)" updates.
using Script = std::vector<std::vector<std::string>>;

struct CommitObservation {
  bool ok = false;
  std::vector<std::string> inserted;
  std::vector<std::string> deleted;
  ParkStats stats;
};

struct ScriptOutcome {
  std::vector<CommitObservation> commits;
  std::string final_database;
  uint64_t maintained_commits = 0;
  uint64_t fallbacks = 0;
};

struct Config {
  MaintenanceMode maint = MaintenanceMode::kOff;
  GammaMode gamma = GammaMode::kDeltaFiltered;
  ExecMode exec = ExecMode::kTuple;
  int threads = 1;
};

ParkOptions OptionsFor(const Config& config) {
  ParkOptions options;
  options.maintenance_mode = config.maint;
  options.gamma_mode = config.gamma;
  options.exec_mode = config.exec;
  options.num_threads = config.threads;
  return options;
}

/// Replays `script` commit by commit against a fresh ActiveDatabase.
ScriptOutcome RunScript(const std::string& rules, const std::string& facts,
                        const Script& script, const Config& config) {
  ScriptOutcome outcome;
  ActiveDatabase db;
  EXPECT_TRUE(db.LoadRules(rules).ok());
  if (!facts.empty()) EXPECT_TRUE(db.LoadFacts(facts).ok());
  EXPECT_TRUE(db.Configure(OptionsFor(config)).ok());
  EXPECT_TRUE(db.Stabilize().ok());
  for (const std::vector<std::string>& commit : script) {
    Transaction tx = db.Begin();
    for (const std::string& update : commit) {
      EXPECT_TRUE(tx.Stage(update).ok()) << update;
    }
    auto report = std::move(tx).Commit();
    CommitObservation obs;
    obs.ok = report.ok();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (report.ok()) {
      const SymbolTable& symbols = *db.symbols();
      for (const GroundAtom& atom : report->inserted) {
        obs.inserted.push_back(atom.ToString(symbols));
      }
      for (const GroundAtom& atom : report->deleted) {
        obs.deleted.push_back(atom.ToString(symbols));
      }
      obs.stats = report->stats;
      outcome.maintained_commits += report->stats.maint_commits;
      outcome.fallbacks += report->stats.maint_full_recompute_fallbacks;
    }
    outcome.commits.push_back(std::move(obs));
  }
  outcome.final_database = db.database().ToString();
  return outcome;
}

void ExpectSameResults(const ScriptOutcome& reference,
                       const ScriptOutcome& run) {
  ASSERT_EQ(reference.commits.size(), run.commits.size());
  for (size_t i = 0; i < reference.commits.size(); ++i) {
    SCOPED_TRACE(StrFormat("commit #%zu", i));
    EXPECT_EQ(reference.commits[i].ok, run.commits[i].ok);
    EXPECT_EQ(reference.commits[i].inserted, run.commits[i].inserted);
    EXPECT_EQ(reference.commits[i].deleted, run.commits[i].deleted);
  }
  EXPECT_EQ(reference.final_database, run.final_database);
}

const char* GammaName(GammaMode mode) {
  switch (mode) {
    case GammaMode::kNaive: return "naive";
    case GammaMode::kDeltaFiltered: return "delta-filtered";
    case GammaMode::kSemiNaive: return "semi-naive";
  }
  return "?";
}

/// Transitive closure: insert-only heads, purely positive bodies —
/// statically eligible. Base-edge deletes stay eligible too (e is not a
/// head predicate).
constexpr char kClosureRules[] =
    "base: e(X, Y) -> +t(X, Y).\n"
    "step: t(X, Z), e(Z, Y) -> +t(X, Y).\n";

/// Randomized multi-commit script over a small node domain: mostly edge
/// inserts, some deletes of already-present edges, occasional no-ops.
Script RandomScript(uint32_t seed, size_t commits, size_t updates_per) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node(0, 9);
  std::uniform_int_distribution<int> kind(0, 9);
  std::vector<std::pair<int, int>> present;
  Script script;
  for (size_t c = 0; c < commits; ++c) {
    std::vector<std::string> commit;
    for (size_t u = 0; u < updates_per; ++u) {
      if (kind(rng) < 7 || present.empty()) {
        int from = node(rng);
        int to = node(rng);
        commit.push_back(StrFormat("+e(n%d, n%d)", from, to));
        present.emplace_back(from, to);
      } else {
        std::uniform_int_distribution<size_t> pick(0, present.size() - 1);
        size_t at = pick(rng);
        commit.push_back(
            StrFormat("-e(n%d, n%d)", present[at].first, present[at].second));
        present.erase(present.begin() + static_cast<long>(at));
      }
    }
    script.push_back(std::move(commit));
  }
  return script;
}

/// The full sweep: the maintenance-off sequential run is the oracle; every
/// maintenance × Γ mode × exec mode × thread combination must reproduce
/// its per-commit diffs and final instance bit-identically.
void ExpectMaintenanceInvisible(const std::string& rules,
                                const std::string& facts,
                                const Script& script,
                                bool expect_incremental_service = true) {
  Config reference_config;  // maintenance off, threads 1
  ScriptOutcome reference = RunScript(rules, facts, script, reference_config);
  uint64_t total_maintained = 0;
  for (GammaMode gamma : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                          GammaMode::kSemiNaive}) {
    for (ExecMode exec : {ExecMode::kTuple, ExecMode::kBatch}) {
      for (int threads : {1, 4}) {
        for (MaintenanceMode maint :
             {MaintenanceMode::kOff, MaintenanceMode::kIncremental}) {
          SCOPED_TRACE(StrFormat(
              "gamma=%s exec=%s threads=%d maintenance=%s",
              GammaName(gamma), exec == ExecMode::kBatch ? "batch" : "tuple",
              threads,
              maint == MaintenanceMode::kIncremental ? "incremental"
                                                     : "off"));
          Config config;
          config.maint = maint;
          config.gamma = gamma;
          config.exec = exec;
          config.threads = threads;
          ScriptOutcome run = RunScript(rules, facts, script, config);
          ExpectSameResults(reference, run);
          if (maint == MaintenanceMode::kIncremental) {
            total_maintained += run.maintained_commits;
          } else {
            EXPECT_EQ(run.maintained_commits, 0u);
            EXPECT_EQ(run.fallbacks, 0u);
          }
        }
      }
    }
  }
  // The sweep must actually exercise the incremental path, not just fall
  // back everywhere (unless the scenario is built to be ineligible).
  if (expect_incremental_service) {
    EXPECT_GT(total_maintained, 0u);
  } else {
    EXPECT_EQ(total_maintained, 0u);
  }
}

TEST(IncrementalOracleTest, RandomizedClosureScriptsAgree) {
  for (uint32_t seed : {1u, 42u, 20260809u}) {
    SCOPED_TRACE(seed);
    Script script = RandomScript(seed, /*commits=*/10, /*updates_per=*/3);
    ExpectMaintenanceInvisible(kClosureRules, "e(n0, n1). e(n1, n2).",
                               script);
  }
}

TEST(IncrementalOracleTest, GateViolatingCommitsFallBackAndAgree) {
  // Commit 1 is eligible; commit 2 deletes a derived (head) predicate;
  // commit 3 carries both signs of one atom — a genuine conflict, whose
  // full-path resolution (a restart) means INV is NOT re-established, so
  // commit 4 falls back too and only commit 5 is incremental again.
  Script script = {
      {"+e(n0, n3)"},
      {"-t(n0, n1)"},
      {"+e(n4, n5)", "-e(n4, n5)"},
      {"+e(n3, n4)"},
      {"+e(n5, n6)"},
  };
  ExpectMaintenanceInvisible(kClosureRules, "e(n0, n1). e(n1, n2).", script);

  Config config;
  config.maint = MaintenanceMode::kIncremental;
  ScriptOutcome run =
      RunScript(kClosureRules, "e(n0, n1). e(n1, n2).", script, config);
  ASSERT_EQ(run.commits.size(), 5u);
  // Commit 1 rides the INV established by Stabilize().
  EXPECT_EQ(run.commits[0].stats.maint_commits, 1u);
  EXPECT_EQ(run.commits[1].stats.maint_full_recompute_fallbacks, 1u);
  EXPECT_EQ(run.commits[2].stats.maint_full_recompute_fallbacks, 1u);
  EXPECT_GT(run.commits[2].stats.restarts, 0u);
  EXPECT_EQ(run.commits[3].stats.maint_full_recompute_fallbacks, 1u);
  EXPECT_EQ(run.commits[4].stats.maint_commits, 1u);
  EXPECT_EQ(run.fallbacks, 3u);
}

TEST(IncrementalOracleTest, StaticallyIneligibleProgramsAlwaysFallBack) {
  // Delete head + negation over a head predicate: the static gate keeps
  // every commit on the full path, and results still agree.
  const std::string rules =
      "onboard: +emp(X) -> +active(X).\n"
      "cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).\n";
  Script script = {
      {"+emp(ann)", "+payroll(ann, s1)"},
      {"+emp(bob)"},
      {"-emp(ann)"},
  };
  ExpectMaintenanceInvisible(rules, "", script,
                             /*expect_incremental_service=*/false);
}

TEST(IncrementalOracleTest, EventFeedbackOntoHeadPredicateIsGated) {
  // +active(X) is an event literal over a predicate some head writes —
  // statically ineligible (the seeded closure only marks the cone, a
  // from-scratch run marks every derived atom).
  const std::string rules =
      "a: p(X) -> +active(X).\n"
      "b: +active(X) -> +notified(X).\n";
  Script script = {{"+p(ann)"}, {"+p(bob)"}, {"+q(zz)"}};
  ExpectMaintenanceInvisible(rules, "", script,
                             /*expect_incremental_service=*/false);
}

TEST(IncrementalOracleTest, InsertIntoNegatedPredicateFallsBack) {
  // `!blocked` reads a non-head predicate, so the program is statically
  // eligible — but inserting into `blocked` trips the dynamic gate.
  const std::string rules = "r: e(X, Y), !blocked(X) -> +t(X, Y).\n";
  Script script = {
      {"+e(n0, n1)"},
      {"+blocked(n0)"},
      {"+e(n2, n3)"},
  };
  ExpectMaintenanceInvisible(rules, "", script);

  Config config;
  config.maint = MaintenanceMode::kIncremental;
  ScriptOutcome run = RunScript(rules, "", script, config);
  EXPECT_EQ(run.commits[0].stats.maint_commits, 1u);
  EXPECT_EQ(run.commits[1].stats.maint_full_recompute_fallbacks, 1u);
  EXPECT_EQ(run.commits[2].stats.maint_commits, 1u);
}

TEST(IncrementalOracleTest, MaintenanceCountersAreThreadInvariant) {
  Script script = RandomScript(7u, /*commits=*/8, /*updates_per=*/2);
  std::vector<ScriptOutcome> runs;
  for (int threads : {1, 4}) {
    Config config;
    config.maint = MaintenanceMode::kIncremental;
    config.threads = threads;
    runs.push_back(
        RunScript(kClosureRules, "e(n0, n1). e(n1, n2).", script, config));
  }
  ASSERT_EQ(runs[0].commits.size(), runs[1].commits.size());
  for (size_t i = 0; i < runs[0].commits.size(); ++i) {
    SCOPED_TRACE(StrFormat("commit #%zu", i));
    const ParkStats& at1 = runs[0].commits[i].stats;
    const ParkStats& at4 = runs[1].commits[i].stats;
    EXPECT_EQ(at1.maint_commits, at4.maint_commits);
    EXPECT_EQ(at1.maint_atoms_overdeleted, at4.maint_atoms_overdeleted);
    EXPECT_EQ(at1.maint_atoms_rederived, at4.maint_atoms_rederived);
    EXPECT_EQ(at1.maint_cone_rules, at4.maint_cone_rules);
    EXPECT_EQ(at1.maint_full_recompute_fallbacks,
              at4.maint_full_recompute_fallbacks);
  }
}

TEST(IncrementalOracleTest, IncrementalCommitReportsConeAndRederivations) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules(kClosureRules).ok());
  ASSERT_TRUE(db.LoadFacts("e(n0, n1). e(n1, n2). e(n2, n3).").ok());
  ParkOptions options;
  options.maintenance_mode = MaintenanceMode::kIncremental;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  auto stabilized = db.Stabilize();
  ASSERT_TRUE(stabilized.ok());
  // Stabilize itself is the INV-establishing full run.
  EXPECT_EQ(stabilized->stats.maint_full_recompute_fallbacks, 1u);
  EXPECT_EQ(stabilized->stats.maint_commits, 0u);

  Transaction tx = db.Begin();
  ASSERT_TRUE(tx.Stage("+e(n4, n5)").ok());
  auto incremental = std::move(tx).Commit();
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
  EXPECT_EQ(incremental->stats.maint_commits, 1u);
  EXPECT_EQ(incremental->stats.maint_full_recompute_fallbacks, 0u);
  // The insert reaches both rules' cone and re-derives t(_, n5) paths.
  EXPECT_EQ(incremental->stats.maint_cone_rules, 2u);
  EXPECT_GT(incremental->stats.maint_atoms_rederived, 0u);
  EXPECT_EQ(incremental->stats.maint_atoms_overdeleted, 0u);
  EXPECT_EQ(incremental->stats.maintenance_mode,
            MaintenanceMode::kIncremental);
  // A base-edge delete is eligible and, by inertia, retracts nothing else.
  Transaction del = db.Begin();
  ASSERT_TRUE(del.Stage("-e(n4, n5)").ok());
  auto deleted = std::move(del).Commit();
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->stats.maint_commits, 1u);
  EXPECT_EQ(deleted->stats.maint_atoms_overdeleted, 1u);
}

TEST(IncrementalOracleTest, BulkLoadsInvalidateTheMaintainedState) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules(kClosureRules).ok());
  ParkOptions options;
  options.maintenance_mode = MaintenanceMode::kIncremental;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  ASSERT_TRUE(db.LoadFacts("e(n0, n1).").ok());
  ASSERT_TRUE(db.Stabilize().ok());
  ASSERT_TRUE(std::move(db.Begin().Insert("e", {"n1", "n2"})).Commit().ok());

  // LoadFacts bypasses the rules, so INV is gone: the next commit must
  // fall back (and, through it, repair the un-stabilized bulk load).
  ASSERT_TRUE(db.LoadFacts("e(n2, n3).").ok());
  auto after_bulk = std::move(db.Begin().Insert("e", {"n3", "n4"})).Commit();
  ASSERT_TRUE(after_bulk.ok());
  EXPECT_EQ(after_bulk->stats.maint_commits, 0u);
  EXPECT_EQ(after_bulk->stats.maint_full_recompute_fallbacks, 1u);
  // The closure reached through the bulk-loaded edge.
  auto rows = QueryDatabase(db.database(), "t(n0, n4)", db.symbols());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  // And the commit after that is incremental again.
  auto next = std::move(db.Begin().Insert("e", {"n4", "n5"})).Commit();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->stats.maint_commits, 1u);
}

TEST(IncrementalOracleTest, AddingARuleInvalidates) {
  ActiveDatabase db;
  ASSERT_TRUE(db.LoadRules("base: e(X, Y) -> +t(X, Y).").ok());
  ParkOptions options;
  options.maintenance_mode = MaintenanceMode::kIncremental;
  ASSERT_TRUE(db.Configure(std::move(options)).ok());
  ASSERT_TRUE(db.Stabilize().ok());
  ASSERT_TRUE(std::move(db.Begin().Insert("e", {"a", "b"})).Commit().ok());
  ASSERT_TRUE(db.LoadRules("step: t(X, Z), e(Z, Y) -> +t(X, Y).").ok());
  auto report = std::move(db.Begin().Insert("e", {"b", "c"})).Commit();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stats.maint_commits, 0u);
  EXPECT_EQ(report->stats.maint_full_recompute_fallbacks, 1u);
  auto rows = QueryDatabase(db.database(), "t(a, c)", db.symbols());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(IncrementalOracleTest, DurableReplayMatchesMaintenanceOff) {
  Script script = RandomScript(11u, /*commits=*/6, /*updates_per=*/2);
  std::string states[2];
  for (int pass = 0; pass < 2; ++pass) {
    const bool maintained = pass == 1;
    const std::string dir = TempDir(
        StrFormat("park_incremental_durable_%d", pass));
    ActiveDatabase::OpenParams params;
    params.rules = kClosureRules;
    params.options.maintenance_mode = maintained
                                          ? MaintenanceMode::kIncremental
                                          : MaintenanceMode::kOff;
    std::string before;
    {
      auto db = ActiveDatabase::Open(dir, params);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      for (const std::vector<std::string>& commit : script) {
        Transaction tx = db->Begin();
        for (const std::string& update : commit) {
          ASSERT_TRUE(tx.Stage(update).ok());
        }
        ASSERT_TRUE(std::move(tx).Commit().ok());
      }
      before = db->database().ToString();
    }
    // Reopen: journal replay runs through the same commit path, with
    // maintenance engaging after the first replayed commit.
    auto reopened = ActiveDatabase::Open(dir, params);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened->database().ToString(), before);
    states[pass] = reopened->database().ToString();
  }
  EXPECT_EQ(states[0], states[1]);
}

TEST(IncrementalOracleTest, SessionGroupCommitsAgreeWithMaintenanceOff) {
  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 8;
  std::string states[2];
  for (int pass = 0; pass < 2; ++pass) {
    Session::Params params;
    params.rules = kClosureRules;
    params.options.maintenance_mode = pass == 1
                                          ? MaintenanceMode::kIncremental
                                          : MaintenanceMode::kOff;
    auto session_or = Session::Create(std::move(params));
    ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
    std::unique_ptr<Session> session = std::move(session_or).value();
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&session, w] {
        for (int i = 0; i < kCommitsPerWriter; ++i) {
          Transaction tx = session->Begin();
          tx.Insert("e", {StrFormat("w%d", w), StrFormat("w%d_%d", w, i)});
          auto report = std::move(tx).Commit();
          EXPECT_TRUE(report.ok());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    states[pass] = session->Snapshot().ToString();
  }
  EXPECT_EQ(states[0], states[1]);
}

}  // namespace
}  // namespace park
