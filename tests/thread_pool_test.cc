#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace park {
namespace {

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

TEST(ResolveNumThreadsTest, PositivePassesThroughUpToCap) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  int cap = 4 * HardwareThreads();
  EXPECT_EQ(ResolveNumThreads(cap), cap);
}

TEST(ResolveNumThreadsTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveNumThreads(0), 1);
}

TEST(ResolveNumThreadsTest, AbsurdRequestsAreClamped) {
  // Anything past 4x the hardware would only oversubscribe the scheduler;
  // the resolver clamps (with a warning) instead of spawning thousands of
  // workers.
  int cap = 4 * HardwareThreads();
  EXPECT_EQ(ResolveNumThreads(cap + 1), cap);
  EXPECT_EQ(ResolveNumThreads(100000), cap);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkedCoversEverything) {
  ThreadPool pool(3);
  for (size_t chunk : {1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(257);
    pool.ParallelFor(
        hits.size(),
        [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
        chunk);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "chunk=" << chunk;
  }
}

TEST(ThreadPoolTest, EmptyAndTinySections) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no indexes to run"; });
  std::atomic<int> count{0};
  pool.ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ManyConsecutiveSections) {
  // The coordinator reuses the same workers across sections; a generation
  // bug would lose or double-run tasks. Rounds where round % 17 == 0 fan
  // out no work and therefore must not count as sections.
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  int64_t expected = 0;
  uint64_t non_empty = 0;
  for (int round = 0; round < 200; ++round) {
    size_t n = static_cast<size_t>(round % 17);
    pool.ParallelFor(n, [&](size_t i) {
      sum.fetch_add(static_cast<int64_t>(i) + 1);
    });
    expected += static_cast<int64_t>(n) * (static_cast<int64_t>(n) + 1) / 2;
    if (n > 0) ++non_empty;
  }
  EXPECT_EQ(sum.load(), expected);
  EXPECT_EQ(pool.sections_run(), non_empty);
}

TEST(ThreadPoolTest, TaskCounterAccumulates) {
  ThreadPool pool(2);
  pool.ParallelFor(10, [](size_t) {});
  pool.ParallelFor(5, [](size_t) {});
  EXPECT_EQ(pool.tasks_executed(), 15u);
  EXPECT_EQ(pool.sections_run(), 2u);
}

TEST(ThreadPoolTest, EmptySectionsCountNothing) {
  // Regression: ParallelFor used to bump sections_run_ (and add n == 0 to
  // tasks_executed_) before its early return, so ParkStats reported
  // parallel sections that fanned out no work.
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) {});
  EXPECT_EQ(pool.sections_run(), 0u);
  EXPECT_EQ(pool.tasks_executed(), 0u);
  pool.ParallelFor(3, [](size_t) {});
  pool.ParallelFor(0, [](size_t) {});
  EXPECT_EQ(pool.sections_run(), 1u);
  EXPECT_EQ(pool.tasks_executed(), 3u);
}

TEST(ThreadPoolReentryDeathTest, NestedParallelForAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A task body calling back into its own pool would deadlock workers on
  // the inner section; the flattened two-level Γ task list must never
  // nest sections, and the pool checks loudly.
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.ParallelFor(4, [&](size_t) {
          pool.ParallelFor(1, [](size_t) {});
        });
      },
      "re-entrant");
}

TEST(ThreadPoolTest, MorekThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace park
