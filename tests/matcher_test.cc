#include "engine/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lang/parser.h"

namespace park {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : symbols_(MakeSymbolTable()) {}

  Rule MustRule(std::string_view text) {
    auto rule = ParseRule(text, symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    return rule.ok() ? std::move(rule).value() : Rule();
  }

  Database MustDb(std::string_view facts) {
    return ParseDatabase(facts, symbols_).value();
  }

  /// Collects bindings rendered as "X=a,Y=b" (sorted for determinism).
  std::vector<std::string> Matches(const Rule& rule,
                                   const IInterpretation& interp) {
    std::vector<std::string> out;
    ForEachBodyMatch(rule, interp, [&](const Tuple& binding) {
      std::string s;
      for (int i = 0; i < binding.arity(); ++i) {
        if (i > 0) s += ",";
        s += rule.variable_names()[static_cast<size_t>(i)] + "=" +
             binding[i].ToString(*symbols_);
      }
      out.push_back(s);
    });
    std::sort(out.begin(), out.end());
    return out;
  }

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(MatcherTest, SinglePositiveLiteral) {
  Database db = MustDb("p(a). p(b).");
  IInterpretation interp(&db);
  Rule rule = MustRule("p(X) -> +q(X).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a", "X=b"}));
}

TEST_F(MatcherTest, EmptyBodyYieldsOneEmptyMatch) {
  Database db = MustDb("");
  IInterpretation interp(&db);
  Rule rule = MustRule("-> +q(c).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{""}));
}

TEST_F(MatcherTest, JoinAcrossLiterals) {
  Database db = MustDb("edge(a, b). edge(b, c). edge(c, d).");
  IInterpretation interp(&db);
  Rule rule = MustRule("edge(X, Y), edge(Y, Z) -> +path(X, Z).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a,Y=b,Z=c", "X=b,Y=c,Z=d"}));
}

TEST_F(MatcherTest, RepeatedVariableWithinLiteral) {
  Database db = MustDb("q(a, a). q(a, b). q(b, b).");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, X) -> -q(X, X).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a", "X=b"}));
}

TEST_F(MatcherTest, ConstantsFilter) {
  Database db = MustDb("q(a, a). q(b, a). q(b, c).");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, a) -> -q(X, a).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a", "X=b"}));
}

TEST_F(MatcherTest, NegationFiltersBindings) {
  Database db = MustDb("emp(a). emp(b). active(a).");
  IInterpretation interp(&db);
  Rule rule = MustRule("emp(X), !active(X) -> -emp(X).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=b"}));
}

TEST_F(MatcherTest, NegationFirstInSourceOrderStillWorks) {
  Database db = MustDb("emp(a). emp(b). active(a).");
  IInterpretation interp(&db);
  // The planner must reorder: !active(X) cannot generate bindings.
  Rule rule = MustRule("!active(X), emp(X) -> -emp(X).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=b"}));
}

TEST_F(MatcherTest, PositiveSeesBaseAndPlusWithoutDuplicates) {
  Database db = MustDb("p(a).");
  IInterpretation interp(&db);
  RuleGrounding g(0, Tuple{});
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("p(a)", symbols_).value(), g);  // dup
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("p(b)", symbols_).value(), g);
  Rule rule = MustRule("p(X) -> +q(X).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a", "X=b"}));
}

TEST_F(MatcherTest, MinusMarkDoesNotHidePositive) {
  Database db = MustDb("p(a).");
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kDelete,
                   ParseGroundAtom("p(a)", symbols_).value(),
                   RuleGrounding(0, Tuple{}));
  Rule rule = MustRule("p(X) -> +q(X).");
  // Pending deletion: p(a) still valid positively (paper §4.2).
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=a"}));
}

TEST_F(MatcherTest, EventInsertMatchesOnlyPlus) {
  Database db = MustDb("r(a).");
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("r(b)", symbols_).value(),
                   RuleGrounding(0, Tuple{}));
  Rule rule = MustRule("+r(X) -> -s(X).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=b"}));
}

TEST_F(MatcherTest, EventDeleteMatchesOnlyMinus) {
  Database db = MustDb("r(a). r(b).");
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kDelete,
                   ParseGroundAtom("r(b)", symbols_).value(),
                   RuleGrounding(0, Tuple{}));
  Rule rule = MustRule("-r(X) -> +log(X).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=b"}));
}

TEST_F(MatcherTest, CartesianProduct) {
  Database db = MustDb("p(a). p(b). p(c).");
  IInterpretation interp(&db);
  Rule rule = MustRule("p(X), p(Y) -> +q(X, Y).");
  EXPECT_EQ(Matches(rule, interp).size(), 9u);
}

TEST_F(MatcherTest, AnonymousVariablesEnumerate) {
  Database db = MustDb("q(a, b). q(a, c). q(d, e).");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, _) -> +seen(X).");
  // One match per tuple (the anonymous column is unconstrained).
  EXPECT_EQ(Matches(rule, interp).size(), 3u);
}

TEST_F(MatcherTest, PlanPutsGroundFilterFirst) {
  Rule rule = MustRule("p(X), q(a), r(X) -> +s(X).");
  std::vector<int> order = PlanBodyOrder(rule);
  // q(a) is fully bound from the start: scheduled first.
  EXPECT_EQ(order[0], 1);
}

TEST_F(MatcherTest, PlanDefersNegationUntilBound) {
  Rule rule = MustRule("!q(X), p(X) -> +s(X).");
  std::vector<int> order = PlanBodyOrder(rule);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // p(X) binds X
  EXPECT_EQ(order[1], 0);  // then the negation filters
}

TEST_F(MatcherTest, PlanPrefersMoreBoundLiterals) {
  // After edge(X, Y) binds X and Y, edge(Y, Z) has one bound position
  // while edge(W, V) has none: the planner must pick edge(Y, Z) next.
  Rule rule = MustRule("edge(X, Y), edge(W, V), edge(Y, Z) -> +t(X, Z, W, V).");
  std::vector<int> order = PlanBodyOrder(rule);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST_F(MatcherTest, NoMatchesOnEmptyRelation) {
  Database db = MustDb("");
  IInterpretation interp(&db);
  Rule rule = MustRule("p(X) -> +q(X).");
  EXPECT_TRUE(Matches(rule, interp).empty());
}

/// Seeded enumeration helper for the semi-naive tests below.
std::vector<std::string> SeededMatches(const Rule& rule,
                                       const IInterpretation& interp,
                                       int seed_index,
                                       const GroundAtom& seed_atom,
                                       const SymbolTable& symbols) {
  std::vector<std::string> out;
  ForEachBodyMatchSeeded(rule, interp, seed_index, seed_atom,
                         [&](const Tuple& binding) {
                           std::string s;
                           for (int i = 0; i < binding.arity(); ++i) {
                             if (i > 0) s += ",";
                             s += binding[i].ToString(symbols);
                           }
                           out.push_back(s);
                         });
  std::sort(out.begin(), out.end());
  return out;
}

TEST_F(MatcherTest, SeededMatchBindsTheSeedLiteral) {
  Database db = MustDb("edge(a, b). edge(b, c). edge(c, d).");
  IInterpretation interp(&db);
  Rule rule = MustRule("edge(X, Y), edge(Y, Z) -> +path(X, Z).");
  // Seed literal 0 with edge(b, c): only X=b, Y=c completions.
  auto seed = ParseGroundAtom("edge(b, c)", symbols_).value();
  EXPECT_EQ(SeededMatches(rule, interp, 0, seed, *symbols_),
            (std::vector<std::string>{"b,c,d"}));
  // Seed literal 1 with the same atom: Y=b, Z=c, completions over X.
  EXPECT_EQ(SeededMatches(rule, interp, 1, seed, *symbols_),
            (std::vector<std::string>{"a,b,c"}));
}

TEST_F(MatcherTest, SeededMatchRejectsConstantMismatch) {
  Database db = MustDb("q(a, a). p(a).");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, a), p(X) -> +r(X).");
  // Seed atom disagrees with the literal's constant second position.
  auto wrong = ParseGroundAtom("q(a, b)", symbols_).value();
  EXPECT_TRUE(SeededMatches(rule, interp, 0, wrong, *symbols_).empty());
  auto right = ParseGroundAtom("q(a, a)", symbols_).value();
  EXPECT_EQ(SeededMatches(rule, interp, 0, right, *symbols_),
            (std::vector<std::string>{"a"}));
}

TEST_F(MatcherTest, SeededMatchRejectsRepeatedVariableMismatch) {
  Database db = MustDb("");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, X) -> -q(X, X).");
  auto mismatched = ParseGroundAtom("q(a, b)", symbols_).value();
  EXPECT_TRUE(SeededMatches(rule, interp, 0, mismatched, *symbols_).empty());
  auto matched = ParseGroundAtom("q(c, c)", symbols_).value();
  EXPECT_EQ(SeededMatches(rule, interp, 0, matched, *symbols_),
            (std::vector<std::string>{"c"}));
}

TEST_F(MatcherTest, SeededMatchOnNegatedLiteral) {
  // Semi-naive seeds a negated literal with a new `-` mark: the binding
  // comes from the deleted atom and the rest of the body filters.
  Database db = MustDb("emp(a). emp(b). active(a). active(b).");
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kDelete,
                   ParseGroundAtom("active(b)", symbols_).value(),
                   RuleGrounding(0, Tuple{}));
  Rule rule = MustRule("emp(X), !active(X) -> -emp(X).");
  auto seed = ParseGroundAtom("active(b)", symbols_).value();
  EXPECT_EQ(SeededMatches(rule, interp, 1, seed, *symbols_),
            (std::vector<std::string>{"b"}));
}

// --- Candidate slicing (intra-rule parallelism building blocks) ---

class MatcherSliceTest : public MatcherTest {
 protected:
  /// Bindings of one slice, in enumeration order (NOT sorted: slicing is
  /// about preserving the stream order).
  std::vector<std::string> SliceMatches(const Rule& rule,
                                        const IInterpretation& interp,
                                        CandidateSlice slice) {
    std::vector<std::string> out;
    ForEachBodyMatch(rule, interp, slice, [&](const Tuple& binding) {
      out.push_back(Render(rule, binding));
    });
    return out;
  }

  std::vector<std::string> FullMatches(const Rule& rule,
                                       const IInterpretation& interp) {
    std::vector<std::string> out;
    ForEachBodyMatch(rule, interp, [&](const Tuple& binding) {
      out.push_back(Render(rule, binding));
    });
    return out;
  }

  std::string Render(const Rule& rule, const Tuple& binding) {
    std::string s;
    for (int i = 0; i < binding.arity(); ++i) {
      if (i > 0) s += ",";
      s += rule.variable_names()[static_cast<size_t>(i)] + "=" +
           binding[i].ToString(*symbols_);
    }
    return s;
  }
};

TEST_F(MatcherSliceTest, SliceConcatenationEqualsFullEnumeration) {
  Database db = MustDb(
      "e(a, b). e(b, c). e(c, d). e(d, a). e(a, c). e(b, d). e(c, a).");
  IInterpretation interp(&db);
  Rule rule = MustRule("e(X, Y), e(Y, Z) -> +r(X, Z).");
  size_t candidates = CountFirstLiteralCandidates(rule, interp);
  EXPECT_EQ(candidates, 7u);
  std::vector<std::string> full = FullMatches(rule, interp);
  // Every partition of the ordinal space must concatenate back to the
  // full enumeration, in order, for any slice boundaries.
  for (size_t cut1 = 0; cut1 <= candidates; ++cut1) {
    for (size_t cut2 = cut1; cut2 <= candidates; ++cut2) {
      std::vector<std::string> merged =
          SliceMatches(rule, interp, CandidateSlice{0, cut1});
      std::vector<std::string> mid =
          SliceMatches(rule, interp, CandidateSlice{cut1, cut2});
      std::vector<std::string> last = SliceMatches(
          rule, interp, CandidateSlice{cut2, CandidateSlice::kSliceEnd});
      merged.insert(merged.end(), mid.begin(), mid.end());
      merged.insert(merged.end(), last.begin(), last.end());
      EXPECT_EQ(merged, full) << "cuts at " << cut1 << "," << cut2;
    }
  }
}

TEST_F(MatcherSliceTest, FullSliceMatchesUnslicedOverload) {
  Database db = MustDb("p(a). p(b). p(c).");
  IInterpretation interp(&db);
  Rule rule = MustRule("p(X), !q(X) -> +q(X).");
  EXPECT_EQ(SliceMatches(rule, interp, CandidateSlice{}),
            FullMatches(rule, interp));
}

TEST_F(MatcherSliceTest, CountsBaseAndPlusStreams) {
  // Positive literals draw from base AND plus; the count is raw (the
  // base-duplicate skip happens per candidate, after ordinal claim).
  Database db = MustDb("p(a). p(b).");
  IInterpretation interp(&db);
  RuleGrounding g(0, Tuple{});
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("p(c)", symbols_).value(), g);
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("p(a)", symbols_).value(), g);  // dup
  Rule rule = MustRule("p(X) -> +q(X).");
  EXPECT_EQ(CountFirstLiteralCandidates(rule, interp), 4u);
  // The duplicate is still enumerated exactly once across any partition.
  std::vector<std::string> merged;
  for (size_t i = 0; i < 4; ++i) {
    auto part = SliceMatches(rule, interp, CandidateSlice{i, i + 1});
    merged.insert(merged.end(), part.begin(), part.end());
  }
  EXPECT_EQ(merged, FullMatches(rule, interp));
  EXPECT_EQ(merged.size(), 3u);
}

TEST_F(MatcherSliceTest, UnsliceableRulesReportZero) {
  Database db = MustDb("p(a).");
  IInterpretation interp(&db);
  // Empty body: nothing to slice.
  EXPECT_EQ(CountFirstLiteralCandidates(MustRule("-> +q(c)."), interp), 0u);
  // Fully ground first literal: a constant-time filter, not a generator.
  EXPECT_EQ(CountFirstLiteralCandidates(MustRule("p(a) -> +q(c)."), interp),
            0u);
}

TEST_F(MatcherSliceTest, SeededSlicesConcatenate) {
  Database db = MustDb("e(a, b). e(b, c). e(b, d). e(b, f). e(c, a).");
  IInterpretation interp(&db);
  Rule rule = MustRule("e(X, Y), e(Y, Z) -> +r(X, Z).");
  GroundAtom seed = ParseGroundAtom("e(a, b)", symbols_).value();
  // Seeding literal 0 with e(a, b) binds X=a, Y=b; literal 1's stream is
  // the index probe for e(b, _).
  size_t candidates =
      CountFirstLiteralCandidatesSeeded(rule, interp, 0, seed);
  EXPECT_EQ(candidates, 3u);
  std::vector<std::string> full;
  ForEachBodyMatchSeeded(rule, interp, 0, seed, [&](const Tuple& b) {
    full.push_back(Render(rule, b));
  });
  EXPECT_EQ(full.size(), 3u);
  std::vector<std::string> merged;
  for (size_t i = 0; i < candidates; ++i) {
    CandidateSlice slice{i, i + 1 == candidates ? CandidateSlice::kSliceEnd
                                                : i + 1};
    ForEachBodyMatchSeeded(rule, interp, 0, seed, slice,
                           [&](const Tuple& b) {
                             merged.push_back(Render(rule, b));
                           });
  }
  EXPECT_EQ(merged, full);
}

TEST_F(MatcherSliceTest, SeededCountZeroOnSeedMismatch) {
  Database db = MustDb("e(a, b).");
  IInterpretation interp(&db);
  Rule rule = MustRule("e(X, X), e(X, Y) -> +r(X, Y).");
  GroundAtom seed = ParseGroundAtom("e(a, b)", symbols_).value();
  // Seed literal requires a repeated variable; e(a, b) cannot bind it.
  EXPECT_EQ(CountFirstLiteralCandidatesSeeded(rule, interp, 0, seed), 0u);
}

}  // namespace
}  // namespace park
