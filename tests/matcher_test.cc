#include "engine/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lang/parser.h"

namespace park {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : symbols_(MakeSymbolTable()) {}

  Rule MustRule(std::string_view text) {
    auto rule = ParseRule(text, symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    return rule.ok() ? std::move(rule).value() : Rule();
  }

  Database MustDb(std::string_view facts) {
    return ParseDatabase(facts, symbols_).value();
  }

  /// Collects bindings rendered as "X=a,Y=b" (sorted for determinism).
  std::vector<std::string> Matches(const Rule& rule,
                                   const IInterpretation& interp) {
    std::vector<std::string> out;
    ForEachBodyMatch(rule, interp, [&](const Tuple& binding) {
      std::string s;
      for (int i = 0; i < binding.arity(); ++i) {
        if (i > 0) s += ",";
        s += rule.variable_names()[static_cast<size_t>(i)] + "=" +
             binding[i].ToString(*symbols_);
      }
      out.push_back(s);
    });
    std::sort(out.begin(), out.end());
    return out;
  }

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(MatcherTest, SinglePositiveLiteral) {
  Database db = MustDb("p(a). p(b).");
  IInterpretation interp(&db);
  Rule rule = MustRule("p(X) -> +q(X).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a", "X=b"}));
}

TEST_F(MatcherTest, EmptyBodyYieldsOneEmptyMatch) {
  Database db = MustDb("");
  IInterpretation interp(&db);
  Rule rule = MustRule("-> +q(c).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{""}));
}

TEST_F(MatcherTest, JoinAcrossLiterals) {
  Database db = MustDb("edge(a, b). edge(b, c). edge(c, d).");
  IInterpretation interp(&db);
  Rule rule = MustRule("edge(X, Y), edge(Y, Z) -> +path(X, Z).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a,Y=b,Z=c", "X=b,Y=c,Z=d"}));
}

TEST_F(MatcherTest, RepeatedVariableWithinLiteral) {
  Database db = MustDb("q(a, a). q(a, b). q(b, b).");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, X) -> -q(X, X).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a", "X=b"}));
}

TEST_F(MatcherTest, ConstantsFilter) {
  Database db = MustDb("q(a, a). q(b, a). q(b, c).");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, a) -> -q(X, a).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a", "X=b"}));
}

TEST_F(MatcherTest, NegationFiltersBindings) {
  Database db = MustDb("emp(a). emp(b). active(a).");
  IInterpretation interp(&db);
  Rule rule = MustRule("emp(X), !active(X) -> -emp(X).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=b"}));
}

TEST_F(MatcherTest, NegationFirstInSourceOrderStillWorks) {
  Database db = MustDb("emp(a). emp(b). active(a).");
  IInterpretation interp(&db);
  // The planner must reorder: !active(X) cannot generate bindings.
  Rule rule = MustRule("!active(X), emp(X) -> -emp(X).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=b"}));
}

TEST_F(MatcherTest, PositiveSeesBaseAndPlusWithoutDuplicates) {
  Database db = MustDb("p(a).");
  IInterpretation interp(&db);
  RuleGrounding g(0, Tuple{});
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("p(a)", symbols_).value(), g);  // dup
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("p(b)", symbols_).value(), g);
  Rule rule = MustRule("p(X) -> +q(X).");
  EXPECT_EQ(Matches(rule, interp),
            (std::vector<std::string>{"X=a", "X=b"}));
}

TEST_F(MatcherTest, MinusMarkDoesNotHidePositive) {
  Database db = MustDb("p(a).");
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kDelete,
                   ParseGroundAtom("p(a)", symbols_).value(),
                   RuleGrounding(0, Tuple{}));
  Rule rule = MustRule("p(X) -> +q(X).");
  // Pending deletion: p(a) still valid positively (paper §4.2).
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=a"}));
}

TEST_F(MatcherTest, EventInsertMatchesOnlyPlus) {
  Database db = MustDb("r(a).");
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kInsert,
                   ParseGroundAtom("r(b)", symbols_).value(),
                   RuleGrounding(0, Tuple{}));
  Rule rule = MustRule("+r(X) -> -s(X).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=b"}));
}

TEST_F(MatcherTest, EventDeleteMatchesOnlyMinus) {
  Database db = MustDb("r(a). r(b).");
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kDelete,
                   ParseGroundAtom("r(b)", symbols_).value(),
                   RuleGrounding(0, Tuple{}));
  Rule rule = MustRule("-r(X) -> +log(X).");
  EXPECT_EQ(Matches(rule, interp), (std::vector<std::string>{"X=b"}));
}

TEST_F(MatcherTest, CartesianProduct) {
  Database db = MustDb("p(a). p(b). p(c).");
  IInterpretation interp(&db);
  Rule rule = MustRule("p(X), p(Y) -> +q(X, Y).");
  EXPECT_EQ(Matches(rule, interp).size(), 9u);
}

TEST_F(MatcherTest, AnonymousVariablesEnumerate) {
  Database db = MustDb("q(a, b). q(a, c). q(d, e).");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, _) -> +seen(X).");
  // One match per tuple (the anonymous column is unconstrained).
  EXPECT_EQ(Matches(rule, interp).size(), 3u);
}

TEST_F(MatcherTest, PlanPutsGroundFilterFirst) {
  Rule rule = MustRule("p(X), q(a), r(X) -> +s(X).");
  std::vector<int> order = PlanBodyOrder(rule);
  // q(a) is fully bound from the start: scheduled first.
  EXPECT_EQ(order[0], 1);
}

TEST_F(MatcherTest, PlanDefersNegationUntilBound) {
  Rule rule = MustRule("!q(X), p(X) -> +s(X).");
  std::vector<int> order = PlanBodyOrder(rule);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // p(X) binds X
  EXPECT_EQ(order[1], 0);  // then the negation filters
}

TEST_F(MatcherTest, PlanPrefersMoreBoundLiterals) {
  // After edge(X, Y) binds X and Y, edge(Y, Z) has one bound position
  // while edge(W, V) has none: the planner must pick edge(Y, Z) next.
  Rule rule = MustRule("edge(X, Y), edge(W, V), edge(Y, Z) -> +t(X, Z, W, V).");
  std::vector<int> order = PlanBodyOrder(rule);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST_F(MatcherTest, NoMatchesOnEmptyRelation) {
  Database db = MustDb("");
  IInterpretation interp(&db);
  Rule rule = MustRule("p(X) -> +q(X).");
  EXPECT_TRUE(Matches(rule, interp).empty());
}

/// Seeded enumeration helper for the semi-naive tests below.
std::vector<std::string> SeededMatches(const Rule& rule,
                                       const IInterpretation& interp,
                                       int seed_index,
                                       const GroundAtom& seed_atom,
                                       const SymbolTable& symbols) {
  std::vector<std::string> out;
  ForEachBodyMatchSeeded(rule, interp, seed_index, seed_atom,
                         [&](const Tuple& binding) {
                           std::string s;
                           for (int i = 0; i < binding.arity(); ++i) {
                             if (i > 0) s += ",";
                             s += binding[i].ToString(symbols);
                           }
                           out.push_back(s);
                         });
  std::sort(out.begin(), out.end());
  return out;
}

TEST_F(MatcherTest, SeededMatchBindsTheSeedLiteral) {
  Database db = MustDb("edge(a, b). edge(b, c). edge(c, d).");
  IInterpretation interp(&db);
  Rule rule = MustRule("edge(X, Y), edge(Y, Z) -> +path(X, Z).");
  // Seed literal 0 with edge(b, c): only X=b, Y=c completions.
  auto seed = ParseGroundAtom("edge(b, c)", symbols_).value();
  EXPECT_EQ(SeededMatches(rule, interp, 0, seed, *symbols_),
            (std::vector<std::string>{"b,c,d"}));
  // Seed literal 1 with the same atom: Y=b, Z=c, completions over X.
  EXPECT_EQ(SeededMatches(rule, interp, 1, seed, *symbols_),
            (std::vector<std::string>{"a,b,c"}));
}

TEST_F(MatcherTest, SeededMatchRejectsConstantMismatch) {
  Database db = MustDb("q(a, a). p(a).");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, a), p(X) -> +r(X).");
  // Seed atom disagrees with the literal's constant second position.
  auto wrong = ParseGroundAtom("q(a, b)", symbols_).value();
  EXPECT_TRUE(SeededMatches(rule, interp, 0, wrong, *symbols_).empty());
  auto right = ParseGroundAtom("q(a, a)", symbols_).value();
  EXPECT_EQ(SeededMatches(rule, interp, 0, right, *symbols_),
            (std::vector<std::string>{"a"}));
}

TEST_F(MatcherTest, SeededMatchRejectsRepeatedVariableMismatch) {
  Database db = MustDb("");
  IInterpretation interp(&db);
  Rule rule = MustRule("q(X, X) -> -q(X, X).");
  auto mismatched = ParseGroundAtom("q(a, b)", symbols_).value();
  EXPECT_TRUE(SeededMatches(rule, interp, 0, mismatched, *symbols_).empty());
  auto matched = ParseGroundAtom("q(c, c)", symbols_).value();
  EXPECT_EQ(SeededMatches(rule, interp, 0, matched, *symbols_),
            (std::vector<std::string>{"c"}));
}

TEST_F(MatcherTest, SeededMatchOnNegatedLiteral) {
  // Semi-naive seeds a negated literal with a new `-` mark: the binding
  // comes from the deleted atom and the rest of the body filters.
  Database db = MustDb("emp(a). emp(b). active(a). active(b).");
  IInterpretation interp(&db);
  interp.AddMarked(ActionKind::kDelete,
                   ParseGroundAtom("active(b)", symbols_).value(),
                   RuleGrounding(0, Tuple{}));
  Rule rule = MustRule("emp(X), !active(X) -> -emp(X).");
  auto seed = ParseGroundAtom("active(b)", symbols_).value();
  EXPECT_EQ(SeededMatches(rule, interp, 1, seed, *symbols_),
            (std::vector<std::string>{"b"}));
}

}  // namespace
}  // namespace park
