#include "util/string_util.h"

#include <gtest/gtest.h>

namespace park {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFields) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(SplitJoinTest, RoundTrip) {
  std::string text = "p(a)|q(b)|r(c)";
  EXPECT_EQ(Join(Split(text, '|'), "|"), text);
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\nx y\r "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nothing"), "nothing");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("payroll", "pay"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("pay", "payroll"));
  EXPECT_FALSE(StartsWith("abc", "b"));
}

TEST(ParseInt64Test, Valid) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("-17"), -17);
  EXPECT_EQ(ParseInt64("9223372036854775807"), 9223372036854775807LL);
}

TEST(ParseInt64Test, Invalid) {
  EXPECT_EQ(ParseInt64(""), std::nullopt);
  EXPECT_EQ(ParseInt64("12x"), std::nullopt);
  EXPECT_EQ(ParseInt64("x12"), std::nullopt);
  EXPECT_EQ(ParseInt64("99999999999999999999999"), std::nullopt);
}

TEST(StrFormatTest, Basic) {
  EXPECT_EQ(StrFormat("%d:%s", 7, "x"), "7:x");
  EXPECT_EQ(StrFormat("%.2f", 0.5), "0.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(FormatWithSeparatorsTest, Basic) {
  EXPECT_EQ(FormatWithSeparators(0), "0");
  EXPECT_EQ(FormatWithSeparators(999), "999");
  EXPECT_EQ(FormatWithSeparators(1000), "1_000");
  EXPECT_EQ(FormatWithSeparators(1234567), "1_234_567");
  EXPECT_EQ(FormatWithSeparators(-1234), "-1_234");
}

}  // namespace
}  // namespace park
