// The park-stats-v1 contract: everything under "counters" is a property
// of the computation, not of the machine — identical whatever
// num_threads or min_slice_size is set to. Only the "parallel" and
// "timings" sections may differ between configurations. This is the
// machine-checked form of the schema's invariance promise
// (docs/OBSERVABILITY.md), on top of the bit-identical-database oracle
// in parallel_oracle_test.

#include <gtest/gtest.h>

#include <string>

#include "core/park_evaluator.h"
#include "workload/graph_gen.h"
#include "workload/kilorule_gen.h"

namespace park {
namespace {

/// The "counters" object of a park-stats-v1 document (emission order is
/// fixed: counters, parallel, planner, scheduler, then timings last).
std::string CountersSection(const std::string& json) {
  size_t begin = json.find("\"counters\"");
  size_t end = json.find("\"parallel\"");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  return json.substr(begin, end - begin);
}

/// The "planner" object — thread- AND schedule-invariant: the scheduler
/// prunes rules the affectedness scan would have skipped anyway, so plan
/// fetches, replans, and row estimates must not see it.
std::string PlannerSection(const std::string& json) {
  size_t begin = json.find("\"planner\"");
  size_t end = json.find("\"scheduler\"");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  return json.substr(begin, end - begin);
}

TEST(StatsInvarianceTest, CountersIdenticalAcrossThreadCounts) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom,
                                             /*num_nodes=*/64,
                                             /*num_edges=*/256, /*seed=*/7);
  for (GammaMode mode : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                         GammaMode::kSemiNaive}) {
    ParkOptions sequential;
    sequential.gamma_mode = mode;
    sequential.num_threads = 1;
    sequential.collect_timings = true;
    auto ref = Park(w.program, w.database, sequential);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    const std::string ref_counters = CountersSection(ref->stats.ToJson());

    ParkOptions parallel = sequential;
    parallel.num_threads = 4;
    parallel.min_slice_size = 16;  // force slicing into the picture
    auto par = Park(w.program, w.database, parallel);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    const std::string json = par->stats.ToJson();

    EXPECT_EQ(CountersSection(json), ref_counters)
        << "gamma mode " << static_cast<int>(mode)
        << ": counters must not depend on the thread count";
    // The parallel section, by contrast, must reflect the configuration.
    EXPECT_EQ(par->stats.num_threads, 4u);
    EXPECT_GT(par->stats.parallel_sections, 0u);
    EXPECT_NE(json.find("\"num_threads\": 4"), std::string::npos);
  }
}

TEST(StatsInvarianceTest, FieldLevelCountersMatchToo) {
  // Belt and braces for the JSON comparison above: the underlying struct
  // fields agree one by one, so a future ToJson refactor cannot silently
  // weaken the check.
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kPath,
                                             /*num_nodes=*/48,
                                             /*num_edges=*/47, /*seed=*/3);
  ParkOptions a;
  a.num_threads = 1;
  ParkOptions b;
  b.num_threads = 4;
  auto ra = Park(w.program, w.database, a);
  auto rb = Park(w.program, w.database, b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->stats.gamma_steps, rb->stats.gamma_steps);
  EXPECT_EQ(ra->stats.restarts, rb->stats.restarts);
  EXPECT_EQ(ra->stats.conflicts_resolved, rb->stats.conflicts_resolved);
  EXPECT_EQ(ra->stats.blocked_instances, rb->stats.blocked_instances);
  EXPECT_EQ(ra->stats.derived_marks, rb->stats.derived_marks);
  EXPECT_EQ(ra->stats.policy_invocations, rb->stats.policy_invocations);
  EXPECT_EQ(ra->stats.rule_evaluations, rb->stats.rule_evaluations);
}

TEST(StatsInvarianceTest, PlannerCountersInvariantAcrossScheduler) {
  // The drift-envelope replan statistics (and every other planner
  // counter) must not count scheduler-pruned rules: a pruned rule is one
  // the scan path would not have evaluated either, so the plan cache
  // sees the same Get/compile/replan sequence whether the watcher index
  // or the per-step scan selected the work — at any thread count.
  Workload w = MakeKiloruleWorkload(/*chains=*/4, /*levels=*/12,
                                    /*facts=*/2);
  for (GammaMode mode :
       {GammaMode::kDeltaFiltered, GammaMode::kSemiNaive}) {
    ParkOptions reference;
    reference.gamma_mode = mode;
    reference.scheduler_mode = SchedulerMode::kOff;
    reference.num_threads = 1;
    auto ref = Park(w.program, w.database, reference);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    const std::string ref_json = ref->stats.ToJson();
    const std::string ref_planner = PlannerSection(ref_json);
    const std::string ref_counters = CountersSection(ref_json);

    for (int threads : {1, 4}) {
      ParkOptions scheduled = reference;
      scheduled.scheduler_mode = SchedulerMode::kDependency;
      scheduled.num_threads = threads;
      auto run = Park(w.program, w.database, scheduled);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      const std::string json = run->stats.ToJson();
      EXPECT_EQ(PlannerSection(json), ref_planner)
          << "gamma mode " << static_cast<int>(mode) << " at " << threads
          << " thread(s): planner counters must not see the scheduler";
      EXPECT_EQ(CountersSection(json), ref_counters);
      EXPECT_EQ(run->stats.plans_compiled, ref->stats.plans_compiled);
      EXPECT_EQ(run->stats.plan_cache_hits, ref->stats.plan_cache_hits);
      EXPECT_EQ(run->stats.plan_replans, ref->stats.plan_replans);
      EXPECT_EQ(run->stats.planner_estimated_rows,
                ref->stats.planner_estimated_rows);
      EXPECT_EQ(run->stats.planner_actual_rows,
                ref->stats.planner_actual_rows);
    }
  }
}

TEST(StatsInvarianceTest, SchedulerCountersInvariantAcrossThreads) {
  // The scheduler block itself reflects the schedule, not the machine:
  // considered/skipped/strata/pipeline_stages agree at 1 and 4 threads.
  Workload w = MakeKiloruleWorkload(/*chains=*/4, /*levels=*/8,
                                    /*facts=*/2);
  ParkOptions a;
  a.num_threads = 1;
  ParkOptions b;
  b.num_threads = 4;
  auto ra = Park(w.program, w.database, a);
  auto rb = Park(w.program, w.database, b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->stats.sched_rules_considered,
            rb->stats.sched_rules_considered);
  EXPECT_EQ(ra->stats.sched_rules_skipped, rb->stats.sched_rules_skipped);
  EXPECT_EQ(ra->stats.sched_strata, rb->stats.sched_strata);
  EXPECT_EQ(ra->stats.sched_pipeline_stages,
            rb->stats.sched_pipeline_stages);
}

TEST(StatsInvarianceTest, TimingsAbsentUnlessRequested) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kPath,
                                             /*num_nodes=*/16,
                                             /*num_edges=*/15, /*seed=*/1);
  auto result = Park(w.program, w.database, ParkOptions());
  ASSERT_TRUE(result.ok());
  // collect_timings defaults off: no clock was read, the JSON says so.
  EXPECT_FALSE(result->stats.timings.collected);
  EXPECT_EQ(result->stats.timings.total_ns, 0u);
  EXPECT_NE(result->stats.ToJson().find("\"collected\": false"),
            std::string::npos);
}

TEST(StatsInvarianceTest, ToJsonCarriesSchemaTag) {
  ParkStats stats;
  std::string json = stats.ToJson();
  EXPECT_EQ(json.find("{\n  \"schema\": \"park-stats-v1\""), 0u);
}

TEST(StatsInvarianceTest, ToJsonCarriesServingBlock) {
  // The serving block renders even for non-served runs (all zeros), so
  // every park-stats-v1 document has the same shape; the histogram
  // buckets follow RecordBatch's 1/2/3-4/5-8/9-16/17+ split.
  ParkStats stats;
  stats.serving.RecordBatch(1);
  stats.serving.RecordBatch(2);
  stats.serving.RecordBatch(7);
  stats.serving.RecordBatch(40);
  EXPECT_EQ(stats.serving.batches, 4u);
  EXPECT_EQ(stats.serving.batched_txns, 50u);
  EXPECT_EQ(stats.serving.max_batch_size, 40u);
  EXPECT_EQ(stats.serving.batch_size_hist[0], 1u);
  EXPECT_EQ(stats.serving.batch_size_hist[1], 1u);
  EXPECT_EQ(stats.serving.batch_size_hist[3], 1u);
  EXPECT_EQ(stats.serving.batch_size_hist[5], 1u);
  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"serving\": {"), std::string::npos);
  EXPECT_NE(json.find("\"batch_size_hist\": ["), std::string::npos);
  EXPECT_NE(json.find("\"snapshots_pinned\": 0"), std::string::npos);
}

}  // namespace
}  // namespace park
