// The park-stats-v1 contract: everything under "counters" is a property
// of the computation, not of the machine — identical whatever
// num_threads or min_slice_size is set to. Only the "parallel" and
// "timings" sections may differ between configurations. This is the
// machine-checked form of the schema's invariance promise
// (docs/OBSERVABILITY.md), on top of the bit-identical-database oracle
// in parallel_oracle_test.

#include <gtest/gtest.h>

#include <string>

#include "core/park_evaluator.h"
#include "workload/graph_gen.h"

namespace park {
namespace {

/// The "counters" object of a park-stats-v1 document (emission order is
/// fixed: counters, then parallel, then timings).
std::string CountersSection(const std::string& json) {
  size_t begin = json.find("\"counters\"");
  size_t end = json.find("\"parallel\"");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  return json.substr(begin, end - begin);
}

TEST(StatsInvarianceTest, CountersIdenticalAcrossThreadCounts) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom,
                                             /*num_nodes=*/64,
                                             /*num_edges=*/256, /*seed=*/7);
  for (GammaMode mode : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                         GammaMode::kSemiNaive}) {
    ParkOptions sequential;
    sequential.gamma_mode = mode;
    sequential.num_threads = 1;
    sequential.collect_timings = true;
    auto ref = Park(w.program, w.database, sequential);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    const std::string ref_counters = CountersSection(ref->stats.ToJson());

    ParkOptions parallel = sequential;
    parallel.num_threads = 4;
    parallel.min_slice_size = 16;  // force slicing into the picture
    auto par = Park(w.program, w.database, parallel);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    const std::string json = par->stats.ToJson();

    EXPECT_EQ(CountersSection(json), ref_counters)
        << "gamma mode " << static_cast<int>(mode)
        << ": counters must not depend on the thread count";
    // The parallel section, by contrast, must reflect the configuration.
    EXPECT_EQ(par->stats.num_threads, 4u);
    EXPECT_GT(par->stats.parallel_sections, 0u);
    EXPECT_NE(json.find("\"num_threads\": 4"), std::string::npos);
  }
}

TEST(StatsInvarianceTest, FieldLevelCountersMatchToo) {
  // Belt and braces for the JSON comparison above: the underlying struct
  // fields agree one by one, so a future ToJson refactor cannot silently
  // weaken the check.
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kPath,
                                             /*num_nodes=*/48,
                                             /*num_edges=*/47, /*seed=*/3);
  ParkOptions a;
  a.num_threads = 1;
  ParkOptions b;
  b.num_threads = 4;
  auto ra = Park(w.program, w.database, a);
  auto rb = Park(w.program, w.database, b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->stats.gamma_steps, rb->stats.gamma_steps);
  EXPECT_EQ(ra->stats.restarts, rb->stats.restarts);
  EXPECT_EQ(ra->stats.conflicts_resolved, rb->stats.conflicts_resolved);
  EXPECT_EQ(ra->stats.blocked_instances, rb->stats.blocked_instances);
  EXPECT_EQ(ra->stats.derived_marks, rb->stats.derived_marks);
  EXPECT_EQ(ra->stats.policy_invocations, rb->stats.policy_invocations);
  EXPECT_EQ(ra->stats.rule_evaluations, rb->stats.rule_evaluations);
}

TEST(StatsInvarianceTest, TimingsAbsentUnlessRequested) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kPath,
                                             /*num_nodes=*/16,
                                             /*num_edges=*/15, /*seed=*/1);
  auto result = Park(w.program, w.database, ParkOptions());
  ASSERT_TRUE(result.ok());
  // collect_timings defaults off: no clock was read, the JSON says so.
  EXPECT_FALSE(result->stats.timings.collected);
  EXPECT_EQ(result->stats.timings.total_ns, 0u);
  EXPECT_NE(result->stats.ToJson().find("\"collected\": false"),
            std::string::npos);
}

TEST(StatsInvarianceTest, ToJsonCarriesSchemaTag) {
  ParkStats stats;
  std::string json = stats.ToJson();
  EXPECT_EQ(json.find("{\n  \"schema\": \"park-stats-v1\""), 0u);
}

}  // namespace
}  // namespace park
