// Property-based suites: randomized programs checked against the
// requirements of §3 (unambiguous semantics, termination/tractability) and
// Theorem 4.1 (Δ is growing on bi-structures; ω is a fixpoint).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/bistructure.h"
#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/conflict_gen.h"
#include "workload/graph_gen.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

/// Builds a random propositional active-rule program over `num_atoms`
/// atoms with `num_rules` rules; bodies mix positive and negated literals,
/// heads are random ±atom. Deterministic in `seed`.
struct RandomScenario {
  std::string program_text;
  std::string facts_text;
};

RandomScenario MakeRandomScenario(uint64_t seed, int num_atoms,
                                  int num_rules) {
  Rng rng(seed);
  RandomScenario scenario;
  auto atom_name = [](int i) { return "a" + std::to_string(i); };
  for (int i = 0; i < num_atoms; ++i) {
    if (rng.Bernoulli(0.4)) {
      scenario.facts_text += atom_name(i) + ". ";
    }
  }
  for (int r = 0; r < num_rules; ++r) {
    int body_len = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<std::string> body;
    for (int b = 0; b < body_len; ++b) {
      std::string lit = atom_name(
          static_cast<int>(rng.UniformInt(0, num_atoms - 1)));
      if (rng.Bernoulli(0.25)) lit = "!" + lit;
      body.push_back(lit);
    }
    const char* sign = rng.Bernoulli(0.5) ? "+" : "-";
    scenario.program_text +=
        Join(body, ", ") + " -> " + sign +
        atom_name(static_cast<int>(rng.UniformInt(0, num_atoms - 1))) +
        ".\n";
  }
  return scenario;
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, TerminatesAndIsDeterministic) {
  RandomScenario scenario = MakeRandomScenario(GetParam(), 12, 24);
  auto run = [&]() -> std::string {
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(scenario.program_text, symbols);
    Database db = MustParseDatabase(scenario.facts_text, symbols);
    auto result = Park(program, db);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->database.ToString() : "<error>";
  };
  std::string first = run();
  // Requirement "Unambiguous Semantics": re-evaluation yields the same
  // unique database state.
  EXPECT_EQ(run(), first);
  EXPECT_EQ(run(), first);
}

TEST_P(RandomProgramTest, InertiaResultIsRuleOrderIndependent) {
  RandomScenario scenario = MakeRandomScenario(GetParam(), 10, 18);
  // Shuffle the rule lines; under inertia (which never looks at rule
  // identity) the PARK result must not change.
  std::vector<std::string> lines = Split(scenario.program_text, '\n');
  lines.erase(std::remove(lines.begin(), lines.end(), std::string()),
              lines.end());
  auto run = [&](const std::vector<std::string>& rule_lines) {
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(Join(rule_lines, "\n"), symbols);
    Database db = MustParseDatabase(scenario.facts_text, symbols);
    auto result = Park(program, db);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->database.ToString() : "<error>";
  };
  std::string baseline = run(lines);
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::string> shuffled = lines;
    rng.Shuffle(shuffled);
    EXPECT_EQ(run(shuffled), baseline);
  }
}

TEST_P(RandomProgramTest, StatsRespectTractabilityBounds) {
  RandomScenario scenario = MakeRandomScenario(GetParam() * 31 + 7, 10, 20);
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(scenario.program_text, symbols);
  Database db = MustParseDatabase(scenario.facts_text, symbols);
  auto result = Park(program, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Propositional: each rule has exactly one grounding, so the number of
  // resolution rounds is bounded by |P| (the paper's termination
  // argument) and the blocked set by |P| as well.
  EXPECT_LE(result->stats.restarts, program.size());
  EXPECT_LE(result->stats.blocked_instances, program.size());
  // Each inflationary round adds ≥1 mark out of ≤ 2*num_atoms possible.
  EXPECT_LE(result->stats.gamma_steps,
            (program.size() + 1) * 2 * 12);
}

TEST_P(RandomProgramTest, ResultAtomsComeFromDOrInsertHeads) {
  RandomScenario scenario = MakeRandomScenario(GetParam() * 97 + 5, 10, 20);
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(scenario.program_text, symbols);
  Database db = MustParseDatabase(scenario.facts_text, symbols);
  auto result = Park(program, db);
  ASSERT_TRUE(result.ok());
  std::unordered_set<PredicateId> insertable;
  for (const Rule& rule : program.rules()) {
    if (rule.head().action == ActionKind::kInsert) {
      insertable.insert(rule.head().atom.predicate);
    }
  }
  result->database.ForEach([&](const GroundAtom& atom) {
    EXPECT_TRUE(db.Contains(atom) || insertable.contains(atom.predicate()))
        << atom.ToString(*symbols) << " appeared from nowhere";
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 13));

// --- Theorem 4.1: Δ is growing; ω(A) is a fixpoint of Δ ---

/// A manual Δ loop mirroring the evaluator, snapshotting every
/// bi-structure it passes through.
class DeltaHarness {
 public:
  DeltaHarness(const Program& program, const Database& db, PolicyPtr policy)
      : program_(program), db_(db), policy_(std::move(policy)),
        interp_(&db_) {}

  /// Applies Δ once; returns false when a fixpoint is reached.
  bool Step() {
    GammaResult gamma = ComputeGamma(program_, blocked_, interp_);
    if (gamma.consistent) {
      if (gamma.newly_marked == 0) return false;
      ApplyDerivations(gamma.derivations, interp_);
      return true;
    }
    std::vector<Conflict> conflicts = BuildConflicts(gamma, interp_);
    PolicyContext context{db_, program_, interp_, 0};
    for (const Conflict& conflict : conflicts) {
      Vote vote = policy_->Select(context, conflict).value();
      const auto& losing =
          vote == Vote::kInsert ? conflict.deleters : conflict.inserters;
      blocked_.insert(losing.begin(), losing.end());
    }
    interp_.ClearMarks();
    return true;
  }

  BiStructureSnapshot Snapshot() const {
    return SnapshotBiStructure(blocked_, interp_, program_);
  }

 private:
  const Program& program_;
  const Database& db_;
  PolicyPtr policy_;
  BlockedSet blocked_;
  IInterpretation interp_;
};

TEST_P(RandomProgramTest, DeltaIsGrowingAndOmegaIsFixpoint) {
  RandomScenario scenario = MakeRandomScenario(GetParam() * 13 + 3, 8, 16);
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(scenario.program_text, symbols);
  Database db = MustParseDatabase(scenario.facts_text, symbols);
  DeltaHarness harness(program, db, MakeInertiaPolicy());

  BiStructureSnapshot previous = harness.Snapshot();
  int steps = 0;
  while (harness.Step()) {
    BiStructureSnapshot current = harness.Snapshot();
    // Theorem 4.1 (1): A ⊑ Δ(A).
    EXPECT_TRUE(BiStructureLeq(previous, current))
        << "Δ not growing at step " << steps << ":\n  " << previous.ToString()
        << "\n  " << current.ToString();
    previous = current;
    ASSERT_LT(++steps, 10'000) << "runaway Δ iteration";
  }
  // Theorem 4.1 (2): ω(A) is a fixpoint — one more Step() changes nothing.
  BiStructureSnapshot at_fixpoint = harness.Snapshot();
  harness.Step();
  BiStructureSnapshot after = harness.Snapshot();
  EXPECT_EQ(at_fixpoint.blocked, after.blocked);
  EXPECT_EQ(at_fixpoint.interpretation, after.interpretation);
}

// --- Conflict-free programs: PARK ≡ inflationary fixpoint (claim C4) ---

class ClosureEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ClosureEquivalenceTest, ParkEqualsInflationaryOnConflictFree) {
  auto [nodes, seed] = GetParam();
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom, nodes,
                                             nodes * 2, seed);
  auto park_result = Park(w.program, w.database);
  ASSERT_TRUE(park_result.ok()) << park_result.status().ToString();
  auto inflationary = InflationaryFixpoint(w.program, w.database);
  ASSERT_TRUE(inflationary.ok());
  EXPECT_TRUE(inflationary->consistent);
  EXPECT_TRUE(park_result->database.SameAtoms(inflationary->database));
  EXPECT_EQ(park_result->stats.restarts, 0u);
  // And the naive baseline coincides too (no conflicting pairs to cancel).
  auto naive = NaiveCancelSemantics(w.program, w.database);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->cancelled_pairs, 0u);
  EXPECT_TRUE(park_result->database.SameAtoms(naive->database));
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ClosureEquivalenceTest,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values<uint64_t>(1, 2, 3)));

// --- Conflict workloads: every conflicted pair resolved exactly once ---

class ConflictDensityTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(ConflictDensityTest, ResolutionCountsMatchWorkload) {
  auto [fraction, seed] = GetParam();
  Workload w = MakeConflictPairsWorkload(40, fraction, seed);
  ParkOptions options;
  options.trace_level = TraceLevel::kSummary;
  auto result = Park(w.program, w.database, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Count conflicted targets directly from the generated program: targets
  // with both an inserter and a deleter.
  size_t conflicted = (w.program.size() - 40);
  EXPECT_EQ(result->stats.conflicts_resolved, conflicted);
  // Inertia: every conflicted target is absent from D, so none survive;
  // every unconflicted target is inserted.
  size_t targets_present = 0;
  result->database.ForEach([&](const GroundAtom& atom) {
    if (w.symbols->PredicateName(atom.predicate()) == "t") {
      ++targets_present;
    }
  });
  EXPECT_EQ(targets_present, 40 - conflicted);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, ConflictDensityTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.5, 1.0),
                       ::testing::Values<uint64_t>(11, 22)));

}  // namespace
}  // namespace park
