// Scheduler-vs-scan oracle: the dependency scheduler (docs/SCHEDULER.md)
// is an implementation detail, never a semantic one. For every workload —
// paper examples, recursive closures, conflict generators, and the
// kilorule chains whose sparse deltas the scheduler exists for — running
// with SchedulerMode::kDependency must reproduce the kOff run exactly:
// final database, blocked set, step/restart/evaluation counters, full
// trace, and provenance, across Γ modes × exec modes × planner modes ×
// thread counts. The scheduler's watcher index replays RuleIsAffected in
// program order and the staged parallel dispatch re-merges stage buffers
// back to program order, so equality here is bit-for-bit, not just
// set-level.

#include <gtest/gtest.h>

#include "core/park_evaluator.h"
#include "test_util.h"
#include "util/string_util.h"
#include "workload/conflict_gen.h"
#include "workload/graph_gen.h"
#include "workload/kilorule_gen.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

struct RunOutcome {
  std::string database;
  std::vector<std::string> blocked;
  size_t restarts = 0;
  size_t gamma_steps = 0;
  size_t rule_evaluations = 0;
  std::vector<std::vector<std::string>> history;
  std::vector<std::string> provenance;
};

struct Config {
  GammaMode gamma = GammaMode::kDeltaFiltered;
  ExecMode exec = ExecMode::kTuple;
  PlannerMode planner = PlannerMode::kCostBased;
  int threads = 1;
  SchedulerMode scheduler = SchedulerMode::kOff;
};

RunOutcome RunConfig(const Program& program, const Database& db,
                     const Config& config, ParkStats* stats_out = nullptr) {
  ParkOptions options;
  options.gamma_mode = config.gamma;
  options.exec_mode = config.exec;
  options.planner_mode = config.planner;
  options.num_threads = config.threads;
  options.scheduler_mode = config.scheduler;
  options.trace_level = TraceLevel::kFull;
  options.record_provenance = true;
  auto result = Park(program, db, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  if (stats_out != nullptr) *stats_out = result->stats;
  RunOutcome outcome;
  outcome.database = result->database.ToString();
  outcome.blocked = result->blocked;
  outcome.restarts = result->stats.restarts;
  outcome.gamma_steps = result->stats.gamma_steps;
  outcome.rule_evaluations = result->stats.rule_evaluations;
  outcome.history = result->trace.InterpretationHistory();
  for (const AtomProvenance& p : result->provenance) {
    outcome.provenance.push_back(p.atom + " <- " +
                                 Join(p.derived_by, ", "));
  }
  return outcome;
}

const char* GammaName(GammaMode mode) {
  switch (mode) {
    case GammaMode::kNaive: return "naive";
    case GammaMode::kDeltaFiltered: return "delta-filtered";
    case GammaMode::kSemiNaive: return "semi-naive";
  }
  return "?";
}

/// The full sweep: for each fixed (Γ, exec, planner) configuration, the
/// scheduler-off sequential run is the oracle, and every scheduler ×
/// thread combination must be bit-identical to it.
void ExpectSchedulerInvisible(const Program& program, const Database& db) {
  for (GammaMode gamma : {GammaMode::kNaive, GammaMode::kDeltaFiltered,
                          GammaMode::kSemiNaive}) {
    for (ExecMode exec : {ExecMode::kTuple, ExecMode::kBatch}) {
      for (PlannerMode planner :
           {PlannerMode::kCostBased, PlannerMode::kHeuristic}) {
        SCOPED_TRACE(StrFormat("gamma=%s exec=%s planner=%s",
                               GammaName(gamma),
                               exec == ExecMode::kBatch ? "batch" : "tuple",
                               planner == PlannerMode::kHeuristic
                                   ? "heuristic"
                                   : "cost"));
        Config reference_config;
        reference_config.gamma = gamma;
        reference_config.exec = exec;
        reference_config.planner = planner;
        reference_config.threads = 1;
        reference_config.scheduler = SchedulerMode::kOff;
        RunOutcome reference = RunConfig(program, db, reference_config);
        for (SchedulerMode scheduler :
             {SchedulerMode::kOff, SchedulerMode::kDependency}) {
          for (int threads : {1, 4}) {
            if (scheduler == SchedulerMode::kOff && threads == 1) continue;
            SCOPED_TRACE(StrFormat(
                "scheduler=%s threads=%d",
                scheduler == SchedulerMode::kDependency ? "dependency"
                                                        : "off",
                threads));
            Config config = reference_config;
            config.scheduler = scheduler;
            config.threads = threads;
            RunOutcome run = RunConfig(program, db, config);
            EXPECT_EQ(reference.database, run.database);
            EXPECT_EQ(reference.blocked, run.blocked);
            EXPECT_EQ(reference.restarts, run.restarts);
            EXPECT_EQ(reference.gamma_steps, run.gamma_steps);
            EXPECT_EQ(reference.rule_evaluations, run.rule_evaluations);
            EXPECT_EQ(reference.history, run.history);
            EXPECT_EQ(reference.provenance, run.provenance);
          }
        }
      }
    }
  }
}

TEST(SchedulerOracleTest, PaperExamplesAgree) {
  const char* programs[] = {
      "r1: p -> +q. r2: p -> -a. r3: q -> +a.",
      "r1: p -> +q. r2: p -> -a. r3: q -> +a. r4: !a -> +r. r5: a -> +s.",
      "r1: p -> +q. r2: p -> -q. r3: q -> +a. r4: q -> -a. r5: p -> +a.",
      "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
      "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
  };
  const char* facts[] = {"p.", "p.", "p.", "p.", "a."};
  for (int i = 0; i < 5; ++i) {
    SCOPED_TRACE(programs[i]);
    auto symbols = MakeSymbolTable();
    Program program = MustParseProgram(programs[i], symbols);
    Database db = MustParseDatabase(facts[i], symbols);
    ExpectSchedulerInvisible(program, db);
  }
}

TEST(SchedulerOracleTest, RecursiveClosureAgrees) {
  Workload w =
      MakeTransitiveClosureWorkload(GraphShape::kRandom, 14, 40, 3);
  ExpectSchedulerInvisible(w.program, w.database);
}

TEST(SchedulerOracleTest, ConflictWorkloadsAgree) {
  // Conflicts force restarts and the conflict-resolution Γ recompute,
  // both of which reuse the scheduler's watcher index.
  for (double fraction : {0.3, 1.0}) {
    SCOPED_TRACE(fraction);
    Workload w = MakeConflictPairsWorkload(18, fraction, 77);
    ExpectSchedulerInvisible(w.program, w.database);
  }
}

TEST(SchedulerOracleTest, KiloruleAgrees) {
  // The workload the scheduler exists for: long chains, sparse per-step
  // deltas, a deliberate SCC at the tail. Small enough for the full
  // 48-configuration sweep.
  Workload w = MakeKiloruleWorkload(/*chains=*/4, /*levels=*/8,
                                    /*facts=*/2);
  ExpectSchedulerInvisible(w.program, w.database);
}

TEST(SchedulerOracleTest, KiloruleCountersShowSkips) {
  Workload w = MakeKiloruleWorkload(/*chains=*/4, /*levels=*/16,
                                    /*facts=*/2);
  ParkStats scheduled;
  Config on;
  on.scheduler = SchedulerMode::kDependency;
  RunConfig(w.program, w.database, on, &scheduled);
  // One stratum per chain level plus the cyclic tail component.
  EXPECT_GE(scheduled.sched_strata, 16u);
  EXPECT_GT(scheduled.sched_rules_skipped, 0u);
  // The watcher index must consider strictly fewer rules than the
  // unscheduled per-step scan over the whole program.
  ParkStats scanned;
  Config off;
  off.scheduler = SchedulerMode::kOff;
  RunConfig(w.program, w.database, off, &scanned);
  EXPECT_LT(scheduled.sched_rules_considered,
            scanned.sched_rules_considered);
  // Identical work where it counts: both evaluate the same rule bodies.
  EXPECT_EQ(scheduled.rule_evaluations, scanned.rule_evaluations);
}

TEST(SchedulerOracleTest, NaiveModeIgnoresTheScheduler) {
  // Naive Γ re-derives everything every step by definition; there is no
  // delta to schedule from, so the graph is not even built.
  Workload w = MakeKiloruleWorkload(/*chains=*/2, /*levels=*/4,
                                    /*facts=*/1);
  ParkStats stats;
  Config config;
  config.gamma = GammaMode::kNaive;
  config.scheduler = SchedulerMode::kDependency;
  RunConfig(w.program, w.database, config, &stats);
  EXPECT_EQ(stats.sched_strata, 0u);
  EXPECT_EQ(stats.sched_pipeline_stages, 0u);
}

TEST(SchedulerOracleTest, StagedDispatchReportsStages) {
  // With >= 2 threads and a scheduled step whose affected rules span
  // several strata, the staged dispatch must surface in the stats — and
  // the count is a property of the schedule, not the thread count.
  Workload w = MakeKiloruleWorkload(/*chains=*/4, /*levels=*/8,
                                    /*facts=*/2);
  ParkStats at2;
  ParkStats at4;
  Config config;
  config.scheduler = SchedulerMode::kDependency;
  config.threads = 2;
  RunConfig(w.program, w.database, config, &at2);
  config.threads = 4;
  RunConfig(w.program, w.database, config, &at4);
  EXPECT_GT(at2.sched_pipeline_stages, 0u);
  EXPECT_EQ(at2.sched_pipeline_stages, at4.sched_pipeline_stages);
  ParkStats at1;
  config.threads = 1;
  RunConfig(w.program, w.database, config, &at1);
  EXPECT_EQ(at1.sched_pipeline_stages, at2.sched_pipeline_stages);
}

}  // namespace
}  // namespace park
