#include "lang/printer.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace park {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  PrinterTest() : symbols_(MakeSymbolTable()) {}

  std::string RoundTrip(std::string_view text) {
    auto rule = ParseRule(text, symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    if (!rule.ok()) return "";
    return RuleToString(*rule, *symbols_);
  }

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(PrinterTest, CanonicalForms) {
  EXPECT_EQ(RoundTrip("p->+q."), "p -> +q.");
  EXPECT_EQ(RoundTrip("r1: p(X),!q(X)->-r(X)."),
            "r1: p(X), !q(X) -> -r(X).");
  EXPECT_EQ(RoundTrip("+e(X) , s(X)-> -t(X)."), "+e(X), s(X) -> -t(X).");
  EXPECT_EQ(RoundTrip("->+q(b)."), "-> +q(b).");
  EXPECT_EQ(RoundTrip("lab [prio=3]: p -> +q."), "lab [prio=3]: p -> +q.");
  EXPECT_EQ(RoundTrip("[prio=2] p -> +q."), "[prio=2] p -> +q.");
  EXPECT_EQ(RoundTrip("lab [prio=3, src=1]: p -> +q."),
            "lab [prio=3, src=1]: p -> +q.");
  EXPECT_EQ(RoundTrip("[src=7] p -> +q."), "[src=7] p -> +q.");
}

TEST_F(PrinterTest, TermRendering) {
  EXPECT_EQ(RoundTrip("p(alice, X, 42, -1, \"s\") -> +q(X)."),
            "p(alice, X, 42, -1, \"s\") -> +q(X).");
}

TEST_F(PrinterTest, NotKeywordNormalizesToBang) {
  EXPECT_EQ(RoundTrip("p(X), not q(X) -> +r(X)."),
            "p(X), !q(X) -> +r(X).");
}

TEST_F(PrinterTest, PrintedRuleReparsesIdentically) {
  // Round-trip property: parse -> print -> parse -> print is a fixpoint.
  const char* samples[] = {
      "p -> +q.",
      "r1: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).",
      "r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).",
      "+r(X), s(X) -> -s(X).",
      "lab [prio=-7]: p(1, \"x\") -> +q(1).",
      "-> -gone(a).",
  };
  for (const char* sample : samples) {
    std::string once = RoundTrip(sample);
    std::string twice = RoundTrip(once);
    EXPECT_EQ(once, twice) << "sample: " << sample;
  }
}

TEST_F(PrinterTest, ProgramToString) {
  auto program = ParseProgram("a -> +b. r: b -> -a.", symbols_);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(ProgramToString(*program), "a -> +b.\nr: b -> -a.\n");
}

TEST_F(PrinterTest, AnonymousVariablePrinting) {
  // Each `_` prints back as `_` (still parseable, stays anonymous).
  std::string printed = RoundTrip("p(_, X) -> +q(X).");
  EXPECT_EQ(printed, "p(_, X) -> +q(X).");
  EXPECT_EQ(RoundTrip(printed), printed);
}

}  // namespace
}  // namespace park
