// Workload generators: shapes, determinism, and that every generated
// workload actually evaluates under PARK.

#include "workload/conflict_gen.h"
#include "workload/graph_gen.h"
#include "workload/payroll_gen.h"

#include <gtest/gtest.h>

namespace park {
namespace {

size_t CountPredicate(const Workload& w, const Database& db,
                      std::string_view name) {
  size_t count = 0;
  db.ForEach([&](const GroundAtom& atom) {
    if (w.symbols->PredicateName(atom.predicate()) == name) ++count;
  });
  return count;
}

TEST(GraphGenTest, PathClosureSize) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kPath, 10, 0, 1);
  EXPECT_EQ(w.database.size(), 9u);  // 9 edges
  auto result = Park(w.program, w.database);
  ASSERT_TRUE(result.ok());
  // Closure of a 10-node path: 9+8+...+1 = 45 paths.
  EXPECT_EQ(CountPredicate(w, result->database, "path"), 45u);
  EXPECT_EQ(result->stats.restarts, 0u);
}

TEST(GraphGenTest, CycleClosureIsComplete) {
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kCycle, 6, 0, 1);
  EXPECT_EQ(w.database.size(), 6u);
  auto result = Park(w.program, w.database);
  ASSERT_TRUE(result.ok());
  // Every ordered pair (including self) is reachable on a cycle: 36.
  EXPECT_EQ(CountPredicate(w, result->database, "path"), 36u);
}

TEST(GraphGenTest, RandomGraphDeterministicInSeed) {
  Workload a = MakeTransitiveClosureWorkload(GraphShape::kRandom, 12, 20, 5);
  Workload b = MakeTransitiveClosureWorkload(GraphShape::kRandom, 12, 20, 5);
  EXPECT_EQ(a.database.size(), 20u);
  EXPECT_EQ(a.database.ToString(), b.database.ToString());
  Workload c = MakeTransitiveClosureWorkload(GraphShape::kRandom, 12, 20, 6);
  EXPECT_NE(a.database.ToString(), c.database.ToString());
}

TEST(GraphGenTest, IrreflexiveWorkloadMatchesPaperShape) {
  Workload w = MakeIrreflexiveGraphWorkload(3);
  EXPECT_EQ(w.database.size(), 3u);
  EXPECT_EQ(w.program.size(), 3u);
  ParkOptions options;
  options.policy = MakeIrreflexiveGraphPolicy();
  auto result = Park(w.program, w.database, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Nodes 0,1,2 ~ a,b,c: adjacent arcs survive, |0-2| = 2 arcs dropped.
  EXPECT_EQ(CountPredicate(w, result->database, "q"), 4u);
}

TEST(GraphGenTest, IrreflexiveWorkloadScalesAndTerminates) {
  for (int n : {4, 6}) {
    Workload w = MakeIrreflexiveGraphWorkload(n);
    ParkOptions options;
    options.policy = MakeIrreflexiveGraphPolicy();
    auto result = Park(w.program, w.database, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // No self-loops survive.
    result->database.ForEach([&](const GroundAtom& atom) {
      if (w.symbols->PredicateName(atom.predicate()) == "q") {
        EXPECT_NE(atom.args()[0], atom.args()[1]);
      }
    });
  }
}

TEST(ConflictGenTest, PairCountsAndDeterminism) {
  Workload w = MakeConflictPairsWorkload(30, 0.5, 9);
  EXPECT_EQ(w.database.size(), 30u);
  EXPECT_GE(w.program.size(), 30u);
  EXPECT_LE(w.program.size(), 60u);
  Workload again = MakeConflictPairsWorkload(30, 0.5, 9);
  EXPECT_EQ(w.program.size(), again.program.size());
}

TEST(ConflictGenTest, ZeroFractionIsConflictFree) {
  Workload w = MakeConflictPairsWorkload(20, 0.0, 1);
  EXPECT_EQ(w.program.size(), 20u);
  auto result = Park(w.program, w.database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.restarts, 0u);
  EXPECT_EQ(CountPredicate(w, result->database, "t"), 20u);
}

TEST(ConflictGenTest, FullFractionAllConflicted) {
  Workload w = MakeConflictPairsWorkload(20, 1.0, 1);
  EXPECT_EQ(w.program.size(), 40u);
  auto result = Park(w.program, w.database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.conflicts_resolved, 20u);
  EXPECT_EQ(CountPredicate(w, result->database, "t"), 0u);  // inertia
}

TEST(ConflictGenTest, RestartChainDepthAndConflicts) {
  Workload w = MakeRestartChainWorkload(12, 3);
  auto result = Park(w.program, w.database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.conflicts_resolved, 3u);
  EXPECT_GE(result->stats.restarts, 1u);
  // The chain itself is fully derived.
  EXPECT_EQ(CountPredicate(w, result->database, "c"), 13u);
  // All boom targets resolved by inertia to absent.
  EXPECT_EQ(CountPredicate(w, result->database, "boom"), 0u);
}

TEST(ConflictGenTest, RestartChainWithoutConflicts) {
  Workload w = MakeRestartChainWorkload(5, 0);
  auto result = Park(w.program, w.database);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.restarts, 0u);
  EXPECT_EQ(CountPredicate(w, result->database, "c"), 6u);
}

TEST(PayrollGenTest, PopulationShape) {
  PayrollParams params;
  params.num_employees = 50;
  params.inactive_fraction = 0.2;
  params.num_deactivations = 5;
  params.seed = 3;
  Workload w = MakePayrollWorkload(params);
  EXPECT_EQ(CountPredicate(w, w.database, "emp"), 50u);
  EXPECT_EQ(CountPredicate(w, w.database, "payroll"), 50u);
  size_t active = CountPredicate(w, w.database, "active");
  EXPECT_GT(active, 25u);
  EXPECT_LT(active, 50u);
  EXPECT_EQ(w.updates.size(), 5u);
}

TEST(PayrollGenTest, StabilizeCleansInactiveEmployees) {
  PayrollParams params;
  params.num_employees = 40;
  params.inactive_fraction = 0.25;
  params.seed = 7;
  Workload w = MakePayrollWorkload(params);
  auto result = Park(w.program, w.database);
  ASSERT_TRUE(result.ok());
  size_t active = CountPredicate(w, w.database, "active");
  // Every inactive employee lost their payroll row and gained an audit.
  EXPECT_EQ(CountPredicate(w, result->database, "payroll"), active);
  EXPECT_EQ(CountPredicate(w, result->database, "audit"), 40u - active);
}

TEST(PayrollGenTest, DeactivationTransactionCascades) {
  PayrollParams params;
  params.num_employees = 30;
  params.inactive_fraction = 0.0;  // everyone active
  params.num_deactivations = 4;
  params.seed = 11;
  Workload w = MakePayrollWorkload(params);
  auto result = Park(w.database, w.program, w.updates.updates());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(CountPredicate(w, result->database, "payroll"), 26u);
  EXPECT_EQ(CountPredicate(w, result->database, "audit"), 4u);
  EXPECT_EQ(CountPredicate(w, result->database, "active"), 26u);
}

TEST(WorkloadHelpersTest, AtomBuilders) {
  auto symbols = MakeSymbolTable();
  EXPECT_EQ(IntAtom(symbols, "p", 7).ToString(*symbols), "p(7)");
  EXPECT_EQ(IntAtom2(symbols, "e", 1, 2).ToString(*symbols), "e(1, 2)");
  EXPECT_EQ(SymAtom(symbols, "emp", "jo").ToString(*symbols), "emp(jo)");
}

}  // namespace
}  // namespace park
